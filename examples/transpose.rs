//! Matrix transpose through the PVA: gather columns, scatter rows.
//!
//! Transposition is the canonical "application vectors don't match
//! memory vectors" workload (§1): reading a column of a row-major
//! matrix is a stride-N walk. The PVA does it as N gathered column
//! reads and N unit-stride row writes — with full data validation and a
//! comparison against the conventional line-fill cost.
//!
//! Run with: `cargo run --example transpose --release`

use pva::core::{PvaError, Vector};
use pva::memsys::{CachelineSerial, MemorySystem, TraceOp};
use pva::sim::{HostRequest, PvaConfig, PvaUnit};

const N: u64 = 64; // matrix is N x N, N a multiple of the 32-word line
const SRC: u64 = 0x10_0000;
const DST: u64 = 0x40_0000;

fn main() -> Result<(), PvaError> {
    let mut unit = PvaUnit::new(PvaConfig::default())?;
    // src[r][c] = r * 1000 + c
    for r in 0..N {
        for c in 0..N {
            unit.preload(SRC + r * N + c, r * 1000 + c);
        }
    }

    // Transpose: for each column c of src, gather it (stride N) and
    // scatter it as row c of dst (unit stride).
    let mut cycles = 0u64;
    for c in 0..N {
        let col = Vector::new(SRC + c, N, N)?;
        let mut column_data = Vec::new();
        for chunk in col.chunks(32) {
            let r = unit.run(vec![HostRequest::Read { vector: chunk }])?;
            column_data.extend_from_slice(r.read_data(0));
            cycles += r.cycles;
        }
        let row = Vector::unit_stride(DST + c * N, N)?;
        let mut off = 0;
        for chunk in row.chunks(32) {
            let len = chunk.length() as usize;
            let r = unit.run(vec![HostRequest::Write {
                vector: chunk,
                data: column_data[off..off + len].to_vec(),
            }])?;
            off += len;
            cycles += r.cycles;
        }
    }

    // Validate: dst[c][r] == src[r][c].
    for r in 0..N {
        for c in 0..N {
            assert_eq!(unit.peek(DST + c * N + r), r * 1000 + c, "dst[{c}][{r}]");
        }
    }
    println!("{N}x{N} transpose verified element-for-element");
    println!("PVA cycles: {cycles}");

    // The conventional cost: every column read fetches N whole lines.
    let mut trace = Vec::new();
    for c in 0..N {
        for chunk in Vector::new(SRC + c, N, N)?.chunks(32) {
            trace.push(TraceOp::read(chunk));
        }
        for chunk in Vector::unit_stride(DST + c * N, N)?.chunks(32) {
            trace.push(TraceOp::write(chunk));
        }
    }
    let conventional = CachelineSerial::default().run_trace(&trace).cycles;
    println!(
        "cache-line system: {conventional} cycles ({:.1}x slower)",
        conventional as f64 / cycles as f64
    );
    Ok(())
}
