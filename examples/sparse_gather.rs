//! Sparse-matrix gather (vector-indirect access) — the §7 two-phase
//! extension: `x[idx[i]]` for a CSR-style sparse row.
//!
//! Phase 1 loads the indirection vector (a unit-stride PVA read); the
//! indices are then broadcast on the vector bus, every bank controller
//! claims its addresses with a bit-mask snoop, and the banks gather in
//! parallel.
//!
//! Run with: `cargo run --example sparse_gather`

use pva::core::{per_bank_counts, Geometry, IndirectVector, PvaError};
use pva::sim::{run_indirect_gather, PvaConfig};

fn main() -> Result<(), PvaError> {
    let cfg = PvaConfig::default();
    let g = Geometry::word_interleaved(16)?;

    // Column indices of one row of a sparse matrix (irregular spread).
    let cols: Vec<u64> = (0..48).map(|i| (i * i * 37 + i * 5) % 8192).collect();
    let x_base = 0x20_0000;
    let iv = IndirectVector::new(x_base, cols)?;

    let counts = per_bank_counts(&iv, &g);
    println!("48 sparse elements; per-bank claim counts: {counts:?}");
    println!(
        "parallelism: busiest bank serves {} of 48 elements\n",
        counts.iter().max().expect("16 banks")
    );

    let t = run_indirect_gather(cfg, &iv, 0x1000)?;
    println!("two-phase PVA gather:");
    println!(
        "  phase 1 (load indices, unit-stride): {:>4} cycles",
        t.phase1_cycles
    );
    println!(
        "  broadcast (2 addresses/cycle):       {:>4} cycles",
        t.broadcast_cycles
    );
    println!(
        "  phase 2 (parallel bank gather):      {:>4} cycles",
        t.phase2_cycles
    );
    println!(
        "  stage result line:                   {:>4} cycles",
        t.stage_cycles
    );
    println!(
        "  total:                               {:>4} cycles",
        t.total_cycles
    );

    // Data correctness: each gathered word equals a functional read.
    let unit = pva::sim::PvaUnit::new(cfg)?;
    for (i, addr) in iv.addresses().enumerate() {
        assert_eq!(t.data[i], unit.peek(addr), "element {i}");
    }
    println!("\nall 48 gathered words verified against functional memory");
    Ok(())
}
