//! Cycle-by-cycle inspection of one gathered vector read — the software
//! analogue of watching the Verilog waveforms.
//!
//! Run with: `cargo run --example trace_inspect`

use pva::core::{PvaError, Vector};
use pva::sim::{HostRequest, PvaConfig, PvaUnit};

fn main() -> Result<(), PvaError> {
    let cfg = PvaConfig {
        record_trace: true,
        ..PvaConfig::default()
    };
    let mut unit = PvaUnit::new(cfg)?;
    let v = Vector::new(0x100, 6, 32)?; // stride 6 = 3 * 2^1: 8 banks hit
    let r = unit.run(vec![HostRequest::Read { vector: v }])?;
    println!("gather of {v} took {} cycles; full event log:\n", r.cycles);
    for e in unit.take_events() {
        println!("{e}");
    }
    Ok(())
}
