//! The full §3.2 design space in one example: three ways to tell the
//! memory controller about a strided access pattern.
//!
//! 1. **Programmer/compiler**: install an Impulse shadow view; the
//!    application walks a dense region and the controller gathers.
//! 2. **Hardware detection**: no configuration at all — the reference
//!    prediction table locks onto the stream and prefetches it.
//! 3. **Neither** (baseline): plain strided cache-line fills.
//!
//! Run with: `cargo run --example impulse_shadow --release`

use pva::core::{PvaError, Vector};
use pva::impulse::{ImpulseController, PrefetchEngine, StridedView};
use pva::memsys::{CachelineSerial, MemorySystem, TraceOp};
use pva::sim::PvaConfig;

const STRIDE: u64 = 19;
const ELEMENTS: u64 = 1024;
const SHADOW: u64 = 1 << 40;
const REAL: u64 = 0x10_0000;

fn main() -> Result<(), PvaError> {
    println!("walking x[i * {STRIDE}] for {ELEMENTS} elements, three ways:\n");

    // 1. Shadow view: the compiler mapped the strided array densely.
    let mut ctl = ImpulseController::with_default_unit()?;
    ctl.install(StridedView::new(SHADOW, REAL, STRIDE, ELEMENTS)?)?;
    let shadow_cycles = ctl.stream_view(SHADOW)?;
    println!("1. impulse shadow view:   {shadow_cycles:>6} cycles (configured gather)");

    // 2. RPT detection: the hardware discovers the stream by itself.
    let mut eng = PrefetchEngine::new(PvaConfig::default(), 16, 32)?;
    let refs: Vec<(u64, u64)> = (0..ELEMENTS).map(|i| (0x400, REAL + i * STRIDE)).collect();
    let stats = eng.run(&refs)?;
    println!(
        "2. rpt-detected prefetch: {:>6} cycles ({:.0}% of references covered, {} gathers)",
        stats.gather_cycles,
        stats.coverage() * 100.0,
        stats.prefetches
    );

    // 3. Baseline: strided line fills through a conventional system.
    let v = Vector::new(REAL, STRIDE, ELEMENTS)?;
    let trace: Vec<TraceOp> = v.chunks(32).map(TraceOp::read).collect();
    let baseline = CachelineSerial::default().run_trace(&trace).cycles;
    println!("3. cache-line fills:      {baseline:>6} cycles (no vector knowledge)");

    println!(
        "\nknowing the pattern — by configuration or detection — wins {:.0}x",
        baseline as f64 / shadow_cycles as f64
    );
    Ok(())
}
