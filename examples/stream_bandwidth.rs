//! McCalpin STREAM on the four memory systems — the benchmark the
//! paper uses to contextualize the Alpha 21174's hot-row management
//! (§2.4.1).
//!
//! Run with: `cargo run --example stream_bandwidth --release`

use pva::kernels::{StreamKernel, SystemKind};

fn main() {
    const ELEMENTS: u64 = 4096;
    const MHZ: f64 = 100.0;
    println!("STREAM sustained bandwidth (MB/s at {MHZ:.0} MHz, {ELEMENTS} elements)\n");
    print!("{:<10}", "kernel");
    for sys in SystemKind::ALL {
        print!("{:>18}", sys.name());
    }
    println!();
    for k in StreamKernel::ALL {
        print!("{:<10}", k.name());
        for sys in SystemKind::ALL {
            let bw = k.bandwidth(sys.build().as_mut(), ELEMENTS);
            print!("{:>18.0}", bw * MHZ);
        }
        println!();
    }
    println!(
        "\nunit-stride STREAM is the PVA's parity case: it matches the cache-line\n\
         system here and the bus (800 MB/s peak at 64 bits x 100 MHz) is the limit"
    );
}
