//! FFT bit-reversal reordering through a pattern-aware memory
//! controller — the §7 future-work extension.
//!
//! The reorder phase of an FFT reads element `rev(i)` for consecutive
//! `i`: terrible cache locality, but a memory controller that knows the
//! pattern can gather each output line directly. This example verifies
//! the permutation, shows the per-bank claim balance, and times the
//! gather against a cache-line system that fetches one line per element.
//!
//! Run with: `cargo run --example fft_bitreversal`

use pva::core::{BankId, BitReversedVector, Geometry, IndirectVector, PvaError};
use pva::sim::{run_indirect_gather, PvaConfig};

fn main() -> Result<(), PvaError> {
    let g = Geometry::word_interleaved(16)?;
    let k = 10; // 1024-point FFT
    let v = BitReversedVector::new(0, k)?;
    println!(
        "{}-point FFT bit-reversal, base {:#x}\n",
        v.length(),
        v.base()
    );

    // The pattern is a permutation of the array.
    let mut addrs: Vec<u64> = v.addresses().collect();
    addrs.sort_unstable();
    assert_eq!(addrs, (0..v.length()).collect::<Vec<u64>>());

    // Per-bank claims are perfectly balanced for bank-aligned bases.
    let claims: Vec<usize> = (0..16)
        .map(|b| v.subvector_indices(BankId::new(b), &g).count())
        .collect();
    println!("per-bank claims: {claims:?}");
    assert!(claims.iter().all(|&c| c == claims[0]));

    // Gather the first output line (32 bit-reversed elements) through
    // the PVA's indirect machinery and check the data order.
    let offsets: Vec<u64> = (0..32).map(|i| v.element(i)).collect();
    let iv = IndirectVector::new(0, offsets)?;
    let cfg = PvaConfig::default();
    let t = run_indirect_gather(cfg, &iv, 1 << 20)?;
    println!(
        "\none 32-element bit-reversed line: broadcast {} + gather {} + stage {} cycles",
        t.broadcast_cycles, t.phase2_cycles, t.stage_cycles
    );
    let cacheline = 32 * 20; // each reversed element lands in its own line
    println!(
        "cache-line system: {} cycles ({:.1}x slower)",
        cacheline,
        cacheline as f64 / (t.broadcast_cycles + t.phase2_cycles + t.stage_cycles) as f64
    );
    Ok(())
}
