//! Quickstart: gather a strided vector through the PVA unit and compare
//! against the conventional cache-line memory system.
//!
//! Run with: `cargo run --example quickstart`

use pva::core::{PvaError, Vector};
use pva::memsys::{CachelineSerial, MemorySystem, SerialGather, TraceOp};
use pva::sim::{HostRequest, PvaConfig, PvaUnit};

fn main() -> Result<(), PvaError> {
    // A base-stride application vector: every 19th word, 32 elements —
    // one L2 cache line of useful data scattered over 2432 bytes.
    let v = Vector::new(0x4000, 19, 32)?;
    println!("application vector {v}: 32 words, stride 19\n");

    // 1. Gather it through the PVA unit and inspect the dense line.
    let mut unit = PvaUnit::new(PvaConfig::default())?;
    for (i, addr) in v.addresses().enumerate() {
        unit.preload(addr, 1000 + i as u64);
    }
    let result = unit.run(vec![HostRequest::Read { vector: v }])?;
    let line = result.read_data(0);
    assert_eq!(line[0], 1000);
    assert_eq!(line[31], 1031);
    println!("PVA gathered the dense line in {} cycles", result.cycles);

    // 2. The same access on the conventional systems.
    let trace = [TraceOp::read(v)];
    let cacheline = CachelineSerial::default().run_trace(&trace).cycles;
    let serial = SerialGather::default().run_trace(&trace).cycles;
    println!("cache-line interleaved serial SDRAM:  {cacheline} cycles (19 whole lines fetched)");
    println!("gathering pipelined serial SDRAM:     {serial} cycles (element by element)");
    println!(
        "\nspeedups: {:.1}x vs cache-line, {:.1}x vs serial gathering",
        cacheline as f64 / result.cycles as f64,
        serial as f64 / result.cycles as f64,
    );
    println!("(single-command latency; pipelined batches widen the gap — see the fig7 bench)");
    Ok(())
}
