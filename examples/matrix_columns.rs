//! Column-major access to a row-major matrix — the paper's motivating
//! workload (§1: "an application accesses an array stored in row major
//! order along a column or a diagonal").
//!
//! Walks a column and the diagonal of a 256 x 256 row-major matrix on
//! all four memory systems, and shows how `SplitVector` (§4.3.2) breaks
//! the column walk at superpage boundaries using the memory controller's
//! TLB.
//!
//! Run with: `cargo run --example matrix_columns`

use pva::core::{split_vector, MmcTlb, PvaError, Vector};
use pva::kernels::LINE_WORDS;
use pva::memsys::{SystemRegistry, TraceOp};

const N: u64 = 256; // matrix dimension (words)

fn main() -> Result<(), PvaError> {
    let base = 0x10_0000;

    // Column 3 of a row-major N x N matrix: stride N, N elements.
    let column = Vector::new(base + 3, N, N)?;
    // Main diagonal: stride N + 1.
    let diagonal = Vector::new(base, N + 1, N)?;

    for (name, vector) in [("column walk", column), ("diagonal walk", diagonal)] {
        // The front end chunks the application vector into 32-word
        // commands (one L2 line each).
        let trace: Vec<TraceOp> = vector.chunks(LINE_WORDS).map(TraceOp::read).collect();
        println!(
            "{name}: stride {}, {} commands",
            vector.stride(),
            trace.len()
        );
        for mut sys in SystemRegistry::with_defaults().build() {
            let out = sys.run_trace(&trace);
            println!(
                "  {:22} {:>8} cycles  {:>8} bytes moved",
                sys.name(),
                out.cycles,
                out.bytes_transferred
            );
        }
        println!();
    }

    // Virtual memory interaction: the same column walk through the MMC
    // TLB with 4 Ki-word superpages mapped to scattered frames.
    let mut tlb = MmcTlb::new();
    for (i, frame) in [
        7u64, 2, 11, 5, 0, 9, 13, 4, 1, 15, 3, 8, 6, 10, 14, 12, 16, 17,
    ]
    .iter()
    .enumerate()
    {
        tlb.map(pva::core::Superpage {
            vbase: base / 4096 * 4096 + i as u64 * 4096,
            pbase: frame * 4096,
            size_words: 4096,
        })?;
    }
    let subs = split_vector(&column, &tlb)?;
    println!(
        "SplitVector broke the column walk into {} physically-contiguous sub-vectors",
        subs.len()
    );
    let covered: u64 = subs.iter().map(|s| s.vector.length()).sum();
    assert_eq!(covered, N);
    println!(
        "covering all {covered} elements; TLB lookups: {}",
        tlb.lookup_count()
    );
    Ok(())
}
