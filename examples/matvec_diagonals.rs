//! Matrix-vector multiplication by diagonals — the workload the paper
//! names as the origin of its vaxpy kernel ("a 'vector axpy' operation
//! that occurs in matrix-vector multiplication by diagonals").
//!
//! A banded matrix stored by diagonals multiplies a vector as a series
//! of vaxpy operations `y[i] += d[i] * x[i + off]`. Every access is a
//! vector access; this example runs the whole computation through the
//! PVA unit — loads, element-wise multiply-accumulate in the "CPU",
//! stores — and validates the numerics against a scalar reference.
//!
//! Run with: `cargo run --example matvec_diagonals --release`

use pva::core::{PvaError, Vector};
use pva::sim::{HostRequest, PvaConfig, PvaUnit};

const N: u64 = 256; // vector length
const LINE: u64 = 32;

/// Gathers a whole application vector (chunked) and returns its values.
fn load(unit: &mut PvaUnit, v: Vector) -> Result<(Vec<u64>, u64), PvaError> {
    let mut out = Vec::new();
    let mut cycles = 0;
    for chunk in v.chunks(LINE) {
        let r = unit.run(vec![HostRequest::Read { vector: chunk }])?;
        out.extend_from_slice(r.read_data(0));
        cycles += r.cycles;
    }
    Ok((out, cycles))
}

/// Scatters a whole application vector.
fn store(unit: &mut PvaUnit, v: Vector, data: &[u64]) -> Result<u64, PvaError> {
    let mut cycles = 0;
    let mut off = 0usize;
    for chunk in v.chunks(LINE) {
        let len = chunk.length() as usize;
        let r = unit.run(vec![HostRequest::Write {
            vector: chunk,
            data: data[off..off + len].to_vec(),
        }])?;
        off += len;
        cycles += r.cycles;
    }
    Ok(cycles)
}

fn main() -> Result<(), PvaError> {
    let mut unit = PvaUnit::new(PvaConfig::default())?;

    // Memory layout: x at 0x10000, y at 0x20000, three diagonals (main,
    // +1, -1) stored densely at 0x30000.
    let x_base = 0x10000u64;
    let y_base = 0x20000u64;
    let d_base = 0x30000u64;
    let offsets: [i64; 3] = [0, 1, -1];

    // Initialize memory with small integers (exact arithmetic in u64).
    for i in 0..N {
        unit.preload(x_base + i, (i % 7) + 1);
        unit.preload(y_base + i, 0);
        for (k, _) in offsets.iter().enumerate() {
            unit.preload(d_base + (k as u64) * N + i, (i % 5) + k as u64 + 1);
        }
    }

    let mut total_cycles = 0u64;
    // y = sum over diagonals of d_k[i] * x[i + off_k]
    let (mut y, c) = load(&mut unit, Vector::new(y_base, 1, N)?)?;
    total_cycles += c;
    for (k, &off) in offsets.iter().enumerate() {
        let lo = (-off).max(0) as u64; // first valid i
        let hi = if off > 0 { N - off as u64 } else { N }; // one past last
        let len = hi - lo;
        let (d, c1) = load(
            &mut unit,
            Vector::new(d_base + (k as u64) * N + lo, 1, len)?,
        )?;
        let (xs, c2) = load(
            &mut unit,
            Vector::new((x_base as i64 + off + lo as i64) as u64, 1, len)?,
        )?;
        total_cycles += c1 + c2;
        for (i, (di, xi)) in d.iter().zip(&xs).enumerate() {
            y[lo as usize + i] += di * xi;
        }
    }
    total_cycles += store(&mut unit, Vector::new(y_base, 1, N)?, &y)?;

    // Scalar reference.
    let mut want = vec![0u64; N as usize];
    for (i, w) in want.iter_mut().enumerate() {
        for (k, &off) in offsets.iter().enumerate() {
            let j = i as i64 + off;
            if (0..N as i64).contains(&j) {
                let d = (i as u64 % 5) + k as u64 + 1;
                let x = (j as u64 % 7) + 1;
                *w += d * x;
            }
        }
    }
    for (i, w) in want.iter().enumerate() {
        assert_eq!(unit.peek(y_base + i as u64), *w, "y[{i}]");
    }
    println!("tridiagonal matvec over {N} elements verified exactly");
    println!(
        "memory cycles: {total_cycles} ({} per element)",
        total_cycles / N
    );
    Ok(())
}
