//! Interactive-ish explorer: run any Table-2 kernel at any stride and
//! alignment on all four memory systems.
//!
//! Run with: `cargo run --example memsys_explorer -- [kernel] [stride]`
//! e.g. `cargo run --example memsys_explorer -- vaxpy 19`

use pva::kernels::{run_point, Alignment, Kernel, SystemKind};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let kernel = args
        .get(1)
        .map(|s| {
            Kernel::ALL
                .into_iter()
                .find(|k| k.name() == s)
                .unwrap_or_else(|| {
                    eprintln!("unknown kernel {s}; using vaxpy");
                    Kernel::Vaxpy
                })
        })
        .unwrap_or(Kernel::Vaxpy);
    let stride: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(19);

    println!("{} at stride {}", kernel.name(), stride);
    println!("  {}\n", kernel.source());
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "system", "coincident", "bank+1", "bank+4", "ibank+1", "row+1"
    );
    for sys in SystemKind::ALL {
        let cells: Vec<u64> = Alignment::ALL
            .iter()
            .map(|&a| run_point(kernel, stride, a, sys))
            .collect();
        println!(
            "{:<22} {:>12} {:>12} {:>12} {:>12} {:>12}",
            sys.name(),
            cells[0],
            cells[1],
            cells[2],
            cells[3],
            cells[4]
        );
    }
    println!("\ncells are total cycles for 1024 elements per array (lower is better)");
}
