//! The EXPERIMENTS.md claims, codified: every reproduced figure's
//! *shape* is asserted so regressions in the model surface as test
//! failures, not silently wrong writeups.

use pva::kernels::{run_cell, Kernel, SystemKind};

/// Figure 7/8 shape: PVA flat across strides (prime included); the
/// cache-line system's cost proportional to stride.
#[test]
fn fig7_8_shapes() {
    for kernel in [Kernel::Copy, Kernel::Vaxpy] {
        let pva_1 = run_cell(kernel, 1, SystemKind::PvaSdram).min as f64;
        let pva_19 = run_cell(kernel, 19, SystemKind::PvaSdram).min as f64;
        assert!(
            (pva_19 / pva_1) < 1.1,
            "{kernel}: PVA must be flat out to prime strides"
        );
        let cl_1 = run_cell(kernel, 1, SystemKind::CachelineSerial).min as f64;
        let cl_16 = run_cell(kernel, 16, SystemKind::CachelineSerial).min as f64;
        assert!(
            (15.0..=17.0).contains(&(cl_16 / cl_1)),
            "{kernel}: line fills scale with stride"
        );
    }
}

/// Figure 9 shape: unit-stride parity (the cache-line system within
/// ~0.9x-1.4x of the PVA).
#[test]
fn fig9_unit_stride_parity() {
    for kernel in Kernel::ALL {
        let pva = run_cell(kernel, 1, SystemKind::PvaSdram).min as f64;
        let cl = run_cell(kernel, 1, SystemKind::CachelineSerial).min as f64;
        let ratio = cl / pva;
        assert!(
            (0.9..=1.4).contains(&ratio),
            "{kernel}: unit-stride ratio {ratio:.2}"
        );
    }
}

/// Figure 10 shape: at stride 19 the cache-line system takes >15x the
/// PVA's time on every kernel; the serial gatherer crosses over toward
/// the PVA only at the single-bank stride 16.
#[test]
fn fig10_prime_stride_blowup_and_crossover() {
    for kernel in Kernel::ALL {
        let pva = run_cell(kernel, 19, SystemKind::PvaSdram).min as f64;
        let cl = run_cell(kernel, 19, SystemKind::CachelineSerial).min as f64;
        assert!(cl / pva > 15.0, "{kernel}: stride-19 ratio {:.1}", cl / pva);
    }
    let pva16 = run_cell(Kernel::Scale, 16, SystemKind::PvaSdram).min as f64;
    let sg16 = run_cell(Kernel::Scale, 16, SystemKind::SerialGather).min as f64;
    assert!(
        sg16 / pva16 < 1.3,
        "serial gather nearly catches the PVA at the single-bank stride"
    );
    let pva19 = run_cell(Kernel::Scale, 19, SystemKind::PvaSdram).min as f64;
    let sg19 = run_cell(Kernel::Scale, 19, SystemKind::SerialGather).min as f64;
    assert!(sg19 / pva19 > 1.8, "but loses where banks parallelize");
}

/// Figure 11 shape: the SDRAM PVA tracks the SRAM PVA within ~16%
/// across every stride and alignment (the latency-hiding claim).
#[test]
fn fig11_sram_gap() {
    use pva::kernels::{run_point, Alignment, STRIDES};
    let mut worst: f64 = 1.0;
    for &s in &STRIDES {
        for a in Alignment::ALL {
            let sdram = run_point(Kernel::Vaxpy, s, a, SystemKind::PvaSdram) as f64;
            let sram = run_point(Kernel::Vaxpy, s, a, SystemKind::PvaSram) as f64;
            worst = worst.max(sdram / sram);
        }
    }
    assert!(
        (1.0..=1.20).contains(&worst),
        "worst SDRAM/SRAM gap {worst:.3} (paper: <= ~1.15)"
    );
}

/// The abstract's headline directions.
#[test]
fn headline_directions() {
    let pva = run_cell(Kernel::Copy, 19, SystemKind::PvaSdram).min as f64;
    let cl = run_cell(Kernel::Copy, 19, SystemKind::CachelineSerial).min as f64;
    let sg = run_cell(Kernel::Copy, 1, SystemKind::SerialGather).min as f64;
    let pva1 = run_cell(Kernel::Copy, 1, SystemKind::PvaSdram).min as f64;
    assert!(
        cl / pva > 20.0,
        "vs cache-line: {:.1}x (paper 32.8x)",
        cl / pva
    );
    assert!(
        sg / pva1 > 2.0,
        "vs serial gather: {:.1}x (paper 3.3x)",
        sg / pva1
    );
}
