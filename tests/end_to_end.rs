//! Workspace integration tests: kernels -> memsys -> pva-sim -> sdram,
//! driven through the `pva` facade.

use pva::core::{split_vector, MmcTlb, Superpage, Vector};
use pva::kernels::{run_cell, run_point, Alignment, Kernel, SystemKind, STRIDES};
use pva::memsys::{SystemRegistry, TraceOp};
use pva::sim::{HostRequest, PvaConfig, PvaUnit};

#[test]
fn facade_reexports_compose() {
    // The doc-comment quickstart, through the facade paths.
    let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
    let v = Vector::new(0x1000, 19, 32).unwrap();
    let result = unit.run(vec![HostRequest::Read { vector: v }]).unwrap();
    assert_eq!(result.read_data(0).len(), 32);
}

#[test]
fn every_system_runs_every_kernel() {
    // Smoke the full cross product at one (stride, alignment).
    for kernel in Kernel::ALL {
        for system in SystemKind::ALL {
            let c = run_point(kernel, 4, Alignment::BankStagger, system);
            assert!(c > 0, "{} on {}", kernel.name(), system.name());
        }
    }
}

#[test]
fn pva_wins_grow_with_stride_against_cacheline() {
    // The evaluation's central trend: the cache-line system's
    // disadvantage grows monotonically with stride (figures 7-10).
    let mut last_ratio = 0.0;
    for &stride in &STRIDES[..5] {
        // strides 1..16 (19 wraps back to fast)
        let pva = run_cell(Kernel::Saxpy, stride, SystemKind::PvaSdram).min as f64;
        let cls = run_cell(Kernel::Saxpy, stride, SystemKind::CachelineSerial).min as f64;
        let ratio = cls / pva;
        assert!(
            ratio >= last_ratio * 0.95,
            "ratio should grow with stride: {ratio} after {last_ratio}"
        );
        last_ratio = ratio;
    }
}

#[test]
fn prime_stride_restores_parallelism() {
    // Stride 19 performance snaps back to near-unit-stride (§6.3.1),
    // while stride 16 is the single-bank worst case.
    let s1 = run_cell(Kernel::Scale, 1, SystemKind::PvaSdram).min;
    let s16 = run_cell(Kernel::Scale, 16, SystemKind::PvaSdram).min;
    let s19 = run_cell(Kernel::Scale, 19, SystemKind::PvaSdram).min;
    assert!(s19 < s16, "prime stride beats power-of-two: {s19} vs {s16}");
    assert!((s19 as f64) < s1 as f64 * 1.6, "stride 19 near stride 1");
}

#[test]
fn unrolling_helps_slightly_on_pva() {
    // §6.3: copy2/scale2 "yielding only a slight advantage" on the PVA
    // SDRAM system. Allow equality but not large regressions.
    for (plain, unrolled) in [
        (Kernel::Copy, Kernel::Copy2),
        (Kernel::Scale, Kernel::Scale2),
    ] {
        let p = run_cell(plain, 4, SystemKind::PvaSdram).min as f64;
        let u = run_cell(unrolled, 4, SystemKind::PvaSdram).min as f64;
        assert!(
            u <= p * 1.05,
            "{}: unrolled {u} vs plain {p}",
            unrolled.name()
        );
    }
}

#[test]
fn split_vector_feeds_the_unit_correctly() {
    // Virtual vector across scattered physical frames: split through the
    // MMC TLB, run each physical sub-vector through the PVA unit, and
    // verify the concatenated data equals functional reads.
    let mut tlb = MmcTlb::new();
    let frames = [3u64, 0, 2, 1];
    for (i, f) in frames.iter().enumerate() {
        tlb.map(Superpage {
            vbase: i as u64 * 1024,
            pbase: 0x40_0000 + f * 1024,
            size_words: 1024,
        })
        .unwrap();
    }
    let virt = Vector::new(100, 37, 64).unwrap(); // crosses several pages
    let subs = split_vector(&virt, &tlb).unwrap();
    assert!(subs.len() > 1);

    let mut unit = PvaUnit::new(PvaConfig::default()).unwrap();
    let mut gathered = Vec::new();
    for s in &subs {
        for chunk in s.vector.chunks(32) {
            let r = unit.run(vec![HostRequest::Read { vector: chunk }]).unwrap();
            gathered.extend_from_slice(r.read_data(0));
        }
    }
    assert_eq!(gathered.len(), 64);
    for (i, &w) in gathered.iter().enumerate() {
        let vaddr = virt.element(i as u64);
        let paddr = tlb.lookup(vaddr).unwrap().paddr;
        assert_eq!(w, unit.peek(paddr), "element {i}");
    }
}

#[test]
fn trace_cycle_counts_are_positive_and_scale_with_work() {
    for mut sys in SystemRegistry::with_defaults().build() {
        let small: Vec<TraceOp> = (0..2)
            .map(|i| TraceOp::read(Vector::new(i * 4096, 4, 32).unwrap()))
            .collect();
        let large: Vec<TraceOp> = (0..20)
            .map(|i| TraceOp::read(Vector::new(i * 4096, 4, 32).unwrap()))
            .collect();
        let cs = sys.run_trace(&small);
        sys.reset();
        let cl = sys.run_trace(&large);
        assert!(cl.cycles > cs.cycles, "{}", sys.name());
        assert!(
            cl.bytes_transferred > cs.bytes_transferred,
            "{}",
            sys.name()
        );
    }
}

#[test]
fn write_traffic_round_trips_through_every_pva_config() {
    // End-to-end scatter/gather with data checking under both PVA
    // back ends.
    for cfg in [PvaConfig::default(), PvaConfig::sram_backend()] {
        let mut unit = PvaUnit::new(cfg).unwrap();
        let v = Vector::new(0x9000, 7, 32).unwrap();
        let data: Vec<u64> = (0..32).map(|i| 0xF00D_0000 + i).collect();
        unit.run(vec![HostRequest::Write {
            vector: v,
            data: data.clone(),
        }])
        .unwrap();
        let r = unit.run(vec![HostRequest::Read { vector: v }]).unwrap();
        assert_eq!(r.read_data(0), &data[..]);
    }
}
