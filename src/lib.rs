//! # pva — Parallel Vector Access for SDRAM memory systems
//!
//! A from-scratch Rust reproduction of Mathew, McKee, Carter and Davis,
//! *Design of a Parallel Vector Access Unit for SDRAM Memory Systems*
//! (HPCA 2000): the parallel base-stride access algorithms, a
//! cycle-level model of the PVA hardware unit, the SDRAM substrate it
//! drives, the paper's comparator memory systems, and the benchmark
//! harness that regenerates every table and figure of its evaluation.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] ([`pva_core`]) — the mathematics: `FirstHit`/`NextHit`
//!   closed forms, PLA tables, interleave transforms, page splitting;
//! * [`sdram`] — the SDRAM device timing simulator;
//! * [`sim`] ([`pva_sim`]) — the cycle-level PVA unit (bank
//!   controllers, vector bus, access scheduler);
//! * [`memsys`] — the four §6.1 memory systems behind one trait;
//! * [`kernels`] — the Table-2 workloads and experiment sweeps.
//!
//! # Quickstart
//!
//! ```
//! use pva::core::Vector;
//! use pva::sim::{HostRequest, PvaConfig, PvaUnit};
//!
//! // Gather a stride-19 vector: all 16 banks work in parallel.
//! let mut unit = PvaUnit::new(PvaConfig::default())?;
//! let v = Vector::new(0x1000, 19, 32)?;
//! let result = unit.run(vec![HostRequest::Read { vector: v }])?;
//! println!("gathered 32 words in {} cycles", result.cycles);
//! # Ok::<(), pva::core::PvaError>(())
//! ```
//!
//! See `examples/` for runnable scenarios and `crates/bench/src/bin/`
//! for the per-figure reproduction binaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The paper's core algorithms (re-export of [`pva_core`]).
pub use pva_core as core;

/// The SDRAM device simulator.
pub use sdram;

/// The cycle-level PVA unit (re-export of [`pva_sim`]).
pub use pva_sim as sim;

/// The four evaluation memory systems.
pub use memsys;

/// Table-2 kernels and experiment sweeps.
pub use kernels;

/// Impulse-style shadow address spaces (§3.2).
pub use impulse;

/// L2 cache model for whole-loop studies.
pub use cache;
