//! `pva-explore` — command-line front end to the PVA reproduction.
//!
//! ```console
//! $ pva-explore gather --base 0x1000 --stride 19 --len 32 [--vcd out.vcd]
//! $ pva-explore kernel vaxpy 16
//! $ pva-explore sweep-csv results/sweep.csv
//! $ pva-explore stream
//! ```

use std::io::Write as _;
use std::process::ExitCode;

use pva::core::Vector;
use pva::kernels::{full_sweep, run_point, Alignment, Kernel, StreamKernel, SystemKind};
use pva::sim::{write_vcd, HostRequest, PvaConfig, PvaUnit};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("gather") => cmd_gather(&args[1..]),
        Some("kernel") => cmd_kernel(&args[1..]),
        Some("sweep-csv") => cmd_sweep_csv(&args[1..]),
        Some("stream") => cmd_stream(),
        _ => {
            eprintln!(
                "usage: pva-explore <command>\n\
                 commands:\n  \
                 gather --base B --stride S --len L [--trace] [--vcd FILE]\n  \
                 kernel <name> <stride>        (copy|copy2|saxpy|scale|scale2|swap|tridiag|vaxpy)\n  \
                 sweep-csv <output.csv>        full 240-point sweep on all systems\n  \
                 stream                        STREAM bandwidth on all systems"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn parse_u64(s: &str) -> Result<u64, String> {
    let r = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.map_err(|_| format!("invalid number {s}"))
}

fn cmd_gather(args: &[String]) -> Result<(), String> {
    let base = parse_u64(flag_value(args, "--base").unwrap_or("0"))?;
    let stride = parse_u64(flag_value(args, "--stride").unwrap_or("1"))?;
    let len = parse_u64(flag_value(args, "--len").unwrap_or("32"))?;
    let want_trace = args.iter().any(|a| a == "--trace");
    let vcd_path = flag_value(args, "--vcd");

    let cfg = PvaConfig {
        record_trace: want_trace || vcd_path.is_some(),
        ..PvaConfig::default()
    };
    let mut unit = PvaUnit::new(cfg).map_err(|e| e.to_string())?;
    let v = Vector::new(base, stride, len).map_err(|e| e.to_string())?;
    let r = unit
        .run(vec![HostRequest::Read { vector: v }])
        .map_err(|e| e.to_string())?;
    println!("gathered {v} in {} cycles", r.cycles);
    let active = r.bc_stats.iter().filter(|b| b.elements_read > 0).count();
    println!("banks participating: {active}/{}", r.bc_stats.len());
    let events = unit.take_events();
    if want_trace {
        for e in &events {
            println!("{e}");
        }
    }
    if let Some(path) = vcd_path {
        let mut f = std::fs::File::create(path).map_err(|e| e.to_string())?;
        write_vcd(&events, cfg.geometry.banks() as usize, &mut f).map_err(|e| e.to_string())?;
        f.flush().map_err(|e| e.to_string())?;
        println!("waveform written to {path}");
    }
    Ok(())
}

fn cmd_kernel(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("kernel name required")?;
    let kernel = Kernel::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown kernel {name}"))?;
    let stride = parse_u64(args.get(1).map(String::as_str).unwrap_or("1"))?;
    println!("{} at stride {stride}: {}", kernel.name(), kernel.source());
    for sys in SystemKind::ALL {
        let cycles: Vec<u64> = Alignment::ALL
            .iter()
            .map(|&a| run_point(kernel, stride, a, sys))
            .collect();
        let min = cycles.iter().min().expect("five alignments");
        let max = cycles.iter().max().expect("five alignments");
        println!("  {:<18} min {min:>8}  max {max:>8}", sys.name());
    }
    Ok(())
}

fn cmd_sweep_csv(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("output path required")?;
    let points = full_sweep(&SystemKind::ALL);
    let mut f = std::fs::File::create(path).map_err(|e| e.to_string())?;
    writeln!(f, "kernel,stride,alignment,system,cycles").map_err(|e| e.to_string())?;
    let n = points.len();
    for p in points {
        writeln!(
            f,
            "{},{},{},{},{}",
            p.kernel, p.stride, p.alignment, p.system, p.cycles
        )
        .map_err(|e| e.to_string())?;
    }
    println!("wrote {n} data points to {path}");
    Ok(())
}

fn cmd_stream() -> Result<(), String> {
    println!("STREAM bandwidth (bytes/cycle; x100 = MB/s at 100 MHz)");
    for k in StreamKernel::ALL {
        print!("{:<8}", k.name());
        for sys in SystemKind::ALL {
            let bw = k.bandwidth(sys.build().as_mut(), 2048);
            print!("  {}={bw:<6.2}", sys.name());
        }
        println!();
    }
    Ok(())
}
