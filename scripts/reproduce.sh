#!/usr/bin/env bash
# Regenerates every table/figure of the paper plus the extension studies
# into results/, runs the full test suite, and dumps the 960-point sweep.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== building (release) =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace --release

mkdir -p results
BINS=(
  table1_complexity table2_kernels
  fig7_stride_sweep fig8_stride_sweep fig9_fixed_stride fig10_fixed_stride
  fig11_vaxpy_detail headline_speedups ablation_scheduler
  ext_indirect ext_bitrev ext_cache_pollution
  related_cvms related_smc tech_sweep scaling_banks design_space cpu_sensitivity
)
for b in "${BINS[@]}"; do
  echo "== $b =="
  cargo run -p pva-bench --release --bin "$b" | tee "results/$b.txt"
done

echo "== sweep csv =="
cargo run --release --bin pva-explore -- sweep-csv results/sweep.csv

echo "== criterion benches =="
cargo bench -p pva-bench

echo "done: see results/ and EXPERIMENTS.md"
