#!/usr/bin/env bash
# Regenerates every table/figure of the paper plus the extension studies
# into results/ (text goldens + BENCH_*.json run records), runs the full
# test suite, and dumps the 960-point sweep.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 1)}"

echo "== building (release) =="
cargo build --workspace --release

echo "== tests =="
cargo test --workspace --release

echo "== scenarios (pva-bench all, $JOBS worker(s)) =="
mkdir -p results
# --verify first: prove the engine reproduces the committed goldens
# byte-for-byte before overwriting them, and gate the simulator's
# fast-path speedup.
cargo run -p pva-bench --release -- all --jobs "$JOBS" \
  --verify results --min-speedup 1.1
cargo run -p pva-bench --release -- all --jobs "$JOBS" \
  --out results --json results

echo "== record validation =="
cargo run -p pva-bench --release -- validate results/BENCH_*.json

echo "== fault campaign (smoke) =="
cargo run -p pva-bench --release --bin fault_campaign -- --smoke

echo "== sweep csv =="
cargo run --release --bin pva-explore -- sweep-csv results/sweep.csv

echo "== criterion benches =="
cargo bench -p pva-bench

echo "done: see results/ and EXPERIMENTS.md"
