//! McCalpin STREAM kernels (§2.4.1).
//!
//! The paper benchmarks the Alpha 21174's hot-row management with
//! "McCalpin's STREAM benchmark" (23% latency / 7% bandwidth
//! improvements). STREAM's four kernels — Copy, Scale, Sum (Add) and
//! Triad — are unit-stride by construction; on the PVA they run at the
//! line-fill rate, and this module reports the sustained bandwidth the
//! simulated memory system achieves on them, in bytes per cycle (scale
//! by the clock to get MB/s; the prototype's 100 MHz gives
//! `bytes/cycle x 100e6 / 1e6` MB/s).

use memsys::{MemorySystem, TraceOp};
use pva_core::Vector;

/// One of the four STREAM kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKernel {
    /// `c[i] = a[i]`
    Copy,
    /// `b[i] = q * c[i]`
    Scale,
    /// `c[i] = a[i] + b[i]`
    Sum,
    /// `a[i] = b[i] + q * c[i]`
    Triad,
}

impl StreamKernel {
    /// All four kernels in STREAM's reporting order.
    pub const ALL: [StreamKernel; 4] = [
        StreamKernel::Copy,
        StreamKernel::Scale,
        StreamKernel::Sum,
        StreamKernel::Triad,
    ];

    /// Kernel name as STREAM prints it.
    pub const fn name(&self) -> &'static str {
        match self {
            StreamKernel::Copy => "Copy",
            StreamKernel::Scale => "Scale",
            StreamKernel::Sum => "Add",
            StreamKernel::Triad => "Triad",
        }
    }

    /// Number of arrays read per iteration.
    pub const fn reads(&self) -> usize {
        match self {
            StreamKernel::Copy | StreamKernel::Scale => 1,
            StreamKernel::Sum | StreamKernel::Triad => 2,
        }
    }

    /// Words moved per element (reads + the written word) — STREAM's
    /// official byte-counting rule.
    pub const fn words_per_element(&self) -> u64 {
        self.reads() as u64 + 1
    }

    /// The unit-stride command trace for `elements` elements with
    /// `line_words`-word commands and arrays spaced `region` words
    /// apart.
    ///
    /// # Panics
    ///
    /// Panics if `elements` is not a multiple of `line_words`.
    pub fn trace(&self, elements: u64, line_words: u64, region: u64) -> Vec<TraceOp> {
        assert_eq!(elements % line_words, 0, "whole lines only");
        let a = 0u64;
        let b = region;
        let c = 2 * region;
        let mut out = Vec::new();
        for chunk in 0..(elements / line_words) {
            let off = chunk * line_words;
            let line = |base: u64| Vector::new(base + off, 1, line_words).expect("unit stride");
            match self {
                StreamKernel::Copy => {
                    out.push(TraceOp::read(line(a)));
                    out.push(TraceOp::write(line(c)));
                }
                StreamKernel::Scale => {
                    out.push(TraceOp::read(line(c)));
                    out.push(TraceOp::write(line(b)));
                }
                StreamKernel::Sum => {
                    out.push(TraceOp::read(line(a)));
                    out.push(TraceOp::read(line(b)));
                    out.push(TraceOp::write(line(c)));
                }
                StreamKernel::Triad => {
                    out.push(TraceOp::read(line(b)));
                    out.push(TraceOp::read(line(c)));
                    out.push(TraceOp::write(line(a)));
                }
            }
        }
        out
    }

    /// Sustained bandwidth of `system` on this kernel, in bytes per
    /// cycle (4-byte words, STREAM byte counting).
    pub fn bandwidth(&self, system: &mut dyn MemorySystem, elements: u64) -> f64 {
        let trace = self.trace(elements, 32, 1 << 22);
        let cycles = system.run_trace(&trace).cycles;
        (elements * self.words_per_element() * 4) as f64 / cycles as f64
    }
}

impl core::fmt::Display for StreamKernel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsys::PvaSystem;
    use pva_sim::OpKind;

    #[test]
    fn traces_have_stream_shapes() {
        for k in StreamKernel::ALL {
            let t = k.trace(1024, 32, 1 << 22);
            let reads = t.iter().filter(|op| op.kind == OpKind::Read).count();
            let writes = t.len() - reads;
            assert_eq!(reads, k.reads() * 32, "{k}");
            assert_eq!(writes, 32, "{k}");
            assert!(t.iter().all(|op| op.vector.stride() == 1));
        }
    }

    #[test]
    fn triad_moves_more_bytes_than_copy() {
        let mut sys = PvaSystem::sdram();
        let copy = StreamKernel::Copy.bandwidth(&mut sys, 1024);
        let triad = StreamKernel::Triad.bandwidth(&mut sys, 1024);
        assert!(copy > 0.0 && triad > 0.0);
        // Both are bus-bound at ~8 bytes/cycle on the 64-bit bus.
        assert!(copy <= 8.5 && triad <= 8.5);
    }

    #[test]
    fn pva_sustains_near_bus_bandwidth_on_stream() {
        // Unit-stride STREAM is the best case: the PVA should sustain
        // >80% of the 8-bytes/cycle bus limit.
        let mut sys = PvaSystem::sdram();
        for k in StreamKernel::ALL {
            let bw = k.bandwidth(&mut sys, 2048);
            assert!(bw > 6.4, "{k}: {bw:.2} B/cycle");
        }
    }
}
