//! # kernels — Table-2 workloads and the PVA experiment harness
//!
//! The six vector kernels of the paper's evaluation (plus the unrolled
//! `copy2`/`scale2` variants), the five relative-alignment presets, and
//! the sweep machinery that produces the 240 data points per memory
//! system behind figures 7–11.
//!
//! ```
//! use kernels::{run_cell, Kernel, SystemKind};
//!
//! // One (kernel, stride, system) cell: min/max cycles over the five
//! // relative alignments — one paired bar of figure 7.
//! let cell = run_cell(Kernel::Copy, 4, SystemKind::PvaSdram);
//! assert!(cell.min <= cell.max);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alignment;
mod experiment;
mod kernel;
mod stream;

pub use alignment::Alignment;
pub use experiment::{
    full_sweep, run_cell, run_point, run_point_outcome, CellResult, DataPoint, SystemKind,
    ARRAY_REGION, ELEMENTS, LINE_WORDS, STRIDES,
};
pub use kernel::{Access, ArrayIndex, Kernel};
pub use stream::StreamKernel;
