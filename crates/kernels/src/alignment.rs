//! Relative vector alignments (§6.2).
//!
//! The paper sweeps five relative alignments of the kernel arrays:
//! "placement of the base addresses within memory banks, within internal
//! banks for a given SDRAM, and within rows or pages for a given
//! internal bank". Arrays live in disjoint 4 Mi-word regions; an
//! alignment adds a per-array offset that steers where array `k` starts
//! relative to array 0 at each of those three granularities.

/// One of the five relative-alignment presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Alignment {
    /// Every array starts at bank 0, internal bank 0, row offset 0 —
    /// maximal conflict between vectors.
    Coincident,
    /// Array `k` starts `k` words later: consecutive starting banks.
    BankStagger,
    /// Array `k` starts `4k` words later: quarter-way around the banks.
    QuarterBankStagger,
    /// Array `k` starts in a different *internal* SDRAM bank (same
    /// external bank).
    InternalBankStagger,
    /// Array `k` starts in a different *row* of the same internal bank —
    /// the row-conflict worst case.
    RowStagger,
}

impl Alignment {
    /// All five presets, in sweep order.
    pub const ALL: [Alignment; 5] = [
        Alignment::Coincident,
        Alignment::BankStagger,
        Alignment::QuarterBankStagger,
        Alignment::InternalBankStagger,
        Alignment::RowStagger,
    ];

    /// Short name for reports.
    pub const fn name(&self) -> &'static str {
        match self {
            Alignment::Coincident => "coincident",
            Alignment::BankStagger => "bank+1",
            Alignment::QuarterBankStagger => "bank+4",
            Alignment::InternalBankStagger => "ibank+1",
            Alignment::RowStagger => "row+1",
        }
    }

    /// Word offset applied to array `k`'s base.
    ///
    /// Derived for the prototype geometry (16 banks, 4 internal banks,
    /// 512-word device pages): `8192` words flips the internal-bank
    /// field of the device-local address, `32768` flips the row field
    /// while preserving bank and internal bank.
    pub const fn offset(&self, k: u64) -> u64 {
        match self {
            Alignment::Coincident => 0,
            Alignment::BankStagger => k,
            Alignment::QuarterBankStagger => 4 * k,
            Alignment::InternalBankStagger => 8192 * k,
            Alignment::RowStagger => 32768 * k,
        }
    }

    /// Base addresses for `n` arrays under this alignment, spacing the
    /// arrays by `region` words.
    pub fn bases(&self, n: usize, region: u64) -> Vec<u64> {
        (0..n as u64).map(|k| k * region + self.offset(k)).collect()
    }
}

impl core::fmt::Display for Alignment {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pva_core::Geometry;
    use sdram::SdramConfig;

    const REGION: u64 = 1 << 22;

    #[test]
    fn coincident_bases_share_all_fields() {
        let g = Geometry::word_interleaved(16).unwrap();
        let cfg = SdramConfig::default();
        let bases = Alignment::Coincident.bases(3, REGION);
        let m = g.log2_banks();
        let first = cfg.map(bases[0] >> m);
        for &b in &bases[1..] {
            let ia = cfg.map(b >> m);
            assert_eq!(g.decode_bank(b), g.decode_bank(bases[0]));
            assert_eq!(ia.bank, first.bank);
            assert_eq!(ia.col, first.col);
        }
    }

    #[test]
    fn bank_stagger_rotates_banks() {
        let g = Geometry::word_interleaved(16).unwrap();
        let bases = Alignment::BankStagger.bases(3, REGION);
        let banks: Vec<usize> = bases.iter().map(|&b| g.decode_bank(b).index()).collect();
        assert_eq!(banks, vec![0, 1, 2]);
    }

    #[test]
    fn internal_bank_stagger_flips_internal_bank_only() {
        let g = Geometry::word_interleaved(16).unwrap();
        let cfg = SdramConfig::default();
        let m = g.log2_banks();
        let bases = Alignment::InternalBankStagger.bases(3, REGION);
        for (k, &b) in bases.iter().enumerate() {
            assert_eq!(g.decode_bank(b).index(), 0, "external bank preserved");
            let ia = cfg.map((b % REGION) >> m);
            assert_eq!(ia.bank as usize, k % 4, "internal bank rotates");
            assert_eq!(ia.col, 0);
        }
    }

    #[test]
    fn row_stagger_flips_row_only() {
        let g = Geometry::word_interleaved(16).unwrap();
        let cfg = SdramConfig::default();
        let m = g.log2_banks();
        let bases = Alignment::RowStagger.bases(3, REGION);
        for (k, &b) in bases.iter().enumerate() {
            assert_eq!(g.decode_bank(b).index(), 0);
            let ia = cfg.map((b % REGION) >> m);
            assert_eq!(ia.bank, 0, "internal bank preserved");
            assert_eq!(ia.row, k as u64, "row rotates");
        }
    }

    #[test]
    fn regions_do_not_overlap() {
        // Largest footprint: 1024 elements at stride 19 < 20k words,
        // plus the largest offset (2 * 32768) stays inside a region.
        let max_off = Alignment::RowStagger.offset(2);
        assert!(max_off + 1024 * 19 < REGION);
    }
}
