//! The §6.2 experiment harness: 8 access patterns x 6 strides x 5
//! relative alignments, on each of the four memory systems — the 240
//! data points per system behind figures 7–11.

use memsys::{CachelineSerial, MemorySystem, PvaSystem, SerialGather};

use crate::alignment::Alignment;
use crate::kernel::Kernel;

/// Word spacing between kernel arrays (disjoint regions).
pub const ARRAY_REGION: u64 = 1 << 22;

/// Application-vector length in elements (§6.2: 1024 = 32 cache lines).
pub const ELEMENTS: u64 = 1024;

/// Vector-command length in words (one 128-byte L2 line).
pub const LINE_WORDS: u64 = 32;

/// The strides of figures 7–10.
pub const STRIDES: [u64; 6] = [1, 2, 4, 8, 16, 19];

/// One of the four §6.1 memory systems, by kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// The PVA prototype over SDRAM.
    PvaSdram,
    /// The PVA front end over idealized single-cycle SRAM.
    PvaSram,
    /// Cache-line interleaved serial SDRAM (20-cycle line fills).
    CachelineSerial,
    /// Gathering pipelined serial SDRAM.
    SerialGather,
}

impl SystemKind {
    /// All four systems in the paper's plotting order.
    pub const ALL: [SystemKind; 4] = [
        SystemKind::PvaSdram,
        SystemKind::PvaSram,
        SystemKind::CachelineSerial,
        SystemKind::SerialGather,
    ];

    /// Instantiates the system.
    pub fn build(&self) -> Box<dyn MemorySystem> {
        match self {
            SystemKind::PvaSdram => Box::new(PvaSystem::sdram()),
            SystemKind::PvaSram => Box::new(PvaSystem::sram()),
            SystemKind::CachelineSerial => Box::new(CachelineSerial::default()),
            SystemKind::SerialGather => Box::new(SerialGather::default()),
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::PvaSdram => "pva-sdram",
            SystemKind::PvaSram => "pva-sram",
            SystemKind::CachelineSerial => "cacheline-serial",
            SystemKind::SerialGather => "serial-gather",
        }
    }
}

/// One measured point of the design space.
#[derive(Debug, Clone)]
pub struct DataPoint {
    /// Kernel name.
    pub kernel: &'static str,
    /// Element stride.
    pub stride: u64,
    /// Alignment preset name.
    pub alignment: &'static str,
    /// Memory system name.
    pub system: &'static str,
    /// Total cycles for the whole kernel (1024 elements per array).
    pub cycles: u64,
}

/// Min/max cycles of a (kernel, stride, system) cell over the five
/// alignments — the paired bars of figures 7–10.
#[derive(Debug, Clone, Copy)]
pub struct CellResult {
    /// Fastest alignment.
    pub min: u64,
    /// Slowest alignment.
    pub max: u64,
    /// Bytes moved by the fastest alignment's run.
    pub bytes: u64,
}

/// Runs one data point, returning the full memory-system outcome
/// (cycles plus bytes moved and command statistics).
pub fn run_point_outcome(
    kernel: Kernel,
    stride: u64,
    alignment: Alignment,
    system: SystemKind,
) -> memsys::RunOutcome {
    let bases = alignment.bases(kernel.array_count(), ARRAY_REGION);
    let trace = kernel.trace(&bases, stride, ELEMENTS, LINE_WORDS);
    system.build().run_trace(&trace)
}

/// Runs one data point.
pub fn run_point(kernel: Kernel, stride: u64, alignment: Alignment, system: SystemKind) -> u64 {
    run_point_outcome(kernel, stride, alignment, system).cycles
}

/// Runs a (kernel, stride, system) cell over all five alignments.
pub fn run_cell(kernel: Kernel, stride: u64, system: SystemKind) -> CellResult {
    let mut min = u64::MAX;
    let mut max = 0;
    let mut bytes = 0;
    for a in Alignment::ALL {
        let o = run_point_outcome(kernel, stride, a, system);
        if o.cycles < min {
            min = o.cycles;
            bytes = o.bytes_transferred;
        }
        max = max.max(o.cycles);
    }
    CellResult { min, max, bytes }
}

/// The full 240-points-per-system sweep of §6.2.
pub fn full_sweep(systems: &[SystemKind]) -> Vec<DataPoint> {
    let mut out = Vec::new();
    for kernel in Kernel::ALL {
        for &stride in &STRIDES {
            for alignment in Alignment::ALL {
                for &system in systems {
                    out.push(DataPoint {
                        kernel: kernel.name(),
                        stride,
                        alignment: alignment.name(),
                        system: system.name(),
                        cycles: run_point(kernel, stride, alignment, system),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_counts_match_section_6_2() {
        // 8 patterns x 6 strides x 5 alignments = 240 per system.
        assert_eq!(
            Kernel::ALL.len() * STRIDES.len() * Alignment::ALL.len(),
            240
        );
    }

    #[test]
    fn scale_is_alignment_insensitive_on_pva() {
        // §6.3.1: scale touches a single vector, so relative alignment
        // cannot matter.
        let cell = run_cell(Kernel::Scale, 4, SystemKind::PvaSdram);
        assert_eq!(cell.min, cell.max);
    }

    #[test]
    fn cacheline_system_degrades_with_stride() {
        let s1 = run_point(
            Kernel::Copy,
            1,
            Alignment::Coincident,
            SystemKind::CachelineSerial,
        );
        let s4 = run_point(
            Kernel::Copy,
            4,
            Alignment::Coincident,
            SystemKind::CachelineSerial,
        );
        let s16 = run_point(
            Kernel::Copy,
            16,
            Alignment::Coincident,
            SystemKind::CachelineSerial,
        );
        assert!(s1 < s4 && s4 < s16);
        assert_eq!(s4, 4 * s1);
        assert_eq!(s16, 16 * s1);
    }

    #[test]
    fn pva_flat_across_parallel_strides() {
        // The PVA's defining property: stride 19 costs about the same as
        // stride 1 (§6.3.1).
        let s1 = run_cell(Kernel::Scale, 1, SystemKind::PvaSdram);
        let s19 = run_cell(Kernel::Scale, 19, SystemKind::PvaSdram);
        assert!(
            (s19.min as f64) < s1.min as f64 * 1.6,
            "stride19 {} vs stride1 {}",
            s19.min,
            s1.min
        );
    }

    #[test]
    fn run_point_is_deterministic() {
        let a = run_point(
            Kernel::Vaxpy,
            8,
            Alignment::RowStagger,
            SystemKind::PvaSdram,
        );
        let b = run_point(
            Kernel::Vaxpy,
            8,
            Alignment::RowStagger,
            SystemKind::PvaSdram,
        );
        assert_eq!(a, b);
    }
}
