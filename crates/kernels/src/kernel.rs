//! The evaluation kernels of Table 2.
//!
//! Six vector-style loop kernels — *copy*, *saxpy* and *scale* from the
//! BLAS, *swap*, *tridiag* (the fifth Livermore Loop) and *vaxpy*
//! (vector axpy from matrix-vector multiplication by diagonals) — plus
//! the unrolled *copy2* / *scale2* variants whose read and write
//! commands are grouped (§6.3).
//!
//! A kernel is characterized by its per-iteration sequence of vector
//! accesses; [`Kernel::trace`] expands it, for a given stride and set of
//! array base addresses, into the cache-line-sized vector commands the
//! memory controller sees. All application vectors are 1024 elements
//! (32 commands of 32 elements) as in §6.2.

use memsys::TraceOp;
use pva_core::Vector;

/// Which array of the kernel an access touches (up to three arrays:
/// x, y, z / a).
pub type ArrayIndex = usize;

/// One vector access in a kernel iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Gathered read from the given array.
    Read(ArrayIndex),
    /// Scattered write to the given array.
    Write(ArrayIndex),
}

/// One of the Table-2 kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Kernel {
    Copy,
    Copy2,
    Saxpy,
    Scale,
    Scale2,
    Swap,
    Tridiag,
    Vaxpy,
}

impl Kernel {
    /// All kernels in the order the paper's figures present them.
    pub const ALL: [Kernel; 8] = [
        Kernel::Copy,
        Kernel::Copy2,
        Kernel::Saxpy,
        Kernel::Scale,
        Kernel::Scale2,
        Kernel::Swap,
        Kernel::Tridiag,
        Kernel::Vaxpy,
    ];

    /// The six base kernels (no unrolled variants), as in figures 7–8.
    pub const BASE: [Kernel; 6] = [
        Kernel::Copy,
        Kernel::Saxpy,
        Kernel::Scale,
        Kernel::Swap,
        Kernel::Tridiag,
        Kernel::Vaxpy,
    ];

    /// Display name matching the paper's figures.
    pub const fn name(&self) -> &'static str {
        match self {
            Kernel::Copy => "copy",
            Kernel::Copy2 => "copy2",
            Kernel::Saxpy => "saxpy",
            Kernel::Scale => "scale",
            Kernel::Scale2 => "scale2",
            Kernel::Swap => "swap",
            Kernel::Tridiag => "tridiag",
            Kernel::Vaxpy => "vaxpy",
        }
    }

    /// The source-level loop body, as listed in Table 2.
    pub const fn source(&self) -> &'static str {
        match self {
            Kernel::Copy | Kernel::Copy2 => "for (i = 0; i < L*S; i += S) y[i] = x[i];",
            Kernel::Saxpy => "for (i = 0; i < L*S; i += S) y[i] += a * x[i];",
            Kernel::Scale | Kernel::Scale2 => "for (i = 0; i < L*S; i += S) x[i] = a * x[i];",
            Kernel::Swap => "for (i = 0; i < L*S; i += S) { reg = x[i]; x[i] = y[i]; y[i] = reg; }",
            Kernel::Tridiag => "for (i = 0; i < L*S; i += S) x[i] = z[i] * (y[i] - x[i-1]);",
            Kernel::Vaxpy => "for (i = 0; i < L*S; i += S) y[i] += a[i] * x[i];",
        }
    }

    /// Number of distinct arrays the kernel touches.
    pub const fn array_count(&self) -> usize {
        match self {
            Kernel::Copy | Kernel::Copy2 | Kernel::Saxpy | Kernel::Swap => 2,
            Kernel::Scale | Kernel::Scale2 => 1,
            Kernel::Tridiag | Kernel::Vaxpy => 3,
        }
    }

    /// The per-chunk vector accesses, in issue order. Array 0 is `x`,
    /// array 1 is `y`, array 2 is `z`/`a`.
    ///
    /// The unrolled variants (`copy2`, `scale2`) group two consecutive
    /// chunks' commands per vector, so their pattern spans two chunks —
    /// see [`Kernel::unroll`].
    pub fn accesses(&self) -> &'static [Access] {
        match self {
            Kernel::Copy | Kernel::Copy2 => &[Access::Read(0), Access::Write(1)],
            Kernel::Saxpy => &[Access::Read(0), Access::Read(1), Access::Write(1)],
            Kernel::Scale | Kernel::Scale2 => &[Access::Read(0), Access::Write(0)],
            Kernel::Swap => &[
                Access::Read(0),
                Access::Read(1),
                Access::Write(0),
                Access::Write(1),
            ],
            Kernel::Tridiag => &[
                Access::Read(2),
                Access::Read(1),
                Access::Read(0),
                Access::Write(0),
            ],
            Kernel::Vaxpy => &[
                Access::Read(2),
                Access::Read(0),
                Access::Read(1),
                Access::Write(1),
            ],
        }
    }

    /// Unroll factor: how many consecutive chunks have their commands to
    /// the same vector grouped (2 for `copy2`/`scale2`, 1 otherwise).
    /// §6.2: the eight-transaction bus limit prevents deeper unrolling.
    pub const fn unroll(&self) -> u64 {
        match self {
            Kernel::Copy2 | Kernel::Scale2 => 2,
            _ => 1,
        }
    }

    /// Expands the kernel into vector commands.
    ///
    /// * `bases[k]` — base word address of array `k` (see
    ///   [`Kernel::array_count`]).
    /// * `stride` — element stride `S` (equal for all vectors, §6.2).
    /// * `elements` — application-vector length `L` (1024 in the paper).
    /// * `line_words` — command length (32 in the prototype).
    ///
    /// # Panics
    ///
    /// Panics if `bases` is shorter than [`Kernel::array_count`] or if
    /// `elements` is not a multiple of `line_words * unroll`.
    pub fn trace(
        &self,
        bases: &[u64],
        stride: u64,
        elements: u64,
        line_words: u64,
    ) -> Vec<TraceOp> {
        assert!(
            bases.len() >= self.array_count(),
            "{} needs {} arrays",
            self.name(),
            self.array_count()
        );
        let unroll = self.unroll();
        assert_eq!(
            elements % (line_words * unroll),
            0,
            "vector length must be whole unrolled chunks"
        );
        let chunks = elements / line_words;
        let mut out = Vec::new();
        let mut chunk = 0;
        while chunk < chunks {
            // With unrolling u, the commands of u consecutive chunks are
            // grouped per access: R(x,c0), R(x,c1), W(y,c0), W(y,c1), ...
            for access in self.accesses() {
                for u in 0..unroll {
                    let c = chunk + u;
                    let (arr, is_write) = match *access {
                        Access::Read(a) => (a, false),
                        Access::Write(a) => (a, true),
                    };
                    let base = bases[arr] + c * line_words * stride;
                    let v = Vector::new(base, stride, line_words)
                        .expect("stride and line length are nonzero");
                    out.push(if is_write {
                        TraceOp::write(v)
                    } else {
                        TraceOp::read(v)
                    });
                }
            }
            chunk += unroll;
        }
        out
    }
}

impl core::fmt::Display for Kernel {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pva_sim::OpKind;

    #[test]
    fn trace_lengths() {
        // 1024 elements -> 32 chunks; per-chunk command counts from the
        // access patterns.
        let bases = [0u64, 1 << 20, 2 << 20];
        for k in Kernel::ALL {
            let t = k.trace(&bases, 1, 1024, 32);
            let per_chunk = k.accesses().len() as u64;
            assert_eq!(t.len() as u64, 32 * per_chunk, "{k}");
        }
    }

    #[test]
    fn copy_alternates_read_write() {
        let t = Kernel::Copy.trace(&[0, 1 << 20], 4, 64, 32);
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].kind, OpKind::Read);
        assert_eq!(t[1].kind, OpKind::Write);
        assert_eq!(t[0].vector.base(), 0);
        assert_eq!(t[1].vector.base(), 1 << 20);
        // Second chunk starts 32 * stride further in.
        assert_eq!(t[2].vector.base(), 128);
    }

    #[test]
    fn copy2_groups_commands() {
        let t = Kernel::Copy2.trace(&[0, 1 << 20], 4, 128, 32);
        // Chunks (0,1) grouped: R x0, R x1, W y0, W y1, then (2,3).
        assert_eq!(t.len(), 8);
        assert_eq!(t[0].kind, OpKind::Read);
        assert_eq!(t[1].kind, OpKind::Read);
        assert_eq!(t[2].kind, OpKind::Write);
        assert_eq!(t[3].kind, OpKind::Write);
        assert_eq!(t[1].vector.base(), 128);
    }

    #[test]
    fn tridiag_reads_three_arrays() {
        let t = Kernel::Tridiag.trace(&[0, 1 << 20, 2 << 20], 2, 32, 32);
        assert_eq!(t.len(), 4);
        let reads = t.iter().filter(|op| op.kind == OpKind::Read).count();
        assert_eq!(reads, 3);
    }

    #[test]
    fn every_kernel_writes_something() {
        for k in Kernel::ALL {
            assert!(
                k.accesses().iter().any(|a| matches!(a, Access::Write(_))),
                "{k}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "needs")]
    fn missing_bases_panic() {
        Kernel::Tridiag.trace(&[0, 1], 1, 32, 32);
    }

    #[test]
    fn table_2_sources_are_recorded() {
        for k in Kernel::ALL {
            assert!(k.source().contains("for"), "{k}");
        }
    }
}

impl Kernel {
    /// The scalar (word-granularity) reference stream of the kernel's
    /// loop, for driving a cache model: per iteration, one load/store
    /// per Table-2 access, in program order.
    ///
    /// # Panics
    ///
    /// Panics if `bases` is shorter than [`Kernel::array_count`].
    pub fn references(&self, bases: &[u64], stride: u64, elements: u64) -> Vec<cache::Reference> {
        assert!(
            bases.len() >= self.array_count(),
            "{} needs {} arrays",
            self.name(),
            self.array_count()
        );
        let mut out = Vec::with_capacity((elements as usize) * self.accesses().len());
        for i in 0..elements {
            for access in self.accesses() {
                let (arr, write) = match *access {
                    Access::Read(a) => (a, false),
                    Access::Write(a) => (a, true),
                };
                let addr = bases[arr] + i * stride;
                out.push(if write {
                    cache::Reference::Store(addr)
                } else {
                    cache::Reference::Load(addr)
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod reference_tests {
    use super::*;
    use cache::Reference;

    #[test]
    fn reference_stream_matches_access_pattern() {
        let refs = Kernel::Saxpy.references(&[0, 1 << 20], 4, 8);
        assert_eq!(refs.len(), 24); // 8 iterations x 3 accesses
                                    // First iteration: load x[0], load y[0], store y[0].
        assert_eq!(refs[0], Reference::Load(0));
        assert_eq!(refs[1], Reference::Load(1 << 20));
        assert_eq!(refs[2], Reference::Store(1 << 20));
        // Second iteration strides by 4.
        assert_eq!(refs[3], Reference::Load(4));
    }

    #[test]
    fn cached_kernel_traffic_matches_direct_trace_for_unit_stride() {
        // At unit stride with a cold cache and no reuse, the line
        // traffic the cache generates equals the kernel's line-fill
        // trace (reads; writebacks arrive at flush).
        use cache::{run_reference_stream, CacheConfig, CacheSim};
        use memsys::CachelineSerial;
        let bases = [0u64, 1 << 20];
        let refs = Kernel::Copy.references(&bases, 1, 256);
        let mut l2 = CacheSim::new(CacheConfig::default());
        let mut mem = CachelineSerial::default();
        let r = run_reference_stream(&mut l2, &mut mem, &refs, true);
        // 256 words from x and 256 into y: 8 fills each, 8 writebacks.
        assert_eq!(r.fills, 16);
        assert_eq!(r.writebacks, 8);
    }
}
