//! Property-style tests on kernel trace generation: every command is
//! line-sized, covers its array exactly once, and respects the access
//! pattern. Randomized with the deterministic in-tree [`SplitMix64`].

use kernels::{Alignment, Kernel, LINE_WORDS};
use memsys::OpKind;
use pva_core::SplitMix64;

const CASES: u64 = 64;

fn kernel(r: &mut SplitMix64) -> Kernel {
    Kernel::ALL[r.below(Kernel::ALL.len() as u64) as usize]
}

fn alignment(r: &mut SplitMix64) -> Alignment {
    Alignment::ALL[r.below(Alignment::ALL.len() as u64) as usize]
}

/// Checks that every generated command is exactly one line long with
/// the sweep stride, and command counts match the access pattern.
fn check_commands_are_line_sized(k: Kernel, stride: u64, a: Alignment, chunks: u64) {
    let elements = chunks * LINE_WORDS * k.unroll();
    let bases = a.bases(k.array_count(), kernels::ARRAY_REGION);
    let trace = k.trace(&bases, stride, elements, LINE_WORDS);
    // Unrolling changes command *grouping*, not count: each chunk
    // still gets one command per access.
    assert_eq!(
        trace.len() as u64,
        (elements / LINE_WORDS) * k.accesses().len() as u64
    );
    for op in &trace {
        assert_eq!(op.vector.length(), LINE_WORDS);
        assert_eq!(op.vector.stride(), stride);
    }
}

#[test]
fn commands_are_line_sized() {
    let mut r = SplitMix64::new(0x7201);
    for _ in 0..CASES {
        let k = kernel(&mut r);
        let stride = r.range(1, 64);
        let a = alignment(&mut r);
        let chunks = r.range(1, 8);
        check_commands_are_line_sized(k, stride, a, chunks);
    }
}

/// Regression distilled from the checked-in proptest shrink (seed file
/// `trace_properties.proptest-regressions`: "k = Copy2, stride = 1,
/// a = Coincident, chunks = 1"). The shrunk parameters point at the
/// command-count assertion for an *unrolled* kernel at the minimum
/// chunk count — Copy2 has unroll 2, so any generator that counted
/// commands per unrolled group rather than per access fails here
/// first. The current generator passes; the case is kept as an
/// explicit pin now that the suite uses the in-tree PRNG instead of
/// proptest (which would otherwise have replayed the seed file).
#[test]
fn copy2_minimal_unroll_regression() {
    check_commands_are_line_sized(Kernel::Copy2, 1, Alignment::Coincident, 1);
}

/// Per array and direction, the union of command footprints covers
/// element indices 0..elements exactly once (no gaps, no overlap).
#[test]
fn commands_tile_each_array() {
    let mut r = SplitMix64::new(0x7202);
    for _ in 0..CASES {
        let k = kernel(&mut r);
        let stride = r.range(1, 32);
        let chunks = r.range(1, 6);
        let elements = chunks * LINE_WORDS * k.unroll();
        let bases: Vec<u64> = (0..k.array_count() as u64).map(|i| i << 24).collect();
        let trace = k.trace(&bases, stride, elements, LINE_WORDS);
        for (arr, &base) in bases.iter().enumerate() {
            for dir in [OpKind::Read, OpKind::Write] {
                let mut starts: Vec<u64> = trace
                    .iter()
                    .filter(|op| {
                        op.kind == dir
                            && op.vector.base() >= base
                            && op.vector.base() < base + (1 << 24)
                    })
                    .map(|op| (op.vector.base() - base) / stride)
                    .collect();
                if starts.is_empty() {
                    continue; // this array has no commands in this direction
                }
                starts.sort_unstable();
                // Dedup handles patterns that access an array more than
                // once per chunk (none today, but stay general).
                let per_chunk = starts.len() as u64 / (elements / LINE_WORDS);
                let want: Vec<u64> = (0..elements / LINE_WORDS)
                    .flat_map(|c| std::iter::repeat_n(c * LINE_WORDS, per_chunk as usize))
                    .collect();
                assert_eq!(starts, want, "{k} array {arr} {dir:?}");
            }
        }
    }
}

/// run_point is stable across repeated invocations for every system.
#[test]
fn run_point_deterministic() {
    use kernels::{run_point, SystemKind};
    let mut r = SplitMix64::new(0x7203);
    const STRIDES: [u64; 4] = [1, 4, 16, 19];
    for _ in 0..CASES {
        let k = kernel(&mut r);
        let stride = STRIDES[r.below(4) as usize];
        let a = alignment(&mut r);
        for sys in SystemKind::ALL {
            let x = run_point(k, stride, a, sys);
            let y = run_point(k, stride, a, sys);
            assert_eq!(x, y, "{} on {}", k, sys.name());
        }
    }
}
