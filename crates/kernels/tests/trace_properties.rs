//! Property tests on kernel trace generation: every command is
//! line-sized, covers its array exactly once, and respects the access
//! pattern.

use proptest::prelude::*;

use kernels::{Alignment, Kernel, LINE_WORDS};
use memsys::OpKind;

fn kernel() -> impl Strategy<Value = Kernel> {
    prop::sample::select(Kernel::ALL.to_vec())
}

fn alignment() -> impl Strategy<Value = Alignment> {
    prop::sample::select(Alignment::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated command is exactly one line long with the sweep
    /// stride, and command counts match the access pattern.
    #[test]
    fn commands_are_line_sized(
        k in kernel(),
        stride in 1u64..64,
        a in alignment(),
        chunks in 1u64..8,
    ) {
        let elements = chunks * LINE_WORDS * k.unroll();
        let bases = a.bases(k.array_count(), kernels::ARRAY_REGION);
        let trace = k.trace(&bases, stride, elements, LINE_WORDS);
        // Unrolling changes command *grouping*, not count: each chunk
        // still gets one command per access.
        prop_assert_eq!(
            trace.len() as u64,
            (elements / LINE_WORDS) * k.accesses().len() as u64
        );
        for op in &trace {
            prop_assert_eq!(op.vector.length(), LINE_WORDS);
            prop_assert_eq!(op.vector.stride(), stride);
        }
    }

    /// Per array and direction, the union of command footprints covers
    /// element indices 0..elements exactly once (no gaps, no overlap).
    #[test]
    fn commands_tile_each_array(
        k in kernel(),
        stride in 1u64..32,
        chunks in 1u64..6,
    ) {
        let elements = chunks * LINE_WORDS * k.unroll();
        let bases: Vec<u64> = (0..k.array_count() as u64).map(|i| i << 24).collect();
        let trace = k.trace(&bases, stride, elements, LINE_WORDS);
        for (arr, &base) in bases.iter().enumerate() {
            for dir in [OpKind::Read, OpKind::Write] {
                let mut starts: Vec<u64> = trace
                    .iter()
                    .filter(|op| {
                        op.kind == dir
                            && op.vector.base() >= base
                            && op.vector.base() < base + (1 << 24)
                    })
                    .map(|op| (op.vector.base() - base) / stride)
                    .collect();
                if starts.is_empty() {
                    continue; // this array has no commands in this direction
                }
                starts.sort_unstable();
                // Dedup handles patterns that access an array more than
                // once per chunk (none today, but stay general).
                let per_chunk =
                    starts.len() as u64 / (elements / LINE_WORDS);
                let want: Vec<u64> = (0..elements / LINE_WORDS)
                    .flat_map(|c| std::iter::repeat_n(c * LINE_WORDS, per_chunk as usize))
                    .collect();
                prop_assert_eq!(starts, want, "{} array {} {:?}", k, arr, dir);
            }
        }
    }

    /// run_point is stable across repeated invocations for every system.
    #[test]
    fn run_point_deterministic(
        k in kernel(),
        stride in prop::sample::select(vec![1u64, 4, 16, 19]),
        a in alignment(),
    ) {
        use kernels::{run_point, SystemKind};
        for sys in SystemKind::ALL {
            let x = run_point(k, stride, a, sys);
            let y = run_point(k, stride, a, sys);
            prop_assert_eq!(x, y, "{} on {}", k, sys.name());
        }
    }
}
