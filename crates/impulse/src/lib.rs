//! # impulse — shadow address spaces over the PVA
//!
//! The PVA unit of the paper "was designed in the context of the
//! Impulse memory controller" (§3.2), which remaps regions of the
//! physical address space through *shadow* descriptors: a strided view
//! lets the processor walk a dense shadow region while the controller
//! scatter/gathers the strided real words and "compacts the strided
//! data into dense cache lines".
//!
//! * [`StridedView`] / [`ShadowTable`] — the remapping descriptors.
//! * [`ImpulseController`] — a front end that turns ordinary cache-line
//!   fills into PVA vector commands.
//! * [`ReferencePredictionTable`] — the §3.2 hardware alternative:
//!   detect base-stride streams from the reference trace, no
//!   compiler/programmer involvement.
//!
//! ```
//! use impulse::{ImpulseController, StridedView};
//!
//! let mut ctl = ImpulseController::with_default_unit()?;
//! // Column 0 of a 256-wide matrix at 0x10000, viewed densely.
//! ctl.install(StridedView::new(1 << 40, 0x10000, 256, 1024)?)?;
//! let cycles = ctl.stream_view(1 << 40)?;
//! assert!(cycles > 0);
//! # Ok::<(), pva_core::PvaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod detect;
mod prefetch;
mod shadow;

pub use controller::{ImpulseController, LineResult};
pub use detect::{DetectedStream, ReferencePredictionTable, RptState};
pub use prefetch::{PrefetchEngine, PrefetchStats};
pub use shadow::{ShadowTable, StridedView};
