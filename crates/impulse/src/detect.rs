//! Hardware vector/stream detection (§3.2).
//!
//! "At the other end of the spectrum lie hardware vector or stream
//! detection schemes, which may be implemented via reference prediction
//! tables" (citing Chen). This module implements a classic reference
//! prediction table: one entry per instruction (PC), tracking the last
//! address and observed stride through the Initial → Transient → Steady
//! state machine. Once an entry is steady, its stream can be handed to
//! the PVA as base-stride vector commands — vector access without
//! compiler or programmer involvement.

use pva_core::{Vector, WordAddr};

/// Prediction state of one table entry (Chen-style FSM).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RptState {
    /// First sighting: no stride known yet.
    Initial,
    /// One stride observed; not yet confirmed.
    Transient,
    /// Stride confirmed by consecutive accesses: predictable stream.
    Steady,
    /// Two consecutive mispredictions: don't predict.
    NoPrediction,
}

/// One reference-prediction-table entry.
#[derive(Debug, Clone, Copy)]
struct RptEntry {
    pc: u64,
    last_addr: WordAddr,
    stride: i64,
    state: RptState,
    /// LRU stamp.
    touched: u64,
}

/// A stream the table has locked onto.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectedStream {
    /// Instruction that generates the stream.
    pub pc: u64,
    /// Predicted next address.
    pub next_addr: WordAddr,
    /// Confirmed stride in words (may be negative).
    pub stride: i64,
}

impl DetectedStream {
    /// The vector command that prefetches the next `length` elements of
    /// the stream, or `None` for non-positive strides (the PVA's
    /// base-stride vectors are forward-going; descending streams would
    /// be issued from their far end by a smarter front end).
    pub fn prefetch_vector(&self, length: u64) -> Option<Vector> {
        if self.stride <= 0 {
            return None;
        }
        Vector::new(self.next_addr, self.stride as u64, length).ok()
    }
}

/// A direct-mapped-with-LRU reference prediction table.
///
/// # Examples
///
/// ```
/// use impulse::ReferencePredictionTable;
///
/// let mut rpt = ReferencePredictionTable::new(16);
/// // A load at PC 0x40 walking stride 19:
/// assert!(rpt.observe(0x40, 1000).is_none());   // initial
/// assert!(rpt.observe(0x40, 1019).is_none());   // transient
/// let s = rpt.observe(0x40, 1038).expect("steady after confirmation");
/// assert_eq!(s.stride, 19);
/// assert_eq!(s.next_addr, 1057);
/// ```
#[derive(Debug, Clone)]
pub struct ReferencePredictionTable {
    entries: Vec<Option<RptEntry>>,
    clock: u64,
}

impl ReferencePredictionTable {
    /// Creates a table with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "table needs at least one entry");
        ReferencePredictionTable {
            entries: vec![None; capacity],
            clock: 0,
        }
    }

    /// Records a reference by instruction `pc` to word `addr`; returns
    /// the detected stream when the entry is (still) steady.
    pub fn observe(&mut self, pc: u64, addr: WordAddr) -> Option<DetectedStream> {
        self.clock += 1;
        let clock = self.clock;
        let slot = self.slot_for(pc);
        let entry = &mut self.entries[slot];
        match entry {
            Some(e) if e.pc == pc => {
                let observed = addr as i64 - e.last_addr as i64;
                let correct = observed == e.stride;
                e.state = match (e.state, correct) {
                    (RptState::Initial, _) => RptState::Transient,
                    (RptState::Transient, true) => RptState::Steady,
                    (RptState::Transient, false) => RptState::NoPrediction,
                    (RptState::Steady, true) => RptState::Steady,
                    (RptState::Steady, false) => RptState::Transient,
                    (RptState::NoPrediction, true) => RptState::Transient,
                    (RptState::NoPrediction, false) => RptState::NoPrediction,
                };
                e.stride = observed;
                e.last_addr = addr;
                e.touched = clock;
                if e.state == RptState::Steady {
                    Some(DetectedStream {
                        pc,
                        next_addr: (addr as i64 + e.stride).max(0) as u64,
                        stride: e.stride,
                    })
                } else {
                    None
                }
            }
            _ => {
                // Allocate (evicting any conflicting entry).
                self.entries[slot] = Some(RptEntry {
                    pc,
                    last_addr: addr,
                    stride: 0,
                    state: RptState::Initial,
                    touched: clock,
                });
                None
            }
        }
    }

    /// The state of the entry for `pc`, if present.
    pub fn state_of(&self, pc: u64) -> Option<RptState> {
        let slot = pc as usize % self.entries.len();
        self.entries[slot]
            .as_ref()
            .filter(|e| e.pc == pc)
            .map(|e| e.state)
    }

    fn slot_for(&self, pc: u64) -> usize {
        pc as usize % self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_constant_stride_after_three_refs() {
        let mut rpt = ReferencePredictionTable::new(8);
        assert!(rpt.observe(1, 100).is_none());
        assert!(rpt.observe(1, 104).is_none());
        let s = rpt.observe(1, 108).unwrap();
        assert_eq!((s.stride, s.next_addr), (4, 112));
        // Stays steady.
        let s = rpt.observe(1, 112).unwrap();
        assert_eq!(s.next_addr, 116);
    }

    #[test]
    fn unit_stride_and_negative_stride() {
        let mut rpt = ReferencePredictionTable::new(8);
        rpt.observe(2, 50);
        rpt.observe(2, 49);
        let s = rpt.observe(2, 48).unwrap();
        assert_eq!(s.stride, -1);
        assert!(
            s.prefetch_vector(32).is_none(),
            "descending: no forward vector"
        );
        let up = DetectedStream {
            pc: 0,
            next_addr: 10,
            stride: 3,
        };
        assert_eq!(
            up.prefetch_vector(4).unwrap().addresses().next_back(),
            Some(19)
        );
    }

    #[test]
    fn random_references_never_go_steady() {
        let mut rpt = ReferencePredictionTable::new(8);
        let addrs = [5u64, 900, 3, 77, 12_000, 42, 1_000_000, 7];
        for &a in &addrs {
            assert!(rpt.observe(3, a).is_none(), "no stream at {a}");
        }
        assert_ne!(rpt.state_of(3), Some(RptState::Steady));
    }

    #[test]
    fn steady_recovers_after_a_blip() {
        let mut rpt = ReferencePredictionTable::new(8);
        rpt.observe(4, 0);
        rpt.observe(4, 8);
        assert!(rpt.observe(4, 16).is_some()); // steady
                                               // Blip: the stride register now holds the bogus delta, so the
                                               // table must see the new run's stride twice before re-locking.
        assert!(rpt.observe(4, 999).is_none()); // steady -> transient
        assert!(rpt.observe(4, 1007).is_none()); // transient -> no-pred
        assert!(rpt.observe(4, 1015).is_none()); // no-pred -> transient
        let s = rpt.observe(4, 1023).expect("transient -> steady");
        assert_eq!(s.stride, 8);
    }

    #[test]
    fn independent_pcs_track_independent_streams() {
        let mut rpt = ReferencePredictionTable::new(16);
        for i in 0..4u64 {
            rpt.observe(5, 100 + i * 2);
            rpt.observe(6, 9000 + i * 19);
        }
        let s5 = rpt.observe(5, 108).unwrap();
        let s6 = rpt.observe(6, 9076).unwrap();
        assert_eq!(s5.stride, 2);
        assert_eq!(s6.stride, 19);
    }

    #[test]
    fn conflicting_pcs_evict() {
        let mut rpt = ReferencePredictionTable::new(1);
        rpt.observe(1, 0);
        rpt.observe(1, 4);
        rpt.observe(2, 0); // evicts pc 1
        assert!(rpt.state_of(1).is_none());
        rpt.observe(1, 8); // reallocates from scratch
        assert_eq!(rpt.state_of(1), Some(RptState::Initial));
    }
}
