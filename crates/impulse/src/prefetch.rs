//! Stream prefetching: RPT detection driving PVA gathers.
//!
//! The last piece of §3.2's design space: with no programmer or
//! compiler help, the controller watches the miss stream, locks onto
//! base-stride streams with the [reference prediction
//! table](crate::ReferencePredictionTable), and issues gathered vector
//! reads ahead of the processor. [`PrefetchEngine`] measures how much
//! of a reference stream such a front end covers.

use std::collections::HashSet;

use pva_core::{PvaError, Vector, WordAddr};
use pva_sim::{HostRequest, PvaConfig, PvaUnit};

use crate::detect::ReferencePredictionTable;

/// Outcome counters of a prefetch run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PrefetchStats {
    /// References satisfied by previously prefetched data.
    pub covered: u64,
    /// References that missed (not prefetched in time).
    pub uncovered: u64,
    /// Vector prefetch commands issued.
    pub prefetches: u64,
    /// Words fetched that the stream never used (overfetch).
    pub wasted_words: u64,
    /// Cycles the PVA spent on prefetch gathers.
    pub gather_cycles: u64,
}

impl PrefetchStats {
    /// Fraction of references covered by prefetched data.
    pub fn coverage(&self) -> f64 {
        let total = self.covered + self.uncovered;
        if total == 0 {
            1.0
        } else {
            self.covered as f64 / total as f64
        }
    }
}

/// An RPT-driven prefetcher in front of a PVA unit.
///
/// # Examples
///
/// ```
/// use impulse::PrefetchEngine;
/// use pva_sim::PvaConfig;
///
/// let mut eng = PrefetchEngine::new(PvaConfig::default(), 16, 32)?;
/// // A strided loop: pc 7 walks stride 19.
/// let refs: Vec<(u64, u64)> = (0..256).map(|i| (7, 0x1000 + i * 19)).collect();
/// let stats = eng.run(&refs)?;
/// assert!(stats.coverage() > 0.9, "most of the stream is prefetched");
/// # Ok::<(), pva_core::PvaError>(())
/// ```
#[derive(Debug)]
pub struct PrefetchEngine {
    rpt: ReferencePredictionTable,
    unit: PvaUnit,
    /// Prefetch depth in elements per detected stream hit.
    depth: u64,
    /// Addresses currently held in the prefetch buffer.
    buffer: HashSet<WordAddr>,
}

impl PrefetchEngine {
    /// Creates an engine with an `entries`-entry RPT issuing
    /// `depth`-element prefetch gathers.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation from [`PvaUnit::new`].
    pub fn new(config: PvaConfig, entries: usize, depth: u64) -> Result<Self, PvaError> {
        Ok(PrefetchEngine {
            rpt: ReferencePredictionTable::new(entries),
            unit: PvaUnit::new(config)?,
            depth: depth.min(config.line_words),
            buffer: HashSet::new(),
        })
    }

    /// Feeds `(pc, addr)` references through the engine; prefetched
    /// addresses count as covered.
    ///
    /// # Errors
    ///
    /// Propagates PVA unit errors from the prefetch gathers.
    pub fn run(&mut self, refs: &[(u64, WordAddr)]) -> Result<PrefetchStats, PvaError> {
        let mut stats = PrefetchStats::default();
        for &(pc, addr) in refs {
            if self.buffer.remove(&addr) {
                stats.covered += 1;
            } else {
                stats.uncovered += 1;
            }
            if let Some(stream) = self.rpt.observe(pc, addr) {
                if let Some(v) = stream.prefetch_vector(self.depth) {
                    // Only fetch what is not already buffered.
                    let new: Vec<WordAddr> =
                        v.addresses().filter(|a| !self.buffer.contains(a)).collect();
                    if new.len() as u64 >= self.depth / 2 {
                        let gather = Vector::new(v.base(), v.stride(), self.depth)
                            .expect("depth bounded by line length");
                        let r = self.unit.run(vec![HostRequest::Read { vector: gather }])?;
                        stats.gather_cycles += r.cycles;
                        stats.prefetches += 1;
                        for a in gather.addresses() {
                            self.buffer.insert(a);
                        }
                    }
                }
            }
        }
        stats.wasted_words = self.buffer.len() as u64;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> PrefetchEngine {
        PrefetchEngine::new(PvaConfig::default(), 16, 32).unwrap()
    }

    #[test]
    fn covers_a_steady_stream() {
        let mut eng = engine();
        let refs: Vec<(u64, u64)> = (0..512).map(|i| (1, i * 7)).collect();
        let s = eng.run(&refs).unwrap();
        assert!(s.coverage() > 0.9, "coverage {:.2}", s.coverage());
        assert!(s.prefetches >= 512 / 32 - 2);
    }

    #[test]
    fn random_traffic_gets_no_prefetches() {
        // A genuine LCG scramble: consecutive deltas vary, so the RPT
        // never reaches steady state. (Note `i * K mod M` would NOT be
        // random — its deltas are constant, and the RPT rightly locks
        // onto it.)
        let mut eng = engine();
        let mut x = 12345u64;
        let refs: Vec<(u64, u64)> = (0..64)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (2, x % 100_000)
            })
            .collect();
        let s = eng.run(&refs).unwrap();
        assert_eq!(s.prefetches, 0);
        assert_eq!(s.covered, 0);
    }

    #[test]
    fn interleaved_streams_both_covered() {
        let mut eng = engine();
        let mut refs = Vec::new();
        for i in 0..256u64 {
            refs.push((1, i * 2));
            refs.push((2, 0x100000 + i * 19));
        }
        let s = eng.run(&refs).unwrap();
        assert!(s.coverage() > 0.85, "coverage {:.2}", s.coverage());
    }

    #[test]
    fn wasted_words_bounded_by_depth() {
        let mut eng = engine();
        let refs: Vec<(u64, u64)> = (0..100).map(|i| (1, i * 3)).collect();
        let s = eng.run(&refs).unwrap();
        // Whatever remains buffered at the end is at most a few depths.
        assert!(s.wasted_words <= 3 * 32, "wasted {}", s.wasted_words);
    }
}
