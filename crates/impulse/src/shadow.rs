//! Shadow address spaces (§3.2).
//!
//! Impulse "supports multiple views of the same data": a region of the
//! physical address space that no real memory backs — a *shadow space* —
//! is remapped by the memory controller. A **strided view** makes the
//! dense shadow range `[shadow_base, shadow_base + length)` alias the
//! strided real words `real_base + i * stride`: when the processor
//! fills a cache line from the shadow region, the controller gathers
//! the corresponding strided words and "compacts the strided data into
//! dense cache lines". Descriptors are installed "either directly by
//! the programmer or by a smart compiler".

use pva_core::{PvaError, Vector, WordAddr};

/// One strided-view descriptor: shadow word `shadow_base + i` aliases
/// real word `real_base + i * stride` for `i` in `0..length`.
///
/// # Examples
///
/// ```
/// use impulse::StridedView;
///
/// // A dense view of column 3 of a 256-wide row-major matrix at 0x1000.
/// let view = StridedView::new(0x8000_0000, 0x1000 + 3, 256, 256)?;
/// assert_eq!(view.translate(0x8000_0000), Some(0x1003));
/// assert_eq!(view.translate(0x8000_0001), Some(0x1103));
/// assert_eq!(view.translate(0x7fff_ffff), None); // outside the view
/// # Ok::<(), pva_core::PvaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StridedView {
    shadow_base: WordAddr,
    real_base: WordAddr,
    stride: u64,
    length: u64,
}

impl StridedView {
    /// Creates a strided view.
    ///
    /// # Errors
    ///
    /// Returns [`PvaError::ZeroStride`] / [`PvaError::ZeroLength`] for
    /// degenerate parameters.
    pub fn new(
        shadow_base: WordAddr,
        real_base: WordAddr,
        stride: u64,
        length: u64,
    ) -> Result<Self, PvaError> {
        if stride == 0 {
            return Err(PvaError::ZeroStride);
        }
        if length == 0 {
            return Err(PvaError::ZeroLength);
        }
        Ok(StridedView {
            shadow_base,
            real_base,
            stride,
            length,
        })
    }

    /// First shadow word of the view.
    pub const fn shadow_base(&self) -> WordAddr {
        self.shadow_base
    }

    /// One past the last shadow word.
    pub const fn shadow_end(&self) -> WordAddr {
        self.shadow_base + self.length
    }

    /// The view's element stride in the real region.
    pub const fn stride(&self) -> u64 {
        self.stride
    }

    /// Number of shadow words.
    pub const fn length(&self) -> u64 {
        self.length
    }

    /// Whether `shadow_addr` falls inside this view.
    pub const fn contains(&self, shadow_addr: WordAddr) -> bool {
        shadow_addr >= self.shadow_base && shadow_addr < self.shadow_base + self.length
    }

    /// Translates one shadow word to its real word, or `None` if the
    /// address is outside the view.
    pub fn translate(&self, shadow_addr: WordAddr) -> Option<WordAddr> {
        if !self.contains(shadow_addr) {
            return None;
        }
        Some(self.real_base + (shadow_addr - self.shadow_base) * self.stride)
    }

    /// The real-space gather vector backing the dense shadow range
    /// `[shadow_addr, shadow_addr + words)` — what the controller
    /// broadcasts to the PVA on a shadow-space line fill.
    ///
    /// Returns `None` if any word of the range is outside the view.
    pub fn backing_vector(&self, shadow_addr: WordAddr, words: u64) -> Option<Vector> {
        if words == 0 || !self.contains(shadow_addr) || shadow_addr + words > self.shadow_end() {
            return None;
        }
        let base = self.translate(shadow_addr).expect("contained");
        Some(Vector::new(base, self.stride, words).expect("validated nonzero"))
    }
}

/// The set of installed shadow views, with non-overlap enforcement —
/// the remapping table of the Impulse controller.
#[derive(Debug, Clone, Default)]
pub struct ShadowTable {
    views: Vec<StridedView>,
}

impl ShadowTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        ShadowTable::default()
    }

    /// Installs a view.
    ///
    /// # Errors
    ///
    /// Returns [`PvaError::ZeroParameter`] (parameter `overlap`) if the
    /// view's shadow range overlaps an installed view.
    pub fn install(&mut self, view: StridedView) -> Result<(), PvaError> {
        let overlaps = self
            .views
            .iter()
            .any(|v| view.shadow_base() < v.shadow_end() && v.shadow_base() < view.shadow_end());
        if overlaps {
            return Err(PvaError::ZeroParameter("overlap"));
        }
        self.views.push(view);
        Ok(())
    }

    /// The view covering `shadow_addr`, if any.
    pub fn lookup(&self, shadow_addr: WordAddr) -> Option<&StridedView> {
        self.views.iter().find(|v| v.contains(shadow_addr))
    }

    /// Number of installed views.
    pub fn len(&self) -> usize {
        self.views.len()
    }

    /// Whether no views are installed.
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn translate_round_trip() {
        let v = StridedView::new(1 << 30, 0x100, 7, 64).unwrap();
        for i in 0..64u64 {
            assert_eq!(v.translate((1 << 30) + i), Some(0x100 + 7 * i));
        }
        assert_eq!(v.translate((1 << 30) + 64), None);
        assert_eq!(v.translate(0), None);
    }

    #[test]
    fn backing_vector_matches_translation() {
        let v = StridedView::new(1 << 30, 0x100, 7, 64).unwrap();
        let gather = v.backing_vector((1 << 30) + 8, 32).unwrap();
        let addrs: Vec<u64> = gather.addresses().collect();
        let want: Vec<u64> = (8..40)
            .map(|i| v.translate((1 << 30) + i).unwrap())
            .collect();
        assert_eq!(addrs, want);
    }

    #[test]
    fn backing_vector_rejects_partial_coverage() {
        let v = StridedView::new(1 << 30, 0x100, 7, 40).unwrap();
        assert!(v.backing_vector((1 << 30) + 16, 32).is_none()); // runs past end
        assert!(v.backing_vector((1 << 30) + 8, 0).is_none());
    }

    #[test]
    fn table_rejects_overlap() {
        let mut t = ShadowTable::new();
        t.install(StridedView::new(1000, 0, 4, 100).unwrap())
            .unwrap();
        assert!(t
            .install(StridedView::new(1050, 0, 2, 100).unwrap())
            .is_err());
        t.install(StridedView::new(1100, 0, 2, 100).unwrap())
            .unwrap();
        assert_eq!(t.len(), 2);
        assert!(t.lookup(1050).is_some());
        assert!(t.lookup(1199).is_some());
        assert!(t.lookup(1200).is_none(), "past the last view");
    }

    #[test]
    fn degenerate_views_rejected() {
        assert!(StridedView::new(0, 0, 0, 4).is_err());
        assert!(StridedView::new(0, 0, 4, 0).is_err());
    }
}
