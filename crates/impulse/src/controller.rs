//! The Impulse-style controller front end: ordinary cache-line fills in
//! shadow space become PVA scatter/gather commands.
//!
//! "When the PVA unit is used with an advanced memory controller like
//! Impulse there is an efficient mechanism by which the PVA can be
//! informed about vector accesses and can return dense cache-lines to
//! the processor" (§3.2). The processor never changes: it issues plain
//! line fills; the controller consults the shadow table and either
//! passes the fill through as a unit-stride vector or broadcasts the
//! backing strided vector.

use pva_core::{PvaError, Vector, WordAddr};
use pva_sim::{HostRequest, PvaConfig, PvaUnit};

use crate::shadow::{ShadowTable, StridedView};

/// Outcome of one line transaction through the controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineResult {
    /// Cycles the memory system spent on this fill (run in isolation).
    pub cycles: u64,
    /// The dense line, for reads.
    pub data: Option<Vec<u64>>,
    /// Whether the address hit a shadow view (gather/scatter) or passed
    /// through as a normal fill.
    pub remapped: bool,
}

/// The controller: a shadow table in front of a PVA unit.
///
/// # Examples
///
/// ```
/// use impulse::{ImpulseController, StridedView};
///
/// let mut ctl = ImpulseController::with_default_unit()?;
/// // Install a dense view of every 19th word starting at 0x2000.
/// ctl.install(StridedView::new(0x4000_0000, 0x2000, 19, 1024)?)?;
/// // A normal 32-word line fill in shadow space gathers 32 strided words.
/// let line = ctl.read_line(0x4000_0000)?;
/// assert!(line.remapped);
/// assert_eq!(line.data.as_ref().map(Vec::len), Some(32));
/// # Ok::<(), pva_core::PvaError>(())
/// ```
#[derive(Debug)]
pub struct ImpulseController {
    table: ShadowTable,
    unit: PvaUnit,
    line_words: u64,
}

impl ImpulseController {
    /// Creates a controller over a PVA unit with the given configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation from [`PvaUnit::new`].
    pub fn new(config: PvaConfig) -> Result<Self, PvaError> {
        Ok(ImpulseController {
            table: ShadowTable::new(),
            line_words: config.line_words,
            unit: PvaUnit::new(config)?,
        })
    }

    /// Creates a controller over the paper's prototype configuration.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation from [`PvaUnit::new`].
    pub fn with_default_unit() -> Result<Self, PvaError> {
        Self::new(PvaConfig::default())
    }

    /// Installs a shadow view (the programmer/compiler configuration
    /// step of §3.2).
    ///
    /// # Errors
    ///
    /// Returns an error if the view overlaps an installed one.
    pub fn install(&mut self, view: StridedView) -> Result<(), PvaError> {
        self.table.install(view)
    }

    /// The underlying PVA unit (for preloading/peeking in tests).
    pub fn unit_mut(&mut self) -> &mut PvaUnit {
        &mut self.unit
    }

    /// Resolves the vector command a line access at `addr` turns into.
    fn vector_for(&self, addr: WordAddr) -> Result<(Vector, bool), PvaError> {
        if let Some(view) = self.table.lookup(addr) {
            let v = view
                .backing_vector(addr, self.line_words)
                .ok_or(PvaError::AddressOutOfRange(addr))?;
            Ok((v, true))
        } else {
            Ok((Vector::unit_stride(addr, self.line_words)?, false))
        }
    }

    /// Fills one cache line at `addr` (shadow or normal space).
    ///
    /// # Errors
    ///
    /// Returns [`PvaError::AddressOutOfRange`] if a shadow-space fill
    /// runs past its view, and propagates unit errors.
    pub fn read_line(&mut self, addr: WordAddr) -> Result<LineResult, PvaError> {
        let (vector, remapped) = self.vector_for(addr)?;
        let r = self.unit.run(vec![HostRequest::Read { vector }])?;
        Ok(LineResult {
            cycles: r.cycles,
            data: Some(r.read_data(0).to_vec()),
            remapped,
        })
    }

    /// Writes one cache line at `addr` (scattering through shadow
    /// views).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ImpulseController::read_line`].
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one line long.
    pub fn write_line(&mut self, addr: WordAddr, data: Vec<u64>) -> Result<LineResult, PvaError> {
        assert_eq!(data.len() as u64, self.line_words, "one line of data");
        let (vector, remapped) = self.vector_for(addr)?;
        let r = self.unit.run(vec![HostRequest::Write { vector, data }])?;
        Ok(LineResult {
            cycles: r.cycles,
            data: None,
            remapped,
        })
    }

    /// Streams a whole shadow view through the unit as pipelined line
    /// fills, returning total cycles — the §3.2 usage pattern where the
    /// application walks the dense shadow region.
    ///
    /// # Errors
    ///
    /// Returns [`PvaError::AddressOutOfRange`] if `shadow_base` is not
    /// an installed view's base or the view is not line-aligned.
    pub fn stream_view(&mut self, shadow_base: WordAddr) -> Result<u64, PvaError> {
        let view = *self
            .table
            .lookup(shadow_base)
            .ok_or(PvaError::AddressOutOfRange(shadow_base))?;
        if view.length() % self.line_words != 0 {
            return Err(PvaError::VectorTooLong(view.length(), self.line_words));
        }
        let mut reqs = Vec::new();
        let mut a = view.shadow_base();
        while a < view.shadow_end() {
            let (vector, _) = self.vector_for(a)?;
            reqs.push(HostRequest::Read { vector });
            a += self.line_words;
        }
        Ok(self.unit.run(reqs)?.cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SHADOW: u64 = 1 << 40; // far above real memory

    #[test]
    fn shadow_fill_gathers_strided_data() {
        let mut ctl = ImpulseController::with_default_unit().unwrap();
        ctl.install(StridedView::new(SHADOW, 0x2000, 19, 64).unwrap())
            .unwrap();
        for i in 0..64u64 {
            ctl.unit_mut().preload(0x2000 + 19 * i, 900 + i);
        }
        let line = ctl.read_line(SHADOW).unwrap();
        assert!(line.remapped);
        let want: Vec<u64> = (0..32).map(|i| 900 + i).collect();
        assert_eq!(line.data.unwrap(), want);
        // Second line of the view.
        let line = ctl.read_line(SHADOW + 32).unwrap();
        let want: Vec<u64> = (32..64).map(|i| 900 + i).collect();
        assert_eq!(line.data.unwrap(), want);
    }

    #[test]
    fn normal_fill_passes_through() {
        let mut ctl = ImpulseController::with_default_unit().unwrap();
        for i in 0..32u64 {
            ctl.unit_mut().preload(0x500 + i, i);
        }
        let line = ctl.read_line(0x500).unwrap();
        assert!(!line.remapped);
        assert_eq!(line.data.unwrap(), (0..32).collect::<Vec<u64>>());
    }

    #[test]
    fn shadow_write_scatters() {
        let mut ctl = ImpulseController::with_default_unit().unwrap();
        ctl.install(StridedView::new(SHADOW, 0x3000, 5, 32).unwrap())
            .unwrap();
        let data: Vec<u64> = (0..32).map(|i| 0xAB00 + i).collect();
        let r = ctl.write_line(SHADOW, data.clone()).unwrap();
        assert!(r.remapped);
        for i in 0..32u64 {
            assert_eq!(ctl.unit_mut().peek(0x3000 + 5 * i), 0xAB00 + i);
        }
    }

    #[test]
    fn fill_past_view_end_is_an_error() {
        let mut ctl = ImpulseController::with_default_unit().unwrap();
        ctl.install(StridedView::new(SHADOW, 0, 4, 48).unwrap())
            .unwrap();
        // Second line would need words 32..64 but the view has 48.
        assert!(matches!(
            ctl.read_line(SHADOW + 32),
            Err(PvaError::AddressOutOfRange(_))
        ));
    }

    #[test]
    fn streaming_a_view_is_fast_when_banks_spread() {
        // Walking a column of a 257-word-wide matrix (odd stride: all
        // 16 banks participate) approaches the unit-stride pipelined
        // rate despite the large stride.
        let mut ctl = ImpulseController::with_default_unit().unwrap();
        ctl.install(StridedView::new(SHADOW, 0, 257, 1024).unwrap())
            .unwrap();
        let cycles = ctl.stream_view(SHADOW).unwrap();
        // 32 line fills; near the 17-cycle/command floor.
        assert!(cycles < 32 * 25, "streamed view took {cycles}");
    }

    #[test]
    fn power_of_two_column_stride_serializes() {
        // A 256-wide matrix column (stride 256 = 0 mod 16) lands in one
        // bank: the shadow view still works, just without parallelism —
        // the array-padding motivation behind Impulse.
        let mut ctl = ImpulseController::with_default_unit().unwrap();
        ctl.install(StridedView::new(SHADOW, 0, 256, 1024).unwrap())
            .unwrap();
        let pow2 = ctl.stream_view(SHADOW).unwrap();
        let mut ctl = ImpulseController::with_default_unit().unwrap();
        ctl.install(StridedView::new(SHADOW, 0, 257, 1024).unwrap())
            .unwrap();
        let odd = ctl.stream_view(SHADOW).unwrap();
        assert!(pow2 > odd, "pow2 column {pow2} vs padded column {odd}");
    }
}
