//! Property-style tests for the Impulse front ends, randomized with
//! the deterministic in-tree [`SplitMix64`].

use impulse::{ImpulseController, ReferencePredictionTable, StridedView};
use pva_core::SplitMix64;

const CASES: u64 = 48;

/// translate() agrees with element-by-element arithmetic, inside and
/// outside the view.
#[test]
fn strided_view_translation() {
    let mut r = SplitMix64::new(0x1A01);
    for _ in 0..CASES {
        let shadow = r.range(1 << 30, 1 << 31);
        let real = r.below(1 << 20);
        let stride = r.range(1, 512);
        let len = r.range(1, 512);
        let probe = r.below(1024);
        let v = StridedView::new(shadow, real, stride, len).unwrap();
        let addr = shadow.wrapping_add(probe);
        match v.translate(addr) {
            Some(t) => {
                assert!(probe < len);
                assert_eq!(t, real + probe * stride);
            }
            None => assert!(probe >= len),
        }
    }
}

/// backing_vector covers exactly the words the per-word translation
/// gives, whenever it exists.
#[test]
fn backing_vector_is_pointwise_translation() {
    let mut r = SplitMix64::new(0x1A02);
    for _ in 0..CASES {
        let stride = r.range(1, 64);
        let len = r.range(32, 256);
        let start = r.below(128);
        let words = r.range(1, 64);
        let shadow = 1u64 << 30;
        let v = StridedView::new(shadow, 0x5000, stride, len).unwrap();
        match v.backing_vector(shadow + start, words) {
            Some(g) => {
                assert_eq!(g.length(), words);
                for (k, a) in g.addresses().enumerate() {
                    assert_eq!(Some(a), v.translate(shadow + start + k as u64));
                }
            }
            None => assert!(start + words > len),
        }
    }
}

/// RPT: feeding any constant-stride walk of length >= 3 reaches a
/// steady prediction whose next address is correct.
#[test]
fn rpt_locks_any_constant_stride() {
    let mut r = SplitMix64::new(0x1A03);
    for _ in 0..CASES {
        let base = r.below(1 << 20);
        let stride = r.range(1, 4096);
        let walk = r.range(3, 32);
        let mut rpt = ReferencePredictionTable::new(8);
        let mut last = None;
        for i in 0..walk {
            last = rpt.observe(9, base + i * stride);
        }
        let s = last.expect("steady after three references");
        assert_eq!(s.stride, stride as i64);
        assert_eq!(s.next_addr, base + walk * stride);
    }
}

/// Shadow reads equal direct strided reads of the same elements, for a
/// selection of strides (deterministic end-to-end check).
#[test]
fn shadow_reads_equal_direct_reads() {
    for stride in [3u64, 8, 19, 256] {
        let shadow = 1u64 << 40;
        let mut ctl = ImpulseController::with_default_unit().unwrap();
        ctl.install(StridedView::new(shadow, 0x9000, stride, 64).unwrap())
            .unwrap();
        for i in 0..64u64 {
            ctl.unit_mut().preload(0x9000 + i * stride, 7000 + i);
        }
        let line0 = ctl.read_line(shadow).unwrap().data.unwrap();
        let line1 = ctl.read_line(shadow + 32).unwrap().data.unwrap();
        let want0: Vec<u64> = (0..32).map(|i| 7000 + i).collect();
        let want1: Vec<u64> = (32..64).map(|i| 7000 + i).collect();
        assert_eq!(line0, want0, "stride {stride}");
        assert_eq!(line1, want1, "stride {stride}");
    }
}
