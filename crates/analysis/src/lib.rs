//! # pva-analysis — static analysis for the PVA reproduction
//!
//! Five passes, all wired into CI via the `pva-analysis` binary:
//!
//! 1. **Synthesizability lint** ([`lint`]) — tokenizes the designated
//!    hardware-modeled source files and flags operations with no cheap
//!    gate-level form (non-power-of-two division/modulo, floating
//!    point, 128-bit products, heap allocation, abort paths, silently
//!    truncating casts, unannotated wrapping arithmetic). This
//!    statically verifies the paper's §4.1.4 claim: the closed-form
//!    `FirstHit`/`NextHit` datapath needs no divider, while the
//!    rejected §4.1.2 recursive algorithm does.
//! 2. **FSM completeness** ([`fsm_check`]) — exhaustively checks the
//!    bank-controller transition table ([`sdram::TRANSITIONS`]) for
//!    missing/duplicate entries, unreachable states, traps, and
//!    mnemonic/wave-code collisions.
//! 3. **Config consistency** ([`config_check`]) — runs the
//!    [`SdramConfig`](sdram::SdramConfig)/[`PvaConfig`](pva_sim::PvaConfig)
//!    invariant rules over every shipped preset.
//! 4. **Timing-protocol model checking** ([`protocol_check`]) — for
//!    every shipped [`sdram::DevicePreset`], exhaustively explores the
//!    product automaton of bank state × restimer × channel residuals,
//!    validating each explored edge against a live [`sdram::Sdram`]
//!    device: no command is accepted while a gating timer is unexpired,
//!    every reachable state drains back to `Idle`, and the dense FSM
//!    lookup agrees with the declarative table. A deterministic
//!    multi-bank differential walk covers the cross-bank channel
//!    couplings (tCCD_S between bank groups, tRRD/tFAW across banks)
//!    the bank-0 exploration cannot reach.
//! 5. **Wake-hint soundness** ([`wake_check`]) — statically
//!    cross-checks the wake sources enumerated by the bank controller's
//!    `compute_wake` against the actionable-state triggers in the rest
//!    of its tick path, so a new way for a controller to become
//!    runnable cannot ship without a corresponding wake source (the
//!    dynamic half is a `debug_assertions` oracle inside `pva-sim`).
//!
//! The binary exits nonzero on any finding, so `cargo run -p
//! pva-analysis` is a CI gate; `--json` emits the findings as a
//! machine-readable artifact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config_check;
pub mod fsm_check;
pub mod lint;
pub mod protocol_check;
pub mod wake_check;

pub use lint::{lint_source, Finding, Profile, Rule};

/// A source file designated for the synthesizability lint, with the
/// profile it is held to.
#[derive(Debug, Clone, Copy)]
pub struct Target {
    /// Path relative to the workspace root.
    pub path: &'static str,
    /// Rule set applied.
    pub profile: Profile,
}

/// The designated hardware-modeled files.
///
/// The pva-core datapath files are held to the full [`Profile::Datapath`]
/// rule set; the pva-sim scheduler files model control in software
/// (queues and trace logs are simulation bookkeeping), so they are held
/// to [`Profile::ArithmeticOnly`] — their per-cycle arithmetic must
/// still be shifts, masks and bounded multiplies.
pub const DESIGNATED: &[Target] = &[
    Target {
        path: "crates/pva-core/src/firsthit.rs",
        profile: Profile::Datapath,
    },
    Target {
        path: "crates/pva-core/src/logical.rs",
        profile: Profile::Datapath,
    },
    Target {
        path: "crates/pva-core/src/geometry.rs",
        profile: Profile::Datapath,
    },
    Target {
        path: "crates/sdram/src/ecc.rs",
        profile: Profile::Datapath,
    },
    Target {
        path: "crates/pva-sim/src/bank_controller.rs",
        profile: Profile::ArithmeticOnly,
    },
    Target {
        path: "crates/pva-sim/src/unit.rs",
        profile: Profile::ArithmeticOnly,
    },
    // The event queue backs the fast simulation path, not the modeled
    // hardware — but it sits on the simulator's innermost loop, so its
    // per-operation arithmetic is held to the same shifts-and-masks
    // bar to keep it allocation-free and branch-cheap.
    Target {
        path: "crates/pva-sim/src/sched.rs",
        profile: Profile::ArithmeticOnly,
    },
    // The restimers are the §5.2.5 timing counters themselves: their
    // deadline math is per-cycle hardware bookkeeping.
    Target {
        path: "crates/sdram/src/restimer.rs",
        profile: Profile::ArithmeticOnly,
    },
];

/// Lints one designated `target` under `root`. An unreadable file is a
/// finding ([`Rule::Unreadable`]), never a silent pass — a renamed or
/// deleted designated file must fail the gate loudly.
pub fn lint_target(root: &std::path::Path, target: &Target) -> Vec<Finding> {
    match std::fs::read_to_string(root.join(target.path)) {
        Ok(source) => lint_source(target.path, &source, target.profile),
        Err(e) => vec![Finding {
            file: target.path.to_string(),
            line: 0,
            rule: Rule::Unreadable,
            message: format!("designated file unreadable: {e}"),
        }],
    }
}

/// Locates the workspace root: the compiled-in manifest location of
/// this crate (`crates/analysis` → two levels up) if it still looks
/// like the workspace, else the nearest ancestor of the current
/// directory that does. The fallback matters for relocated or
/// distributed binaries, where the build-time path no longer exists.
///
/// # Errors
///
/// Returns a diagnostic naming every location tried when no candidate
/// contains the workspace markers (`Cargo.toml` plus the first
/// designated source file).
pub fn find_workspace_root() -> Result<std::path::PathBuf, String> {
    let compiled = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(std::path::Path::to_path_buf);
    let mut candidates: Vec<std::path::PathBuf> = Vec::new();
    candidates.extend(compiled);
    if let Ok(cwd) = std::env::current_dir() {
        candidates.extend(cwd.ancestors().map(std::path::Path::to_path_buf));
    }
    for dir in &candidates {
        if dir.join("Cargo.toml").is_file() && dir.join(DESIGNATED[0].path).is_file() {
            return Ok(dir.clone());
        }
    }
    Err(format!(
        "workspace root not found: no candidate contains both Cargo.toml and {} \
         (tried: {}); run from inside the pva workspace",
        DESIGNATED[0].path,
        candidates
            .iter()
            .map(|p| p.display().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ))
}

/// [`find_workspace_root`] with the failing activity named in the
/// diagnostic. Passes that run per device preset thread the preset
/// slug through `context` (e.g. `"checking preset ddr3-1600"`), so a
/// root-resolution failure in a sweep is attributable to the exact
/// generation being checked rather than a bare "root not found".
///
/// # Errors
///
/// Returns the [`find_workspace_root`] diagnostic prefixed with
/// `context` when no candidate contains the workspace markers.
pub fn find_workspace_root_for(context: &str) -> Result<std::path::PathBuf, String> {
    find_workspace_root().map_err(|e| format!("while {context}: {e}"))
}

/// Locates the workspace root, panicking when it cannot be found —
/// the in-tree test-suite form of [`find_workspace_root`].
///
/// # Panics
///
/// Panics with the [`find_workspace_root`] diagnostic outside the
/// workspace.
pub fn workspace_root() -> std::path::PathBuf {
    find_workspace_root().unwrap_or_else(|e| panic!("{e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contextual_root_resolution_agrees_with_the_plain_form() {
        // In-tree both succeed; the contextual form must resolve to the
        // same root (the context only decorates the error path).
        let plain = find_workspace_root().expect("in-tree resolution");
        let contextual =
            find_workspace_root_for("checking preset sdr100").expect("in-tree resolution");
        assert_eq!(plain, contextual);
    }
}
