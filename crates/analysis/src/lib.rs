//! # pva-analysis — static analysis for the PVA reproduction
//!
//! Three passes, all wired into CI via the `pva-analysis` binary:
//!
//! 1. **Synthesizability lint** ([`lint`]) — tokenizes the designated
//!    hardware-modeled source files and flags operations with no cheap
//!    gate-level form (non-power-of-two division/modulo, floating
//!    point, 128-bit products, heap allocation, abort paths). This
//!    statically verifies the paper's §4.1.4 claim: the closed-form
//!    `FirstHit`/`NextHit` datapath needs no divider, while the
//!    rejected §4.1.2 recursive algorithm does.
//! 2. **FSM completeness** ([`fsm_check`]) — exhaustively checks the
//!    bank-controller transition table ([`sdram::TRANSITIONS`]) for
//!    missing/duplicate entries, unreachable states, traps, and
//!    mnemonic/wave-code collisions.
//! 3. **Config consistency** ([`config_check`]) — runs the
//!    [`SdramConfig`](sdram::SdramConfig)/[`PvaConfig`](pva_sim::PvaConfig)
//!    invariant rules over every shipped preset.
//!
//! The binary exits nonzero on any finding, so `cargo run -p
//! pva-analysis` is a CI gate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config_check;
pub mod fsm_check;
pub mod lint;

pub use lint::{lint_source, Finding, Profile, Rule};

/// A source file designated for the synthesizability lint, with the
/// profile it is held to.
#[derive(Debug, Clone, Copy)]
pub struct Target {
    /// Path relative to the workspace root.
    pub path: &'static str,
    /// Rule set applied.
    pub profile: Profile,
}

/// The designated hardware-modeled files.
///
/// The pva-core datapath files are held to the full [`Profile::Datapath`]
/// rule set; the pva-sim scheduler files model control in software
/// (queues and trace logs are simulation bookkeeping), so they are held
/// to [`Profile::ArithmeticOnly`] — their per-cycle arithmetic must
/// still be shifts, masks and bounded multiplies.
pub const DESIGNATED: &[Target] = &[
    Target {
        path: "crates/pva-core/src/firsthit.rs",
        profile: Profile::Datapath,
    },
    Target {
        path: "crates/pva-core/src/logical.rs",
        profile: Profile::Datapath,
    },
    Target {
        path: "crates/pva-core/src/geometry.rs",
        profile: Profile::Datapath,
    },
    Target {
        path: "crates/sdram/src/ecc.rs",
        profile: Profile::Datapath,
    },
    Target {
        path: "crates/pva-sim/src/bank_controller.rs",
        profile: Profile::ArithmeticOnly,
    },
    Target {
        path: "crates/pva-sim/src/unit.rs",
        profile: Profile::ArithmeticOnly,
    },
    // The event queue backs the fast simulation path, not the modeled
    // hardware — but it sits on the simulator's innermost loop, so its
    // per-operation arithmetic is held to the same shifts-and-masks
    // bar to keep it allocation-free and branch-cheap.
    Target {
        path: "crates/pva-sim/src/sched.rs",
        profile: Profile::ArithmeticOnly,
    },
];

/// Locates the workspace root from the analysis crate's own manifest
/// directory (`crates/analysis` → two levels up).
pub fn workspace_root() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/analysis sits two levels below the workspace root")
        .to_path_buf()
}
