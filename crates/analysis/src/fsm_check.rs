//! Exhaustive checks over the bank-controller transition table.
//!
//! The simulator derives row-buffer behavior from
//! [`sdram::TRANSITIONS`]; a hole or a trap in that table is a modeling
//! bug that no single simulation run is guaranteed to hit. Because the
//! table is a finite 5-state x 10-event relation, every structural
//! property can be checked completely:
//!
//! * **exhaustive** — every (state, event) pair has exactly one entry;
//! * **reachable** — every state is reachable from `Idle` via legal
//!   transitions (a state nothing reaches is dead weight or a typo);
//! * **no traps** — from every state, `Idle` is reachable again (a bank
//!   that can never precharge back to idle would hang the device);
//! * **self-consistent outcomes** — `Ignore` is reserved for timer
//!   expiries (a *command* must be either legal or `Illegal`, never
//!   silently dropped), and every `Illegal` entry carries a reason;
//! * **unique encodings** — trace mnemonics and VCD wave codes are
//!   distinct, nonzero, and fit the 4-bit wave signal.

use std::collections::{HashSet, VecDeque};

use sdram::{BankEvent, BankState, CmdClass, Outcome, TRANSITIONS};

/// Runs every FSM check, returning human-readable problem descriptions
/// (empty when the table is sound).
pub fn check() -> Vec<String> {
    let mut problems = Vec::new();
    check_exhaustive(&mut problems);
    check_reachability(&mut problems);
    check_outcomes(&mut problems);
    check_encodings(&mut problems);
    problems
}

fn check_exhaustive(problems: &mut Vec<String>) {
    for s in BankState::ALL {
        for e in BankEvent::ALL {
            let n = TRANSITIONS
                .iter()
                .filter(|(ts, te, _)| *ts == s && *te == e)
                .count();
            if n == 0 {
                problems.push(format!(
                    "missing transition: state {} has no entry for {e:?}",
                    s.name()
                ));
            } else if n > 1 {
                problems.push(format!(
                    "ambiguous transition: state {} has {n} entries for {e:?}",
                    s.name()
                ));
            }
        }
    }
    let expected = BankState::ALL.len() * BankEvent::ALL.len();
    if TRANSITIONS.len() != expected {
        problems.push(format!(
            "table has {} entries, expected {expected}",
            TRANSITIONS.len()
        ));
    }
}

fn successors(s: BankState) -> impl Iterator<Item = BankState> + 'static {
    TRANSITIONS.iter().filter_map(move |&(ts, _, o)| match o {
        Outcome::Next(n) if ts == s => Some(n),
        _ => None,
    })
}

fn reachable_from(start: BankState) -> HashSet<&'static str> {
    let mut seen: HashSet<&'static str> = HashSet::new();
    let mut queue = VecDeque::from([start]);
    seen.insert(start.name());
    while let Some(s) = queue.pop_front() {
        for n in successors(s) {
            if seen.insert(n.name()) {
                queue.push_back(n);
            }
        }
    }
    seen
}

fn check_reachability(problems: &mut Vec<String>) {
    let from_idle = reachable_from(BankState::Idle);
    for s in BankState::ALL {
        if !from_idle.contains(s.name()) {
            problems.push(format!("state {} is unreachable from IDLE", s.name()));
        }
        if !reachable_from(s).contains(BankState::Idle.name()) {
            problems.push(format!(
                "state {} is a trap: IDLE cannot be reached from it",
                s.name()
            ));
        }
    }
}

fn check_outcomes(problems: &mut Vec<String>) {
    for &(s, e, o) in TRANSITIONS {
        match (e, o) {
            (BankEvent::Command(c), Outcome::Ignore) => problems.push(format!(
                "state {}: command {} is silently ignored — commands must be legal or Illegal",
                s.name(),
                c.mnemonic()
            )),
            (_, Outcome::Illegal("")) => problems.push(format!(
                "state {}: Illegal entry for {e:?} has an empty reason",
                s.name()
            )),
            _ => {}
        }
    }
}

fn check_encodings(problems: &mut Vec<String>) {
    let mut mnemonics = HashSet::new();
    let mut codes = HashSet::new();
    for c in CmdClass::ALL {
        if !mnemonics.insert(c.mnemonic()) {
            problems.push(format!("duplicate mnemonic {:?}", c.mnemonic()));
        }
        let code = c.vcd_code();
        if code == 0 {
            problems.push(format!(
                "mnemonic {} uses VCD code 0, reserved for no-op",
                c.mnemonic()
            ));
        }
        if code >= 16 {
            problems.push(format!(
                "mnemonic {} VCD code {code} does not fit the 4-bit wave signal",
                c.mnemonic()
            ));
        }
        if !codes.insert(code) {
            problems.push(format!("duplicate VCD code {code}"));
        }
        if CmdClass::from_mnemonic(c.mnemonic()) != Some(c) {
            problems.push(format!("mnemonic {} does not round-trip", c.mnemonic()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_table_is_sound() {
        assert_eq!(check(), Vec::<String>::new());
    }

    #[test]
    fn every_state_reaches_idle_and_back() {
        for s in BankState::ALL {
            assert!(reachable_from(s).contains("IDLE"), "{} traps", s.name());
        }
        assert_eq!(reachable_from(BankState::Idle).len(), BankState::ALL.len());
    }
}
