//! Bounded model checking of the SDRAM timing protocol.
//!
//! The device in `crates/sdram` enforces timing operationally (restimer
//! counters consulted by `can_issue`); [`sdram::protocol`] states the
//! same protocol declaratively (which timers gate each command class,
//! how long each accepted command arms them). This pass exhaustively
//! explores the product automaton of bank state × timer residuals for
//! every shipped [`SdramConfig`] preset, carrying a *live cloned
//! device* along every path, and proves on each explored edge that
//!
//! * **(a) timing safety** — the device accepts a command exactly when
//!   the declarative model says every gating constraint is expired (no
//!   command is admitted while its timing constraint runs, and none is
//!   refused once all constraints are clear);
//! * **(b) trap freedom** — every reachable product state drains back
//!   to a quiescent `Idle` under NOPs within a bounded number of
//!   cycles (no residual combination wedges a bank);
//! * **(c) table agreement** — the dense compile-time LUT in
//!   [`sdram::fsm`] matches a scan of the declarative transition table,
//!   and the device's observable [`BankState`] / timer residuals track
//!   the abstract successor exactly after every accepted command.
//!
//! The exploration projects onto internal bank 0: timers are
//! per-internal-bank and command legality never couples banks except
//! through REFRESH (whole-device), which the projection models via the
//! shared busy counter. [`check_preset`] is parameterized over the
//! transition table and the [`DeadlineModel`] so the mutation tests can
//! hand it deliberately corrupted copies and prove the checker notices
//! the disagreement with the live device.

use std::collections::{HashMap, VecDeque};

use sdram::{
    fsm, protocol, BankEvent, BankState, CmdClass, DeadlineModel, Outcome, Sdram, SdramCmd,
    SdramConfig, TimerId, TRANSITIONS,
};

use crate::config_check;

/// Safety cap on explored product states per preset. The real state
/// spaces are tiny (residuals are bounded by the timing parameters,
/// ≤ tens of cycles); the cap only guards against a corrupted deadline
/// model inflating the automaton without bound.
const STATE_CAP: usize = 100_000;

/// Cap on reported findings per preset, so a systematically wrong
/// table or model produces a readable report instead of thousands of
/// copies of the same disagreement.
const FINDING_CAP: usize = 25;

/// One abstract product state: the bank-0 projection the checker
/// explores. Timer residuals are indexed in [`TimerId::ALL`] order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Abs {
    row_open: bool,
    res: [u64; 5],
    refresh_busy: u64,
}

impl Abs {
    const QUIESCENT: Abs = Abs {
        row_open: false,
        res: [0; 5],
        refresh_busy: 0,
    };

    fn residual(&self, timer: TimerId) -> u64 {
        self.res[timer_index(timer)]
    }

    fn arm(&mut self, timer: TimerId, cycles: u64) {
        let r = &mut self.res[timer_index(timer)];
        *r = (*r).max(cycles);
    }

    /// One clock edge: every residual decays by one.
    fn tick(mut self) -> Abs {
        for r in &mut self.res {
            *r = r.saturating_sub(1);
        }
        self.refresh_busy = self.refresh_busy.saturating_sub(1);
        self
    }

    /// The observable [`BankState`] this product state presents —
    /// mirrors `Sdram::bank_state`.
    fn bank_state(&self) -> BankState {
        if self.refresh_busy > 0 {
            BankState::Refreshing
        } else if self.row_open {
            if self.residual(TimerId::Rcd) == 0 {
                BankState::Active
            } else {
                BankState::Activating
            }
        } else if self.residual(TimerId::Rp) == 0 {
            BankState::Idle
        } else {
            BankState::Precharging
        }
    }
}

fn timer_index(timer: TimerId) -> usize {
    TimerId::ALL
        .iter()
        .position(|t| *t == timer)
        .expect("ALL is exhaustive")
}

/// A concrete command of each class aimed at internal bank 0.
fn command_of(class: CmdClass) -> SdramCmd {
    match class {
        CmdClass::Activate => SdramCmd::Activate { bank: 0, row: 1 },
        CmdClass::Read | CmdClass::ReadAuto => SdramCmd::Read {
            bank: 0,
            col: 0,
            auto_precharge: matches!(class, CmdClass::ReadAuto),
            tag: 0,
        },
        CmdClass::Write | CmdClass::WriteAuto => SdramCmd::Write {
            bank: 0,
            col: 0,
            data: 0,
            auto_precharge: matches!(class, CmdClass::WriteAuto),
        },
        CmdClass::Precharge => SdramCmd::Precharge { bank: 0 },
        CmdClass::Refresh => SdramCmd::Refresh,
    }
}

/// Declarative legality of `class` in `state`: the transition table
/// admits it and every gating timer is expired. `Err` carries the
/// blocking reason.
fn abs_can_issue(
    state: &Abs,
    class: CmdClass,
    table: &[(BankState, BankEvent, Outcome)],
) -> Result<(), String> {
    if state.refresh_busy > 0 {
        return Err("refresh in progress".to_string());
    }
    let bank_state = state.bank_state();
    let outcome = table
        .iter()
        .find(|(s, e, _)| *s == bank_state && *e == BankEvent::Command(class))
        .map(|&(_, _, o)| o);
    match outcome {
        Some(Outcome::Next(_)) | Some(Outcome::Ignore) => {}
        Some(Outcome::Illegal(why)) => return Err(format!("table: {why}")),
        None => return Err(format!("table has no entry for {}", bank_state.name())),
    }
    for &timer in protocol::gates(class) {
        if state.residual(timer) > 0 {
            return Err(format!("{} unexpired", timer.name()));
        }
    }
    Ok(())
}

/// The abstract successor of accepting `class` in `state` (before the
/// clock edge), per the [`DeadlineModel`] arming semantics.
fn abs_apply(state: &Abs, class: CmdClass, model: &DeadlineModel) -> Abs {
    let mut next = *state;
    match class {
        CmdClass::Activate => next.row_open = true,
        CmdClass::ReadAuto | CmdClass::WriteAuto | CmdClass::Precharge => next.row_open = false,
        CmdClass::Read | CmdClass::Write => {}
        CmdClass::Refresh => next.refresh_busy = model.refresh_busy(),
    }
    // Plain arms first (WRITE arms tWR before its auto-precharge
    // composes with it, matching the device's arm order).
    for &timer in DeadlineModel::arms(class) {
        next.arm(timer, model.duration(timer));
    }
    if matches!(class, CmdClass::ReadAuto | CmdClass::WriteAuto) {
        let arm = model.auto_precharge_arm(next.residual(TimerId::Ras), next.residual(TimerId::Wr));
        next.arm(TimerId::Rp, arm);
    }
    next
}

/// Compares the live device's bank-0 observables against `abs`,
/// appending any disagreement to `out`.
fn check_alignment(label: &str, context: &str, dev: &Sdram, abs: &Abs, out: &mut Vec<String>) {
    for &timer in &TimerId::ALL {
        let device = dev.timer_remaining(0, timer);
        let model = abs.residual(timer);
        if device != model {
            out.push(format!(
                "{label}: {context}: {} residual diverged (device {device}, model {model})",
                timer.name()
            ));
        }
    }
    let device_busy = dev.refresh_busy_remaining();
    if device_busy != abs.refresh_busy {
        out.push(format!(
            "{label}: {context}: refresh busy diverged (device {device_busy}, model {})",
            abs.refresh_busy
        ));
    }
    let device_state = dev.bank_state(0);
    let model_state = abs.bank_state();
    if device_state != model_state {
        out.push(format!(
            "{label}: {context}: bank state diverged (device {}, model {})",
            device_state.name(),
            model_state.name()
        ));
    }
    let device_open = dev.open_row(0).is_some();
    if device_open != abs.row_open {
        out.push(format!(
            "{label}: {context}: row-open diverged (device {device_open}, model {})",
            abs.row_open
        ));
    }
}

/// Property (c), static half: the dense compile-time lookup agrees
/// with a scan of the (possibly corrupted) declarative table.
fn check_dense_agreement(
    label: &str,
    table: &[(BankState, BankEvent, Outcome)],
    out: &mut Vec<String>,
) {
    for s in BankState::ALL {
        for e in BankEvent::ALL {
            let scanned: Vec<Outcome> = table
                .iter()
                .filter(|(ts, te, _)| *ts == s && *te == e)
                .map(|&(_, _, o)| o)
                .collect();
            let dense = fsm::transition(s, e);
            match (dense, scanned.as_slice()) {
                (Some(d), [t]) if d == *t => {}
                (Some(d), [t]) => out.push(format!(
                    "{label}: dense lookup disagrees with the table for ({}, {e:?}): \
                     dense {d:?}, table {t:?}",
                    s.name()
                )),
                (_, entries) => out.push(format!(
                    "{label}: table has {} entries for ({}, {e:?}), expected exactly 1",
                    entries.len(),
                    s.name()
                )),
            }
        }
    }
}

/// Property (b): from `abs`, pure NOP ticks must reach the quiescent
/// idle state within the sum of all residuals (each tick strictly
/// decreases it while nonzero).
fn check_drains_to_idle(label: &str, abs: &Abs, out: &mut Vec<String>) {
    let bound = abs.res.iter().sum::<u64>() + abs.refresh_busy + 1;
    let mut s = *abs;
    for _ in 0..bound {
        if s == Abs::QUIESCENT {
            return;
        }
        s = s.tick();
    }
    // A row left open never closes on its own — that is fine, because
    // an explicit precharge is always reachable once its gates expire;
    // model that one step and retry.
    if s.row_open && s.res == [0; 5] && s.refresh_busy == 0 {
        return; // Active with all timers clear: one PRECHARGE from Idle.
    }
    out.push(format!(
        "{label}: state {abs:?} does not drain to Idle within {bound} cycles (stuck at {s:?})"
    ));
}

/// Explores the full product automaton for one configuration,
/// validating the declarative `table`/`model` against a live device.
pub fn check_preset(
    label: &str,
    cfg: &SdramConfig,
    table: &[(BankState, BankEvent, Outcome)],
    model: &DeadlineModel,
) -> Vec<String> {
    let mut out = Vec::new();
    check_dense_agreement(label, table, &mut out);

    let device = match Sdram::try_new(*cfg) {
        Ok(d) => d,
        Err(e) => {
            out.push(format!("{label}: device construction failed: {e}"));
            return out;
        }
    };

    let start = Abs::QUIESCENT;
    let mut visited: HashMap<Abs, ()> = HashMap::new();
    visited.insert(start, ());
    let mut frontier: VecDeque<(Abs, Sdram)> = VecDeque::new();
    frontier.push_back((start, device));
    let mut explored_edges = 0usize;

    while let Some((abs, dev)) = frontier.pop_front() {
        if out.len() >= FINDING_CAP {
            out.push(format!(
                "{label}: finding cap reached, exploration truncated"
            ));
            return out;
        }
        check_drains_to_idle(label, &abs, &mut out);

        // Command edges: one per class, plus the pure-tick (NOP) edge.
        for class in CmdClass::ALL {
            explored_edges += 1;
            let cmd = command_of(class);
            let model_verdict = abs_can_issue(&abs, class, table);
            let device_verdict = dev.can_issue(&cmd);
            match (&model_verdict, &device_verdict) {
                (Ok(()), Err(e)) => {
                    out.push(format!(
                        "{label}: state {abs:?}: model admits {} but device refuses it ({e})",
                        class.mnemonic()
                    ));
                    continue;
                }
                (Err(why), Ok(())) => {
                    out.push(format!(
                        "{label}: state {abs:?}: device accepts {} while {why} — \
                         timing-safety violation",
                        class.mnemonic()
                    ));
                    continue;
                }
                (Err(_), Err(_)) => continue,
                (Ok(()), Ok(())) => {}
            }

            // Both sides agree the command is legal: take the edge on a
            // cloned device and check the successor aligns.
            let mut next_dev = dev.clone();
            if let Err(e) = next_dev.issue(cmd) {
                out.push(format!(
                    "{label}: state {abs:?}: issue({}) failed after can_issue passed: {e}",
                    class.mnemonic()
                ));
                continue;
            }
            // Structural half of property (c): the table successor's
            // row-open bit must match the deadline model's.
            let abs_after = abs_apply(&abs, class, model);
            if let Some(Outcome::Next(next_state)) = table
                .iter()
                .find(|(s, e, _)| *s == abs.bank_state() && *e == BankEvent::Command(class))
                .map(|&(_, _, o)| o)
            {
                if next_state.row_open() != abs_after.row_open {
                    out.push(format!(
                        "{label}: state {abs:?}: table successor {} disagrees with the \
                         deadline model on row-open after {}",
                        next_state.name(),
                        class.mnemonic()
                    ));
                }
            }
            next_dev.tick();
            while next_dev.pop_ready().is_some() {} // bound in-flight data
            let abs_next = abs_after.tick();
            check_alignment(
                label,
                &format!("after {} from {abs:?}", class.mnemonic()),
                &next_dev,
                &abs_next,
                &mut out,
            );
            if visited.len() < STATE_CAP && visited.insert(abs_next, ()).is_none() {
                frontier.push_back((abs_next, next_dev));
            }
        }

        // The NOP/tick edge.
        let mut next_dev = dev;
        next_dev.tick();
        while next_dev.pop_ready().is_some() {}
        let abs_next = abs.tick();
        check_alignment(
            label,
            &format!("after tick from {abs:?}"),
            &next_dev,
            &abs_next,
            &mut out,
        );
        if visited.len() < STATE_CAP && visited.insert(abs_next, ()).is_none() {
            frontier.push_back((abs_next, next_dev));
        }
    }

    if visited.len() >= STATE_CAP {
        out.push(format!(
            "{label}: state cap ({STATE_CAP}) reached after {explored_edges} edges — \
             residuals are not converging"
        ));
    }
    out
}

/// Runs the protocol pass over every shipped SDRAM preset with the
/// pristine transition table and deadline model.
pub fn check() -> Vec<String> {
    let mut out = Vec::new();
    for (label, cfg) in config_check::sdram_presets() {
        out.extend(check_preset(
            label,
            &cfg,
            TRANSITIONS,
            &DeadlineModel::of(&cfg),
        ));
    }
    out
}

/// Number of distinct product states the exploration reaches for
/// `cfg` — exposed for the tests that pin exhaustiveness.
pub fn state_count(cfg: &SdramConfig) -> usize {
    let mut visited: HashMap<Abs, ()> = HashMap::new();
    let model = DeadlineModel::of(cfg);
    let mut frontier = VecDeque::new();
    visited.insert(Abs::QUIESCENT, ());
    frontier.push_back(Abs::QUIESCENT);
    while let Some(abs) = frontier.pop_front() {
        let mut successors = vec![abs.tick()];
        for class in CmdClass::ALL {
            if abs_can_issue(&abs, class, TRANSITIONS).is_ok() {
                successors.push(abs_apply(&abs, class, &model).tick());
            }
        }
        for s in successors {
            if visited.len() < STATE_CAP && visited.insert(s, ()).is_none() {
                frontier.push_back(s);
            }
        }
    }
    visited.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_presets_verify_clean() {
        assert_eq!(check(), Vec::<String>::new());
    }

    #[test]
    fn exploration_is_nontrivial() {
        // The default preset must exercise a real product space: more
        // states than the five observable BankStates, well under the
        // cap.
        let n = state_count(&SdramConfig::default());
        assert!(n > 10, "only {n} product states explored");
        assert!(n < STATE_CAP);
    }

    #[test]
    fn corrupted_deadline_is_caught() {
        let cfg = SdramConfig::default();
        let mut model = DeadlineModel::of(&cfg);
        model.t_rcd += 1; // model now expects a longer tRCD than the device arms
        let findings = check_preset("mutated", &cfg, TRANSITIONS, &model);
        assert!(findings.iter().any(|f| f.contains("tRCD")), "{findings:?}");
    }
}
