//! Bounded model checking of the SDRAM timing protocol.
//!
//! The device in `crates/sdram` enforces timing operationally (restimer
//! counters consulted by `can_issue`); [`sdram::protocol`] states the
//! same protocol declaratively (which timers gate each command class,
//! how long each accepted command arms them). This pass exhaustively
//! explores the product automaton of bank state × timer residuals for
//! every shipped [`SdramConfig`] preset, carrying a *live cloned
//! device* along every path, and proves on each explored edge that
//!
//! * **(a) timing safety** — the device accepts a command exactly when
//!   the declarative model says every gating constraint is expired (no
//!   command is admitted while its timing constraint runs, and none is
//!   refused once all constraints are clear);
//! * **(b) trap freedom** — every reachable product state drains back
//!   to a quiescent `Idle` under NOPs within a bounded number of
//!   cycles (no residual combination wedges a bank);
//! * **(c) table agreement** — the dense compile-time LUT in
//!   [`sdram::fsm`] matches a scan of the declarative transition table,
//!   and the device's observable [`BankState`] / timer residuals track
//!   the abstract successor exactly after every accepted command.
//!
//! The exploration projects onto internal bank 0: timers are
//! per-internal-bank and command legality couples banks only through
//! REFRESH (whole-device) and the channel constraints (tCCD/tRRD/tFAW),
//! which the projection models via the shared busy counter and a
//! channel-residual block. Cross-bank couplings the projection cannot
//! see — tCCD_S between bank groups, tRRD/tFAW across banks — are
//! covered by [`check_preset_multibank`], a bounded deterministic
//! differential walk that drives four banks of a live device against an
//! independent multi-bank model and compares the legality verdict of
//! *every* candidate command at every step. Both run for every shipped
//! [`sdram::DevicePreset`]. [`check_preset`] is parameterized over the
//! transition table and the [`DeadlineModel`] so the mutation tests can
//! hand it deliberately corrupted copies and prove the checker notices
//! the disagreement with the live device.

use std::collections::{HashMap, VecDeque};

use sdram::{
    fsm, protocol, BankEvent, BankState, ChannelTimerId, CmdClass, DeadlineModel, Outcome, Sdram,
    SdramCmd, SdramConfig, TimerId, MAX_BANK_GROUPS, TRANSITIONS,
};

use crate::config_check;

/// Safety cap on explored product states per preset. The real state
/// spaces are tiny (residuals are bounded by the timing parameters,
/// ≤ tens of cycles); the cap only guards against a corrupted deadline
/// model inflating the automaton without bound.
const STATE_CAP: usize = 100_000;

/// Cap on reported findings per preset, so a systematically wrong
/// table or model produces a readable report instead of thousands of
/// copies of the same disagreement.
const FINDING_CAP: usize = 25;

/// One abstract product state: the bank-0 projection the checker
/// explores. Timer residuals are indexed in [`TimerId::ALL`] order.
/// The channel block (`ccd`/`rrd`/`faw`) carries the shared-bus
/// residuals as the bank sees them: `ccd` is the *own-group* CAS gate
/// (bank 0 always maps to group 0) and `faw` holds the four
/// activate-window slots as remaining cycles, sorted ascending to
/// match [`Sdram::channel_faw_remaining`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Abs {
    row_open: bool,
    res: [u64; 5],
    refresh_busy: u64,
    ccd: u64,
    rrd: u64,
    faw: [u64; 4],
}

impl Abs {
    const QUIESCENT: Abs = Abs {
        row_open: false,
        res: [0; 5],
        refresh_busy: 0,
        ccd: 0,
        rrd: 0,
        faw: [0; 4],
    };

    fn residual(&self, timer: TimerId) -> u64 {
        self.res[timer_index(timer)]
    }

    fn arm(&mut self, timer: TimerId, cycles: u64) {
        let r = &mut self.res[timer_index(timer)];
        *r = (*r).max(cycles);
    }

    fn channel_residual(&self, timer: ChannelTimerId) -> u64 {
        match timer {
            ChannelTimerId::Ccd => self.ccd,
            ChannelTimerId::Rrd => self.rrd,
            // The window admits a new ACTIVATE once its *oldest* slot
            // expires; slots are kept sorted so that is index 0.
            ChannelTimerId::Faw => self.faw[0],
        }
    }

    /// One clock edge: every residual decays by one.
    fn tick(mut self) -> Abs {
        for r in &mut self.res {
            *r = r.saturating_sub(1);
        }
        self.refresh_busy = self.refresh_busy.saturating_sub(1);
        self.ccd = self.ccd.saturating_sub(1);
        self.rrd = self.rrd.saturating_sub(1);
        for slot in &mut self.faw {
            *slot = slot.saturating_sub(1);
        }
        self
    }

    /// The observable [`BankState`] this product state presents —
    /// mirrors `Sdram::bank_state`.
    fn bank_state(&self) -> BankState {
        if self.refresh_busy > 0 {
            BankState::Refreshing
        } else if self.row_open {
            if self.residual(TimerId::Rcd) == 0 {
                BankState::Active
            } else {
                BankState::Activating
            }
        } else if self.residual(TimerId::Rp) == 0 {
            BankState::Idle
        } else {
            BankState::Precharging
        }
    }
}

fn timer_index(timer: TimerId) -> usize {
    TimerId::ALL
        .iter()
        .position(|t| *t == timer)
        .expect("ALL is exhaustive")
}

/// A concrete command of each class aimed at internal bank `bank`
/// (REFRESH is bankless).
fn command_of(class: CmdClass, bank: u32) -> SdramCmd {
    match class {
        CmdClass::Activate => SdramCmd::Activate { bank, row: 1 },
        CmdClass::Read | CmdClass::ReadAuto => SdramCmd::Read {
            bank,
            col: 0,
            auto_precharge: matches!(class, CmdClass::ReadAuto),
            tag: 0,
        },
        CmdClass::Write | CmdClass::WriteAuto => SdramCmd::Write {
            bank,
            col: 0,
            data: 0,
            auto_precharge: matches!(class, CmdClass::WriteAuto),
        },
        CmdClass::Precharge => SdramCmd::Precharge { bank },
        CmdClass::Refresh => SdramCmd::Refresh,
    }
}

/// Declarative legality of `class` in `state`: the transition table
/// admits it and every gating timer is expired. `Err` carries the
/// blocking reason.
fn abs_can_issue(
    state: &Abs,
    class: CmdClass,
    table: &[(BankState, BankEvent, Outcome)],
) -> Result<(), String> {
    if state.refresh_busy > 0 {
        return Err("refresh in progress".to_string());
    }
    let bank_state = state.bank_state();
    let outcome = table
        .iter()
        .find(|(s, e, _)| *s == bank_state && *e == BankEvent::Command(class))
        .map(|&(_, _, o)| o);
    match outcome {
        Some(Outcome::Next(_)) | Some(Outcome::Ignore) => {}
        Some(Outcome::Illegal(why)) => return Err(format!("table: {why}")),
        None => return Err(format!("table has no entry for {}", bank_state.name())),
    }
    for &timer in protocol::gates(class) {
        if state.residual(timer) > 0 {
            return Err(format!("{} unexpired", timer.name()));
        }
    }
    for &timer in protocol::channel_gates(class) {
        if state.channel_residual(timer) > 0 {
            return Err(format!("{} unexpired", timer.name()));
        }
    }
    Ok(())
}

/// The abstract successor of accepting `class` in `state` (before the
/// clock edge), per the [`DeadlineModel`] arming semantics.
fn abs_apply(state: &Abs, class: CmdClass, model: &DeadlineModel) -> Abs {
    let mut next = *state;
    match class {
        CmdClass::Activate => next.row_open = true,
        CmdClass::ReadAuto | CmdClass::WriteAuto | CmdClass::Precharge => next.row_open = false,
        CmdClass::Read | CmdClass::Write => {}
        CmdClass::Refresh => next.refresh_busy = model.refresh_busy(),
    }
    // Plain arms first (WRITE arms tWR before its auto-precharge
    // composes with it, matching the device's arm order).
    for &timer in DeadlineModel::arms(class) {
        next.arm(timer, model.duration(timer));
    }
    if matches!(class, CmdClass::ReadAuto | CmdClass::WriteAuto) {
        let arm = model.auto_precharge_arm(next.residual(TimerId::Ras), next.residual(TimerId::Wr));
        next.arm(TimerId::Rp, arm);
    }
    for &timer in protocol::channel_arms(class) {
        match timer {
            // Bank 0 is always group 0, so every CAS in the projection
            // is a same-group CAS: the gate re-arms to tCCD_L.
            ChannelTimerId::Ccd => {
                next.ccd = next
                    .ccd
                    .max(model.channel_duration(ChannelTimerId::Ccd, true));
            }
            ChannelTimerId::Rrd => {
                next.rrd = next
                    .rrd
                    .max(model.channel_duration(ChannelTimerId::Rrd, true));
            }
            // The window ring replaces its oldest (smallest) slot; the
            // device leaves the ring untouched when tFAW is disabled.
            ChannelTimerId::Faw => {
                let dur = model.channel_duration(ChannelTimerId::Faw, true);
                if dur > 0 {
                    next.faw[0] = dur;
                    next.faw.sort_unstable();
                }
            }
        }
    }
    next
}

/// Compares the live device's bank-0 observables against `abs`,
/// appending any disagreement to `out`.
fn check_alignment(label: &str, context: &str, dev: &Sdram, abs: &Abs, out: &mut Vec<String>) {
    for &timer in &TimerId::ALL {
        let device = dev.timer_remaining(0, timer);
        let model = abs.residual(timer);
        if device != model {
            out.push(format!(
                "{label}: {context}: {} residual diverged (device {device}, model {model})",
                timer.name()
            ));
        }
    }
    let device_busy = dev.refresh_busy_remaining();
    if device_busy != abs.refresh_busy {
        out.push(format!(
            "{label}: {context}: refresh busy diverged (device {device_busy}, model {})",
            abs.refresh_busy
        ));
    }
    let device_state = dev.bank_state(0);
    let model_state = abs.bank_state();
    if device_state != model_state {
        out.push(format!(
            "{label}: {context}: bank state diverged (device {}, model {})",
            device_state.name(),
            model_state.name()
        ));
    }
    let device_open = dev.open_row(0).is_some();
    if device_open != abs.row_open {
        out.push(format!(
            "{label}: {context}: row-open diverged (device {device_open}, model {})",
            abs.row_open
        ));
    }
    // Channel residuals as bank 0 sees them (bank 0 is always group 0).
    let device_ccd = dev.channel_cas_remaining(0);
    if device_ccd != abs.ccd {
        out.push(format!(
            "{label}: {context}: tCCD residual diverged (device {device_ccd}, model {})",
            abs.ccd
        ));
    }
    let device_rrd = dev.channel_rrd_remaining();
    if device_rrd != abs.rrd {
        out.push(format!(
            "{label}: {context}: tRRD residual diverged (device {device_rrd}, model {})",
            abs.rrd
        ));
    }
    let device_faw = dev.channel_faw_remaining();
    if device_faw != abs.faw {
        out.push(format!(
            "{label}: {context}: tFAW window diverged (device {device_faw:?}, model {:?})",
            abs.faw
        ));
    }
}

/// Property (c), static half: the dense compile-time lookup agrees
/// with a scan of the (possibly corrupted) declarative table.
fn check_dense_agreement(
    label: &str,
    table: &[(BankState, BankEvent, Outcome)],
    out: &mut Vec<String>,
) {
    for s in BankState::ALL {
        for e in BankEvent::ALL {
            let scanned: Vec<Outcome> = table
                .iter()
                .filter(|(ts, te, _)| *ts == s && *te == e)
                .map(|&(_, _, o)| o)
                .collect();
            let dense = fsm::transition(s, e);
            match (dense, scanned.as_slice()) {
                (Some(d), [t]) if d == *t => {}
                (Some(d), [t]) => out.push(format!(
                    "{label}: dense lookup disagrees with the table for ({}, {e:?}): \
                     dense {d:?}, table {t:?}",
                    s.name()
                )),
                (_, entries) => out.push(format!(
                    "{label}: table has {} entries for ({}, {e:?}), expected exactly 1",
                    entries.len(),
                    s.name()
                )),
            }
        }
    }
}

/// Property (b): from `abs`, pure NOP ticks must reach the quiescent
/// idle state within the sum of all residuals (each tick strictly
/// decreases it while nonzero).
fn check_drains_to_idle(label: &str, abs: &Abs, out: &mut Vec<String>) {
    let bound = abs.res.iter().sum::<u64>()
        + abs.refresh_busy
        + abs.ccd
        + abs.rrd
        + abs.faw.iter().sum::<u64>()
        + 1;
    let mut s = *abs;
    for _ in 0..bound {
        if s == Abs::QUIESCENT {
            return;
        }
        s = s.tick();
    }
    // A row left open never closes on its own — that is fine, because
    // an explicit precharge is always reachable once its gates expire;
    // model that one step and retry.
    let active_idle = Abs {
        row_open: true,
        ..Abs::QUIESCENT
    };
    if s == active_idle {
        return; // Active with all timers clear: one PRECHARGE from Idle.
    }
    out.push(format!(
        "{label}: state {abs:?} does not drain to Idle within {bound} cycles (stuck at {s:?})"
    ));
}

/// Explores the full product automaton for one configuration,
/// validating the declarative `table`/`model` against a live device.
pub fn check_preset(
    label: &str,
    cfg: &SdramConfig,
    table: &[(BankState, BankEvent, Outcome)],
    model: &DeadlineModel,
) -> Vec<String> {
    let mut out = Vec::new();
    check_dense_agreement(label, table, &mut out);

    let device = match Sdram::try_new(*cfg) {
        Ok(d) => d,
        Err(e) => {
            out.push(format!("{label}: device construction failed: {e}"));
            return out;
        }
    };

    let start = Abs::QUIESCENT;
    let mut visited: HashMap<Abs, ()> = HashMap::new();
    visited.insert(start, ());
    let mut frontier: VecDeque<(Abs, Sdram)> = VecDeque::new();
    frontier.push_back((start, device));
    let mut explored_edges = 0usize;

    while let Some((abs, dev)) = frontier.pop_front() {
        if out.len() >= FINDING_CAP {
            out.push(format!(
                "{label}: finding cap reached, exploration truncated"
            ));
            return out;
        }
        check_drains_to_idle(label, &abs, &mut out);

        // Command edges: one per class, plus the pure-tick (NOP) edge.
        for class in CmdClass::ALL {
            explored_edges += 1;
            let cmd = command_of(class, 0);
            let model_verdict = abs_can_issue(&abs, class, table);
            let device_verdict = dev.can_issue(&cmd);
            match (&model_verdict, &device_verdict) {
                (Ok(()), Err(e)) => {
                    out.push(format!(
                        "{label}: state {abs:?}: model admits {} but device refuses it ({e})",
                        class.mnemonic()
                    ));
                    continue;
                }
                (Err(why), Ok(())) => {
                    out.push(format!(
                        "{label}: state {abs:?}: device accepts {} while {why} — \
                         timing-safety violation",
                        class.mnemonic()
                    ));
                    continue;
                }
                (Err(_), Err(_)) => continue,
                (Ok(()), Ok(())) => {}
            }

            // Both sides agree the command is legal: take the edge on a
            // cloned device and check the successor aligns.
            let mut next_dev = dev.clone();
            if let Err(e) = next_dev.issue(cmd) {
                out.push(format!(
                    "{label}: state {abs:?}: issue({}) failed after can_issue passed: {e}",
                    class.mnemonic()
                ));
                continue;
            }
            // Structural half of property (c): the table successor's
            // row-open bit must match the deadline model's.
            let abs_after = abs_apply(&abs, class, model);
            if let Some(Outcome::Next(next_state)) = table
                .iter()
                .find(|(s, e, _)| *s == abs.bank_state() && *e == BankEvent::Command(class))
                .map(|&(_, _, o)| o)
            {
                if next_state.row_open() != abs_after.row_open {
                    out.push(format!(
                        "{label}: state {abs:?}: table successor {} disagrees with the \
                         deadline model on row-open after {}",
                        next_state.name(),
                        class.mnemonic()
                    ));
                }
            }
            next_dev.tick();
            while next_dev.pop_ready().is_some() {} // bound in-flight data
            let abs_next = abs_after.tick();
            check_alignment(
                label,
                &format!("after {} from {abs:?}", class.mnemonic()),
                &next_dev,
                &abs_next,
                &mut out,
            );
            if visited.len() < STATE_CAP && visited.insert(abs_next, ()).is_none() {
                frontier.push_back((abs_next, next_dev));
            }
        }

        // The NOP/tick edge.
        let mut next_dev = dev;
        next_dev.tick();
        while next_dev.pop_ready().is_some() {}
        let abs_next = abs.tick();
        check_alignment(
            label,
            &format!("after tick from {abs:?}"),
            &next_dev,
            &abs_next,
            &mut out,
        );
        if visited.len() < STATE_CAP && visited.insert(abs_next, ()).is_none() {
            frontier.push_back((abs_next, next_dev));
        }
    }

    if visited.len() >= STATE_CAP {
        out.push(format!(
            "{label}: state cap ({STATE_CAP}) reached after {explored_edges} edges — \
             residuals are not converging"
        ));
    }
    out
}

/// Banks the multi-bank differential walk drives (capped by the
/// preset's `internal_banks`). Four banks cover ≥2 bank groups on
/// every shipped multi-group preset and fill the tFAW window.
const WALK_BANKS: u32 = 4;

/// Steps per preset in the multi-bank differential walk. Long enough
/// to cross the DDR3 refresh epoch several times over on the presets
/// with short intervals, short enough to stay trivial in CI.
const WALK_STEPS: u32 = 2000;

/// The multi-bank abstract state the differential walk maintains: one
/// bank-projection per driven bank plus the authoritative shared
/// residuals (refresh busy, per-group CAS gates, tRRD, the tFAW
/// window). The shared values are mirrored into each bank's [`Abs`]
/// after every update so the per-bank legality/arming helpers
/// ([`abs_can_issue`]/[`abs_apply`]) see exactly the view the device
/// gives that bank.
struct MultiAbs {
    banks: Vec<Abs>,
    refresh_busy: u64,
    ccd: [u64; MAX_BANK_GROUPS as usize],
    rrd: u64,
    faw: [u64; 4],
}

impl MultiAbs {
    fn new(bank_count: u32) -> MultiAbs {
        MultiAbs {
            banks: vec![Abs::QUIESCENT; bank_count as usize],
            refresh_busy: 0,
            ccd: [0; MAX_BANK_GROUPS as usize],
            rrd: 0,
            faw: [0; 4],
        }
    }

    /// Mirrors the shared residuals into every bank's projection.
    fn sync(&mut self, cfg: &SdramConfig) {
        for (bank, abs) in self.banks.iter_mut().enumerate() {
            abs.refresh_busy = self.refresh_busy;
            abs.ccd = self.ccd[cfg.bank_group_of(bank as u32) as usize];
            abs.rrd = self.rrd;
            abs.faw = self.faw;
        }
    }

    fn tick(&mut self, cfg: &SdramConfig) {
        for abs in &mut self.banks {
            for r in &mut abs.res {
                *r = r.saturating_sub(1);
            }
        }
        self.refresh_busy = self.refresh_busy.saturating_sub(1);
        for gate in &mut self.ccd {
            *gate = gate.saturating_sub(1);
        }
        self.rrd = self.rrd.saturating_sub(1);
        for slot in &mut self.faw {
            *slot = slot.saturating_sub(1);
        }
        self.sync(cfg);
    }

    /// Declarative legality of `class` aimed at `bank`: the per-bank
    /// rule, except REFRESH which every bank must admit (the device
    /// checks the whole rank).
    fn can_issue(
        &self,
        class: CmdClass,
        bank: usize,
        table: &[(BankState, BankEvent, Outcome)],
    ) -> Result<(), String> {
        if matches!(class, CmdClass::Refresh) {
            for (b, abs) in self.banks.iter().enumerate() {
                abs_can_issue(abs, class, table).map_err(|why| format!("bank {b}: {why}"))?;
            }
            Ok(())
        } else {
            abs_can_issue(&self.banks[bank], class, table)
        }
    }

    /// Applies an accepted command: bank-local effects through
    /// [`abs_apply`], shared effects re-derived against the authority
    /// copies (a CAS arms the *other* groups' gates to tCCD_S, which
    /// the single-bank projection cannot express).
    fn apply(&mut self, class: CmdClass, bank: usize, model: &DeadlineModel, cfg: &SdramConfig) {
        let applied = abs_apply(&self.banks[bank], class, model);
        self.banks[bank].row_open = applied.row_open;
        self.banks[bank].res = applied.res;
        if matches!(class, CmdClass::Refresh) {
            self.refresh_busy = model.refresh_busy();
        }
        for &timer in protocol::channel_arms(class) {
            match timer {
                ChannelTimerId::Ccd => {
                    let own = cfg.bank_group_of(bank as u32) as usize;
                    for (group, gate) in self.ccd.iter_mut().enumerate() {
                        let dur = model.channel_duration(ChannelTimerId::Ccd, group == own);
                        *gate = (*gate).max(dur);
                    }
                }
                ChannelTimerId::Rrd => {
                    let dur = model.channel_duration(ChannelTimerId::Rrd, true);
                    self.rrd = self.rrd.max(dur);
                }
                ChannelTimerId::Faw => {
                    let dur = model.channel_duration(ChannelTimerId::Faw, true);
                    if dur > 0 {
                        self.faw[0] = dur;
                        self.faw.sort_unstable();
                    }
                }
            }
        }
        self.sync(cfg);
    }
}

/// Compares the device's observables for every driven bank and the
/// channel block against the multi-bank model.
fn check_multibank_alignment(
    label: &str,
    context: &str,
    dev: &Sdram,
    abs: &MultiAbs,
    cfg: &SdramConfig,
    out: &mut Vec<String>,
) {
    for (bank, bank_abs) in abs.banks.iter().enumerate() {
        let bank = bank as u32;
        for &timer in &TimerId::ALL {
            let device = dev.timer_remaining(bank, timer);
            let model = bank_abs.residual(timer);
            if device != model {
                out.push(format!(
                    "{label}: {context}: bank {bank}: {} residual diverged \
                     (device {device}, model {model})",
                    timer.name()
                ));
            }
        }
        let device_state = dev.bank_state(bank);
        let model_state = bank_abs.bank_state();
        if device_state != model_state {
            out.push(format!(
                "{label}: {context}: bank {bank}: state diverged (device {}, model {})",
                device_state.name(),
                model_state.name()
            ));
        }
        let device_open = dev.open_row(bank).is_some();
        if device_open != bank_abs.row_open {
            out.push(format!(
                "{label}: {context}: bank {bank}: row-open diverged \
                 (device {device_open}, model {})",
                bank_abs.row_open
            ));
        }
    }
    let device_busy = dev.refresh_busy_remaining();
    if device_busy != abs.refresh_busy {
        out.push(format!(
            "{label}: {context}: refresh busy diverged (device {device_busy}, model {})",
            abs.refresh_busy
        ));
    }
    for group in 0..cfg.bank_groups as usize {
        let device_ccd = dev.channel_cas_remaining(group as u32);
        if device_ccd != abs.ccd[group] {
            out.push(format!(
                "{label}: {context}: group {group} tCCD residual diverged \
                 (device {device_ccd}, model {})",
                abs.ccd[group]
            ));
        }
    }
    let device_rrd = dev.channel_rrd_remaining();
    if device_rrd != abs.rrd {
        out.push(format!(
            "{label}: {context}: tRRD residual diverged (device {device_rrd}, model {})",
            abs.rrd
        ));
    }
    let device_faw = dev.channel_faw_remaining();
    if device_faw != abs.faw {
        out.push(format!(
            "{label}: {context}: tFAW window diverged (device {device_faw:?}, model {:?})",
            abs.faw
        ));
    }
}

/// A deterministic multi-bank differential walk: drives up to
/// [`WALK_BANKS`] banks of a live device for [`WALK_STEPS`] cycles with
/// a fixed-seed LCG choosing among the legal commands, and on *every*
/// cycle compares the legality verdict of every candidate `(class,
/// bank)` pair — and afterwards every observable residual — against the
/// independent multi-bank model. This is the pass that exercises the
/// cross-bank channel couplings (tCCD_S between groups, tRRD and tFAW
/// across banks) that the bank-0 exploration cannot reach.
pub fn check_preset_multibank(
    label: &str,
    cfg: &SdramConfig,
    table: &[(BankState, BankEvent, Outcome)],
    model: &DeadlineModel,
) -> Vec<String> {
    let mut out = Vec::new();
    let mut dev = match Sdram::try_new(*cfg) {
        Ok(d) => d,
        Err(e) => {
            out.push(format!(
                "{label}: device construction failed in the multi-bank walk: {e}"
            ));
            return out;
        }
    };
    let bank_count = cfg.internal_banks.min(WALK_BANKS);
    let mut abs = MultiAbs::new(bank_count);
    abs.sync(cfg);

    // Fixed-seed 64-bit LCG (MMIX constants): the walk is deterministic
    // so a finding is always reproducible.
    let mut rng: u64 = 0x9E37_79B9_7F4A_7C15;
    let mut step_rng = move || {
        rng = rng
            .wrapping_mul(6_364_136_223_846_793_005)
            .wrapping_add(1_442_695_040_888_963_407);
        rng >> 16
    };

    for step in 0..WALK_STEPS {
        if out.len() >= FINDING_CAP {
            out.push(format!(
                "{label}: finding cap reached, multi-bank walk truncated at step {step}"
            ));
            return out;
        }
        // Verdict comparison for every candidate command this cycle.
        let mut legal: Vec<(CmdClass, u32)> = Vec::new();
        for bank in 0..bank_count {
            for class in CmdClass::ALL {
                if matches!(class, CmdClass::Refresh) && bank != 0 {
                    continue; // REFRESH is bankless; check it once.
                }
                let cmd = command_of(class, bank);
                let model_verdict = abs.can_issue(class, bank as usize, table);
                let device_verdict = dev.can_issue(&cmd);
                match (&model_verdict, &device_verdict) {
                    (Ok(()), Err(e)) => out.push(format!(
                        "{label}: step {step}: model admits {} to bank {bank} but the \
                         device refuses it ({e})",
                        class.mnemonic()
                    )),
                    (Err(why), Ok(())) => out.push(format!(
                        "{label}: step {step}: device accepts {} to bank {bank} while \
                         {why} — timing-safety violation",
                        class.mnemonic()
                    )),
                    (Err(_), Err(_)) => {}
                    (Ok(()), Ok(())) => legal.push((class, bank)),
                }
            }
        }
        // Issue one of the legal commands (or idle one cycle in four,
        // so expiry boundaries get sampled too).
        let roll = step_rng();
        if !legal.is_empty() && roll & 3 != 0 {
            let (class, bank) = legal[(roll >> 8) as usize % legal.len()];
            if let Err(e) = dev.issue(command_of(class, bank)) {
                out.push(format!(
                    "{label}: step {step}: issue({} bank {bank}) failed after \
                     can_issue passed: {e}",
                    class.mnemonic()
                ));
                return out;
            }
            abs.apply(class, bank as usize, model, cfg);
        }
        dev.tick();
        while dev.pop_ready().is_some() {}
        abs.tick(cfg);
        check_multibank_alignment(label, &format!("step {step}"), &dev, &abs, cfg, &mut out);
    }
    out
}

/// Runs the protocol pass over every shipped SDRAM preset with the
/// pristine transition table and deadline model: the exhaustive bank-0
/// exploration first, then the multi-bank differential walk.
pub fn check() -> Vec<String> {
    let mut out = Vec::new();
    for (label, cfg) in config_check::sdram_presets() {
        let model = DeadlineModel::of(&cfg);
        out.extend(check_preset(label, &cfg, TRANSITIONS, &model));
        out.extend(check_preset_multibank(label, &cfg, TRANSITIONS, &model));
    }
    out
}

/// Number of distinct product states the exploration reaches for
/// `cfg` — exposed for the tests that pin exhaustiveness.
pub fn state_count(cfg: &SdramConfig) -> usize {
    let mut visited: HashMap<Abs, ()> = HashMap::new();
    let model = DeadlineModel::of(cfg);
    let mut frontier = VecDeque::new();
    visited.insert(Abs::QUIESCENT, ());
    frontier.push_back(Abs::QUIESCENT);
    while let Some(abs) = frontier.pop_front() {
        let mut successors = vec![abs.tick()];
        for class in CmdClass::ALL {
            if abs_can_issue(&abs, class, TRANSITIONS).is_ok() {
                successors.push(abs_apply(&abs, class, &model).tick());
            }
        }
        for s in successors {
            if visited.len() < STATE_CAP && visited.insert(s, ()).is_none() {
                frontier.push_back(s);
            }
        }
    }
    visited.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_presets_verify_clean() {
        assert_eq!(check(), Vec::<String>::new());
    }

    #[test]
    fn exploration_is_nontrivial() {
        // The default preset must exercise a real product space: more
        // states than the five observable BankStates, well under the
        // cap.
        let n = state_count(&SdramConfig::default());
        assert!(n > 10, "only {n} product states explored");
        assert!(n < STATE_CAP);
    }

    #[test]
    fn corrupted_deadline_is_caught() {
        let cfg = SdramConfig::default();
        let mut model = DeadlineModel::of(&cfg);
        model.t_rcd += 1; // model now expects a longer tRCD than the device arms
        let findings = check_preset("mutated", &cfg, TRANSITIONS, &model);
        assert!(findings.iter().any(|f| f.contains("tRCD")), "{findings:?}");
    }

    #[test]
    fn corrupted_cas_spacing_is_caught() {
        // A tCCD_L disagreement surfaces in the bank-0 exploration: the
        // model arms the group-0 gate one cycle longer than the device.
        let cfg = SdramConfig::for_device(sdram::DevicePreset::Ddr3_1600);
        let mut model = DeadlineModel::of(&cfg);
        model.t_ccd_l += 1;
        let findings = check_preset("mutated", &cfg, TRANSITIONS, &model);
        assert!(findings.iter().any(|f| f.contains("tCCD")), "{findings:?}");
    }

    #[test]
    fn corrupted_cross_group_spacing_is_caught() {
        // tCCD_S only matters *between* bank groups, which bank 0 alone
        // can never exercise — the multi-bank walk must catch it.
        let cfg = SdramConfig::for_device(sdram::DevicePreset::Ddr3_1600);
        let mut model = DeadlineModel::of(&cfg);
        model.t_ccd_s += 1;
        let clean = check_preset("mutated", &cfg, TRANSITIONS, &model);
        assert_eq!(
            clean,
            Vec::<String>::new(),
            "bank 0 alone cannot see tCCD_S"
        );
        let findings = check_preset_multibank("mutated", &cfg, TRANSITIONS, &model);
        assert!(findings.iter().any(|f| f.contains("tCCD")), "{findings:?}");
    }

    #[test]
    fn corrupted_activate_spacing_is_caught() {
        let cfg = SdramConfig::for_device(sdram::DevicePreset::Ddr3_1600);
        let mut model = DeadlineModel::of(&cfg);
        model.t_rrd += 1;
        let findings = check_preset_multibank("mutated", &cfg, TRANSITIONS, &model);
        assert!(findings.iter().any(|f| f.contains("tRRD")), "{findings:?}");
    }

    #[test]
    fn corrupted_activate_window_is_caught() {
        let cfg = SdramConfig::for_device(sdram::DevicePreset::Ddr3_1600);
        let mut model = DeadlineModel::of(&cfg);
        model.t_faw += 1;
        let findings = check_preset_multibank("mutated", &cfg, TRANSITIONS, &model);
        assert!(findings.iter().any(|f| f.contains("tFAW")), "{findings:?}");
    }

    #[test]
    fn multibank_walk_is_clean_on_every_preset() {
        for (label, cfg) in config_check::sdram_presets() {
            let model = DeadlineModel::of(&cfg);
            let findings = check_preset_multibank(label, &cfg, TRANSITIONS, &model);
            assert_eq!(findings, Vec::<String>::new());
        }
    }
}
