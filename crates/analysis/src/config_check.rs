//! Configuration consistency pass.
//!
//! [`SdramConfig::check`] and [`PvaConfig::check`] are pure functions
//! over the config structs; the simulators assert them at construction.
//! This pass runs the same rules over every *named preset* shipped by
//! the workspace, so a timing tweak to a preset that breaks an invariant
//! (say, `tRC < tRAS + tRP`) fails CI before any simulation runs.

use pva_sim::PvaConfig;
use sdram::{DevicePreset, SdramConfig};

/// Every named `SdramConfig` preset the workspace ships: one entry per
/// [`DevicePreset`], labelled with the preset's CLI slug so sweep
/// failures are attributable to the exact device generation.
pub fn sdram_presets() -> Vec<(&'static str, SdramConfig)> {
    DevicePreset::ALL
        .into_iter()
        .map(|p| (p.name(), SdramConfig::for_device(p)))
        .collect()
}

/// Every named `PvaConfig` preset the workspace ships.
pub fn pva_presets() -> Vec<(&'static str, PvaConfig)> {
    vec![
        ("PvaConfig::default", PvaConfig::default()),
        ("PvaConfig::sram_backend", PvaConfig::sram_backend()),
        ("PvaConfig::cvms_like", PvaConfig::cvms_like()),
    ]
}

/// Validates one SDRAM config, rendering each violation with `label`.
pub fn check_sdram(label: &str, cfg: &SdramConfig) -> Vec<String> {
    cfg.check()
        .into_iter()
        .map(|e| format!("{label}: {e}"))
        .collect()
}

/// Validates one PVA config, rendering each violation with `label`.
pub fn check_pva(label: &str, cfg: &PvaConfig) -> Vec<String> {
    cfg.check()
        .into_iter()
        .map(|e| format!("{label}: {e}"))
        .collect()
}

/// Runs the pass over every shipped preset.
pub fn check() -> Vec<String> {
    let mut problems = Vec::new();
    for (label, cfg) in sdram_presets() {
        problems.extend(check_sdram(label, &cfg));
    }
    for (label, cfg) in pva_presets() {
        problems.extend(check_pva(label, &cfg));
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_presets_are_consistent() {
        assert_eq!(check(), Vec::<String>::new());
    }

    #[test]
    fn preset_list_covers_every_device_generation() {
        let presets = sdram_presets();
        assert_eq!(presets.len(), DevicePreset::ALL.len());
        for preset in DevicePreset::ALL {
            assert!(
                presets.iter().any(|(label, _)| *label == preset.name()),
                "missing {preset}"
            );
        }
    }

    #[test]
    fn broken_sdram_config_is_reported() {
        let bad = SdramConfig {
            internal_banks: 6,
            t_rc: 3,
            ..SdramConfig::default()
        };
        let problems = check_sdram("bad", &bad);
        assert!(problems.len() >= 2, "{problems:?}");
        assert!(problems.iter().all(|p| p.starts_with("bad: ")));
    }

    #[test]
    fn broken_pva_config_is_reported() {
        let bad = PvaConfig {
            request_fifo_entries: 1,
            ..PvaConfig::default()
        };
        let problems = check_pva("bad", &bad);
        assert_eq!(problems.len(), 1, "{problems:?}");
        assert!(problems[0].contains("request_fifo_entries"));
    }
}
