//! CI driver: runs all three analysis passes and exits nonzero on any
//! finding.

use std::fs;
use std::process::ExitCode;

use pva_analysis::{config_check, fsm_check, lint_source, DESIGNATED};

fn main() -> ExitCode {
    let root = pva_analysis::workspace_root();
    let mut total = 0usize;

    println!("== synthesizability lint ==");
    for target in DESIGNATED {
        let path = root.join(target.path);
        let source = match fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                println!("{}: unreadable: {e}", target.path);
                total += 1;
                continue;
            }
        };
        let findings = lint_source(target.path, &source, target.profile);
        for f in &findings {
            println!("{f}");
        }
        total += findings.len();
        println!(
            "{}: {} finding(s) [{:?}]",
            target.path,
            findings.len(),
            target.profile
        );
    }

    println!("== bank FSM completeness ==");
    let fsm_problems = fsm_check::check();
    for p in &fsm_problems {
        println!("fsm: {p}");
    }
    total += fsm_problems.len();
    println!(
        "{} states x {} events: {} problem(s)",
        sdram::BankState::ALL.len(),
        sdram::BankEvent::ALL.len(),
        fsm_problems.len()
    );

    println!("== config consistency ==");
    let cfg_problems = config_check::check();
    for p in &cfg_problems {
        println!("config: {p}");
    }
    total += cfg_problems.len();
    println!(
        "{} preset(s): {} problem(s)",
        config_check::sdram_presets().len() + config_check::pva_presets().len(),
        cfg_problems.len()
    );

    if total == 0 {
        println!("pva-analysis: clean");
        ExitCode::SUCCESS
    } else {
        println!("pva-analysis: {total} finding(s)");
        ExitCode::FAILURE
    }
}
