//! CI driver: runs all five analysis passes and exits nonzero on any
//! finding. `--json` emits the findings as a machine-readable array
//! (uploaded as a CI artifact) instead of the human report.

use std::process::ExitCode;

use pva_analysis::{config_check, fsm_check, lint_target, protocol_check, wake_check, DESIGNATED};

/// One finding from any pass, normalized for reporting.
struct Record {
    pass: &'static str,
    file: Option<String>,
    line: Option<usize>,
    rule: Option<String>,
    message: String,
}

fn main() -> ExitCode {
    let mut json = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            other => {
                eprintln!(
                    "pva-analysis: unknown argument `{other}` (usage: pva-analysis [--json])"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let root = match pva_analysis::find_workspace_root_for("locating the designated sources") {
        Ok(root) => root,
        Err(e) => {
            eprintln!("pva-analysis: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut records: Vec<Record> = Vec::new();
    let section = |title: &str| {
        if !json {
            println!("== {title} ==");
        }
    };

    section("synthesizability lint");
    for target in DESIGNATED {
        let findings = lint_target(&root, target);
        if !json {
            for f in &findings {
                println!("{f}");
            }
            println!(
                "{}: {} finding(s) [{:?}]",
                target.path,
                findings.len(),
                target.profile
            );
        }
        records.extend(findings.into_iter().map(|f| Record {
            pass: "lint",
            file: Some(f.file),
            line: Some(f.line),
            rule: Some(f.rule.name().to_string()),
            message: f.message,
        }));
    }

    section("bank FSM completeness");
    let fsm_problems = fsm_check::check();
    if !json {
        for p in &fsm_problems {
            println!("fsm: {p}");
        }
        println!(
            "{} states x {} events: {} problem(s)",
            sdram::BankState::ALL.len(),
            sdram::BankEvent::ALL.len(),
            fsm_problems.len()
        );
    }
    records.extend(fsm_problems.into_iter().map(|p| Record {
        pass: "fsm",
        file: None,
        line: None,
        rule: None,
        message: p,
    }));

    section("config consistency");
    let cfg_problems = config_check::check();
    if !json {
        for p in &cfg_problems {
            println!("config: {p}");
        }
        println!(
            "{} preset(s): {} problem(s)",
            config_check::sdram_presets().len() + config_check::pva_presets().len(),
            cfg_problems.len()
        );
    }
    records.extend(cfg_problems.into_iter().map(|p| Record {
        pass: "config",
        file: None,
        line: None,
        rule: None,
        message: p,
    }));

    section("timing-protocol model check");
    let protocol_problems = protocol_check::check();
    if !json {
        for p in &protocol_problems {
            println!("protocol: {p}");
        }
        println!(
            "{} preset(s): {} problem(s)",
            config_check::sdram_presets().len(),
            protocol_problems.len()
        );
    }
    records.extend(protocol_problems.into_iter().map(|p| Record {
        pass: "protocol",
        file: None,
        line: None,
        rule: None,
        message: p,
    }));

    section("wake-hint soundness");
    let wake_problems = wake_check::check(&root);
    if !json {
        for p in &wake_problems {
            println!("wake: {p}");
        }
        println!(
            "{} rule(s): {} problem(s)",
            wake_check::WAKE_RULES.len(),
            wake_problems.len()
        );
    }
    records.extend(wake_problems.into_iter().map(|p| Record {
        pass: "wake",
        file: Some(wake_check::CONTROLLER_SRC.to_string()),
        line: None,
        rule: None,
        message: p,
    }));

    if json {
        println!("{}", render_json(&records));
    } else if records.is_empty() {
        println!("pva-analysis: clean");
    } else {
        println!("pva-analysis: {} finding(s)", records.len());
    }
    if records.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Renders the findings as a JSON array (hand-rolled: the offline
/// build carries no serde).
fn render_json(records: &[Record]) -> String {
    let mut out = String::from("[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"pass\": ");
        json_str(&mut out, r.pass);
        if let Some(file) = &r.file {
            out.push_str(", \"file\": ");
            json_str(&mut out, file);
        }
        if let Some(line) = r.line {
            out.push_str(&format!(", \"line\": {line}"));
        }
        if let Some(rule) = &r.rule {
            out.push_str(", \"rule\": ");
            json_str(&mut out, rule);
        }
        out.push_str(", \"message\": ");
        json_str(&mut out, &r.message);
        out.push('}');
    }
    if !records.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Appends `s` as a JSON string literal.
fn json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}
