//! Hardware-synthesizability lint over the designated hardware-modeled
//! source files.
//!
//! The paper's central hardware argument (§4.1.2 vs §4.1.4) is that the
//! per-cycle datapath of a bank controller must avoid operations with no
//! cheap gate-level form: division or modulo by values that are not
//! compile-time powers of two, floating point, products wider than the
//! 64-bit datapath, heap allocation, and abort paths. The closed-form
//! `FirstHit`/`NextHit` modules are *claimed* to satisfy this; the
//! rejected recursive algorithm demonstrably does not. This lint makes
//! the claim checkable: it tokenizes the designated files (no `syn`
//! available in the offline build, so a small purpose-built scanner) and
//! flags every violation.
//!
//! Justified exceptions are opted out in the source with
//!
//! ```text
//! // pva-lint: allow(rule[, rule...]): justification
//! ```
//!
//! A marker on its own line covers the next code line — and, when that
//! line opens a brace block (a `fn`, `mod`, `impl`...), the entire
//! block. A marker sharing a line with code covers that line only.
//! Markers that suppress nothing, and markers naming unknown rules, are
//! themselves findings, so stale or misspelled opt-outs cannot linger.
//!
//! `#[cfg(test)]` modules, comments, doc tests and string literals are
//! never linted: they are not part of the modeled hardware.

use std::fmt;

/// A synthesizability rule checked by the lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// Integer `/`, `%`, `/=`, `%=` or a division/remainder method whose
    /// divisor is not a power-of-two literal. Power-of-two divisors are
    /// shifts and masks in hardware; anything else needs a divider
    /// circuit — the exact §4.1.2 objection.
    NonConstDiv,
    /// Floating-point types or literals: the bank controllers have no
    /// FPU.
    Float,
    /// 128-bit arithmetic (`u128`/`i128`, widening multiplies): products
    /// wider than the 64-bit datapath. Plain 64-bit multiplies are *not*
    /// flagged — the FHC carries a pipelined multiplier
    /// (`fhc_latency`).
    WideMul,
    /// Heap allocation (`Vec`, `Box`, `collect`, `format!`...): hardware
    /// has registers and SRAMs, not an allocator.
    Alloc,
    /// Abort paths (`panic!`, `assert!`, `.unwrap()`, `.expect()`):
    /// hardware cannot abort mid-cycle. `debug_assert!` is exempt — it
    /// is a simulation-only check, compiled out of release builds.
    Panic,
    /// Truncating `as` casts to a type narrower than the 64-bit
    /// datapath word (`as u8`/`u16`/`u32` and signed forms): an
    /// implicit wire truncation that silently drops bits. Width-
    /// preserving casts (`as u64`, `as usize`) are free.
    TruncCast,
    /// Explicit `wrapping_*` arithmetic: modular overflow is a
    /// deliberate hardware behaviour (a counter that wraps), so it must
    /// be annotated where intended — unannotated it usually marks a
    /// software-style overflow dodge. (`wrapping_div`/`wrapping_rem`
    /// stay under [`Rule::NonConstDiv`].)
    WrappingArith,
    /// A `pva-lint:` marker naming an unknown rule.
    BadMarker,
    /// A `pva-lint:` allow marker that suppressed nothing.
    UnusedAllow,
    /// A designated file that could not be read at all — reported as a
    /// finding so a renamed or deleted file fails the gate instead of
    /// silently passing it.
    Unreadable,
}

impl Rule {
    /// Rules that can be named in an `allow(...)` marker.
    pub const SUPPRESSIBLE: [Rule; 7] = [
        Rule::NonConstDiv,
        Rule::Float,
        Rule::WideMul,
        Rule::Alloc,
        Rule::Panic,
        Rule::TruncCast,
        Rule::WrappingArith,
    ];

    /// The marker/report name of the rule.
    pub const fn name(self) -> &'static str {
        match self {
            Rule::NonConstDiv => "nonconst-div",
            Rule::Float => "float",
            Rule::WideMul => "wide-mul",
            Rule::Alloc => "alloc",
            Rule::Panic => "panic",
            Rule::TruncCast => "trunc-cast",
            Rule::WrappingArith => "wrapping-arith",
            Rule::BadMarker => "bad-marker",
            Rule::UnusedAllow => "unused-allow",
            Rule::Unreadable => "unreadable",
        }
    }

    /// Inverse of [`Rule::name`] over the suppressible rules.
    pub fn from_name(s: &str) -> Option<Rule> {
        Rule::SUPPRESSIBLE.into_iter().find(|r| r.name() == s)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Which rule set a designated file is held to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// The full set: files modeling the per-cycle datapath itself
    /// (first-hit logic, geometry decode). Everything in them must be
    /// registers, wires and combinational logic.
    Datapath,
    /// Arithmetic rules only ([`Rule::NonConstDiv`], [`Rule::Float`],
    /// [`Rule::WideMul`]): files modeling the scheduler *control* in
    /// software (queues, maps, trace logs are simulation bookkeeping),
    /// where only the cycle-by-cycle arithmetic must stay synthesizable.
    ArithmeticOnly,
}

impl Profile {
    /// The rules active under this profile.
    pub const fn rules(self) -> &'static [Rule] {
        match self {
            Profile::Datapath => &[
                Rule::NonConstDiv,
                Rule::Float,
                Rule::WideMul,
                Rule::Alloc,
                Rule::Panic,
                Rule::TruncCast,
                Rule::WrappingArith,
            ],
            Profile::ArithmeticOnly => &[Rule::NonConstDiv, Rule::Float, Rule::WideMul],
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// What was found.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Lints `source` (labeled `file` in findings) under `profile`.
pub fn lint_source(file: &str, source: &str, profile: Profile) -> Vec<Finding> {
    let (stripped, comments) = strip(source);
    let lines: Vec<&str> = stripped.lines().collect();
    let excluded = test_region_lines(&lines);
    let mut allows = parse_allows(file, &comments, &lines);
    let mut findings = Vec::new();

    // Marker problems are findings regardless of profile.
    for a in &allows {
        for bad in &a.unknown {
            findings.push(Finding {
                file: file.to_string(),
                line: a.marker_line,
                rule: Rule::BadMarker,
                message: format!("unknown rule `{bad}` in pva-lint marker"),
            });
        }
    }

    for (idx, text) in lines.iter().enumerate() {
        let line = idx + 1;
        if excluded[idx] {
            continue;
        }
        let toks = tokenize(text);
        for raw in scan_line(&toks, profile) {
            let suppressed = allows.iter_mut().any(|a| {
                if a.rules.contains(&raw.rule) && a.start <= line && line <= a.end {
                    a.used = true;
                    true
                } else {
                    false
                }
            });
            if !suppressed {
                findings.push(Finding {
                    file: file.to_string(),
                    line,
                    rule: raw.rule,
                    message: raw.message,
                });
            }
        }
    }

    for a in &allows {
        if !a.used && a.unknown.is_empty() && !excluded[a.marker_line - 1] {
            findings.push(Finding {
                file: file.to_string(),
                line: a.marker_line,
                rule: Rule::UnusedAllow,
                message: format!(
                    "allow({}) suppressed nothing in its scope (lines {}..={})",
                    a.rules
                        .iter()
                        .map(|r| r.name())
                        .collect::<Vec<_>>()
                        .join(", "),
                    a.start,
                    a.end
                ),
            });
        }
    }

    findings.sort_by_key(|f| f.line);
    findings
}

// ---------------------------------------------------------------------
// Source stripping: blank comments and string/char literals to spaces
// (newlines preserved) so the token scan never sees their contents.
// ---------------------------------------------------------------------

/// Returns the blanked source plus `(line, text)` for every `//` comment.
/// Shared with the wake-hint pass, which mines the same stripped view.
pub(crate) fn strip(source: &str) -> (String, Vec<(usize, String)>) {
    #[derive(PartialEq)]
    enum Mode {
        Code,
        Line,
        Block(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let bytes: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut comments = Vec::new();
    let mut comment_buf = String::new();
    let mut mode = Mode::Code;
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match mode {
            Mode::Code => match c {
                '/' if next == Some('/') => {
                    mode = Mode::Line;
                    comment_buf.clear();
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '/' if next == Some('*') => {
                    mode = Mode::Block(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                '"' => {
                    mode = Mode::Str;
                    out.push(' ');
                }
                'r' | 'b' if !prev_is_ident(&bytes, i) => {
                    // Possible raw / byte / raw-byte string prefix.
                    if let Some(h) = raw_string_hashes(&bytes, i) {
                        let (skip, hashes) = h;
                        for _ in 0..skip {
                            out.push(' ');
                        }
                        i += skip;
                        mode = Mode::RawStr(hashes);
                        continue;
                    }
                    out.push(c);
                }
                '\'' => {
                    // Char literal vs lifetime: a literal is 'x', '\...',
                    // or multi-byte escape; a lifetime is '<ident> with
                    // no closing quote right after.
                    if next == Some('\\') || (bytes.get(i + 2) == Some(&'\'')) {
                        mode = Mode::Char;
                        out.push(' ');
                    } else {
                        out.push(c); // lifetime tick; harmless to keep
                    }
                }
                '\n' => {
                    out.push('\n');
                    line += 1;
                }
                _ => out.push(c),
            },
            Mode::Line => {
                if c == '\n' {
                    comments.push((line, comment_buf.clone()));
                    out.push('\n');
                    line += 1;
                    mode = Mode::Code;
                } else {
                    comment_buf.push(c);
                    out.push(' ');
                }
            }
            Mode::Block(depth) => {
                if c == '*' && next == Some('/') {
                    mode = if depth == 1 {
                        Mode::Code
                    } else {
                        Mode::Block(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '/' && next == Some('*') {
                    mode = Mode::Block(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '\n' {
                    out.push('\n');
                    line += 1;
                } else {
                    out.push(' ');
                }
            }
            Mode::Str => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(if next == Some('\n') { '\n' } else { ' ' });
                        if next == Some('\n') {
                            line += 1;
                        }
                        i += 2;
                        continue;
                    }
                }
                '"' => {
                    out.push(' ');
                    mode = Mode::Code;
                }
                '\n' => {
                    out.push('\n');
                    line += 1;
                }
                _ => out.push(' '),
            },
            Mode::RawStr(hashes) => {
                if c == '"' && raw_string_closes(&bytes, i, hashes) {
                    for _ in 0..=(hashes as usize) {
                        out.push(' ');
                    }
                    i += 1 + hashes as usize;
                    mode = Mode::Code;
                    continue;
                }
                if c == '\n' {
                    out.push('\n');
                    line += 1;
                } else {
                    out.push(' ');
                }
            }
            Mode::Char => match c {
                '\\' => {
                    out.push(' ');
                    if next.is_some() {
                        out.push(' ');
                        i += 2;
                        continue;
                    }
                }
                '\'' => {
                    out.push(' ');
                    mode = Mode::Code;
                }
                _ => out.push(' '),
            },
        }
        i += 1;
    }
    if mode == Mode::Line {
        comments.push((line, comment_buf));
    }
    (out, comments)
}

fn prev_is_ident(bytes: &[char], i: usize) -> bool {
    i > 0 && (bytes[i - 1].is_alphanumeric() || bytes[i - 1] == '_')
}

/// If position `i` starts a raw/byte string prefix (`r"`, `r#"`, `br"`,
/// `b"`, ...), returns `(prefix_len_incl_quote, hash_count)`.
fn raw_string_hashes(bytes: &[char], i: usize) -> Option<(usize, u32)> {
    let mut j = i;
    if bytes.get(j) == Some(&'b') {
        j += 1;
    }
    let raw = bytes.get(j) == Some(&'r');
    if raw {
        j += 1;
    }
    let mut hashes = 0u32;
    while bytes.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    // Plain `b"..."` (raw == false) must go through the escape-aware
    // string mode instead.
    if bytes.get(j) == Some(&'"') && raw {
        Some((j - i + 1, hashes))
    } else {
        None
    }
}

fn raw_string_closes(bytes: &[char], i: usize, hashes: u32) -> bool {
    (1..=hashes as usize).all(|k| bytes.get(i + k) == Some(&'#'))
}

// ---------------------------------------------------------------------
// #[cfg(test)] exclusion
// ---------------------------------------------------------------------

/// Per-line flag: inside a `#[cfg(test)]`-gated item.
fn test_region_lines(lines: &[&str]) -> Vec<bool> {
    let mut excluded = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if lines[i].contains("#[cfg(test)]") {
            let start = i;
            // Find the opening brace of the gated item, then its close.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            'outer: while j < lines.len() {
                for c in lines[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth -= 1,
                        _ => {}
                    }
                    if opened && depth == 0 {
                        break 'outer;
                    }
                }
                j += 1;
            }
            let end = j.min(lines.len() - 1);
            for flag in excluded.iter_mut().take(end + 1).skip(start) {
                *flag = true;
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    excluded
}

// ---------------------------------------------------------------------
// Allow markers
// ---------------------------------------------------------------------

struct Allow {
    rules: Vec<Rule>,
    unknown: Vec<String>,
    marker_line: usize,
    start: usize,
    end: usize,
    used: bool,
}

fn parse_allows(_file: &str, comments: &[(usize, String)], lines: &[&str]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for &(line, ref text) in comments {
        let Some(pos) = text.find("pva-lint:") else {
            continue;
        };
        let rest = text[pos + "pva-lint:".len()..].trim_start();
        let Some(inner) = rest
            .strip_prefix("allow(")
            .and_then(|r| r.split_once(')').map(|(a, _)| a))
        else {
            continue;
        };
        let mut rules = Vec::new();
        let mut unknown = Vec::new();
        for name in inner.split(',') {
            let name = name.trim();
            if name.is_empty() {
                continue;
            }
            match Rule::from_name(name) {
                Some(r) => rules.push(r),
                None => unknown.push(name.to_string()),
            }
        }
        let standalone = lines
            .get(line - 1)
            .map(|l| l.trim().is_empty())
            .unwrap_or(true);
        let (start, end) = if standalone {
            marker_scope(lines, line)
        } else {
            (line, line)
        };
        allows.push(Allow {
            rules,
            unknown,
            marker_line: line,
            start,
            end,
            used: false,
        });
    }
    allows
}

/// Scope of a standalone marker at `marker_line`: the next code line,
/// extended through its brace block if that line opens one.
fn marker_scope(lines: &[&str], marker_line: usize) -> (usize, usize) {
    let mut t = marker_line; // 1-based; lines[t] is the line after the marker
    while t < lines.len() && lines[t].trim().is_empty() {
        t += 1;
    }
    if t >= lines.len() {
        return (marker_line, marker_line);
    }
    let start = t + 1; // back to 1-based
    let mut depth = 0i64;
    for c in lines[t].chars() {
        match c {
            '{' => depth += 1,
            '}' => depth -= 1,
            _ => {}
        }
    }
    if depth <= 0 {
        // Plain statement line: single-line scope.
        return (start, start);
    }
    // Block opener: extend through the matching close.
    let mut j = t + 1;
    while j < lines.len() {
        for c in lines[j].chars() {
            match c {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        if depth <= 0 {
            return (start, j + 1);
        }
        j += 1;
    }
    (start, lines.len())
}

// ---------------------------------------------------------------------
// Token scan
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Tok {
    Ident(String),
    /// Integer literal; `None` when it overflows u128.
    Int(Option<u128>),
    Float,
    Punct(char),
}

pub(crate) fn tokenize(line: &str) -> Vec<Tok> {
    let chars: Vec<char> = line.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push(Tok::Ident(chars[start..i].iter().collect()));
        } else if c.is_ascii_digit() {
            let (tok, consumed) = scan_number(&chars[i..]);
            toks.push(tok);
            i += consumed;
        } else {
            toks.push(Tok::Punct(c));
            i += 1;
        }
    }
    toks
}

/// Scans a numeric literal, classifying int vs float and computing the
/// integer value when it fits.
fn scan_number(chars: &[char]) -> (Tok, usize) {
    let mut i = 0;
    let radix = if chars.len() >= 2 && chars[0] == '0' {
        match chars[1] {
            'x' | 'X' => 16,
            'o' | 'O' => 8,
            'b' | 'B' => 2,
            _ => 10,
        }
    } else {
        10
    };
    if radix != 10 {
        i = 2;
    }
    let mut digits = String::new();
    let mut is_float = false;
    while i < chars.len() {
        let c = chars[i];
        if c == '_' {
            i += 1;
        } else if c.is_digit(radix) {
            digits.push(c);
            i += 1;
        } else if radix == 10 && c == '.' {
            // `..` is a range, `.ident` a method call — not a float dot.
            match chars.get(i + 1) {
                Some(d) if d.is_ascii_digit() => {
                    is_float = true;
                    i += 1;
                }
                _ => break,
            }
        } else if radix == 10 && (c == 'e' || c == 'E') {
            let j = if matches!(chars.get(i + 1), Some('+') | Some('-')) {
                i + 2
            } else {
                i + 1
            };
            if matches!(chars.get(j), Some(d) if d.is_ascii_digit()) {
                is_float = true;
                i = j;
            } else {
                break;
            }
        } else if c.is_alphanumeric() {
            // Type suffix (u64, f32, usize...). f-suffix forces float.
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            let suffix: String = chars[start..i].iter().collect();
            if suffix.starts_with('f') {
                is_float = true;
            }
            break;
        } else {
            break;
        }
    }
    if is_float {
        (Tok::Float, i)
    } else {
        (Tok::Int(u128::from_str_radix(&digits, radix).ok()), i)
    }
}

struct RawFinding {
    rule: Rule,
    message: String,
}

const DIV_METHODS: &[&str] = &[
    "div_ceil",
    "div_euclid",
    "checked_div",
    "wrapping_div",
    "overflowing_div",
    "saturating_div",
    "rem_euclid",
    "checked_rem",
    "wrapping_rem",
    "overflowing_rem",
];

const ALLOC_TYPES: &[&str] = &[
    "Vec", "VecDeque", "Box", "String", "HashMap", "HashSet", "BTreeMap", "BTreeSet", "Rc", "Arc",
];

const ALLOC_METHODS: &[&str] = &["collect", "to_vec", "to_owned", "to_string"];

const PANIC_MACROS: &[&str] = &[
    "panic",
    "assert",
    "assert_eq",
    "assert_ne",
    "unreachable",
    "todo",
    "unimplemented",
];

/// Cast targets narrower than the modeled 64-bit datapath word.
const NARROW_INTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Wrapping arithmetic methods (division/remainder forms are covered by
/// [`DIV_METHODS`] under [`Rule::NonConstDiv`] instead).
const WRAPPING_METHODS: &[&str] = &[
    "wrapping_add",
    "wrapping_sub",
    "wrapping_mul",
    "wrapping_neg",
    "wrapping_shl",
    "wrapping_shr",
];

fn scan_line(toks: &[Tok], profile: Profile) -> Vec<RawFinding> {
    let rules = profile.rules();
    let mut out = Vec::new();
    let on = |r: Rule| rules.contains(&r);
    for (i, t) in toks.iter().enumerate() {
        let prev = if i > 0 { Some(&toks[i - 1]) } else { None };
        let next = toks.get(i + 1);
        match t {
            Tok::Punct(op @ ('/' | '%')) if on(Rule::NonConstDiv) => {
                // Divisor: the next token, skipping the `=` of a
                // compound assignment.
                let divisor = match next {
                    Some(Tok::Punct('=')) => toks.get(i + 2),
                    other => other,
                };
                if let Some(msg) = judge_divisor(*op, divisor) {
                    out.push(RawFinding {
                        rule: Rule::NonConstDiv,
                        message: msg,
                    });
                }
            }
            Tok::Ident(name) => {
                let after_dot = matches!(prev, Some(Tok::Punct('.')));
                let before_bang = matches!(next, Some(Tok::Punct('!')));
                if on(Rule::NonConstDiv) && after_dot && DIV_METHODS.contains(&name.as_str()) {
                    // The first argument is the divisor: `.m(` arg.
                    let arg = match toks.get(i + 1) {
                        Some(Tok::Punct('(')) => toks.get(i + 2),
                        _ => None,
                    };
                    let pow2_arg = matches!(
                        (arg, toks.get(i + 3)),
                        (Some(Tok::Int(Some(v))), Some(Tok::Punct(')'))) if v.is_power_of_two()
                    );
                    if !pow2_arg {
                        out.push(RawFinding {
                            rule: Rule::NonConstDiv,
                            message: format!(
                                "`.{name}()` with a non-power-of-two or non-constant divisor \
                                 needs a divider circuit"
                            ),
                        });
                    }
                }
                if on(Rule::Float) && (name == "f32" || name == "f64") {
                    out.push(RawFinding {
                        rule: Rule::Float,
                        message: format!("floating-point type `{name}`"),
                    });
                }
                if on(Rule::WideMul) && (name == "u128" || name == "i128") {
                    out.push(RawFinding {
                        rule: Rule::WideMul,
                        message: format!("`{name}` exceeds the modeled 64-bit datapath"),
                    });
                }
                if on(Rule::WideMul) && (name == "widening_mul" || name == "carrying_mul") {
                    out.push(RawFinding {
                        rule: Rule::WideMul,
                        message: format!("`{name}` produces a 128-bit product"),
                    });
                }
                if on(Rule::Alloc) {
                    if ALLOC_TYPES.contains(&name.as_str()) {
                        out.push(RawFinding {
                            rule: Rule::Alloc,
                            message: format!("heap-allocating type `{name}`"),
                        });
                    } else if after_dot && ALLOC_METHODS.contains(&name.as_str()) {
                        out.push(RawFinding {
                            rule: Rule::Alloc,
                            message: format!("allocating call `.{name}()`"),
                        });
                    } else if before_bang && (name == "vec" || name == "format") {
                        out.push(RawFinding {
                            rule: Rule::Alloc,
                            message: format!("allocating macro `{name}!`"),
                        });
                    }
                }
                if on(Rule::TruncCast) && name == "as" {
                    if let Some(Tok::Ident(target)) = next {
                        if NARROW_INTS.contains(&target.as_str()) {
                            out.push(RawFinding {
                                rule: Rule::TruncCast,
                                message: format!(
                                    "`as {target}` silently truncates the 64-bit datapath word"
                                ),
                            });
                        }
                    }
                }
                if on(Rule::WrappingArith) && after_dot && WRAPPING_METHODS.contains(&name.as_str())
                {
                    out.push(RawFinding {
                        rule: Rule::WrappingArith,
                        message: format!(
                            "`.{name}()` wraps on overflow; annotate where the modular \
                             behaviour is the intended hardware semantics"
                        ),
                    });
                }
                if on(Rule::Panic) {
                    if before_bang && PANIC_MACROS.contains(&name.as_str()) {
                        out.push(RawFinding {
                            rule: Rule::Panic,
                            message: format!("abort path `{name}!`"),
                        });
                    } else if after_dot && (name == "unwrap" || name == "expect") {
                        out.push(RawFinding {
                            rule: Rule::Panic,
                            message: format!("abort path `.{name}()`"),
                        });
                    }
                }
            }
            Tok::Float if on(Rule::Float) => {
                out.push(RawFinding {
                    rule: Rule::Float,
                    message: "floating-point literal".to_string(),
                });
            }
            _ => {}
        }
    }
    out
}

/// Returns a finding message if the divisor of `op` is not a
/// power-of-two constant, `None` if it is hardware-free.
fn judge_divisor(op: char, divisor: Option<&Tok>) -> Option<String> {
    let kind = if op == '/' { "division" } else { "modulo" };
    match divisor {
        Some(Tok::Int(Some(v))) => {
            if v.is_power_of_two() {
                None // shift or mask
            } else {
                Some(format!(
                    "{kind} by non-power-of-two constant {v} needs a divider circuit"
                ))
            }
        }
        Some(Tok::Int(None)) => Some(format!("{kind} by oversized constant")),
        _ => Some(format!(
            "{kind} by a non-constant divisor needs a divider circuit"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_of(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn pow2_div_and_mod_are_free() {
        let src = "fn f(x: u64) -> u64 { (x / 8) + (x % 16) + (x >> 2) }\n";
        assert_eq!(lint_source("t.rs", src, Profile::Datapath), vec![]);
    }

    #[test]
    fn nonconst_div_flagged() {
        let src = "fn f(x: u64, y: u64) -> u64 { x / y }\n";
        let f = lint_source("t.rs", src, Profile::Datapath);
        assert_eq!(rules_of(&f), vec![Rule::NonConstDiv]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn non_pow2_constant_flagged() {
        let src = "fn f(x: u64) -> u64 { x % 10 }\n";
        let f = lint_source("t.rs", src, Profile::Datapath);
        assert_eq!(rules_of(&f), vec![Rule::NonConstDiv]);
    }

    #[test]
    fn div_methods_flagged_unless_pow2_literal() {
        let src = "fn f(x: u64, y: u64) -> u64 { x.div_ceil(y) + x.div_ceil(8) }\n";
        let f = lint_source("t.rs", src, Profile::Datapath);
        assert_eq!(rules_of(&f), vec![Rule::NonConstDiv]);
    }

    #[test]
    fn float_and_wide_mul_flagged() {
        let src = "fn f(x: f64) -> u128 { let y = 1.5; (x as u128) }\n";
        let f = lint_source("t.rs", src, Profile::Datapath);
        assert!(rules_of(&f).contains(&Rule::Float));
        assert!(rules_of(&f).contains(&Rule::WideMul));
    }

    #[test]
    fn alloc_and_panic_flagged_in_datapath_only() {
        let src = "fn f(v: Vec<u64>) -> u64 { v.first().unwrap() + 1 }\n";
        let strict = lint_source("t.rs", src, Profile::Datapath);
        assert!(rules_of(&strict).contains(&Rule::Alloc));
        assert!(rules_of(&strict).contains(&Rule::Panic));
        assert_eq!(lint_source("t.rs", src, Profile::ArithmeticOnly), vec![]);
    }

    #[test]
    fn debug_assert_is_exempt() {
        let src = "fn f(x: u64) { debug_assert!(x > 0); debug_assert_eq!(x, x); }\n";
        assert_eq!(lint_source("t.rs", src, Profile::Datapath), vec![]);
    }

    #[test]
    fn comments_strings_and_tests_are_not_linted() {
        let src = "\
// a / b in a comment\n\
/* x % y in a block comment */\n\
fn f() -> &'static str { \"a / b % c\" }\n\
#[cfg(test)]\n\
mod tests {\n\
    fn g(x: u64, y: u64) -> u64 { x / y }\n\
}\n";
        assert_eq!(lint_source("t.rs", src, Profile::Datapath), vec![]);
    }

    #[test]
    fn lifetimes_do_not_break_char_stripping() {
        let src = "fn f<'a>(x: &'a u64, y: u64) -> u64 { *x / y }\n";
        let f = lint_source("t.rs", src, Profile::Datapath);
        assert_eq!(rules_of(&f), vec![Rule::NonConstDiv]);
    }

    #[test]
    fn same_line_allow_suppresses() {
        let src = "fn f(x: u64, y: u64) -> u64 { x / y } // pva-lint: allow(nonconst-div): y is pow2 by contract\n";
        assert_eq!(lint_source("t.rs", src, Profile::Datapath), vec![]);
    }

    #[test]
    fn standalone_allow_covers_next_block() {
        let src = "\
// pva-lint: allow(nonconst-div): table generation, not per-cycle\n\
fn f(x: u64, y: u64) -> u64 {\n\
    let a = x / y;\n\
    a % y\n\
}\n\
fn g(x: u64, y: u64) -> u64 { x / y }\n";
        let f = lint_source("t.rs", src, Profile::Datapath);
        assert_eq!(rules_of(&f), vec![Rule::NonConstDiv]);
        assert_eq!(f[0].line, 6, "only the unmarked fn is flagged");
    }

    #[test]
    fn unused_allow_is_flagged() {
        let src = "\
// pva-lint: allow(float): nothing here floats\n\
fn f(x: u64) -> u64 { x + 1 }\n";
        let f = lint_source("t.rs", src, Profile::Datapath);
        assert_eq!(rules_of(&f), vec![Rule::UnusedAllow]);
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unknown_rule_in_marker_is_flagged() {
        let src = "\
// pva-lint: allow(divide-freely)\n\
fn f(x: u64, y: u64) -> u64 { x / y }\n";
        let f = lint_source("t.rs", src, Profile::Datapath);
        assert!(rules_of(&f).contains(&Rule::BadMarker));
        assert!(rules_of(&f).contains(&Rule::NonConstDiv));
    }

    #[test]
    fn compound_assign_divide_flagged() {
        let src = "fn f(mut x: u64, y: u64) -> u64 { x /= y; x %= 4; x }\n";
        let f = lint_source("t.rs", src, Profile::Datapath);
        assert_eq!(
            rules_of(&f),
            vec![Rule::NonConstDiv],
            "only /= y; %= 4 is a mask"
        );
    }

    #[test]
    fn raw_strings_are_stripped() {
        let src = "fn f() -> &'static str { r#\"a / b\"# }\n";
        assert_eq!(lint_source("t.rs", src, Profile::Datapath), vec![]);
    }

    #[test]
    fn truncating_cast_flagged_in_datapath_only() {
        let src = "fn f(x: u64) -> u8 { x as u8 }\n";
        let f = lint_source("t.rs", src, Profile::Datapath);
        assert_eq!(rules_of(&f), vec![Rule::TruncCast]);
        assert_eq!(lint_source("t.rs", src, Profile::ArithmeticOnly), vec![]);
    }

    #[test]
    fn width_preserving_casts_are_free() {
        let src = "fn f(x: u32) -> u64 { (x as u64) + (x as usize as u64) }\n";
        assert_eq!(lint_source("t.rs", src, Profile::Datapath), vec![]);
    }

    #[test]
    fn truncating_cast_allow_suppresses() {
        let src =
            "fn f(x: u64) -> u8 { x as u8 } // pva-lint: allow(trunc-cast): low byte by design\n";
        assert_eq!(lint_source("t.rs", src, Profile::Datapath), vec![]);
    }

    #[test]
    fn wrapping_arith_flagged_in_datapath_only() {
        let src = "fn f(x: u64, y: u64) -> u64 { x.wrapping_add(y) }\n";
        let f = lint_source("t.rs", src, Profile::Datapath);
        assert_eq!(rules_of(&f), vec![Rule::WrappingArith]);
        assert_eq!(lint_source("t.rs", src, Profile::ArithmeticOnly), vec![]);
    }

    #[test]
    fn wrapping_div_stays_a_division_finding() {
        // Division forms belong to NonConstDiv (a divider circuit is the
        // objection, not the wrap).
        let src = "fn f(x: u64, y: u64) -> u64 { x.wrapping_div(y) }\n";
        let f = lint_source("t.rs", src, Profile::Datapath);
        assert_eq!(rules_of(&f), vec![Rule::NonConstDiv]);
    }

    #[test]
    fn wrapping_arith_allow_suppresses() {
        let src = "\
// pva-lint: allow(wrapping-arith): modular counter by design\n\
fn f(x: u64) -> u64 {\n\
    x.wrapping_mul(3)\n\
}\n";
        assert_eq!(lint_source("t.rs", src, Profile::Datapath), vec![]);
    }
}
