//! Wake-hint soundness, static half.
//!
//! The event-driven fast path of `pva-sim` sleeps each bank controller
//! until the hint published by `BankController::compute_wake`. The
//! contract is that the hint never lies *late*: every state field that
//! can make a sleeping controller actionable must contribute a wake
//! source, or the scheduler jumps over real work and the fast path
//! silently desynchronizes from the reference stepper.
//!
//! This pass mines `bank_controller.rs` with the same tokenizer the
//! synthesizability lint uses: it extracts the `compute_wake` body,
//! collects the identifiers it consults (the *wake sources*), and
//! checks them against [`WAKE_RULES`] — the declared mapping from each
//! actionable-state trigger in the tick path to the wake source that
//! must cover it. A trigger whose source disappears from
//! `compute_wake` is a finding; so is a rule whose trigger no longer
//! exists anywhere outside `compute_wake` (a stale rule is a lie about
//! the code and must be retired, not carried).
//!
//! The dynamic half is the `debug_assertions` oracle in
//! `pva-sim`'s event loop (`PvaUnit::assert_wake_sound`), which
//! brute-force replays every skipped window and is exercised by the
//! fig-7 equivalence sweep.

use std::collections::HashSet;
use std::path::Path;

use crate::lint::{strip, tokenize, Tok};

/// The bank-controller source this pass mines, relative to the
/// workspace root.
pub const CONTROLLER_SRC: &str = "crates/pva-sim/src/bank_controller.rs";

/// One soundness obligation: when `trigger` participates in the tick
/// path's actionable-state decisions, `source` must appear in
/// `compute_wake`.
#[derive(Debug, Clone, Copy)]
pub struct WakeRule {
    /// Identifier that marks a way the controller can become
    /// actionable (consulted by `tick`/`schedule`/`service_refresh`).
    pub trigger: &'static str,
    /// Identifier `compute_wake` must consult to cover the trigger.
    pub source: &'static str,
    /// Why the source covers the trigger.
    pub why: &'static str,
}

/// The declared trigger → wake-source coverage map.
pub const WAKE_RULES: &[WakeRule] = &[
    WakeRule {
        trigger: "pop_ready",
        source: "next_data_at",
        why: "returned read data must wake the controller when it reaches the pins",
    },
    WakeRule {
        trigger: "injectable_at",
        source: "injectable_at",
        why: "a FIFO head becomes consumable exactly at its injectable_at cycle",
    },
    WakeRule {
        trigger: "not_before",
        source: "not_before",
        why: "a pending retry re-enters a vector context when its backoff expires",
    },
    WakeRule {
        trigger: "refresh_due",
        source: "next_refresh_wake",
        why: "a due periodic refresh preempts normal work and must not oversleep",
    },
    WakeRule {
        trigger: "open_row",
        source: "activate_ready_at",
        why: "a context blocked on a closed bank becomes actionable when tRP/tRC expire",
    },
    WakeRule {
        trigger: "open_row",
        source: "access_ready_at",
        why: "a context blocked on its opening row becomes actionable when tRCD expires",
    },
    WakeRule {
        trigger: "open_row",
        source: "precharge_ready_at",
        why: "a context blocked behind another row becomes actionable when tRAS/tWR expire",
    },
    WakeRule {
        trigger: "should_defer_activate",
        source: "channel_next_expiry",
        why: "the tFAW slot count behind activate deferral changes when a channel gate expires",
    },
    WakeRule {
        trigger: "last_cas_group",
        source: "channel_next_expiry",
        why: "the group-interleave preference's candidate set changes when a tCCD gate expires",
    },
    WakeRule {
        trigger: "coalesce_run",
        source: "next_data_at",
        why: "a coalesced burst's later beats reach the pins on the data-return schedule",
    },
];

/// Extracts the brace-balanced body of `fn <name>` from stripped
/// source, returning `(body, rest_without_body)`.
fn split_fn_body(stripped: &str, name: &str) -> Option<(String, String)> {
    let needle = format!("fn {name}");
    let at = stripped.find(&needle)?;
    let open = at + stripped[at..].find('{')?;
    let mut depth = 0i64;
    for (i, c) in stripped[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    let end = open + i + 1;
                    let body = stripped[open..end].to_string();
                    let mut rest = String::with_capacity(stripped.len() - body.len());
                    rest.push_str(&stripped[..open]);
                    rest.push_str(&stripped[end..]);
                    return Some((body, rest));
                }
            }
            _ => {}
        }
    }
    None
}

/// Every identifier in `text`, via the lint tokenizer.
fn idents(text: &str) -> HashSet<String> {
    let mut out = HashSet::new();
    for line in text.lines() {
        for tok in tokenize(line) {
            if let Tok::Ident(name) = tok {
                out.insert(name);
            }
        }
    }
    out
}

/// Checks the wake rules against raw bank-controller source.
pub fn check_source(source: &str) -> Vec<String> {
    let (stripped, _comments) = strip(source);
    let Some((wake_body, rest)) = split_fn_body(&stripped, "compute_wake") else {
        return vec![format!(
            "{CONTROLLER_SRC}: `fn compute_wake` not found — the wake-hint contract \
             has no implementation to check"
        )];
    };
    if split_fn_body(&stripped, "tick").is_none() {
        return vec![format!(
            "{CONTROLLER_SRC}: `fn tick` not found — no tick path to mine for triggers"
        )];
    }
    let sources = idents(&wake_body);
    // Triggers are searched outside compute_wake (tick and the helpers
    // it calls), so a rule keyed on an identifier compute_wake itself
    // uses is still validated against the real tick path.
    let triggers = idents(&rest);

    let mut findings = Vec::new();
    for rule in WAKE_RULES {
        let triggered = triggers.contains(rule.trigger);
        let covered = sources.contains(rule.source);
        if triggered && !covered {
            findings.push(format!(
                "{CONTROLLER_SRC}: actionable-state trigger `{}` has no wake source: \
                 compute_wake no longer consults `{}` ({})",
                rule.trigger, rule.source, rule.why
            ));
        }
        if !triggered {
            findings.push(format!(
                "{CONTROLLER_SRC}: stale wake rule: trigger `{}` no longer appears in \
                 the tick path — retire or update the rule",
                rule.trigger
            ));
        }
    }
    findings
}

/// Runs the pass over the real controller source under `root`.
pub fn check(root: &Path) -> Vec<String> {
    match std::fs::read_to_string(root.join(CONTROLLER_SRC)) {
        Ok(source) => check_source(&source),
        Err(e) => vec![format!("{CONTROLLER_SRC}: unreadable: {e}")],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pristine() -> String {
        let root = crate::workspace_root();
        std::fs::read_to_string(root.join(CONTROLLER_SRC)).expect("controller source readable")
    }

    #[test]
    fn pristine_controller_passes() {
        assert_eq!(check_source(&pristine()), Vec::<String>::new());
    }

    #[test]
    fn missing_compute_wake_is_a_finding() {
        let findings = check_source("pub fn tick() {}\n");
        assert_eq!(findings.len(), 1);
        assert!(findings[0].contains("compute_wake"));
    }

    #[test]
    fn every_rule_is_load_bearing_on_the_pristine_source() {
        // Each rule's trigger must actually occur in today's tick path;
        // otherwise the rule is stale and the pass would say so.
        let (stripped, _) = strip(&pristine());
        let (_, rest) = split_fn_body(&stripped, "compute_wake").unwrap();
        let triggers = idents(&rest);
        for rule in WAKE_RULES {
            assert!(
                triggers.contains(rule.trigger),
                "stale rule: {}",
                rule.trigger
            );
        }
    }
}
