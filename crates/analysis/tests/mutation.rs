//! Mutation tests for the analysis passes: each test plants one seeded
//! defect of the kind the corresponding checker exists to catch, and
//! asserts the checker reports it. A checker that stays green on its
//! own mutation is dead weight, so every new pass earns its CI slot
//! here.

use pva_analysis::{lint_target, protocol_check, wake_check, Rule, DESIGNATED};
use sdram::{BankEvent, BankState, CmdClass, DeadlineModel, Outcome, SdramConfig, TRANSITIONS};

/// A mutated copy of the shipped transition table with the outcome for
/// `(state, event)` replaced.
fn mutate_table(
    state: BankState,
    event: BankEvent,
    outcome: Outcome,
) -> Vec<(BankState, BankEvent, Outcome)> {
    let mut table: Vec<_> = TRANSITIONS.to_vec();
    let entry = table
        .iter_mut()
        .find(|(s, e, _)| *s == state && *e == event)
        .expect("mutated entry exists in the shipped table");
    entry.2 = outcome;
    table
}

#[test]
fn protocol_checker_is_clean_on_the_pristine_table() {
    let cfg = SdramConfig::default();
    let model = DeadlineModel::of(&cfg);
    let findings = protocol_check::check_preset("pristine", &cfg, TRANSITIONS, &model);
    assert_eq!(findings, Vec::<String>::new());
}

#[test]
fn corrupted_fsm_entry_is_caught() {
    // Seeded defect: legalize READ on a closed bank. The dense LUT
    // (compiled from the pristine table) and the live device both still
    // refuse it, so the checker must flag the disagreement.
    let table = mutate_table(
        BankState::Idle,
        BankEvent::Command(CmdClass::Read),
        Outcome::Next(BankState::Active),
    );
    let cfg = SdramConfig::default();
    let model = DeadlineModel::of(&cfg);
    let findings = protocol_check::check_preset("mutated-fsm", &cfg, &table, &model);
    assert!(
        !findings.is_empty(),
        "a legalized READ-while-closed must be reported"
    );
    assert!(
        findings
            .iter()
            .any(|f| f.contains("dense lookup disagrees") || f.contains("device refuses")),
        "expected a dense-LUT or model-vs-device disagreement, got: {findings:?}"
    );
}

#[test]
fn corrupted_timing_deadline_is_caught() {
    // Seeded defect: the declarative model believes tRCD is one cycle
    // longer than the device enforces. The first ACTIVATE desynchronizes
    // the tRCD residuals and the checker's alignment pass must say so.
    let cfg = SdramConfig::default();
    let mut model = DeadlineModel::of(&cfg);
    model.t_rcd += 1;
    let findings = protocol_check::check_preset("mutated-deadline", &cfg, TRANSITIONS, &model);
    assert!(
        findings.iter().any(|f| f.contains("tRCD")),
        "a skewed tRCD deadline must be reported, got: {findings:?}"
    );
}

#[test]
fn dropped_wake_arm_is_caught() {
    // Seeded defect: compute_wake forgets the read-return wake source.
    // Renaming `next_data_at` out of existence models deleting that arm;
    // the trigger (`pop_ready` in the tick path) survives, so the static
    // pass must report the uncovered trigger.
    let root = pva_analysis::find_workspace_root().expect("workspace root");
    let pristine = std::fs::read_to_string(root.join(wake_check::CONTROLLER_SRC))
        .expect("controller source readable");
    assert_eq!(
        wake_check::check_source(&pristine),
        Vec::<String>::new(),
        "the pristine controller must pass before mutating it"
    );
    let mutated = pristine.replace("next_data_at", "next_data_at_gone");
    assert_ne!(mutated, pristine, "the wake source must exist to delete");
    let findings = wake_check::check_source(&mutated);
    assert!(
        findings
            .iter()
            .any(|f| f.contains("pop_ready") && f.contains("next_data_at")),
        "a dropped read-return wake arm must be reported, got: {findings:?}"
    );
}

#[test]
fn dropped_channel_wake_arm_is_caught() {
    // Seeded defect: compute_wake forgets the channel-gate wake arm the
    // generation-aware policy depends on. `channel_next_expiry` occurs
    // exactly once in the controller (inside compute_wake), so renaming
    // it models deleting the arm; the triggers (`should_defer_activate`
    // and `last_cas_group` in the scheduling path) survive, so the
    // static pass must report both uncovered triggers.
    let root = pva_analysis::find_workspace_root().expect("workspace root");
    let pristine = std::fs::read_to_string(root.join(wake_check::CONTROLLER_SRC))
        .expect("controller source readable");
    assert_eq!(
        wake_check::check_source(&pristine),
        Vec::<String>::new(),
        "the pristine controller must pass before mutating it"
    );
    let mutated = pristine.replace("channel_next_expiry", "channel_next_expiry_gone");
    assert_ne!(mutated, pristine, "the wake source must exist to delete");
    let findings = wake_check::check_source(&mutated);
    for trigger in ["should_defer_activate", "last_cas_group"] {
        assert!(
            findings
                .iter()
                .any(|f| f.contains(trigger) && f.contains("channel_next_expiry")),
            "a dropped channel wake arm must be reported for `{trigger}`, got: {findings:?}"
        );
    }
}

#[test]
fn missing_designated_file_is_a_finding() {
    // The lint driver must not silently skip a designated file that has
    // gone missing (renamed without updating DESIGNATED, or a broken
    // checkout): it reports the unreadable target as a finding.
    let findings = lint_target(
        std::path::Path::new("/nonexistent-pva-root"),
        &DESIGNATED[0],
    );
    assert_eq!(findings.len(), 1);
    assert_eq!(findings[0].rule, Rule::Unreadable);
    assert_eq!(findings[0].file, DESIGNATED[0].path);
}
