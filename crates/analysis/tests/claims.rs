//! The §4.1.4 hardware claim, verified statically, plus the injection
//! scenarios the CI gate must catch.
//!
//! The paper rejects the general recursive `NextHit` algorithm because
//! it "requires division and modulo by numbers that may not be powers
//! of two" (§4.1.2), and claims the closed-form solver needs only
//! shifts, masks and one small multiply (§4.1.4). Both halves are
//! checked here against the real sources: the closed-form module lints
//! *clean* under the strictest profile, and the recursive module lights
//! up.

use std::fs;

use pva_analysis::{lint_source, Profile, Rule, DESIGNATED};

fn read(rel: &str) -> String {
    let path = pva_analysis::workspace_root().join(rel);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("{rel}: {e}"))
}

/// §4.1.4: the closed-form FirstHit/NextHit datapath is synthesizable —
/// zero findings under the full datapath profile.
#[test]
fn closed_form_firsthit_is_synthesizable() {
    let findings = lint_source(
        "crates/pva-core/src/firsthit.rs",
        &read("crates/pva-core/src/firsthit.rs"),
        Profile::Datapath,
    );
    assert_eq!(findings, vec![], "firsthit.rs must lint clean");
}

/// §4.1.2: the rejected recursive algorithm is *not* synthesizable —
/// the lint finds the very divisions the paper objects to.
#[test]
fn recursive_algorithm_needs_dividers() {
    let findings = lint_source(
        "crates/pva-core/src/recursive.rs",
        &read("crates/pva-core/src/recursive.rs"),
        Profile::Datapath,
    );
    let divs = findings
        .iter()
        .filter(|f| f.rule == Rule::NonConstDiv)
        .count();
    assert!(
        divs >= 8,
        "expected many non-constant divisions in recursive.rs, got {divs}: {findings:?}"
    );
    assert!(
        findings.len() >= 10,
        "expected many findings overall, got {}",
        findings.len()
    );
}

/// The SEC-DED codec is datapath hardware (it sits between the column
/// mux and the pins), so it is held to the full synthesizability
/// profile: no allocation, no panics, shifts/masks/XOR trees only.
#[test]
fn secded_codec_is_synthesizable() {
    let findings = lint_source(
        "crates/sdram/src/ecc.rs",
        &read("crates/sdram/src/ecc.rs"),
        Profile::Datapath,
    );
    assert_eq!(findings, vec![], "ecc.rs must lint clean");
}

/// Every designated file lints clean under its assigned profile — the
/// binary's exit-zero contract on a clean tree.
#[test]
fn designated_files_lint_clean() {
    for t in DESIGNATED {
        let findings = lint_source(t.path, &read(t.path), t.profile);
        assert_eq!(findings, vec![], "{} must lint clean", t.path);
    }
}

/// Seeding a division into firsthit.rs is caught: the CI gate cannot be
/// satisfied by an empty lint.
#[test]
fn injected_division_is_caught() {
    let mut source = read("crates/pva-core/src/firsthit.rs");
    source.push_str("\npub fn seeded(x: u64, y: u64) -> u64 { x / y + x % 3 }\n");
    let findings = lint_source("firsthit.rs(seeded)", &source, Profile::Datapath);
    let divs: Vec<_> = findings
        .iter()
        .filter(|f| f.rule == Rule::NonConstDiv)
        .collect();
    assert_eq!(divs.len(), 2, "{findings:?}");
}

/// A deliberately broken SdramConfig fails the config pass.
#[test]
fn broken_sdram_config_fails_config_pass() {
    let bad = sdram::SdramConfig {
        internal_banks: 3,
        t_rc: 0,
        ..sdram::SdramConfig::default()
    };
    let problems = pva_analysis::config_check::check_sdram("broken", &bad);
    assert!(problems.len() >= 2, "{problems:?}");
}

/// Removing an entry from a transition table would be caught: simulate
/// by checking the FSM pass flags a deliberately truncated table shape.
/// (The shipped table is checked sound in the fsm_check unit tests; here
/// we pin that the pass output is empty on the shipped table so CI's
/// exit code reflects it.)
#[test]
fn shipped_fsm_table_passes() {
    assert_eq!(pva_analysis::fsm_check::check(), Vec::<String>::new());
}
