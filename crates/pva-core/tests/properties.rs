//! Property-based tests for the PVA core algorithms.
//!
//! Every closed form in the crate is checked against sequential
//! expansion over randomized vectors and geometries — the same oracle
//! discipline the paper used (gate-level model vs. behavioural model).

use proptest::prelude::*;
use pva_core::{
    bit_reverse, naive, next_hit_exact, next_hit_paper, split_vector, BankId, FullKiPla, Geometry,
    IndirectVector, K1Pla, LogicalView, MmcTlb, StrideClass, Vector, VectorSolver,
};

/// Strategy: a word-interleaved geometry of 2..=64 banks.
fn word_geometry() -> impl Strategy<Value = Geometry> {
    (1u32..=6).prop_map(|m| Geometry::word_interleaved(1 << m).unwrap())
}

/// Strategy: an arbitrary interleaved geometry (banks, block, width).
fn any_geometry() -> impl Strategy<Value = Geometry> {
    (1u32..=5, 0u32..=5, 0u32..=2)
        .prop_map(|(m, n, w)| Geometry::new(1 << m, 1 << n, 1 << w).unwrap())
}

/// Strategy: a vector with bounded parameters.
fn vector() -> impl Strategy<Value = Vector> {
    (0u64..1024, 1u64..256, 1u64..96).prop_map(|(b, s, l)| Vector::new(b, s, l).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 4.3: the closed-form FirstHit equals sequential expansion
    /// for every bank, on word-interleaved geometries.
    #[test]
    fn first_hit_matches_naive(g in word_geometry(), v in vector()) {
        let solver = VectorSolver::new(&v, &g);
        for b in 0..g.banks() {
            let b = BankId::new(b as usize);
            prop_assert_eq!(solver.first_hit(b), naive::first_hit(&v, b, &g));
        }
    }

    /// The per-bank subvectors partition the vector's element indices.
    #[test]
    fn subvectors_partition_elements(g in word_geometry(), v in vector()) {
        let solver = VectorSolver::new(&v, &g);
        let mut all: Vec<u64> = (0..g.banks())
            .flat_map(|b| solver.subvector_indices(BankId::new(b as usize)).collect::<Vec<_>>())
            .collect();
        all.sort_unstable();
        let want: Vec<u64> = (0..v.length()).collect();
        prop_assert_eq!(all, want);
    }

    /// Theorem 4.4: on any bank with at least two hits, consecutive hit
    /// indices differ by exactly NextHit(S) = 2^(m-s).
    #[test]
    fn next_hit_gap_is_uniform(g in word_geometry(), v in vector()) {
        let class = StrideClass::new(v.stride(), &g);
        for b in 0..g.banks() {
            let idx = naive::subvector_indices(&v, BankId::new(b as usize), &g);
            for w in idx.windows(2) {
                prop_assert_eq!(w[1] - w[0], class.next_hit());
            }
        }
    }

    /// Lemma 4.2: a bank is hit iff its distance from the base bank is a
    /// multiple of 2^s (given enough elements to wrap the banks).
    #[test]
    fn lemma_4_2_hit_set(g in word_geometry(), base in 0u64..1024, stride in 1u64..256) {
        // Long enough to visit every reachable bank.
        let v = Vector::new(base, stride, 4 * g.banks()).unwrap();
        let class = StrideClass::new(stride, &g);
        let solver = VectorSolver::new(&v, &g);
        for b in 0..g.banks() {
            let b = BankId::new(b as usize);
            let d = g.bank_distance(b, solver.base_bank());
            let reachable = class.s() < 64 && d % (1u64 << class.s()) == 0;
            prop_assert_eq!(solver.first_hit(b).is_hit(), reachable,
                "bank {} d {} s {}", b, d, class.s());
        }
    }

    /// Both PLA strategies agree with the arithmetic solver.
    #[test]
    fn plas_match_solver(g in word_geometry(), v in vector()) {
        let k1 = K1Pla::new(&g);
        let full = FullKiPla::new(&g);
        let solver = VectorSolver::new(&v, &g);
        for b in 0..g.banks() {
            let b = BankId::new(b as usize);
            prop_assert_eq!(k1.first_hit(&v, b), solver.first_hit(b));
            prop_assert_eq!(full.first_hit(&v, b), solver.first_hit(b));
        }
    }

    /// The logical-bank transformation (§4.1.3) gives the same per-bank
    /// subvectors as direct expansion on any geometry.
    #[test]
    fn logical_view_matches_naive(g in any_geometry(), v in vector()) {
        let view = LogicalView::new(&g);
        for b in 0..g.banks() {
            let b = BankId::new(b as usize);
            let got: Vec<u64> = view.subvector_indices(&v, b).collect();
            let want = naive::subvector_indices(&v, b, &g);
            prop_assert_eq!(got, want);
        }
    }

    /// The paper's recursive NextHit routine returns the minimal revisit
    /// distance whenever one exists.
    #[test]
    fn recursive_next_hit_is_minimal(
        nm_log in 3u32..=10,
        n_log in 0u32..=5,
        theta_seed in 0u64..1024,
        stride_seed in 1u64..1024,
    ) {
        let n_log = n_log.min(nm_log - 1);
        let (n, nm) = (1u64 << n_log, 1u64 << nm_log);
        let theta = theta_seed % n;
        let stride = 1 + stride_seed % (nm - 1);
        let (got, _) = next_hit_paper(theta, stride, n, nm);
        if let Some(want) = next_hit_exact(theta, stride, n, nm) {
            prop_assert_eq!(got, want, "theta={} stride={} n={} nm={}", theta, stride, n, nm);
        }
    }

    /// SplitVector covers every element exactly once, in order, and no
    /// sub-vector crosses a superpage.
    #[test]
    fn split_vector_covers_once(
        base in 0u64..(1 << 16),
        stride in 1u64..5000,
        len in 1u64..300,
        page_log in 8u32..=14,
    ) {
        let page = 1u64 << page_log;
        let tlb = MmcTlb::identity(1 << 24, page).unwrap();
        let v = Vector::new(base, stride, len).unwrap();
        let subs = split_vector(&v, &tlb).unwrap();
        let mut flat = Vec::new();
        for s in &subs {
            // No page crossing.
            let first = s.vector.base() / page;
            let last = s.vector.element(s.vector.length() - 1) / page;
            prop_assert_eq!(first, last);
            flat.extend(s.vector.addresses());
        }
        prop_assert_eq!(flat, v.addresses().collect::<Vec<_>>());
    }

    /// Bit reversal is an involutive permutation, and bank claims
    /// partition the elements.
    #[test]
    fn bitrev_partition(g in word_geometry(), base in 0u64..4096, k in 1u32..=8) {
        let v = pva_core::BitReversedVector::new(base, k).unwrap();
        let mut all: Vec<u64> = (0..g.banks())
            .flat_map(|b| v.subvector_indices(BankId::new(b as usize), &g).collect::<Vec<_>>())
            .collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..v.length()).collect::<Vec<u64>>());
        for i in 0..v.length() {
            prop_assert_eq!(bit_reverse(bit_reverse(i, k), k), i);
        }
    }

    /// Indirect-vector claims partition elements on any geometry.
    #[test]
    fn indirect_claims_partition(
        g in any_geometry(),
        base in 0u64..4096,
        offsets in prop::collection::vec(0u64..10_000, 1..64),
    ) {
        let iv = IndirectVector::new(base, offsets).unwrap();
        let mut all: Vec<u64> = (0..g.banks())
            .flat_map(|b| iv.claim(BankId::new(b as usize), &g).collect::<Vec<_>>())
            .collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..iv.length()).collect::<Vec<u64>>());
    }

    /// Vector chunking preserves the address sequence.
    #[test]
    fn chunks_preserve_addresses(v in vector(), max_len in 1u64..64) {
        let flat: Vec<u64> = v.chunks(max_len).flat_map(|c| c.addresses().collect::<Vec<_>>()).collect();
        prop_assert_eq!(flat, v.addresses().collect::<Vec<_>>());
    }
}

/// Strategy-free EDF properties (appended: §3.4.3 scheduling module).
mod edf {
    use proptest::prelude::*;
    use pva_core::{edf_schedule, feasible_by_enumeration, Task};

    fn task() -> impl Strategy<Value = Task> {
        (0u64..20, 1u64..6, 0u64..30).prop_map(|(release, exec, slack)| Task {
            release,
            exec,
            deadline: release + exec + slack,
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Any schedule EDF produces is feasible and deadline-ordered.
        #[test]
        fn edf_schedules_are_feasible(tasks in prop::collection::vec(task(), 0..7)) {
            if let Some(s) = edf_schedule(&tasks) {
                prop_assert_eq!(s.len(), tasks.len());
                let mut cursor = 0u64;
                for p in &s {
                    prop_assert!(p.feasible(), "{:?}", p);
                    prop_assert!(p.start >= cursor, "no overlap");
                    cursor = p.finish();
                }
                for w in s.windows(2) {
                    prop_assert!(w[0].task.deadline <= w[1].task.deadline);
                }
            }
        }

        /// If no permutation is feasible, EDF must not claim one.
        #[test]
        fn edf_never_fabricates(tasks in prop::collection::vec(task(), 0..6)) {
            if !feasible_by_enumeration(&tasks) {
                prop_assert!(edf_schedule(&tasks).is_none());
            }
        }
    }
}
