//! Property-style tests for the PVA core algorithms.
//!
//! Every closed form in the crate is checked against sequential
//! expansion over randomized vectors and geometries — the same oracle
//! discipline the paper used (gate-level model vs. behavioural model).
//! Randomization uses the in-tree deterministic [`SplitMix64`] (the
//! build is hermetic: no external proptest/rand crates), so every run
//! exercises an identical, reproducible case set.

use pva_core::{
    bit_reverse, naive, next_hit_exact, next_hit_paper, split_vector, BankId, FullKiPla, Geometry,
    IndirectVector, K1Pla, LogicalView, MmcTlb, SplitMix64, StrideClass, Vector, VectorSolver,
};

const CASES: u64 = 48;

/// A word-interleaved geometry of 2..=64 banks.
fn word_geometry(r: &mut SplitMix64) -> Geometry {
    Geometry::word_interleaved(1 << r.range(1, 7)).unwrap()
}

/// An arbitrary interleaved geometry (banks, block, width).
fn any_geometry(r: &mut SplitMix64) -> Geometry {
    Geometry::new(1 << r.range(1, 6), 1 << r.range(0, 6), 1 << r.range(0, 3)).unwrap()
}

/// A vector with bounded parameters.
fn vector(r: &mut SplitMix64) -> Vector {
    Vector::new(r.below(1024), r.range(1, 256), r.range(1, 96)).unwrap()
}

/// Theorem 4.3: the closed-form FirstHit equals sequential expansion
/// for every bank, on word-interleaved geometries.
#[test]
fn first_hit_matches_naive() {
    let mut r = SplitMix64::new(0x4301);
    for _ in 0..CASES {
        let g = word_geometry(&mut r);
        let v = vector(&mut r);
        let solver = VectorSolver::new(&v, &g);
        for b in 0..g.banks() {
            let b = BankId::new(b as usize);
            assert_eq!(solver.first_hit(b), naive::first_hit(&v, b, &g));
        }
    }
}

/// The per-bank subvectors partition the vector's element indices.
#[test]
fn subvectors_partition_elements() {
    let mut r = SplitMix64::new(0x4302);
    for _ in 0..CASES {
        let g = word_geometry(&mut r);
        let v = vector(&mut r);
        let solver = VectorSolver::new(&v, &g);
        let mut all: Vec<u64> = (0..g.banks())
            .flat_map(|b| {
                solver
                    .subvector_indices(BankId::new(b as usize))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable();
        let want: Vec<u64> = (0..v.length()).collect();
        assert_eq!(all, want);
    }
}

/// Theorem 4.4: on any bank with at least two hits, consecutive hit
/// indices differ by exactly NextHit(S) = 2^(m-s).
#[test]
fn next_hit_gap_is_uniform() {
    let mut r = SplitMix64::new(0x4303);
    for _ in 0..CASES {
        let g = word_geometry(&mut r);
        let v = vector(&mut r);
        let class = StrideClass::new(v.stride(), &g);
        for b in 0..g.banks() {
            let idx = naive::subvector_indices(&v, BankId::new(b as usize), &g);
            for w in idx.windows(2) {
                assert_eq!(w[1] - w[0], class.next_hit());
            }
        }
    }
}

/// Lemma 4.2: a bank is hit iff its distance from the base bank is a
/// multiple of 2^s (given enough elements to wrap the banks).
#[test]
fn lemma_4_2_hit_set() {
    let mut r = SplitMix64::new(0x4304);
    for _ in 0..CASES {
        let g = word_geometry(&mut r);
        let base = r.below(1024);
        let stride = r.range(1, 256);
        // Long enough to visit every reachable bank.
        let v = Vector::new(base, stride, 4 * g.banks()).unwrap();
        let class = StrideClass::new(stride, &g);
        let solver = VectorSolver::new(&v, &g);
        for b in 0..g.banks() {
            let b = BankId::new(b as usize);
            let d = g.bank_distance(b, solver.base_bank());
            let reachable = class.s() < 64 && d.is_multiple_of(1u64 << class.s());
            assert_eq!(
                solver.first_hit(b).is_hit(),
                reachable,
                "bank {} d {} s {}",
                b,
                d,
                class.s()
            );
        }
    }
}

/// Both PLA strategies agree with the arithmetic solver.
#[test]
fn plas_match_solver() {
    let mut r = SplitMix64::new(0x4305);
    for _ in 0..CASES {
        let g = word_geometry(&mut r);
        let v = vector(&mut r);
        let k1 = K1Pla::new(&g);
        let full = FullKiPla::new(&g);
        let solver = VectorSolver::new(&v, &g);
        for b in 0..g.banks() {
            let b = BankId::new(b as usize);
            assert_eq!(k1.first_hit(&v, b), solver.first_hit(b));
            assert_eq!(full.first_hit(&v, b), solver.first_hit(b));
        }
    }
}

/// The logical-bank transformation (§4.1.3) gives the same per-bank
/// subvectors as direct expansion on any geometry.
#[test]
fn logical_view_matches_naive() {
    let mut r = SplitMix64::new(0x4306);
    for _ in 0..CASES {
        let g = any_geometry(&mut r);
        let v = vector(&mut r);
        let view = LogicalView::new(&g);
        for b in 0..g.banks() {
            let b = BankId::new(b as usize);
            let got: Vec<u64> = view.subvector_indices(&v, b).collect();
            let want = naive::subvector_indices(&v, b, &g);
            assert_eq!(got, want);
        }
    }
}

/// The paper's recursive NextHit routine returns the minimal revisit
/// distance whenever one exists.
#[test]
fn recursive_next_hit_is_minimal() {
    let mut r = SplitMix64::new(0x4307);
    for _ in 0..CASES {
        let nm_log = r.range(3, 11) as u32;
        let n_log = (r.range(0, 6) as u32).min(nm_log - 1);
        let (n, nm) = (1u64 << n_log, 1u64 << nm_log);
        let theta = r.below(1024) % n;
        let stride = 1 + r.range(1, 1024) % (nm - 1);
        let (got, _) = next_hit_paper(theta, stride, n, nm);
        if let Some(want) = next_hit_exact(theta, stride, n, nm) {
            assert_eq!(got, want, "theta={theta} stride={stride} n={n} nm={nm}");
        }
    }
}

/// SplitVector covers every element exactly once, in order, and no
/// sub-vector crosses a superpage.
#[test]
fn split_vector_covers_once() {
    let mut r = SplitMix64::new(0x4308);
    for _ in 0..CASES {
        let base = r.below(1 << 16);
        let stride = r.range(1, 5000);
        let len = r.range(1, 300);
        let page = 1u64 << r.range(8, 15);
        let tlb = MmcTlb::identity(1 << 24, page).unwrap();
        let v = Vector::new(base, stride, len).unwrap();
        let subs = split_vector(&v, &tlb).unwrap();
        let mut flat = Vec::new();
        for s in &subs {
            // No page crossing.
            let first = s.vector.base() / page;
            let last = s.vector.element(s.vector.length() - 1) / page;
            assert_eq!(first, last);
            flat.extend(s.vector.addresses());
        }
        assert_eq!(flat, v.addresses().collect::<Vec<_>>());
    }
}

/// Bit reversal is an involutive permutation, and bank claims
/// partition the elements.
#[test]
fn bitrev_partition() {
    let mut r = SplitMix64::new(0x4309);
    for _ in 0..CASES {
        let g = word_geometry(&mut r);
        let base = r.below(4096);
        let k = r.range(1, 9) as u32;
        let v = pva_core::BitReversedVector::new(base, k).unwrap();
        let mut all: Vec<u64> = (0..g.banks())
            .flat_map(|b| {
                v.subvector_indices(BankId::new(b as usize), &g)
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..v.length()).collect::<Vec<u64>>());
        for i in 0..v.length() {
            assert_eq!(bit_reverse(bit_reverse(i, k), k), i);
        }
    }
}

/// Indirect-vector claims partition elements on any geometry.
#[test]
fn indirect_claims_partition() {
    let mut r = SplitMix64::new(0x430a);
    for _ in 0..CASES {
        let g = any_geometry(&mut r);
        let base = r.below(4096);
        let n = r.range(1, 64);
        let offsets: Vec<u64> = (0..n).map(|_| r.below(10_000)).collect();
        let iv = IndirectVector::new(base, offsets).unwrap();
        let mut all: Vec<u64> = (0..g.banks())
            .flat_map(|b| iv.claim(BankId::new(b as usize), &g).collect::<Vec<_>>())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..iv.length()).collect::<Vec<u64>>());
    }
}

/// Vector chunking preserves the address sequence.
#[test]
fn chunks_preserve_addresses() {
    let mut r = SplitMix64::new(0x430b);
    for _ in 0..CASES {
        let v = vector(&mut r);
        let max_len = r.range(1, 64);
        let flat: Vec<u64> = v
            .chunks(max_len)
            .flat_map(|c| c.addresses().collect::<Vec<_>>())
            .collect();
        assert_eq!(flat, v.addresses().collect::<Vec<_>>());
    }
}

/// Randomized EDF properties (§3.4.3 scheduling module).
mod edf {
    use pva_core::{edf_schedule, feasible_by_enumeration, SplitMix64, Task};

    fn task(r: &mut SplitMix64) -> Task {
        let release = r.below(20);
        let exec = r.range(1, 6);
        let slack = r.below(30);
        Task {
            release,
            exec,
            deadline: release + exec + slack,
        }
    }

    fn tasks(r: &mut SplitMix64, max: u64) -> Vec<Task> {
        let n = r.below(max);
        (0..n).map(|_| task(r)).collect()
    }

    /// Any schedule EDF produces is feasible and deadline-ordered.
    #[test]
    fn edf_schedules_are_feasible() {
        let mut r = SplitMix64::new(0x430c);
        for _ in 0..64 {
            let tasks = tasks(&mut r, 7);
            if let Some(s) = edf_schedule(&tasks) {
                assert_eq!(s.len(), tasks.len());
                let mut cursor = 0u64;
                for p in &s {
                    assert!(p.feasible(), "{p:?}");
                    assert!(p.start >= cursor, "no overlap");
                    cursor = p.finish();
                }
                for w in s.windows(2) {
                    assert!(w[0].task.deadline <= w[1].task.deadline);
                }
            }
        }
    }

    /// If no permutation is feasible, EDF must not claim one.
    #[test]
    fn edf_never_fabricates() {
        let mut r = SplitMix64::new(0x430d);
        for _ in 0..64 {
            let tasks = tasks(&mut r, 6);
            if !feasible_by_enumeration(&tasks) {
                assert!(edf_schedule(&tasks).is_none());
            }
        }
    }
}
