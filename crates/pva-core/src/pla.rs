//! PLA-style lookup-table implementations of `FirstHit`/`NextHit` (§4.2).
//!
//! In hardware, none of the quantities of Theorem 4.3 are computed at
//! run time with general arithmetic; they are "compiled into the
//! circuitry in the form of look-up tables". §4.2 and §4.3.1 sketch two
//! strategies with different scaling:
//!
//! * a **full `K_i` PLA** keyed by `(S mod M, d)` returning the first-hit
//!   index directly — fastest, but its size grows with the *square* of
//!   the bank count, limiting it to ~16 banks;
//! * a **`K_1` PLA** keyed by `S mod M` returning `(s, delta, K_1)`,
//!   followed by a small multiply `K_i = (K_1 * (d >> s)) & mask` —
//!   grows linearly in the bank count.
//!
//! Both are built here at "design time" from the closed forms and are
//! behaviourally identical to [`VectorSolver`]; their entry/bit counts
//! feed the Table-1 hardware-complexity proxy.

use crate::firsthit::{FirstHit, StrideClass};
use crate::geometry::{BankId, Geometry};
use crate::vector::Vector;

/// Size report for a lookup-table implementation.
///
/// # Examples
///
/// ```
/// use pva_core::{Geometry, K1Pla};
/// let g = Geometry::word_interleaved(16)?;
/// let pla = K1Pla::new(&g);
/// let c = pla.complexity();
/// assert_eq!(c.entries, 16); // one row per stride class
/// # Ok::<(), pva_core::PvaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlaComplexity {
    /// Number of table rows.
    pub entries: u64,
    /// Width of each row in bits.
    pub bits_per_entry: u64,
    /// Total storage, `entries * bits_per_entry`.
    pub total_bits: u64,
}

impl PlaComplexity {
    fn new(entries: u64, bits_per_entry: u64) -> Self {
        PlaComplexity {
            entries,
            bits_per_entry,
            total_bits: entries * bits_per_entry,
        }
    }
}

/// One row of the `K_1` PLA: everything Theorem 4.3/4.4 needs for a
/// stride class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct K1Entry {
    /// Trailing-zero count `s` of `S mod M` (`m` for the single-bank
    /// class `S mod M == 0`).
    pub s: u32,
    /// `NextHit` increment `delta = 2^(m-s)`.
    pub delta: u64,
    /// `K_1 = sigma^-1 mod 2^(m-s)`.
    pub k1: u64,
}

/// The linear-scaling `K_1` PLA: one row per value of `S mod M`.
///
/// Lookup plus a `(m-s)`-bit multiply yields any `K_i`; this is the
/// §4.3.1 recommendation for large memory systems.
#[derive(Debug, Clone)]
pub struct K1Pla {
    geometry: Geometry,
    rows: Vec<K1Entry>,
}

impl K1Pla {
    /// Builds the PLA for a word-interleaved geometry at design time.
    pub fn new(geometry: &Geometry) -> Self {
        let rows = (0..geometry.banks())
            .map(|sm| {
                let c = StrideClass::new(sm, geometry);
                K1Entry {
                    s: c.s(),
                    delta: c.next_hit(),
                    k1: c.k1(),
                }
            })
            .collect();
        K1Pla {
            geometry: *geometry,
            rows,
        }
    }

    /// Looks up the row for a stride (reduced modulo `M` internally, per
    /// Lemma 4.1).
    pub fn lookup(&self, stride: u64) -> K1Entry {
        self.rows[(stride & (self.geometry.banks() - 1)) as usize]
    }

    /// `FirstHit(V, b)` evaluated the way the FHP hardware module would:
    /// PLA lookup, modular subtract, multiply, mask, compare (§4.2).
    pub fn first_hit(&self, v: &Vector, b: BankId) -> FirstHit {
        let e = self.lookup(v.stride());
        let b0 = self.geometry.decode_bank(v.base());
        let d = self.geometry.bank_distance(b, b0);
        if e.s >= 64 || d & ((1u64 << e.s) - 1) != 0 {
            return FirstHit::Miss;
        }
        if e.delta == 1 {
            // Single-bank stride class: only the base bank hits.
            return if d == 0 {
                FirstHit::Hit(0)
            } else {
                FirstHit::Miss
            };
        }
        let i = d >> e.s;
        let ki = e.k1.wrapping_mul(i) & (e.delta - 1);
        if ki < v.length() {
            FirstHit::Hit(ki)
        } else {
            FirstHit::Miss
        }
    }

    /// `NextHit(S)`: the per-bank element increment, by table lookup.
    pub fn next_hit(&self, stride: u64) -> u64 {
        self.lookup(stride).delta
    }

    /// Storage cost. Row width: `s` needs `ceil(log2(m+1))` bits, `delta`
    /// and `K_1` need `m` bits each (stored as exponent + value).
    pub fn complexity(&self) -> PlaComplexity {
        let m = self.geometry.log2_banks() as u64;
        let s_bits = 64 - (m + 1).leading_zeros() as u64;
        PlaComplexity::new(self.geometry.banks(), s_bits + 2 * m.max(1))
    }
}

/// The quadratic-scaling full-`K_i` PLA: one row per `(S mod M, d)`
/// pair, returning the first-hit index directly with no multiplier.
///
/// This is the §4.2 option for small configurations ("if `M` is
/// sufficiently small"); §4.3.1 notes its complexity grows as the square
/// of the number of banks, capping practical designs near 16 banks.
#[derive(Debug, Clone)]
pub struct FullKiPla {
    geometry: Geometry,
    /// `rows[(S mod M) * M + d]` = first-hit index, or `u64::MAX` for
    /// "no hit" (the hardware encodes this as an extra valid bit).
    rows: Vec<u64>,
}

/// Sentinel for "no hit" rows in [`FullKiPla`].
const NO_HIT: u64 = u64::MAX;

impl FullKiPla {
    /// Builds the full table at design time.
    ///
    /// Hit indices stored here are *unclamped* `K_i` values — the
    /// hardware compares against the request's length at lookup time,
    /// because `V.L` is not known at design time.
    pub fn new(geometry: &Geometry) -> Self {
        let m = geometry.banks();
        let mut rows = vec![NO_HIT; (m * m) as usize];
        for sm in 0..m {
            let c = StrideClass::new(sm, geometry);
            for d in 0..m {
                let row = &mut rows[(sm * m + d) as usize];
                if c.s() >= 64 || d & ((1u64 << c.s()) - 1) != 0 {
                    continue;
                }
                if c.stride_mod_m() == 0 {
                    if d == 0 {
                        *row = 0;
                    }
                    continue;
                }
                let i = d >> c.s();
                *row = c.k1().wrapping_mul(i) & (c.next_hit() - 1);
            }
        }
        FullKiPla {
            geometry: *geometry,
            rows,
        }
    }

    /// `FirstHit(V, b)` by a single table lookup plus length compare.
    pub fn first_hit(&self, v: &Vector, b: BankId) -> FirstHit {
        let m = self.geometry.banks();
        let sm = v.stride() & (m - 1);
        let b0 = self.geometry.decode_bank(v.base());
        let d = self.geometry.bank_distance(b, b0);
        let ki = self.rows[(sm * m + d) as usize];
        if ki != NO_HIT && ki < v.length() {
            FirstHit::Hit(ki)
        } else {
            FirstHit::Miss
        }
    }

    /// Storage cost: `M^2` rows of `m` index bits plus a valid bit.
    pub fn complexity(&self) -> PlaComplexity {
        let m = self.geometry.log2_banks() as u64;
        PlaComplexity::new(self.geometry.banks() * self.geometry.banks(), m.max(1) + 1)
    }
}

/// Complexity of both PLA strategies across bank counts — the data behind
/// the §4.3.1 scaling argument and the Table-1 proxy sweep.
///
/// Returns `(banks, k1_bits, full_ki_bits)` tuples for `M` in
/// `2^1 ..= 2^max_log2_banks`.
pub fn scaling_sweep(max_log2_banks: u32) -> Vec<(u64, u64, u64)> {
    (1..=max_log2_banks)
        .map(|m| {
            let g = Geometry::word_interleaved(1 << m).expect("valid bank count");
            (
                g.banks(),
                K1Pla::new(&g).complexity().total_bits,
                FullKiPla::new(&g).complexity().total_bits,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firsthit::VectorSolver;

    #[test]
    fn k1_pla_matches_solver_exhaustive() {
        let g = Geometry::word_interleaved(16).unwrap();
        let pla = K1Pla::new(&g);
        for base in 0..16u64 {
            for stride in 1..=48u64 {
                for &len in &[1u64, 7, 32] {
                    let v = Vector::new(base, stride, len).unwrap();
                    let solver = VectorSolver::new(&v, &g);
                    for b in 0..16 {
                        let b = BankId::new(b);
                        assert_eq!(
                            pla.first_hit(&v, b),
                            solver.first_hit(b),
                            "base={base} stride={stride} len={len} bank={b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn full_ki_pla_matches_solver_exhaustive() {
        let g = Geometry::word_interleaved(8).unwrap();
        let pla = FullKiPla::new(&g);
        for base in 0..8u64 {
            for stride in 1..=32u64 {
                for &len in &[1u64, 3, 8, 32] {
                    let v = Vector::new(base, stride, len).unwrap();
                    let solver = VectorSolver::new(&v, &g);
                    for b in 0..8 {
                        let b = BankId::new(b);
                        assert_eq!(
                            pla.first_hit(&v, b),
                            solver.first_hit(b),
                            "base={base} stride={stride} len={len} bank={b}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn next_hit_lookup_matches_class() {
        let g = Geometry::word_interleaved(16).unwrap();
        let pla = K1Pla::new(&g);
        for stride in 1..64u64 {
            assert_eq!(
                pla.next_hit(stride),
                StrideClass::new(stride, &g).next_hit()
            );
        }
    }

    #[test]
    fn scaling_full_ki_is_quadratic_k1_is_linear() {
        let sweep = scaling_sweep(8);
        for w in sweep.windows(2) {
            let (m0, k1_0, full0) = w[0];
            let (m1, k1_1, full1) = w[1];
            assert_eq!(m1, 2 * m0);
            // Doubling banks roughly doubles the K1 PLA...
            assert!(k1_1 >= 2 * k1_0 && k1_1 <= 3 * k1_0, "{k1_0} -> {k1_1}");
            // ...but roughly quadruples the full-Ki PLA.
            assert!(full1 >= 4 * full0, "{full0} -> {full1}");
        }
    }

    #[test]
    fn sixteen_bank_tables_have_expected_shape() {
        let g = Geometry::word_interleaved(16).unwrap();
        assert_eq!(K1Pla::new(&g).complexity().entries, 16);
        assert_eq!(FullKiPla::new(&g).complexity().entries, 256);
    }
}
