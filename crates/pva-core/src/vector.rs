//! Base-stride vectors: the `V = <B, S, L>` tuple of §4.1.1.

use crate::error::PvaError;
use crate::geometry::WordAddr;

/// A base-stride application vector `V = <B, S, L>`.
///
/// `V[i]` is the word at address `B + i * S` for `i` in `0..L`. This is
/// the request unit the processor (or the Impulse front end) hands to the
/// PVA unit; a conventional cache-line fill is the special case `S = 1`.
///
/// # Examples
///
/// ```
/// use pva_core::Vector;
///
/// // The paper's example: V = <A, 4, 5> names A[0], A[4], ..., A[16].
/// let v = Vector::new(0, 4, 5)?;
/// let elems: Vec<u64> = v.addresses().collect();
/// assert_eq!(elems, vec![0, 4, 8, 12, 16]);
/// # Ok::<(), pva_core::PvaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Vector {
    base: WordAddr,
    stride: u64,
    length: u64,
}

impl Vector {
    /// Creates a vector with base word address `base`, stride `stride`
    /// (in words) and `length` elements.
    ///
    /// # Errors
    ///
    /// Returns [`PvaError::ZeroStride`] if `stride == 0` or
    /// [`PvaError::ZeroLength`] if `length == 0`.
    pub fn new(base: WordAddr, stride: u64, length: u64) -> Result<Self, PvaError> {
        if stride == 0 {
            return Err(PvaError::ZeroStride);
        }
        if length == 0 {
            return Err(PvaError::ZeroLength);
        }
        Ok(Vector {
            base,
            stride,
            length,
        })
    }

    /// Creates a unit-stride vector, i.e. a conventional cache-line fill
    /// of `length` words starting at `base`.
    ///
    /// # Errors
    ///
    /// Returns [`PvaError::ZeroLength`] if `length == 0`.
    pub fn unit_stride(base: WordAddr, length: u64) -> Result<Self, PvaError> {
        Vector::new(base, 1, length)
    }

    /// Base address `V.B`.
    pub const fn base(&self) -> WordAddr {
        self.base
    }

    /// Stride `V.S` in words.
    pub const fn stride(&self) -> u64 {
        self.stride
    }

    /// Length `V.L` in elements.
    pub const fn length(&self) -> u64 {
        self.length
    }

    /// Address of element `V[i]`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.length()` (in debug builds) or if the address
    /// computation overflows `u64`.
    pub fn element(&self, i: u64) -> WordAddr {
        debug_assert!(i < self.length, "element index {i} out of range");
        self.base + i * self.stride
    }

    /// Address one past the furthest element, i.e. the exclusive upper
    /// bound of the vector's footprint.
    pub fn end(&self) -> WordAddr {
        self.base + (self.length - 1) * self.stride + 1
    }

    /// Iterator over the element addresses `V[0], V[1], ..., V[L-1]`.
    ///
    /// This is the "sequential expansion" the PVA exists to avoid doing in
    /// hardware; in software it is the reference against which the
    /// closed-form algorithms are property-tested.
    pub fn addresses(&self) -> Addresses {
        Addresses {
            next: self.base,
            stride: self.stride,
            remaining: self.length,
        }
    }

    /// Splits off a prefix of `count` elements, returning `(prefix, rest)`
    /// where `rest` is `None` when `count >= self.length()`.
    ///
    /// Used by the page-splitting algorithm of §4.3.2 and by command
    /// units that must respect a maximum hardware vector length.
    ///
    /// # Panics
    ///
    /// Panics if `count == 0`.
    pub fn split_at(&self, count: u64) -> (Vector, Option<Vector>) {
        assert!(count > 0, "cannot split off an empty prefix");
        if count >= self.length {
            return (*self, None);
        }
        let prefix = Vector {
            base: self.base,
            stride: self.stride,
            length: count,
        };
        let rest = Vector {
            base: self.base + count * self.stride,
            stride: self.stride,
            length: self.length - count,
        };
        (prefix, Some(rest))
    }

    /// Breaks the vector into hardware-sized commands of at most
    /// `max_len` elements each, preserving order.
    ///
    /// # Panics
    ///
    /// Panics if `max_len == 0`.
    pub fn chunks(&self, max_len: u64) -> Chunks {
        assert!(max_len > 0, "chunk length must be nonzero");
        Chunks {
            rest: Some(*self),
            max_len,
        }
    }
}

impl core::fmt::Display for Vector {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "<{:#x}, {}, {}>", self.base, self.stride, self.length)
    }
}

/// Iterator over a vector's element addresses.
///
/// Produced by [`Vector::addresses`].
#[derive(Debug, Clone)]
pub struct Addresses {
    next: WordAddr,
    stride: u64,
    remaining: u64,
}

impl Iterator for Addresses {
    type Item = WordAddr;

    fn next(&mut self) -> Option<WordAddr> {
        if self.remaining == 0 {
            return None;
        }
        let addr = self.next;
        self.remaining -= 1;
        if self.remaining > 0 {
            self.next += self.stride;
        }
        Some(addr)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.remaining as usize;
        (n, Some(n))
    }
}

impl DoubleEndedIterator for Addresses {
    fn next_back(&mut self) -> Option<WordAddr> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        Some(self.next + self.remaining * self.stride)
    }
}

impl ExactSizeIterator for Addresses {}

/// Iterator over hardware-sized sub-vectors.
///
/// Produced by [`Vector::chunks`].
#[derive(Debug, Clone)]
pub struct Chunks {
    rest: Option<Vector>,
    max_len: u64,
}

impl Iterator for Chunks {
    type Item = Vector;

    fn next(&mut self) -> Option<Vector> {
        let v = self.rest.take()?;
        let (prefix, rest) = v.split_at(self.max_len.min(v.length()));
        self.rest = rest;
        Some(prefix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_vectors() {
        assert_eq!(Vector::new(0, 0, 4).unwrap_err(), PvaError::ZeroStride);
        assert_eq!(Vector::new(0, 4, 0).unwrap_err(), PvaError::ZeroLength);
    }

    #[test]
    fn element_addresses() {
        let v = Vector::new(100, 7, 4).unwrap();
        assert_eq!(v.element(0), 100);
        assert_eq!(v.element(3), 121);
        assert_eq!(v.end(), 122);
        assert_eq!(v.addresses().collect::<Vec<_>>(), vec![100, 107, 114, 121]);
    }

    #[test]
    fn addresses_is_exact_size() {
        let v = Vector::new(0, 3, 10).unwrap();
        let it = v.addresses();
        assert_eq!(it.len(), 10);
        assert_eq!(it.count(), 10);
    }

    #[test]
    fn addresses_reverses() {
        let v = Vector::new(100, 7, 4).unwrap();
        let rev: Vec<u64> = v.addresses().rev().collect();
        assert_eq!(rev, vec![121, 114, 107, 100]);
        // Mixed front/back consumption stays consistent.
        let mut it = v.addresses();
        assert_eq!(it.next(), Some(100));
        assert_eq!(it.next_back(), Some(121));
        assert_eq!(it.next(), Some(107));
        assert_eq!(it.next_back(), Some(114));
        assert_eq!(it.next(), None);
    }

    #[test]
    fn split_at_partitions_elements() {
        let v = Vector::new(8, 5, 10).unwrap();
        let (a, b) = v.split_at(4);
        let b = b.unwrap();
        assert_eq!(a.length() + b.length(), 10);
        let mut all: Vec<u64> = a.addresses().collect();
        all.extend(b.addresses());
        assert_eq!(all, v.addresses().collect::<Vec<_>>());
    }

    #[test]
    fn split_at_beyond_length_returns_whole() {
        let v = Vector::new(8, 5, 10).unwrap();
        let (a, b) = v.split_at(10);
        assert_eq!(a, v);
        assert!(b.is_none());
        let (a, b) = v.split_at(100);
        assert_eq!(a, v);
        assert!(b.is_none());
    }

    #[test]
    fn chunks_cover_exactly_once() {
        let v = Vector::new(3, 19, 100).unwrap();
        let mut all = Vec::new();
        for c in v.chunks(32) {
            assert!(c.length() <= 32);
            all.extend(c.addresses());
        }
        assert_eq!(all, v.addresses().collect::<Vec<_>>());
        // 100 = 32 + 32 + 32 + 4
        assert_eq!(v.chunks(32).count(), 4);
        assert_eq!(v.chunks(32).last().unwrap().length(), 4);
    }

    #[test]
    fn display_matches_paper_tuple_form() {
        let v = Vector::new(0x40, 4, 5).unwrap();
        assert_eq!(v.to_string(), "<0x40, 4, 5>");
    }

    #[test]
    fn unit_stride_is_line_fill() {
        let v = Vector::unit_stride(64, 32).unwrap();
        assert_eq!(v.stride(), 1);
        assert_eq!(v.addresses().next_back().unwrap(), 95);
    }
}
