//! The logical-bank transformation of §4.1.3.
//!
//! `FirstHit` has no fast hardware form for cache-line interleaved memory
//! (§4.1.2: the general solution needs chains of non-power-of-two
//! divisions). The paper's fix is a change of view: a `W x N x M` memory
//! is treated as `W*N*M` *logical* banks, each word-interleaved
//! (`W = N = 1`). Under that view `delta_theta = 0` always, so every
//! vector reduces to the easy Case 1 and the closed-form solver of
//! [`crate::firsthit`] applies. The price is `W*N` copies of the
//! first-hit logic per physical bank controller.
//!
//! [`LogicalView`] packages this: it exposes, for a physical bank, the
//! union of the subvectors of its `W*N` logical banks.

use crate::firsthit::{FirstHit, VectorSolver};
use crate::geometry::{BankId, Geometry, WordAddr};
use crate::vector::Vector;

/// A cache-line / block interleaved memory viewed as `W*N*M` logical
/// word-interleaved banks.
///
/// # Examples
///
/// ```
/// use pva_core::{BankId, Geometry, LogicalView, Vector};
///
/// // M=8 banks, N=4 words per block (the paper's 4.1.2 examples).
/// let g = Geometry::cacheline_interleaved(8, 4)?;
/// let view = LogicalView::new(&g);
/// // Example 4: B=0, S=9, L=10 hits banks 0,2,4,6,1,3,5,7,2,4.
/// let v = Vector::new(0, 9, 10)?;
/// // Bank 2 holds elements 1 (addr 9) and 8 (addr 72).
/// let idx: Vec<u64> = view.subvector_indices(&v, BankId::new(2)).collect();
/// assert_eq!(idx, vec![1, 8]);
/// # Ok::<(), pva_core::PvaError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct LogicalView {
    physical: Geometry,
    /// Word-interleaved geometry with `W*N*M` banks.
    logical: Geometry,
}

impl LogicalView {
    /// Builds the logical view of `physical`.
    ///
    /// # Panics
    ///
    /// Never panics: any valid [`Geometry`] has a valid logical
    /// expansion (`W*N*M` is a power of two that already fit in the
    /// address space).
    pub fn new(physical: &Geometry) -> Self {
        let logical = Geometry::word_interleaved(physical.logical_banks())
            // pva-lint: allow(panic): infallible by the Geometry overflow check; runs once at configuration time
            .expect("logical bank count is a valid power of two");
        LogicalView {
            physical: *physical,
            logical,
        }
    }

    /// The underlying physical geometry.
    pub const fn physical(&self) -> &Geometry {
        &self.physical
    }

    /// The equivalent word-interleaved geometry (`W*N*M` banks of one
    /// word each).
    pub const fn logical(&self) -> &Geometry {
        &self.logical
    }

    /// Number of logical banks per physical bank (`W*N`), i.e. how many
    /// copies of the first-hit logic each bank controller carries.
    pub const fn logical_per_physical(&self) -> u64 {
        1u64 << (self.physical.log2_width_words() + self.physical.log2_block_words())
    }

    /// The logical bank holding machine-word address `addr`:
    /// `addr mod (W*N*M)`.
    pub const fn decode_logical(&self, addr: WordAddr) -> BankId {
        self.logical.decode_bank(addr)
    }

    /// The logical banks owned by physical bank `b`:
    /// `b*W*N .. (b+1)*W*N`.
    pub fn logical_banks_of(&self, b: BankId) -> impl Iterator<Item = BankId> {
        let per = self.logical_per_physical() as usize;
        (b.index() * per..(b.index() + 1) * per).map(BankId::new)
    }

    /// The physical bank that owns logical bank `l`.
    pub const fn physical_of(&self, l: BankId) -> BankId {
        let shift = self.physical.log2_width_words() + self.physical.log2_block_words();
        BankId::new(l.index() >> shift)
    }

    /// `FirstHit(V, b)` for a *physical* bank under cache-line
    /// interleave: the minimum of the logical first hits of its `W*N`
    /// logical banks (§4.2, block-interleaved option).
    pub fn first_hit(&self, v: &Vector, b: BankId) -> FirstHit {
        let solver = VectorSolver::new(v, &self.logical);
        self.logical_banks_of(b)
            .filter_map(|l| solver.first_hit(l).index())
            .min()
            .map_or(FirstHit::Miss, FirstHit::Hit)
    }

    /// All element indices of `v` residing in physical bank `b`, in
    /// increasing order: the sorted merge of the arithmetic sequences of
    /// its logical banks.
    // pva-lint: allow(alloc): the hardware merges W*N arithmetic sequences with comparators; the software model materializes and sorts
    pub fn subvector_indices(&self, v: &Vector, b: BankId) -> SubvectorIndices {
        let solver = VectorSolver::new(v, &self.logical);
        let mut indices: Vec<u64> = self
            .logical_banks_of(b)
            .flat_map(|l| solver.subvector_indices(l).collect::<Vec<_>>())
            .collect();
        indices.sort_unstable();
        SubvectorIndices {
            inner: indices.into_iter(),
        }
    }

    /// The machine-word addresses of `v`'s elements in physical bank
    /// `b`, in increasing element order.
    pub fn subvector_addresses<'a>(
        &self,
        v: &'a Vector,
        b: BankId,
    ) -> impl Iterator<Item = WordAddr> + 'a {
        let v = *v;
        self.subvector_indices(&v, b).map(move |i| v.element(i))
    }
}

/// Iterator over the element indices a physical bank serves under a
/// logical view.
///
/// Produced by [`LogicalView::subvector_indices`].
#[derive(Debug, Clone)]
pub struct SubvectorIndices {
    inner: std::vec::IntoIter<u64>,
}

impl Iterator for SubvectorIndices {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        self.inner.next()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for SubvectorIndices {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firsthit::naive;

    /// Naive oracle at the physical level.
    fn naive_physical_indices(v: &Vector, b: BankId, g: &Geometry) -> Vec<u64> {
        naive::subvector_indices(v, b, g)
    }

    #[test]
    fn logical_decode_agrees_with_physical() {
        // For every address, the logical bank must belong to the correct
        // physical bank.
        for (banks, block, width) in [(8u64, 4u64, 1u64), (2, 2, 4), (16, 32, 1), (4, 1, 2)] {
            let g = Geometry::new(banks, block, width).unwrap();
            let view = LogicalView::new(&g);
            for addr in 0..(4 * g.period()) {
                let l = view.decode_logical(addr);
                assert_eq!(
                    view.physical_of(l),
                    g.decode_bank(addr),
                    "geometry {g}, addr {addr}"
                );
            }
        }
    }

    #[test]
    fn paper_figure_4_5_geometry() {
        // N=2, W=4, M=2: 16 logical banks, 8 logical per physical.
        let g = Geometry::new(2, 2, 4).unwrap();
        let view = LogicalView::new(&g);
        assert_eq!(view.logical().banks(), 16);
        assert_eq!(view.logical_per_physical(), 8);
        let owned: Vec<usize> = view
            .logical_banks_of(BankId::new(1))
            .map(|l| l.index())
            .collect();
        assert_eq!(owned, vec![8, 9, 10, 11, 12, 13, 14, 15]);
    }

    #[test]
    fn cacheline_first_hit_matches_naive_exhaustive() {
        let g = Geometry::cacheline_interleaved(8, 4).unwrap();
        let view = LogicalView::new(&g);
        for base in 0..16u64 {
            for stride in 1..=40u64 {
                let v = Vector::new(base, stride, 24).unwrap();
                for b in 0..8 {
                    let b = BankId::new(b);
                    assert_eq!(
                        view.first_hit(&v, b),
                        naive::first_hit(&v, b, &g),
                        "base={base} stride={stride} bank={b}"
                    );
                }
            }
        }
    }

    #[test]
    fn cacheline_subvectors_match_naive() {
        let g = Geometry::cacheline_interleaved(8, 4).unwrap();
        let view = LogicalView::new(&g);
        for stride in [1u64, 3, 8, 9, 12, 19, 31, 32, 33] {
            let v = Vector::new(5, stride, 32).unwrap();
            for b in 0..8 {
                let b = BankId::new(b);
                let got: Vec<u64> = view.subvector_indices(&v, b).collect();
                assert_eq!(
                    got,
                    naive_physical_indices(&v, b, &g),
                    "stride={stride} bank={b}"
                );
            }
        }
    }

    #[test]
    fn wide_bank_subvectors_match_naive() {
        // W=4 machine words per memory word, N=2, M=2 (figure 4/5).
        let g = Geometry::new(2, 2, 4).unwrap();
        let view = LogicalView::new(&g);
        for stride in 1..=24u64 {
            let v = Vector::new(3, stride, 20).unwrap();
            for b in 0..2 {
                let b = BankId::new(b);
                let got: Vec<u64> = view.subvector_indices(&v, b).collect();
                assert_eq!(got, naive_physical_indices(&v, b, &g), "stride={stride}");
            }
        }
    }

    #[test]
    fn union_over_physical_banks_is_complete() {
        let g = Geometry::cacheline_interleaved(16, 32).unwrap();
        let view = LogicalView::new(&g);
        let v = Vector::new(1000, 19, 32).unwrap();
        let mut all: Vec<u64> = (0..16)
            .flat_map(|b| {
                view.subvector_indices(&v, BankId::new(b))
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..32).collect::<Vec<u64>>());
    }

    #[test]
    fn word_interleave_logical_view_is_identity() {
        let g = Geometry::word_interleaved(16).unwrap();
        let view = LogicalView::new(&g);
        assert_eq!(view.logical_per_physical(), 1);
        let v = Vector::new(7, 10, 32).unwrap();
        let solver = VectorSolver::new(&v, &g);
        for b in 0..16 {
            let b = BankId::new(b);
            assert_eq!(view.first_hit(&v, b), solver.first_hit(b));
        }
    }
}
