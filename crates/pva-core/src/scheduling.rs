//! Scheduling theory background (§3.4): nonpreemptive
//! Earliest-Deadline-First.
//!
//! The paper surveys scheduling approaches for access reordering and
//! singles out nonpreemptive EDF as the one "more amenable to hardware
//! implementation" (§3.4.3), giving its algorithm:
//!
//! 1. schedule the latest-deadline task as late as possible
//!    (`[D_n - E_n, D_n]`),
//! 2. repeat for the remaining tasks in decreasing deadline order,
//!    placing each as late as possible before the already-placed work,
//! 3. shift everything forward (earlier) as much as possible,
//!    preserving order.
//!
//! This module implements that algorithm, plus a brute-force optimal
//! checker used to property-test it on small task sets. It exists to
//! make the paper's §3.4 discussion concrete — the production PVA
//! scheduler (the SPU daisy chain) deliberately uses a much simpler
//! heuristic, because "in general the algorithms in this area are too
//! complex to be implemented fast in hardware".

/// One nonpreemptive task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// Earliest cycle the task may start.
    pub release: u64,
    /// Execution time in cycles (nonpreemptive).
    pub exec: u64,
    /// Absolute deadline: the task must finish at or before this cycle.
    pub deadline: u64,
}

/// A scheduled task: the input task plus its assigned start time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// The task.
    pub task: Task,
    /// Assigned start cycle.
    pub start: u64,
}

impl Placement {
    /// Completion time.
    pub const fn finish(&self) -> u64 {
        self.start + self.task.exec
    }

    /// Whether the placement respects release and deadline.
    pub const fn feasible(&self) -> bool {
        self.start >= self.task.release && self.finish() <= self.task.deadline
    }
}

/// Schedules `tasks` on one resource by the §3.4.3 nonpreemptive EDF
/// construction. Returns the placements in execution order, or `None`
/// if the construction cannot meet every deadline.
///
/// # Examples
///
/// ```
/// use pva_core::{edf_schedule, Task};
///
/// let tasks = vec![
///     Task { release: 0, exec: 3, deadline: 10 },
///     Task { release: 0, exec: 2, deadline: 4 },
/// ];
/// let sched = edf_schedule(&tasks).expect("feasible");
/// // The tight-deadline task runs first.
/// assert_eq!(sched[0].task.deadline, 4);
/// assert!(sched.iter().all(|p| p.feasible()));
/// ```
pub fn edf_schedule(tasks: &[Task]) -> Option<Vec<Placement>> {
    if tasks.is_empty() {
        return Some(Vec::new());
    }
    // Step 1 + 2: place in decreasing deadline order, each as late as
    // possible (bounded by its own deadline and the next task's start).
    let mut order: Vec<Task> = tasks.to_vec();
    order.sort_by_key(|t| t.deadline);
    let mut placed: Vec<Placement> = Vec::with_capacity(order.len());
    let mut next_start = u64::MAX;
    for t in order.iter().rev() {
        let latest_finish = t.deadline.min(next_start);
        if latest_finish < t.exec {
            return None;
        }
        let start = latest_finish - t.exec;
        if start < t.release {
            return None;
        }
        placed.push(Placement { task: *t, start });
        next_start = start;
    }
    placed.reverse();
    // Step 3: move tasks forward as much as possible, keeping order.
    let mut earliest = 0u64;
    for p in &mut placed {
        let start = p.task.release.max(earliest);
        debug_assert!(start <= p.start, "shifting may only move earlier");
        p.start = start;
        earliest = p.finish();
    }
    debug_assert!(placed.iter().all(|p| p.feasible()));
    Some(placed)
}

/// Brute-force feasibility: tries every permutation (greedy start
/// times). Exponential — test oracle only.
pub fn feasible_by_enumeration(tasks: &[Task]) -> bool {
    fn permute(rest: &mut Vec<Task>, current: u64) -> bool {
        if rest.is_empty() {
            return true;
        }
        for i in 0..rest.len() {
            let t = rest.remove(i);
            let start = t.release.max(current);
            if start + t.exec <= t.deadline && permute(rest, start + t.exec) {
                rest.insert(i, t);
                return true;
            }
            rest.insert(i, t);
        }
        false
    }
    permute(&mut tasks.to_vec(), 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        assert_eq!(edf_schedule(&[]), Some(vec![]));
        let t = Task {
            release: 2,
            exec: 3,
            deadline: 9,
        };
        let s = edf_schedule(&[t]).unwrap();
        assert_eq!(s[0].start, 2);
    }

    #[test]
    fn orders_by_deadline() {
        let tasks = vec![
            Task {
                release: 0,
                exec: 2,
                deadline: 20,
            },
            Task {
                release: 0,
                exec: 2,
                deadline: 5,
            },
            Task {
                release: 0,
                exec: 2,
                deadline: 10,
            },
        ];
        let s = edf_schedule(&tasks).unwrap();
        let deadlines: Vec<u64> = s.iter().map(|p| p.task.deadline).collect();
        assert_eq!(deadlines, vec![5, 10, 20]);
        // Shifted forward: back-to-back from cycle 0.
        assert_eq!(s[0].start, 0);
        assert_eq!(s[1].start, 2);
        assert_eq!(s[2].start, 4);
    }

    #[test]
    fn infeasible_detected() {
        let tasks = vec![
            Task {
                release: 0,
                exec: 5,
                deadline: 6,
            },
            Task {
                release: 0,
                exec: 5,
                deadline: 7,
            },
        ];
        assert!(edf_schedule(&tasks).is_none());
        assert!(!feasible_by_enumeration(&tasks));
    }

    #[test]
    fn respects_release_times() {
        let tasks = vec![
            Task {
                release: 4,
                exec: 2,
                deadline: 8,
            },
            Task {
                release: 0,
                exec: 2,
                deadline: 20,
            },
        ];
        let s = edf_schedule(&tasks).unwrap();
        for p in &s {
            assert!(p.feasible(), "{p:?}");
        }
    }

    #[test]
    fn nonpreemptive_edf_is_not_always_optimal() {
        // The classic counterexample: nonpreemptive EDF (the deadline-
        // ordered construction) fails where another order succeeds when
        // a late-released urgent task conflicts with an early loose one.
        let tasks = vec![
            Task {
                release: 0,
                exec: 4,
                deadline: 20,
            }, // loose, long
            Task {
                release: 1,
                exec: 2,
                deadline: 3,
            }, // urgent, late release
        ];
        // Deadline order runs the urgent task first, but it is not
        // released at 0... the construction places it at 1..3, then the
        // loose task after. Actually feasible here:
        let s = edf_schedule(&tasks);
        assert!(s.is_some());
        // A genuinely hard instance: the urgent task's window excludes
        // any placement once release times force idle gaps.
        let tasks = vec![
            Task {
                release: 0,
                exec: 4,
                deadline: 4,
            },
            Task {
                release: 2,
                exec: 1,
                deadline: 3,
            },
        ];
        // Enumeration also fails (truly infeasible nonpreemptively).
        assert!(edf_schedule(&tasks).is_none());
        assert!(!feasible_by_enumeration(&tasks));
    }
}
