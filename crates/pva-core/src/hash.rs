//! A minimal non-cryptographic hasher for the simulator's interior
//! tables.
//!
//! `std::collections::HashMap` defaults to SipHash-1-3, whose
//! flood-resistance matters for hash tables keyed by attacker-chosen
//! input. The simulator's maps are keyed by device word addresses,
//! `(bank, row)` pairs and transaction ids — small integers it
//! generates itself — and sit on the per-element hot path of every
//! modeled read and write, where SipHash's setup cost dominates the
//! lookup. [`FastHasher`] replaces it with a multiply-rotate fold plus
//! a SplitMix64-style finalizer: two multiplies end to end, full
//! avalanche on the output, identical stream on every platform (no
//! per-process random seed), so simulation results stay reproducible
//! run to run.
//!
//! Not for untrusted keys — this is deliberately not DoS-resistant.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Odd golden-ratio multiplier (same constant SplitMix64 increments
/// by); any odd constant with good bit dispersion works.
const MULT: u64 = 0x9E37_79B9_7F4A_7C15;

/// A fast multiply-rotate hasher for integer-keyed interior maps. See
/// the module docs for the contract.
#[derive(Debug, Clone, Default)]
pub struct FastHasher {
    state: u64,
}

impl Hasher for FastHasher {
    fn finish(&self) -> u64 {
        // SplitMix64 finalizer: full avalanche over the folded state.
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(buf));
        }
    }

    fn write_u8(&mut self, n: u8) {
        self.write_u64(u64::from(n));
    }

    fn write_u16(&mut self, n: u16) {
        self.write_u64(u64::from(n));
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(u64::from(n));
    }

    fn write_u64(&mut self, n: u64) {
        self.state = (self.state.rotate_left(26) ^ n).wrapping_mul(MULT);
    }

    fn write_u128(&mut self, n: u128) {
        self.write_u64(n as u64);
        self.write_u64((n >> 64) as u64);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// A `HashMap` using [`FastHasher`] — drop-in for integer-keyed
/// simulator tables on the modeled-element hot path.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        BuildHasherDefault::<FastHasher>::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_of(&0xdead_beefu64), hash_of(&0xdead_beefu64));
        assert_eq!(hash_of(&(3u32, 77u64)), hash_of(&(3u32, 77u64)));
    }

    #[test]
    fn distinct_small_keys_disperse() {
        // Sequential addresses (the common key shape) must not collide
        // in the low bits hashbrown uses for bucket selection.
        // 128 keys into 128 low-bit slots: a uniform hash leaves
        // ~81 distinct after birthday collisions; a weak one far fewer.
        let mut low7 = std::collections::HashSet::new();
        for k in 0u64..128 {
            low7.insert(hash_of(&k) & 0x7f);
        }
        assert!(
            low7.len() > 64,
            "only {} distinct low-bit patterns",
            low7.len()
        );
    }

    #[test]
    fn tuple_and_scalar_keys_roundtrip_through_a_map() {
        let mut scalar: FastMap<u64, u64> = FastMap::default();
        let mut pairs: FastMap<(u32, u64), u64> = FastMap::default();
        for k in 0..1000u64 {
            scalar.insert(k * 37, k);
            pairs.insert(((k % 8) as u32, k * 13), k);
        }
        for k in 0..1000u64 {
            assert_eq!(scalar.get(&(k * 37)), Some(&k));
            assert_eq!(pairs.get(&((k % 8) as u32, k * 13)), Some(&k));
        }
        assert_eq!(scalar.len(), 1000);
    }

    #[test]
    fn avalanche_on_single_bit_flips() {
        // Flipping one input bit should change roughly half the output
        // bits — a loose sanity bound on the finalizer.
        for bit in 0..64 {
            let a = hash_of(&0x0123_4567_89ab_cdefu64);
            let b = hash_of(&(0x0123_4567_89ab_cdefu64 ^ (1u64 << bit)));
            let flipped = (a ^ b).count_ones();
            assert!((16..=48).contains(&flipped), "bit {bit}: {flipped} flips");
        }
    }
}
