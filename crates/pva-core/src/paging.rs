//! Interaction with the paging scheme: `SplitVector` and the
//! memory-controller TLB (§4.3.2).
//!
//! Long vectors can only be fetched in parallel while they are
//! physically contiguous, so the memory controller must split a virtual
//! vector at superpage boundaries. The exact element count per page needs
//! a division by the stride; the paper replaces it with a cheap *lower
//! bound* — invert the page-offset bits, shift by the stride's power-of-
//! two ceiling — and overlaps the bookkeeping for the next sub-vector
//! with the memory operation for the current one.
//!
//! Two deliberate deviations from the paper's pseudo-code, both needed
//! for correctness (the pseudo-code's intent is stated in its prose):
//!
//! * `shift_val` is the *ceiling* log2 of the stride. The literal "index
//!   of most significant power of 2" (floor) over-estimates the element
//!   count for non-power-of-two strides (e.g. stride 3, 6 words left on
//!   the page: `6 >> 1 = 3` elements claimed, but only 2 fit).
//! * the `+ 1` in `page_size - terminate(phys_address) + 1` is dropped:
//!   with the base on the last word of a page it claims 2 elements where
//!   only 1 fits.
//!
//! Property tests assert the invariants the paper's prose promises: every
//! element issued exactly once, no sub-vector crosses a superpage, and
//! the per-page bound is within 2x of the exact division.

use crate::error::PvaError;
use crate::geometry::WordAddr;
use crate::vector::Vector;

/// One superpage mapping: a naturally-aligned power-of-two-sized virtual
/// range backed by contiguous physical memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Superpage {
    /// Virtual word address of the page start (aligned to `size_words`).
    pub vbase: WordAddr,
    /// Physical word address of the page start (aligned to `size_words`).
    pub pbase: WordAddr,
    /// Page size in words; always a power of two.
    pub size_words: u64,
}

/// A successful TLB translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Physical word address.
    pub paddr: WordAddr,
    /// Size of the containing superpage in words.
    pub page_size: u64,
}

/// The memory controller's view of the page table:
/// `mmc_tlb_lookup(vaddress)` from §4.3.2.
///
/// # Examples
///
/// ```
/// use pva_core::{MmcTlb, Superpage};
///
/// let mut tlb = MmcTlb::new();
/// tlb.map(Superpage { vbase: 0x1000, pbase: 0x8000, size_words: 0x1000 })?;
/// let t = tlb.lookup(0x1234)?;
/// assert_eq!(t.paddr, 0x8234);
/// assert_eq!(t.page_size, 0x1000);
/// # Ok::<(), pva_core::PvaError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct MmcTlb {
    /// Sorted by `vbase`; non-overlapping.
    pages: Vec<Superpage>,
    /// Lookup counter, for the overlap-accounting model of §4.3.2.
    lookups: std::cell::Cell<u64>,
}

impl MmcTlb {
    /// Creates an empty TLB.
    pub fn new() -> Self {
        MmcTlb::default()
    }

    /// Installs a superpage mapping.
    ///
    /// # Errors
    ///
    /// Returns [`PvaError::NotPowerOfTwo`] if the size is not a power of
    /// two, and [`PvaError::ZeroParameter`] if it is zero or the bases
    /// are not size-aligned (reported as parameter `alignment`), or if
    /// the new page overlaps an existing mapping (parameter `overlap`).
    pub fn map(&mut self, page: Superpage) -> Result<(), PvaError> {
        if page.size_words == 0 {
            return Err(PvaError::ZeroParameter("size_words"));
        }
        if !page.size_words.is_power_of_two() {
            return Err(PvaError::NotPowerOfTwo(page.size_words));
        }
        if !page.vbase.is_multiple_of(page.size_words)
            || !page.pbase.is_multiple_of(page.size_words)
        {
            return Err(PvaError::ZeroParameter("alignment"));
        }
        // Pages are sorted by vbase and non-overlapping, so only the two
        // neighbours of the insertion point can overlap the new page.
        let pos = self.pages.partition_point(|p| p.vbase < page.vbase);
        let overlaps_prev = pos > 0 && {
            let p = &self.pages[pos - 1];
            page.vbase < p.vbase + p.size_words
        };
        let overlaps_next = pos < self.pages.len() && {
            let p = &self.pages[pos];
            p.vbase < page.vbase + page.size_words
        };
        if overlaps_prev || overlaps_next {
            return Err(PvaError::ZeroParameter("overlap"));
        }
        self.pages.insert(pos, page);
        Ok(())
    }

    /// Identity-maps `[0, words)` as superpages of `page_words` each —
    /// convenient for simulations that work in physical addresses.
    ///
    /// # Errors
    ///
    /// Same conditions as [`MmcTlb::map`].
    pub fn identity(words: u64, page_words: u64) -> Result<Self, PvaError> {
        let mut tlb = MmcTlb::new();
        let mut base = 0;
        while base < words {
            tlb.map(Superpage {
                vbase: base,
                pbase: base,
                size_words: page_words,
            })?;
            base += page_words;
        }
        Ok(tlb)
    }

    /// `mmc_tlb_lookup(vaddress)`: translates a virtual word address and
    /// reports its superpage size.
    ///
    /// # Errors
    ///
    /// Returns [`PvaError::PageFault`] if no mapping covers `vaddr`.
    pub fn lookup(&self, vaddr: WordAddr) -> Result<Translation, PvaError> {
        self.lookups.set(self.lookups.get() + 1);
        let idx = self.pages.partition_point(|p| p.vbase <= vaddr);
        if idx == 0 {
            return Err(PvaError::PageFault(vaddr));
        }
        let p = self.pages[idx - 1];
        if vaddr >= p.vbase + p.size_words {
            return Err(PvaError::PageFault(vaddr));
        }
        Ok(Translation {
            paddr: p.pbase + (vaddr - p.vbase),
            page_size: p.size_words,
        })
    }

    /// Number of lookups performed so far (each costs one overlapped TLB
    /// access in the §4.3.2 pipeline model).
    pub fn lookup_count(&self) -> u64 {
        self.lookups.get()
    }
}

/// A physically-contiguous sub-vector produced by [`split_vector`],
/// ready to issue on the vector bus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhysicalSubvector {
    /// The physical-address vector to broadcast.
    pub vector: Vector,
    /// Index (within the original virtual vector) of this sub-vector's
    /// first element.
    pub first_element: u64,
}

/// `SplitVector(V)` from §4.3.2: splits a virtual base-stride vector into
/// physically-contiguous sub-vectors, one vector-bus operation each,
/// using the fast lower-bound element count instead of a division.
///
/// # Errors
///
/// Returns [`PvaError::PageFault`] if any element of the vector is not
/// mapped by `tlb`.
///
/// # Examples
///
/// ```
/// use pva_core::{split_vector, MmcTlb, Vector};
///
/// let tlb = MmcTlb::identity(4096, 1024)?;
/// let v = Vector::new(1000, 48, 40)?; // crosses page boundaries
/// let subs = split_vector(&v, &tlb)?;
/// let total: u64 = subs.iter().map(|s| s.vector.length()).sum();
/// assert_eq!(total, 40);
/// # Ok::<(), pva_core::PvaError>(())
/// ```
pub fn split_vector(v: &Vector, tlb: &MmcTlb) -> Result<Vec<PhysicalSubvector>, PvaError> {
    // shift_val: ceiling log2 of the stride, so that
    // `words >> shift_val <= words / stride` (a true lower bound).
    let shift_val = 64 - (v.stride() - 1).leading_zeros().min(63);
    let shift_val = if v.stride() == 1 { 0 } else { shift_val };
    let mut out = Vec::new();
    let mut base = v.base();
    let mut length = v.length();
    let mut first_element = 0u64;
    while length > 0 {
        let t = tlb.lookup(base)?;
        // terminate(phys_address): the low page-offset bits.
        let offset = t.paddr & (t.page_size - 1);
        let words_left = t.page_size - offset;
        // Lower bound on elements on this page; at least the base element
        // itself is on the page.
        let lower_bound = (words_left >> shift_val).max(1).min(length);
        out.push(PhysicalSubvector {
            vector: Vector::new(t.paddr, v.stride(), lower_bound)
                .expect("stride and bound are nonzero"),
            first_element,
        });
        // "While banks are busy operating on the vector we issued,
        //  compute the new base address" — multiply + TLB lookup next
        // iteration.
        length -= lower_bound;
        first_element += lower_bound;
        base += v.stride() * lower_bound;
    }
    Ok(out)
}

/// Exact element count per page (the division the paper avoids), used as
/// the test oracle and to quantify the efficiency of the lower bound.
pub fn exact_elements_on_page(paddr: WordAddr, page_size: u64, stride: u64) -> u64 {
    let words_left = page_size - (paddr & (page_size - 1));
    words_left.div_ceil(stride)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb_4k() -> MmcTlb {
        MmcTlb::identity(1 << 20, 4096).unwrap()
    }

    #[test]
    fn lookup_translates_and_faults() {
        let mut tlb = MmcTlb::new();
        tlb.map(Superpage {
            vbase: 0x2000,
            pbase: 0xa000,
            size_words: 0x1000,
        })
        .unwrap();
        assert_eq!(tlb.lookup(0x2fff).unwrap().paddr, 0xafff);
        assert_eq!(tlb.lookup(0x3000).unwrap_err(), PvaError::PageFault(0x3000));
        assert_eq!(tlb.lookup(0x1fff).unwrap_err(), PvaError::PageFault(0x1fff));
        assert_eq!(tlb.lookup_count(), 3);
    }

    #[test]
    fn map_rejects_bad_pages() {
        let mut tlb = MmcTlb::new();
        assert!(matches!(
            tlb.map(Superpage {
                vbase: 0,
                pbase: 0,
                size_words: 3
            }),
            Err(PvaError::NotPowerOfTwo(3))
        ));
        assert!(tlb
            .map(Superpage {
                vbase: 4,
                pbase: 0,
                size_words: 8
            })
            .is_err());
        tlb.map(Superpage {
            vbase: 0,
            pbase: 0,
            size_words: 8,
        })
        .unwrap();
        // Overlap rejected.
        assert!(tlb
            .map(Superpage {
                vbase: 0,
                pbase: 64,
                size_words: 16
            })
            .is_err());
    }

    #[test]
    fn split_covers_each_element_exactly_once() {
        let tlb = tlb_4k();
        for &stride in &[1u64, 2, 3, 7, 19, 32, 100, 4095, 4096, 5000] {
            for &base in &[0u64, 1, 4000, 4095, 8191] {
                let v = Vector::new(base, stride, 100).unwrap();
                let subs = split_vector(&v, &tlb).unwrap();
                let mut addrs = Vec::new();
                for s in &subs {
                    addrs.extend(s.vector.addresses());
                }
                // Identity map: physical addresses equal virtual.
                assert_eq!(
                    addrs,
                    v.addresses().collect::<Vec<_>>(),
                    "stride={stride} base={base}"
                );
            }
        }
    }

    #[test]
    fn subvectors_never_cross_pages() {
        let tlb = tlb_4k();
        for &stride in &[1u64, 3, 17, 1000, 4097] {
            let v = Vector::new(4090, stride, 64).unwrap();
            for s in split_vector(&v, &tlb).unwrap() {
                let first_page = s.vector.base() / 4096;
                let last_page = s.vector.element(s.vector.length() - 1) / 4096;
                assert_eq!(first_page, last_page, "stride={stride}: {s:?}");
            }
        }
    }

    #[test]
    fn first_element_indices_are_consistent() {
        let tlb = tlb_4k();
        let v = Vector::new(100, 33, 500).unwrap();
        let subs = split_vector(&v, &tlb).unwrap();
        let mut expected = 0;
        for s in &subs {
            assert_eq!(s.first_element, expected);
            expected += s.vector.length();
        }
        assert_eq!(expected, 500);
    }

    #[test]
    fn lower_bound_is_within_2x_of_exact() {
        // The fast bound trades at most a factor of two in sub-vector
        // length (power-of-two rounding of the stride) for avoiding a
        // divider.
        let tlb = tlb_4k();
        for &stride in &[3u64, 5, 7, 9, 19, 33, 100] {
            let v = Vector::new(0, stride, 2000).unwrap();
            let subs = split_vector(&v, &tlb).unwrap();
            // The last sub-vector is clamped by the remaining length, so
            // only the page-bounded ones are compared against the exact
            // division.
            for s in &subs[..subs.len() - 1] {
                let exact = exact_elements_on_page(s.vector.base(), 4096, stride);
                let got = s.vector.length();
                assert!(got <= exact, "bound must not overshoot");
                // bound = floor(w / 2^c) with 2^c < 2*stride, and
                // exact = ceil(w / stride), so exact <= 2*bound + 2.
                assert!(got * 2 + 2 >= exact, "stride={stride}: {got} vs {exact}");
            }
        }
    }

    #[test]
    fn split_with_noncontiguous_physical_pages() {
        // Virtual pages mapped to scattered physical frames: sub-vector
        // bases must follow the physical mapping.
        let mut tlb = MmcTlb::new();
        tlb.map(Superpage {
            vbase: 0,
            pbase: 0x10000,
            size_words: 1024,
        })
        .unwrap();
        tlb.map(Superpage {
            vbase: 1024,
            pbase: 0x40000,
            size_words: 1024,
        })
        .unwrap();
        let v = Vector::new(1000, 16, 10).unwrap(); // crosses at vaddr 1024
        let subs = split_vector(&v, &tlb).unwrap();
        assert!(subs.len() >= 2);
        assert_eq!(subs[0].vector.base(), 0x10000 + 1000);
        // Flattening the sub-vectors must give each element's own
        // translation, across the discontiguous frame boundary.
        let phys: Vec<u64> = subs.iter().flat_map(|s| s.vector.addresses()).collect();
        let want: Vec<u64> = v
            .addresses()
            .map(|va| tlb.lookup(va).unwrap().paddr)
            .collect();
        assert_eq!(phys, want);
        // Element 2 (vaddr 1032) lands in the second frame.
        assert_eq!(phys[2], 0x40000 + (1032 - 1024));
    }

    #[test]
    fn unmapped_vector_faults() {
        let tlb = MmcTlb::identity(4096, 4096).unwrap();
        let v = Vector::new(4000, 50, 10).unwrap();
        assert!(matches!(
            split_vector(&v, &tlb),
            Err(PvaError::PageFault(_))
        ));
    }
}
