//! A tiny deterministic PRNG for tests and benchmarks.
//!
//! The crate is built in a hermetic environment with no third-party
//! dependencies, so the randomized ("fuzz"-style) test suites use this
//! SplitMix64 generator instead of an external `rand` crate. SplitMix64
//! (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number
//! Generators*, OOPSLA 2014) passes BigCrush, needs eight lines of
//! code, and — crucially for regression tests — produces an identical
//! stream on every platform for a given seed.

/// A 64-bit SplitMix64 pseudorandom generator.
///
/// # Examples
///
/// ```
/// use pva_core::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// let x = a.range(10, 20);
/// assert!((10..20).contains(&x));
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give
    /// statistically independent streams.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform value in `0..n` (`n > 0`). Uses the widening-multiply
    /// reduction, whose bias is < 2^-64 — irrelevant for tests.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        (((self.next_u64() as u128) * (n as u128)) >> 64) as u64
    }

    /// A uniform value in the half-open range `lo..hi` (`lo < hi`).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// A uniform boolean.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// True with probability `num / den` (`num <= den`, `den > 0`).
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        assert!(num <= den && den > 0, "bad probability {num}/{den}");
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_stream() {
        // Reference values from the published SplitMix64 test vectors
        // (seed 1234567).
        let mut r = SplitMix64::new(1234567);
        assert_eq!(r.next_u64(), 6457827717110365317);
        assert_eq!(r.next_u64(), 3203168211198807973);
        assert_eq!(r.next_u64(), 9817491932198370423);
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for n in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(r.below(n) < n);
            }
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut r = SplitMix64::new(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[(r.range(4, 8) - 4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chance_extremes() {
        let mut r = SplitMix64::new(11);
        for _ in 0..50 {
            assert!(r.chance(1, 1));
            assert!(!r.chance(0, 1));
        }
    }
}
