//! The general recursive algorithm of §4.1.2 for cache-line interleave.
//!
//! Before introducing the logical-bank transformation, the paper derives
//! a direct algorithm for `FirstHit`/`NextHit` on cache-line interleaved
//! memory. It solves, for the least `p >= 1`,
//!
//! ```text
//! 0 <= gamma + p * S0 - p2 * N*M < N          (inequality (1))
//! ```
//!
//! by a Euclidean-style descent on the stride (`S_i = S_{i-1} mod
//! S_{i-2}`), which terminates but requires *division and modulo by
//! numbers that may not be powers of two* — the reason the paper rejects
//! it for hardware (§4.1.2: "not suitable for a fast hardware
//! implementation").
//!
//! This module ports the paper's `NextHit()` C routine verbatim
//! ([`next_hit_paper`]), provides an exact reference solver
//! ([`next_hit_exact`], [`first_hit_exact`]), and *counts the expensive
//! operations* so the hardware-cost argument can be reproduced
//! quantitatively (see the `table1_complexity` bench target).

use crate::geometry::{BankId, Geometry};
use crate::vector::Vector;

/// Tally of operations a hardware implementation would find expensive.
///
/// Divisions/modulo by non-powers-of-two dominate; shifts and masks are
/// free. [`next_hit_paper`] fills one of these in as it runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCount {
    /// Divisions or modulo operations whose divisor is *not* a power of
    /// two (these need a real divider circuit).
    pub hard_divs: u32,
    /// Divisions or modulo operations by a power of two (free: shift or
    /// mask).
    pub easy_divs: u32,
    /// Integer multiplications.
    pub muls: u32,
    /// Depth of recursion reached (the paper notes it terminates at the
    /// second level for realistic `N`, `M`).
    pub recursion_depth: u32,
}

impl OpCount {
    fn div(&mut self, divisor: u64) {
        if divisor.is_power_of_two() {
            self.easy_divs += 1;
        } else {
            self.hard_divs += 1;
        }
    }
}

/// Verbatim port of the paper's recursive `NextHit()` C routine.
///
/// Returns the least `p >= 1` such that element `V[k + p]` lands in the
/// same bank as `V[k]` for a vector whose base has block offset `theta`
/// (`theta = V.B mod N`), on a memory with block size `n_words` and
/// period `nm = N * M` — together with the operation tally.
///
/// The routine assumes `stride` has already been reduced modulo `N*M`
/// (Lemma 4.1 extended to the cache-line case) and is nonzero.
///
/// # Panics
///
/// Panics if `stride == 0`, `stride >= nm`, `theta >= n_words`, or
/// `n_words` does not divide `nm` — all violations of the §4.1.2
/// preconditions.
pub fn next_hit_paper(theta: u64, stride: u64, n_words: u64, nm: u64) -> (u64, OpCount) {
    assert!(stride > 0 && stride < nm, "stride must be in 1..NM");
    assert!(theta < n_words, "theta must be a block offset");
    assert!(nm.is_multiple_of(n_words), "NM must be a multiple of N");
    let mut ops = OpCount::default();
    let p = next_hit_rec(theta, stride, n_words, nm, &mut ops, 0);
    (p, ops)
}

fn next_hit_rec(
    theta: u64,
    stride: u64,
    n_words: u64,
    nm: u64,
    ops: &mut OpCount,
    depth: u32,
) -> u64 {
    ops.recursion_depth = ops.recursion_depth.max(depth);
    let n = n_words;
    if stride < n {
        if theta + stride < n {
            return 1;
        }
        ops.div(stride);
        let p3_plus_1 = (nm - theta) / stride;
        ops.muls += 1;
        ops.div(nm);
        if p3_plus_1 != 0 && (theta + p3_plus_1 * stride) % nm < n {
            return p3_plus_1;
        }
        return p3_plus_1 + 1;
    }
    ops.div(stride);
    let s1 = nm % stride;
    if s1 <= theta {
        ops.div(stride);
        return nm / stride;
    }
    let p2 = if s1 < n {
        ops.div(s1);
        (stride - n + theta) / s1 + 1
    } else {
        ops.div(s1);
        let s2 = stride % s1;
        let p3_plus_1 = next_hit_rec(theta, s2, n, s1, ops, depth + 1);
        ops.muls += 1;
        ops.div(s1);
        (p3_plus_1 * stride + theta) / s1
    };
    ops.muls += 1;
    ops.div(stride);
    let carry = u64::from((p2 * nm) % stride > stride - n + theta);
    ops.muls += 1;
    ops.div(stride);
    let p1_minus_1 = (p2 * nm) / stride;
    p1_minus_1 + carry
}

/// Exact `NextHit` by direct search of inequality (1) with
/// `gamma = theta`: the least `p >= 1` with `(theta + p*S) mod NM < N`.
///
/// The bank-visit pattern is periodic with period `NM / gcd(S, NM)`, so
/// the search is bounded; this is the oracle [`next_hit_paper`] is tested
/// against. Returns `None` if no revisit exists (cannot happen when
/// `gcd` conditions give a full cycle, but callers should not assume).
pub fn next_hit_exact(theta: u64, stride: u64, n_words: u64, nm: u64) -> Option<u64> {
    assert!(stride > 0 && stride < nm);
    assert!(theta < n_words);
    let period = nm / gcd(stride, nm);
    let mut pos = theta;
    for p in 1..=period {
        pos = (pos + stride) % nm;
        if pos < n_words {
            return Some(p);
        }
    }
    None
}

/// Exact `FirstHit(V, b)` for any interleave by solving inequality (1)
/// with `gamma = theta - d*N` over one period of the bank pattern.
///
/// Used as a second oracle for [`crate::logical::LogicalView`]; the
/// production path is the logical-bank transformation, which needs no
/// division at all.
pub fn first_hit_exact(v: &Vector, b: BankId, g: &Geometry) -> Option<u64> {
    let nm = g.period();
    let period = nm / gcd(v.stride() % nm, nm).max(1);
    // The bank pattern of element i repeats with period `period` (in i);
    // within the vector only indices < L matter.
    let limit = period.min(v.length());
    (0..limit).find(|&i| g.decode_bank(v.element(i)) == b)
}

/// Greatest common divisor (Euclid).
pub fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::firsthit::naive;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
    }

    #[test]
    fn paper_nexthit_matches_exact_exhaustive() {
        // M=8, N=4 -> NM=32: the paper's running example geometry.
        let (n, nm) = (4u64, 32u64);
        for theta in 0..n {
            for stride in 1..nm {
                let (got, _) = next_hit_paper(theta, stride, n, nm);
                let want = next_hit_exact(theta, stride, n, nm);
                // The paper's routine may return a non-minimal hit in rare
                // corner cases; it must at least return *a* hit whenever
                // one exists.
                if let Some(want) = want {
                    let pos = (theta + got * stride) % nm;
                    assert!(
                        pos < n,
                        "theta={theta} stride={stride}: returned p={got} is not a hit (want {want})"
                    );
                    assert_eq!(
                        got, want,
                        "theta={theta} stride={stride}: non-minimal next hit"
                    );
                }
            }
        }
    }

    #[test]
    fn paper_nexthit_larger_geometry() {
        // M=16, N=32 -> NM=512: the prototype's cache-line view.
        let (n, nm) = (32u64, 512u64);
        for theta in (0..n).step_by(5) {
            for stride in (1..nm).step_by(7) {
                let (got, ops) = next_hit_paper(theta, stride, n, nm);
                if let Some(want) = next_hit_exact(theta, stride, n, nm) {
                    assert_eq!(got, want, "theta={theta} stride={stride}");
                }
                // The paper observes recursion terminates at the second
                // level for *most* inputs at realistic N and M; the
                // Euclidean descent bounds it logarithmically regardless.
                assert!(
                    ops.recursion_depth <= 4,
                    "theta={theta} stride={stride}: depth {}",
                    ops.recursion_depth
                );
            }
        }
    }

    #[test]
    fn paper_nexthit_needs_hard_divisions_for_odd_strides() {
        // The quantitative core of §4.1.2's rejection: non-power-of-two
        // strides force divisions by non-powers-of-two.
        let (_, ops) = next_hit_paper(0, 9, 4, 32);
        assert!(ops.hard_divs > 0, "stride 9 should need a hard divider");
        // Power-of-two strides stay cheap.
        let (_, ops) = next_hit_paper(0, 8, 4, 32);
        assert_eq!(ops.hard_divs, 0, "stride 8 needs shifts only");
    }

    #[test]
    fn first_hit_exact_matches_naive() {
        let g = Geometry::cacheline_interleaved(8, 4).unwrap();
        for base in 0..16u64 {
            for stride in 1..=40u64 {
                let v = Vector::new(base, stride, 24).unwrap();
                for b in 0..8 {
                    let b = BankId::new(b);
                    assert_eq!(
                        first_hit_exact(&v, b, &g),
                        naive::first_hit(&v, b, &g).index(),
                        "base={base} stride={stride} bank={b}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "stride must be in 1..NM")]
    fn rejects_zero_stride() {
        next_hit_paper(0, 0, 4, 32);
    }

    #[test]
    #[should_panic(expected = "theta must be a block offset")]
    fn rejects_bad_theta() {
        next_hit_paper(4, 3, 4, 32);
    }
}
