//! Vector-indirect (scatter/gather) application vectors (§7 extension).
//!
//! Sparse computations access `x[idx[i]]`: the element addresses come
//! from an *indirection vector* rather than a stride. The paper's
//! conclusion describes a two-phase PVA treatment:
//!
//! 1. load the indirection vector — an ordinary unit-stride vector load;
//! 2. broadcast its contents on the vector bus; every bank controller
//!    snoops the broadcast and claims, "by a simple bit-mask operation"
//!    (i.e. [`Geometry::decode_bank`]), the addresses that live in its
//!    SDRAM — two addresses per cycle on the 128-bit bus — then gathers
//!    its part in parallel.
//!
//! This module provides the request type and the per-bank claim logic;
//! the timing of the two phases is modelled in the `pva-sim` crate.

use crate::error::PvaError;
use crate::geometry::{BankId, Geometry, WordAddr};
use crate::vector::Vector;

/// A vector-indirect gather/scatter request: element `i` is the word at
/// `base + index[i]` (offset flavour) or at `index[i]` directly (address
/// flavour with `base == 0`).
///
/// # Examples
///
/// ```
/// use pva_core::IndirectVector;
///
/// let iv = IndirectVector::new(0x1000, vec![3, 0, 7, 0])?;
/// let addrs: Vec<u64> = iv.addresses().collect();
/// assert_eq!(addrs, vec![0x1003, 0x1000, 0x1007, 0x1000]);
/// # Ok::<(), pva_core::PvaError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IndirectVector {
    base: WordAddr,
    indices: Vec<u64>,
}

impl IndirectVector {
    /// Creates an indirect vector over the given offsets.
    ///
    /// # Errors
    ///
    /// Returns [`PvaError::ZeroLength`] if `indices` is empty.
    pub fn new(base: WordAddr, indices: Vec<u64>) -> Result<Self, PvaError> {
        if indices.is_empty() {
            return Err(PvaError::ZeroLength);
        }
        Ok(IndirectVector { base, indices })
    }

    /// Base address added to every offset.
    pub const fn base(&self) -> WordAddr {
        self.base
    }

    /// Number of elements.
    pub fn length(&self) -> u64 {
        self.indices.len() as u64
    }

    /// The raw offsets.
    pub fn indices(&self) -> &[u64] {
        &self.indices
    }

    /// Address of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn element(&self, i: u64) -> WordAddr {
        self.base + self.indices[i as usize]
    }

    /// Iterator over element addresses in element order.
    pub fn addresses(&self) -> impl Iterator<Item = WordAddr> + '_ {
        self.indices.iter().map(move |&off| self.base + off)
    }

    /// Phase 1 of the two-phase gather: the unit-stride load of the
    /// indirection vector itself, assuming it is stored densely starting
    /// at `index_base`.
    ///
    /// # Errors
    ///
    /// Propagates [`Vector::new`] errors (none for nonempty vectors).
    pub fn phase1_index_load(&self, index_base: WordAddr) -> Result<Vector, PvaError> {
        Vector::unit_stride(index_base, self.length())
    }

    /// Phase 2 claim for bank `b`: element indices whose address decodes
    /// to `b` — the snoop-and-mask each bank controller performs while
    /// the indices are broadcast.
    pub fn claim<'a>(&'a self, b: BankId, g: &'a Geometry) -> impl Iterator<Item = u64> + 'a {
        self.addresses()
            .enumerate()
            .filter(move |&(_, addr)| g.decode_bank(addr) == b)
            .map(|(i, _)| i as u64)
    }

    /// Number of broadcast cycles phase 2 needs at `per_cycle` addresses
    /// per cycle (two on the paper's 128-bit BC bus).
    ///
    /// # Panics
    ///
    /// Panics if `per_cycle == 0`.
    pub fn broadcast_cycles(&self, per_cycle: u64) -> u64 {
        assert!(per_cycle > 0, "must broadcast at least one address/cycle");
        self.length().div_ceil(per_cycle)
    }
}

/// Splits a claim into the per-bank load counts — the parallelism profile
/// of an indirect gather (max count bounds the parallel phase).
pub fn per_bank_counts(iv: &IndirectVector, g: &Geometry) -> Vec<u64> {
    let mut counts = vec![0u64; g.banks() as usize];
    for addr in iv.addresses() {
        counts[g.decode_bank(addr).index()] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g8() -> Geometry {
        Geometry::word_interleaved(8).unwrap()
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(
            IndirectVector::new(0, vec![]).unwrap_err(),
            PvaError::ZeroLength
        );
    }

    #[test]
    fn claims_partition_elements() {
        let g = g8();
        let iv = IndirectVector::new(100, vec![0, 5, 9, 13, 200, 3, 5]).unwrap();
        let mut all: Vec<u64> = (0..8)
            .flat_map(|b| iv.claim(BankId::new(b), &g).collect::<Vec<_>>())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..7).collect::<Vec<u64>>());
    }

    #[test]
    fn duplicate_offsets_claimed_by_same_bank() {
        let g = g8();
        let iv = IndirectVector::new(0, vec![5, 5, 5]).unwrap();
        let claimed: Vec<u64> = iv.claim(BankId::new(5), &g).collect();
        assert_eq!(claimed, vec![0, 1, 2]);
    }

    #[test]
    fn phase1_is_unit_stride() {
        let iv = IndirectVector::new(0, vec![9, 1, 4]).unwrap();
        let p1 = iv.phase1_index_load(0x500).unwrap();
        assert_eq!(p1.stride(), 1);
        assert_eq!(p1.length(), 3);
        assert_eq!(p1.base(), 0x500);
    }

    #[test]
    fn broadcast_cycle_count() {
        let iv = IndirectVector::new(0, (0..32).collect()).unwrap();
        assert_eq!(iv.broadcast_cycles(2), 16);
        assert_eq!(iv.broadcast_cycles(1), 32);
        let iv = IndirectVector::new(0, (0..33).collect()).unwrap();
        assert_eq!(iv.broadcast_cycles(2), 17);
    }

    #[test]
    fn per_bank_counts_sum_to_length() {
        let g = g8();
        let iv = IndirectVector::new(7, vec![0, 1, 2, 3, 8, 16, 24, 11]).unwrap();
        let counts = per_bank_counts(&iv, &g);
        assert_eq!(counts.iter().sum::<u64>(), 8);
        // Offsets 0,8,16,24 from base 7 all land in bank 7.
        assert_eq!(counts[7], 4);
    }
}
