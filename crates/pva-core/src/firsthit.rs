//! Closed-form `FirstHit` and `NextHit` for word-interleaved memory.
//!
//! This module implements the efficient parallel-access algorithms of
//! §4.1.4 of the paper. For a word-interleaved memory of `M = 2^m` banks
//! and a vector `V = <B, S, L>`:
//!
//! * **Lemma 4.1** — only `S mod M` matters for the bank access pattern.
//! * **Lemma 4.2** — writing `S mod M = sigma * 2^s` with `sigma` odd,
//!   bank `b` holds elements of `V` iff the modular distance
//!   `d = (b - b0) mod M` from the base bank `b0` is a multiple of `2^s`.
//! * **Theorem 4.3** — the first element index hitting distance
//!   `d = i * 2^s` is `K_i = (K_1 * i) mod 2^(m-s)`, where
//!   `K_1 = sigma^-1 mod 2^(m-s)` (the smallest index hitting distance
//!   `2^s`).
//! * **Theorem 4.4** — after the first hit, a bank holds every
//!   `delta = 2^(m-s)`-th element (`NextHit`).
//!
//! Each bank controller evaluates these with a table lookup plus a small
//! multiply — never expanding the vector serially — which is the paper's
//! core contribution. The [`naive`] submodule provides the sequential
//! expansion these are property-tested against.

use crate::error::PvaError;
use crate::geometry::{BankId, Geometry, WordAddr};
use crate::vector::Vector;

/// Decomposition of a stride as `S mod M = sigma * 2^s`.
///
/// `sigma` is odd; `s` counts the trailing zero bits of `S mod M`. The
/// degenerate case `S mod M == 0` (every element lands on the base bank)
/// is represented with `s = m` and `sigma = 1`, which makes the general
/// formulas (`delta = 2^(m-s) = 1`, only `d = 0` hits) fall out naturally.
///
/// # Examples
///
/// ```
/// use pva_core::{Geometry, StrideClass};
///
/// let g = Geometry::word_interleaved(16)?;
/// let c = StrideClass::new(12, &g); // 12 = 3 * 2^2
/// assert_eq!(c.sigma(), 3);
/// assert_eq!(c.s(), 2);
/// assert_eq!(c.banks_hit(), 4);     // every 4th bank
/// assert_eq!(c.next_hit(), 4);      // delta = 2^(4-2)
/// # Ok::<(), pva_core::PvaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrideClass {
    /// `S mod M`.
    stride_mod_m: u64,
    /// Odd factor of `S mod M` (1 when `S mod M == 0`).
    sigma: u64,
    /// Power-of-two exponent: `S mod M = sigma * 2^s` (`m` when
    /// `S mod M == 0`).
    s: u32,
    /// `m = log2(M)`.
    m: u32,
    /// `K_1 = sigma^-1 mod 2^(m-s)`; `0` when `m == s` (single-bank case).
    k1: u64,
}

impl StrideClass {
    /// Classifies `stride` for the given geometry's bank count.
    ///
    /// Per Lemma 4.1 only `stride mod M` is used, so two strides congruent
    /// modulo `M` produce equal `StrideClass`es.
    pub fn new(stride: u64, geometry: &Geometry) -> Self {
        let m = geometry.log2_banks();
        let sm = stride & (geometry.banks() - 1);
        if sm == 0 {
            // All elements hit the base bank; delta = 1.
            return StrideClass {
                stride_mod_m: 0,
                sigma: 1,
                s: m,
                m,
                k1: 0,
            };
        }
        let s = sm.trailing_zeros();
        let sigma = sm >> s;
        let modulus_bits = m - s;
        let k1 = if modulus_bits == 0 {
            0
        } else {
            mod_inverse_pow2(sigma, modulus_bits)
        };
        StrideClass {
            stride_mod_m: sm,
            sigma,
            s,
            m,
            k1,
        }
    }

    /// `S mod M`.
    pub const fn stride_mod_m(&self) -> u64 {
        self.stride_mod_m
    }

    /// The odd factor `sigma` of `S mod M`.
    pub const fn sigma(&self) -> u64 {
        self.sigma
    }

    /// The exponent `s` (trailing zeros of `S mod M`; `m` for the
    /// single-bank case).
    pub const fn s(&self) -> u32 {
        self.s
    }

    /// `K_1`, the smallest vector index hitting the bank at distance
    /// `2^s` from the base bank (Theorem 4.3). Zero in the single-bank
    /// case, where no other bank is ever hit.
    pub const fn k1(&self) -> u64 {
        self.k1
    }

    /// Number of distinct banks the vector touches: `M / 2^s = 2^(m-s)`
    /// (Lemma 4.2). This is the *degree of parallelism* available to the
    /// PVA for this stride (§6.3.1).
    pub const fn banks_hit(&self) -> u64 {
        1u64 << (self.m - self.s)
    }

    /// `NextHit(S) = delta = 2^(m-s)` (Theorem 4.4): if a bank holds
    /// `V[k]`, it also holds `V[k + delta]`.
    ///
    /// In hardware this is a PLA lookup keyed by `S mod M` (§4.2 step 2).
    pub const fn next_hit(&self) -> u64 {
        1u64 << (self.m - self.s)
    }
}

/// Result of a `FirstHit` query: either the index of the first element of
/// the vector residing in the queried bank, or a statement that the bank
/// holds no element.
///
/// # Examples
///
/// ```
/// use pva_core::FirstHit;
/// assert!(FirstHit::Hit(3).is_hit());
/// assert_eq!(FirstHit::Hit(3).index(), Some(3));
/// assert_eq!(FirstHit::Miss.index(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FirstHit {
    /// The bank's first element of the vector is `V[index]`.
    Hit(u64),
    /// The bank holds no element of the vector.
    Miss,
}

impl FirstHit {
    /// Whether the bank holds at least one element.
    pub const fn is_hit(&self) -> bool {
        matches!(self, FirstHit::Hit(_))
    }

    /// The first-hit index, or `None` on a miss.
    pub const fn index(&self) -> Option<u64> {
        match *self {
            FirstHit::Hit(i) => Some(i),
            FirstHit::Miss => None,
        }
    }
}

/// Per-vector solver a bank controller instantiates once per request and
/// then queries for its own bank: `FirstHit(V, b)`, the subvector
/// parameters, and the expanded subvector addresses.
///
/// This mirrors the §4.2 hardware recipe:
///
/// 1. `b0 = DecodeBank(V.B)` — bit select,
/// 2. `delta = NextHit(S)` — PLA lookup,
/// 3. `d = (b - b0) mod M` — modular subtraction,
/// 4. hit iff `2^s` divides `d` — table lookup,
/// 5. `K_i = (K_1 * (d >> s)) mod 2^(m-s)` — small multiply + mask,
/// 6. first address `V.B + V.S * K_i`,
/// 7. subsequent addresses `addr += V.S << (m - s)` — shift and add.
///
/// # Examples
///
/// ```
/// use pva_core::{BankId, Geometry, Vector, VectorSolver};
///
/// let g = Geometry::word_interleaved(16)?;
/// let v = Vector::new(0, 10, 32)?; // stride 10: hits every 2nd bank
/// let solver = VectorSolver::new(&v, &g);
/// // The paper's example: stride 10, M=16 hits banks 0,10,4,14,8,2,12,6.
/// assert!(solver.first_hit(BankId::new(10)).is_hit());
/// assert!(!solver.first_hit(BankId::new(3)).is_hit());
/// # Ok::<(), pva_core::PvaError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct VectorSolver {
    vector: Vector,
    class: StrideClass,
    b0: BankId,
    geometry: Geometry,
}

impl VectorSolver {
    /// Builds the solver for vector `v` on geometry `geometry`.
    ///
    /// For non-word-interleaved geometries, use
    /// [`LogicalView`](crate::logical::LogicalView) to reduce to word
    /// interleave first (§4.1.3); this solver treats the geometry's banks
    /// as word-interleaved units.
    pub fn new(v: &Vector, geometry: &Geometry) -> Self {
        debug_assert_eq!(
            geometry.block_words(),
            1,
            "VectorSolver requires word interleave; reduce with LogicalView first"
        );
        VectorSolver {
            vector: *v,
            class: StrideClass::new(v.stride(), geometry),
            b0: geometry.decode_bank(v.base()),
            geometry: *geometry,
        }
    }

    /// The vector being solved.
    pub const fn vector(&self) -> &Vector {
        &self.vector
    }

    /// The stride classification (shared across banks — in hardware this
    /// is computed once and broadcast).
    pub const fn stride_class(&self) -> &StrideClass {
        &self.class
    }

    /// The base bank `b0 = DecodeBank(V.B)`.
    pub const fn base_bank(&self) -> BankId {
        self.b0
    }

    /// `FirstHit(V, b)`: index of the first element of the vector held by
    /// bank `b`, by Theorem 4.3.
    pub fn first_hit(&self, b: BankId) -> FirstHit {
        let d = self.geometry.bank_distance(b, self.b0);
        if self.class.s >= 64 || d & ((1u64 << self.class.s) - 1) != 0 {
            return FirstHit::Miss;
        }
        if self.class.stride_mod_m == 0 {
            // Single-bank case: only the base bank hits, at index 0.
            return if d == 0 {
                FirstHit::Hit(0)
            } else {
                FirstHit::Miss
            };
        }
        let i = d >> self.class.s;
        let modulus_mask = (1u64 << (self.class.m - self.class.s)) - 1;
        // pva-lint: allow(wrapping-arith): K_i = K1 * i mod 2^(m-s); the wrap IS the modulus (Theorem 4.3)
        let ki = self.class.k1.wrapping_mul(i) & modulus_mask;
        if ki < self.vector.length() {
            FirstHit::Hit(ki)
        } else {
            FirstHit::Miss
        }
    }

    /// The complete subvector bank `b` is responsible for: element indices
    /// `K_i, K_i + delta, K_i + 2*delta, ...` below `V.L`.
    ///
    /// Returns an empty iterator on a miss.
    pub fn subvector_indices(&self, b: BankId) -> SubvectorIndices {
        let (start, step) = match self.first_hit(b) {
            FirstHit::Hit(k) => (k, self.class.next_hit()),
            FirstHit::Miss => (self.vector.length(), 1),
        };
        SubvectorIndices {
            next: start,
            step,
            length: self.vector.length(),
        }
    }

    /// Number of elements bank `b` must access for this vector.
    pub fn subvector_len(&self, b: BankId) -> u64 {
        match self.first_hit(b) {
            FirstHit::Hit(k) => {
                let remaining = self.vector.length() - k;
                // pva-lint: allow(nonconst-div): delta = 2^(m-s) is a power of two by Theorem 4.4; hardware uses a shift
                remaining.div_ceil(self.class.next_hit())
            }
            FirstHit::Miss => 0,
        }
    }

    /// The addresses bank `b` must access, in increasing element order:
    /// `V.B + V.S * K_i`, then `addr += V.S * delta` repeatedly (§4.2
    /// steps 6–7, a shift-and-add in hardware).
    pub fn subvector_addresses(&self, b: BankId) -> impl Iterator<Item = WordAddr> + '_ {
        let v = self.vector;
        self.subvector_indices(b).map(move |i| v.element(i))
    }
}

/// Iterator over the element indices a single bank serves.
///
/// Produced by [`VectorSolver::subvector_indices`].
#[derive(Debug, Clone)]
pub struct SubvectorIndices {
    next: u64,
    step: u64,
    length: u64,
}

impl Iterator for SubvectorIndices {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.next >= self.length {
            return None;
        }
        let i = self.next;
        // Saturate rather than overflow for step values near u64::MAX.
        self.next = self.next.saturating_add(self.step);
        Some(i)
    }
}

/// Computes `a^-1 mod 2^bits` for odd `a` by Newton–Hensel lifting.
///
/// Each iteration doubles the number of correct low bits, so five
/// iterations suffice for any 64-bit modulus. This is how a `K_1` PLA
/// would be generated at design time (§4.2: "their values will be
/// compiled into the circuitry in the form of look-up tables").
///
/// # Panics
///
/// Panics if `a` is even (no inverse exists) or `bits == 0` or
/// `bits > 64`.
// pva-lint: allow(panic, wrapping-arith): design-time K1 table generator (never on the per-cycle path); Newton–Hensel lifting is arithmetic mod 2^64, so the wraps are the modulus
pub fn mod_inverse_pow2(a: u64, bits: u32) -> u64 {
    assert!(a % 2 == 1, "only odd values are invertible mod 2^k");
    assert!((1..=64).contains(&bits), "modulus bits must be in 1..=64");
    let mask = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    // x = a^-1 mod 2^3 seed; standard trick: a * a mod 16 == 1 for odd a,
    // so x0 = a is correct to 3 bits.
    let mut x = a;
    for _ in 0..5 {
        x = x.wrapping_mul(2u64.wrapping_sub(a.wrapping_mul(x)));
    }
    x & mask
}

/// Reference implementations by sequential expansion, used as test oracles.
// pva-lint: allow(alloc): the sequential-expansion oracle exists to test the datapath, it is not hardware
pub mod naive {
    use super::*;

    /// `FirstHit(V, b)` by walking every element until one decodes to `b`.
    pub fn first_hit(v: &Vector, b: BankId, g: &Geometry) -> FirstHit {
        for (i, addr) in v.addresses().enumerate() {
            if g.decode_bank(addr) == b {
                return FirstHit::Hit(i as u64);
            }
        }
        FirstHit::Miss
    }

    /// All element indices of `v` that decode to bank `b`.
    pub fn subvector_indices(v: &Vector, b: BankId, g: &Geometry) -> Vec<u64> {
        v.addresses()
            .enumerate()
            .filter(|&(_, addr)| g.decode_bank(addr) == b)
            .map(|(i, _)| i as u64)
            .collect()
    }

    /// Empirical `NextHit`: the gap between consecutive indices hitting
    /// the same bank, or `None` if no bank is hit twice.
    pub fn next_hit(v: &Vector, g: &Geometry) -> Option<u64> {
        for b in 0..g.banks() {
            let idx = subvector_indices(v, BankId::new(b as usize), g);
            if idx.len() >= 2 {
                return Some(idx[1] - idx[0]);
            }
        }
        None
    }
}

/// Validates a geometry/vector pair for the solver, returning the solver.
///
/// Convenience wrapper used by the simulators, which must reject requests
/// rather than panic.
///
/// # Errors
///
/// Returns [`PvaError::ZeroLength`] if `max_len` is exceeded — the
/// hardware transfer unit is a cache line, so longer vectors must be
/// chunked first.
pub fn solver_for_command(
    v: &Vector,
    g: &Geometry,
    max_len: u64,
) -> Result<VectorSolver, PvaError> {
    if v.length() > max_len {
        return Err(PvaError::VectorTooLong(v.length(), max_len));
    }
    Ok(VectorSolver::new(v, g))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g16() -> Geometry {
        Geometry::word_interleaved(16).unwrap()
    }

    #[test]
    fn mod_inverse_small_cases() {
        for bits in 1..=16u32 {
            let modulus = 1u64 << bits;
            for a in (1..modulus.min(512)).step_by(2) {
                let inv = mod_inverse_pow2(a, bits);
                assert_eq!(a.wrapping_mul(inv) & (modulus - 1), 1, "a={a} bits={bits}");
                assert!(inv < modulus);
            }
        }
    }

    #[test]
    fn mod_inverse_full_width() {
        let inv = mod_inverse_pow2(0xdead_beef_1234_5679, 64);
        assert_eq!(0xdead_beef_1234_5679u64.wrapping_mul(inv), 1);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn mod_inverse_rejects_even() {
        mod_inverse_pow2(6, 8);
    }

    #[test]
    fn stride_class_examples() {
        let g = g16();
        // S=12 = 3 * 2^2: every 4th bank, delta = 4.
        let c = StrideClass::new(12, &g);
        assert_eq!((c.sigma(), c.s()), (3, 2));
        assert_eq!(c.banks_hit(), 4);
        assert_eq!(c.next_hit(), 4);
        // S=19 mod 16 = 3 = 3 * 2^0: all 16 banks, delta = 16.
        let c = StrideClass::new(19, &g);
        assert_eq!((c.sigma(), c.s()), (3, 0));
        assert_eq!(c.banks_hit(), 16);
        // S=16 mod 16 = 0: single bank, delta = 1.
        let c = StrideClass::new(16, &g);
        assert_eq!(c.banks_hit(), 1);
        assert_eq!(c.next_hit(), 1);
        // S=1: unit stride, every bank, delta = 16.
        let c = StrideClass::new(1, &g);
        assert_eq!(c.k1(), 1);
        assert_eq!(c.next_hit(), 16);
    }

    #[test]
    fn lemma_4_1_stride_mod_m_suffices() {
        let g = g16();
        // Strides congruent mod 16 classify identically.
        assert_eq!(StrideClass::new(3, &g), StrideClass::new(19, &g));
        assert_eq!(StrideClass::new(5, &g), StrideClass::new(16 * 7 + 5, &g));
    }

    #[test]
    fn paper_stride_10_bank_sequence() {
        // "if M = 16, consecutive elements of a vector of stride 10 (s=1)
        //  hit in banks 2, 12, 6, 0, 10, 4, 14, 8, 2, etc." (base bank 2
        //  implied; we use base address 2).
        let g = g16();
        let v = Vector::new(2, 10, 9).unwrap();
        let banks: Vec<usize> = v.addresses().map(|a| g.decode_bank(a).index()).collect();
        assert_eq!(banks, vec![2, 12, 6, 0, 10, 4, 14, 8, 2]);
        // And the closed form agrees with the naive oracle on every bank.
        let solver = VectorSolver::new(&v, &g);
        for b in 0..16 {
            let b = BankId::new(b);
            assert_eq!(solver.first_hit(b), naive::first_hit(&v, b, &g));
        }
    }

    #[test]
    fn first_hit_base_bank_is_zero() {
        let g = g16();
        for stride in 1..40u64 {
            let v = Vector::new(37, stride, 32).unwrap();
            let solver = VectorSolver::new(&v, &g);
            assert_eq!(solver.first_hit(solver.base_bank()), FirstHit::Hit(0));
        }
    }

    #[test]
    fn closed_form_matches_naive_exhaustive_small() {
        // Exhaustive sweep on an 8-bank system: all strides and bases in
        // a full period, two lengths.
        let g = Geometry::word_interleaved(8).unwrap();
        for base in 0..8u64 {
            for stride in 1..=32u64 {
                for &len in &[1u64, 5, 8, 17, 32] {
                    let v = Vector::new(base, stride, len).unwrap();
                    let solver = VectorSolver::new(&v, &g);
                    for b in 0..8 {
                        let b = BankId::new(b);
                        assert_eq!(
                            solver.first_hit(b),
                            naive::first_hit(&v, b, &g),
                            "base={base} stride={stride} len={len} bank={b}"
                        );
                        let got: Vec<u64> = solver.subvector_indices(b).collect();
                        let want = naive::subvector_indices(&v, b, &g);
                        assert_eq!(got, want, "base={base} stride={stride} len={len} bank={b}");
                        assert_eq!(solver.subvector_len(b), want.len() as u64);
                    }
                }
            }
        }
    }

    #[test]
    fn theorem_4_4_next_hit_matches_empirical() {
        let g = g16();
        for stride in 1..64u64 {
            let v = Vector::new(0, stride, 64).unwrap();
            let c = StrideClass::new(stride, &g);
            if let Some(gap) = naive::next_hit(&v, &g) {
                assert_eq!(c.next_hit(), gap, "stride={stride}");
            }
        }
    }

    #[test]
    fn subvector_union_covers_vector_exactly() {
        let g = g16();
        for stride in [1u64, 2, 3, 4, 7, 8, 10, 16, 19, 31, 32] {
            let v = Vector::new(5, stride, 32).unwrap();
            let solver = VectorSolver::new(&v, &g);
            let mut seen: Vec<u64> = (0..16)
                .flat_map(|b| solver.subvector_indices(BankId::new(b)).collect::<Vec<_>>())
                .collect();
            seen.sort_unstable();
            let want: Vec<u64> = (0..32).collect();
            assert_eq!(seen, want, "stride={stride}: every element exactly once");
        }
    }

    #[test]
    fn addresses_decode_to_their_bank() {
        let g = g16();
        let v = Vector::new(123, 19, 32).unwrap();
        let solver = VectorSolver::new(&v, &g);
        for b in 0..16 {
            let b = BankId::new(b);
            for addr in solver.subvector_addresses(b) {
                assert_eq!(g.decode_bank(addr), b);
            }
        }
    }

    #[test]
    fn command_length_limit_enforced() {
        let g = g16();
        let v = Vector::new(0, 2, 64).unwrap();
        assert_eq!(
            solver_for_command(&v, &g, 32).unwrap_err(),
            PvaError::VectorTooLong(64, 32)
        );
        assert!(solver_for_command(&v, &g, 64).is_ok());
    }

    #[test]
    fn single_bank_geometry_degenerates_cleanly() {
        // M = 1 (m = 0): every address is in bank 0, every stride class
        // is the single-bank class, delta = 1.
        let g = Geometry::word_interleaved(1).unwrap();
        let v = Vector::new(5, 7, 10).unwrap();
        let solver = VectorSolver::new(&v, &g);
        assert_eq!(solver.first_hit(BankId::new(0)), FirstHit::Hit(0));
        let idx: Vec<u64> = solver.subvector_indices(BankId::new(0)).collect();
        assert_eq!(idx, (0..10).collect::<Vec<u64>>());
        assert_eq!(StrideClass::new(7, &g).next_hit(), 1);
    }

    #[test]
    fn short_vector_misses_far_banks() {
        let g = g16();
        // Length 2 at stride 1 touches only banks 0 and 1.
        let v = Vector::new(0, 1, 2).unwrap();
        let solver = VectorSolver::new(&v, &g);
        assert!(solver.first_hit(BankId::new(0)).is_hit());
        assert!(solver.first_hit(BankId::new(1)).is_hit());
        for b in 2..16 {
            assert!(!solver.first_hit(BankId::new(b)).is_hit());
        }
    }
}
