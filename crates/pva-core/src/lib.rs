//! # pva-core — Parallel Vector Access algorithms
//!
//! Rust implementation of the mathematics behind the Parallel Vector
//! Access (PVA) unit of Mathew, McKee, Carter and Davis, *Design of a
//! Parallel Vector Access Unit for SDRAM Memory Systems* (HPCA 2000).
//!
//! A PVA memory controller broadcasts a base-stride vector request
//! `V = <B, S, L>` to all bank controllers at once; each controller
//! computes — without serially expanding the vector — which elements
//! live in its bank, using closed forms:
//!
//! * [`FirstHit`] / [`VectorSolver`]: the first element index a bank
//!   holds (Theorem 4.3: `K_i = (K_1 * i) mod 2^(m-s)`),
//! * [`StrideClass::next_hit`]: the per-bank revisit distance
//!   (Theorem 4.4: `delta = 2^(m-s)`),
//! * [`LogicalView`]: the transformation that reduces cache-line / block
//!   interleave to word interleave so the closed forms always apply,
//! * [`K1Pla`] / [`FullKiPla`]: the lookup-table ("PLA") forms the
//!   hardware actually evaluates, with complexity models,
//! * [`split_vector`] / [`MmcTlb`]: splitting virtual vectors at
//!   superpage boundaries without division,
//! * [`BitReversedVector`] and [`IndirectVector`]: the future-work
//!   access patterns sketched in the paper's conclusion.
//!
//! # Quick example
//!
//! ```
//! use pva_core::{BankId, Geometry, Vector, VectorSolver};
//!
//! // 16 word-interleaved banks, a stride-19 vector of 32 elements.
//! let g = Geometry::word_interleaved(16)?;
//! let v = Vector::new(0x1000, 19, 32)?;
//! let solver = VectorSolver::new(&v, &g);
//!
//! // Stride 19 is odd, so all 16 banks participate: maximum parallelism.
//! assert_eq!(solver.stride_class().banks_hit(), 16);
//! // Each bank can enumerate its own subvector independently.
//! let bank3: Vec<u64> = solver.subvector_addresses(pva_core::BankId::new(3)).collect();
//! assert_eq!(bank3.len(), 2); // 32 elements / 16 banks
//! # Ok::<(), pva_core::PvaError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitrev;
mod error;
mod firsthit;
mod geometry;
mod hash;
mod indirect;
mod logical;
mod paging;
mod pla;
mod recursive;
mod rng;
mod scheduling;
mod vector;

pub use bitrev::{bit_reverse, BitReversedVector};
pub use error::PvaError;
pub use firsthit::{
    mod_inverse_pow2, naive, solver_for_command, FirstHit, StrideClass, SubvectorIndices,
    VectorSolver,
};
pub use geometry::{BankId, Geometry, WordAddr};
pub use hash::{FastHasher, FastMap};
pub use indirect::{per_bank_counts, IndirectVector};
pub use logical::LogicalView;
pub use paging::{
    exact_elements_on_page, split_vector, MmcTlb, PhysicalSubvector, Superpage, Translation,
};
pub use pla::{scaling_sweep, FullKiPla, K1Entry, K1Pla, PlaComplexity};
pub use recursive::{first_hit_exact, gcd, next_hit_exact, next_hit_paper, OpCount};
pub use rng::SplitMix64;
pub use scheduling::{edf_schedule, feasible_by_enumeration, Placement, Task};
pub use vector::{Addresses, Chunks, Vector};
