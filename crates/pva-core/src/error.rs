//! Error types for the PVA core algorithms.

use core::fmt;

/// Errors produced by PVA core construction and algorithms.
///
/// Every fallible public function in this crate returns `Result<_, PvaError>`.
///
/// # Examples
///
/// ```
/// use pva_core::{PvaError, Vector};
///
/// let err = Vector::new(0, 0, 32).unwrap_err();
/// assert_eq!(err, PvaError::ZeroStride);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum PvaError {
    /// A vector was constructed with stride zero. A zero stride would make
    /// every element alias the base address, which the paper's base-stride
    /// model (`V = <B, S, L>` with `S >= 1`) excludes.
    ZeroStride,
    /// A vector was constructed with length zero.
    ZeroLength,
    /// A geometry parameter that must be a power of two was not.
    /// The payload is the offending value.
    NotPowerOfTwo(u64),
    /// A geometry parameter was zero.
    ZeroParameter(&'static str),
    /// A bank index was out of range for the geometry. Payload is
    /// `(bank, bank_count)`.
    BankOutOfRange(u64, u64),
    /// The configured geometry would overflow the address space
    /// (`2^(w + n + m)` words exceeds `u64`).
    GeometryOverflow,
    /// A virtual address had no translation in the memory-controller TLB.
    /// Payload is the faulting virtual word address.
    PageFault(u64),
    /// A vector operation spans more elements than the hardware transfer
    /// unit supports. Payload is `(requested, max)`.
    VectorTooLong(u64, u64),
    /// An indirection vector entry addressed a word outside the physical
    /// memory managed by the unit. Payload is the offending address.
    AddressOutOfRange(u64),
    /// A unit or device configuration violated a consistency rule
    /// checked at construction. Payload names the violated rule.
    InvalidConfig(&'static str),
    /// The simulation watchdog tripped: no transaction made forward
    /// progress for the configured number of cycles, so the run was
    /// aborted instead of hanging.
    Watchdog {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Transactions still open when it fired.
        stalled_txns: usize,
    },
    /// A write request's data line does not carry one word per vector
    /// element.
    WriteLineMismatch {
        /// Words the vector requires (its length).
        expected: u64,
        /// Words the request supplied.
        got: u64,
    },
}

impl fmt::Display for PvaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PvaError::ZeroStride => write!(f, "vector stride must be nonzero"),
            PvaError::ZeroLength => write!(f, "vector length must be nonzero"),
            PvaError::NotPowerOfTwo(v) => {
                write!(f, "parameter value {v} is not a power of two")
            }
            PvaError::ZeroParameter(name) => {
                write!(f, "parameter `{name}` must be nonzero")
            }
            PvaError::BankOutOfRange(b, count) => {
                write!(f, "bank {b} out of range for {count} banks")
            }
            PvaError::GeometryOverflow => {
                write!(f, "geometry exceeds the 64-bit word address space")
            }
            PvaError::PageFault(addr) => {
                write!(f, "no TLB translation for virtual word address {addr:#x}")
            }
            PvaError::VectorTooLong(req, max) => {
                write!(f, "vector length {req} exceeds the transfer limit {max}")
            }
            PvaError::AddressOutOfRange(addr) => {
                write!(f, "address {addr:#x} outside simulated physical memory")
            }
            PvaError::InvalidConfig(rule) => {
                write!(f, "inconsistent configuration: {rule}")
            }
            PvaError::Watchdog {
                cycle,
                stalled_txns,
            } => {
                write!(
                    f,
                    "watchdog: no forward progress by cycle {cycle} with {stalled_txns} open transactions"
                )
            }
            PvaError::WriteLineMismatch { expected, got } => {
                write!(
                    f,
                    "write line carries {got} words for a {expected}-element vector"
                )
            }
        }
    }
}

impl std::error::Error for PvaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let cases: Vec<PvaError> = vec![
            PvaError::ZeroStride,
            PvaError::ZeroLength,
            PvaError::NotPowerOfTwo(3),
            PvaError::ZeroParameter("banks"),
            PvaError::BankOutOfRange(17, 16),
            PvaError::GeometryOverflow,
            PvaError::PageFault(0x1000),
            PvaError::VectorTooLong(64, 32),
            PvaError::AddressOutOfRange(0xdead),
            PvaError::InvalidConfig("request FIFO smaller than transaction IDs"),
            PvaError::Watchdog {
                cycle: 10_000,
                stalled_txns: 3,
            },
            PvaError::WriteLineMismatch {
                expected: 32,
                got: 16,
            },
        ];
        for c in cases {
            let s = c.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "no trailing punctuation: {s}");
            assert!(
                s.chars().next().unwrap().is_lowercase(),
                "starts lowercase: {s}"
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PvaError>();
    }
}
