//! Memory-system geometry: how word addresses map onto banks.
//!
//! The paper (§4.1.1, §4.1.3) describes a memory built from `M = 2^m`
//! banks, each `W` machine words wide, interleaved at a block grain of
//! `N = 2^n` memory words. Word interleaving is the special case
//! `W = N = 1`; cache-line interleaving uses `N = ` words per L2 line.
//!
//! [`Geometry`] captures these parameters and implements `DecodeBank`,
//! the bit-select operation `(addr >> n) mod M` from §4.1.1.

use crate::error::PvaError;

/// Identifier of a physical memory bank, in `0..geometry.banks()`.
///
/// A newtype rather than a bare `usize` so bank numbers cannot be confused
/// with vector indices or addresses in scheduler code.
///
/// # Examples
///
/// ```
/// use pva_core::BankId;
/// let b = BankId::new(3);
/// assert_eq!(b.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BankId(usize);

impl BankId {
    /// Creates a bank id from a raw index.
    pub const fn new(index: usize) -> Self {
        BankId(index)
    }

    /// Returns the raw index of this bank.
    pub const fn index(self) -> usize {
        self.0
    }
}

impl core::fmt::Display for BankId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "B{}", self.0)
    }
}

impl From<BankId> for usize {
    fn from(b: BankId) -> usize {
        b.0
    }
}

/// Word-granularity memory address.
///
/// The paper works in machine words (4 bytes on the MIPS R10000 prototype);
/// all addresses in this crate are word addresses. Byte addresses are
/// converted at the system boundary.
pub type WordAddr = u64;

/// Geometry of an interleaved multi-bank memory system.
///
/// Captures the `(W, N, M)` triple of §4.1.3:
///
/// * `M = 2^m` — number of banks,
/// * `N = 2^n` — interleave block size in memory words (`1` = word
///   interleave, L2-line words = cache-line interleave),
/// * `W = 2^w` — bank width in machine words (how many machine words one
///   memory word spans).
///
/// # Examples
///
/// ```
/// use pva_core::Geometry;
///
/// // The paper's prototype: 16 word-interleaved banks.
/// let g = Geometry::word_interleaved(16)?;
/// assert_eq!(g.banks(), 16);
/// assert_eq!(g.decode_bank(0x25).index(), 0x25 % 16);
/// # Ok::<(), pva_core::PvaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// log2 of bank count.
    m: u32,
    /// log2 of interleave block size in memory words.
    n: u32,
    /// log2 of bank width in machine words.
    w: u32,
}

impl Geometry {
    /// Creates a geometry from bank count, block size and width, all of
    /// which must be powers of two.
    ///
    /// # Errors
    ///
    /// Returns [`PvaError::NotPowerOfTwo`] if any parameter is not a power
    /// of two, [`PvaError::ZeroParameter`] if any is zero, and
    /// [`PvaError::GeometryOverflow`] if `w + n + m >= 64`.
    pub fn new(banks: u64, block_words: u64, width_words: u64) -> Result<Self, PvaError> {
        let m = log2_exact(banks, "banks")?;
        let n = log2_exact(block_words, "block_words")?;
        let w = log2_exact(width_words, "width_words")?;
        if w + n + m >= 64 {
            return Err(PvaError::GeometryOverflow);
        }
        Ok(Geometry { m, n, w })
    }

    /// Creates a word-interleaved geometry (`W = N = 1`), the canonical
    /// form every other interleave is reduced to in §4.1.3.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Geometry::new`].
    pub fn word_interleaved(banks: u64) -> Result<Self, PvaError> {
        Geometry::new(banks, 1, 1)
    }

    /// Creates a cache-line interleaved geometry: banks hold whole L2
    /// lines of `line_words` memory words.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Geometry::new`].
    pub fn cacheline_interleaved(banks: u64, line_words: u64) -> Result<Self, PvaError> {
        Geometry::new(banks, line_words, 1)
    }

    /// Number of banks `M`.
    pub const fn banks(&self) -> u64 {
        1u64 << self.m
    }

    /// `m = log2(M)`.
    pub const fn log2_banks(&self) -> u32 {
        self.m
    }

    /// Interleave block size `N` in memory words.
    pub const fn block_words(&self) -> u64 {
        1u64 << self.n
    }

    /// `n = log2(N)`.
    pub const fn log2_block_words(&self) -> u32 {
        self.n
    }

    /// Bank width `W` in machine words.
    pub const fn width_words(&self) -> u64 {
        1u64 << self.w
    }

    /// `w = log2(W)`.
    pub const fn log2_width_words(&self) -> u32 {
        self.w
    }

    /// The interleave period `W * N * M` in machine words: addresses
    /// repeat their bank mapping with this period.
    pub const fn period(&self) -> u64 {
        1u64 << (self.w + self.n + self.m)
    }

    /// `DecodeBank(addr)` from §4.1.1: the bank holding machine-word
    /// address `addr`, computed as the bit-select `(addr >> (n+w)) mod M`.
    /// For `W = 1` this is the paper's `(addr >> n) mod M`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pva_core::Geometry;
    /// let g = Geometry::cacheline_interleaved(8, 4)?;
    /// // Words 0..4 are in bank 0, words 4..8 in bank 1, ...
    /// assert_eq!(g.decode_bank(5).index(), 1);
    /// assert_eq!(g.decode_bank(32).index(), 0); // wraps after 8 * 4 words
    /// # Ok::<(), pva_core::PvaError>(())
    /// ```
    pub const fn decode_bank(&self, addr: WordAddr) -> BankId {
        BankId(((addr >> (self.n + self.w)) & ((1 << self.m) - 1)) as usize)
    }

    /// Offset of `addr` within its interleave block, in machine words:
    /// `addr mod (N * W)` (the `theta` of §4.1.2 when applied to a vector
    /// base, for `W = 1`).
    pub const fn block_offset(&self, addr: WordAddr) -> u64 {
        addr & ((1 << (self.n + self.w)) - 1)
    }

    /// Total number of *logical* word-interleaved banks `W * N * M`
    /// this geometry expands to under the §4.1.3 transformation.
    pub const fn logical_banks(&self) -> u64 {
        1u64 << (self.w + self.n + self.m)
    }

    /// Modular distance `d = (b - b0) mod M` between two banks (§4.1.2),
    /// the subtraction-without-underflow of §4.2 step 3.
    pub const fn bank_distance(&self, b: BankId, b0: BankId) -> u64 {
        let m = 1u64 << self.m;
        // pva-lint: allow(wrapping-arith): (b - b0) mod M; the wrap is the §4.2 subtraction-without-underflow
        ((b.0 as u64).wrapping_sub(b0.0 as u64)) & (m - 1)
    }

    /// The *bank-local* address of `addr` within its bank: the bank's
    /// blocks are packed densely, so local address =
    /// `(block_index / M) * N*W + offset`. For word interleave this is
    /// simply `addr >> m`. This is the address a bank controller drives
    /// onto its own DRAM device.
    pub const fn bank_local_addr(&self, addr: WordAddr) -> u64 {
        let nw = self.n + self.w;
        ((addr >> (nw + self.m)) << nw) | (addr & ((1 << nw) - 1))
    }
}

impl Default for Geometry {
    /// The paper's prototype geometry: 16 word-interleaved banks.
    fn default() -> Self {
        // pva-lint: allow(panic): 16 is a power of two, so this is infallible; runs once at configuration time
        Geometry::word_interleaved(16).expect("16 banks is a valid geometry")
    }
}

impl core::fmt::Display for Geometry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}x{}x{} (WxNxM)",
            self.width_words(),
            self.block_words(),
            self.banks()
        )
    }
}

/// Returns `log2(v)` if `v` is a power of two, otherwise an error naming
/// the parameter.
fn log2_exact(v: u64, name: &'static str) -> Result<u32, PvaError> {
    if v == 0 {
        return Err(PvaError::ZeroParameter(name));
    }
    if !v.is_power_of_two() {
        return Err(PvaError::NotPowerOfTwo(v));
    }
    Ok(v.trailing_zeros())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_interleave_decode() {
        let g = Geometry::word_interleaved(8).unwrap();
        for addr in 0..64u64 {
            assert_eq!(g.decode_bank(addr).index() as u64, addr % 8);
        }
        assert_eq!(g.period(), 8);
        assert_eq!(g.block_words(), 1);
    }

    #[test]
    fn cacheline_interleave_decode() {
        // M=8 banks, N=4 words per block: matches the worked examples of
        // section 4.1.2 of the paper.
        let g = Geometry::cacheline_interleaved(8, 4).unwrap();
        // Example 1: B=0, S=8 hits banks 0,2,4,6,...
        let addrs: Vec<u64> = (0..8).map(|i| i * 8).collect();
        let banks: Vec<usize> = addrs.iter().map(|&a| g.decode_bank(a).index()).collect();
        assert_eq!(banks, vec![0, 2, 4, 6, 0, 2, 4, 6]);
        // Example 4: B=0, S=9, banks 0,2,4,6,1,3,5,7,2,4.
        let banks: Vec<usize> = (0..10).map(|i| g.decode_bank(i * 9).index()).collect();
        assert_eq!(banks, vec![0, 2, 4, 6, 1, 3, 5, 7, 2, 4]);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(
            Geometry::word_interleaved(12).unwrap_err(),
            PvaError::NotPowerOfTwo(12)
        );
        assert_eq!(
            Geometry::new(16, 3, 1).unwrap_err(),
            PvaError::NotPowerOfTwo(3)
        );
        assert_eq!(
            Geometry::new(0, 1, 1).unwrap_err(),
            PvaError::ZeroParameter("banks")
        );
    }

    #[test]
    fn rejects_overflowing_geometry() {
        assert_eq!(
            Geometry::new(1 << 32, 1 << 31, 2).unwrap_err(),
            PvaError::GeometryOverflow
        );
    }

    #[test]
    fn bank_distance_wraps() {
        let g = Geometry::word_interleaved(16).unwrap();
        assert_eq!(g.bank_distance(BankId::new(3), BankId::new(3)), 0);
        assert_eq!(g.bank_distance(BankId::new(5), BankId::new(3)), 2);
        assert_eq!(g.bank_distance(BankId::new(1), BankId::new(15)), 2);
    }

    #[test]
    fn block_offset_matches_mod() {
        let g = Geometry::cacheline_interleaved(4, 8).unwrap();
        for addr in 0..128u64 {
            assert_eq!(g.block_offset(addr), addr % 8);
        }
    }

    #[test]
    fn logical_bank_count() {
        let g = Geometry::new(2, 2, 4).unwrap();
        assert_eq!(g.logical_banks(), 16);
        // The paper's figure 4/5 example: N=2, W=4, M=2 -> 16 logical banks.
    }

    #[test]
    fn display_formats() {
        let g = Geometry::new(2, 2, 4).unwrap();
        assert_eq!(g.to_string(), "4x2x2 (WxNxM)");
        assert_eq!(BankId::new(7).to_string(), "B7");
    }

    #[test]
    fn bank_local_addr_word_interleave() {
        let g = Geometry::word_interleaved(16).unwrap();
        for addr in 0..256u64 {
            assert_eq!(g.bank_local_addr(addr), addr >> 4);
        }
    }

    #[test]
    fn bank_local_addr_is_dense_per_bank() {
        // For every bank, the local addresses of its words (in address
        // order) must be 0, 1, 2, ... — dense and gap-free.
        for (banks, block) in [(4u64, 8u64), (8, 4), (16, 32), (2, 1)] {
            let g = Geometry::cacheline_interleaved(banks, block).unwrap();
            let mut next_local = vec![0u64; banks as usize];
            for addr in 0..(4 * g.period()) {
                let b = g.decode_bank(addr).index();
                assert_eq!(
                    g.bank_local_addr(addr),
                    next_local[b],
                    "geometry {g} addr {addr}"
                );
                next_local[b] += 1;
            }
        }
    }

    #[test]
    fn default_is_prototype() {
        let g = Geometry::default();
        assert_eq!(g.banks(), 16);
        assert_eq!(g.block_words(), 1);
    }
}
