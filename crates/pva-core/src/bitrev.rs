//! Bit-reversed application vectors (§7, future-work extension).
//!
//! The reorder ("bit reversal") phase of an FFT permutes element `i` to
//! element `rev_k(i)` of a `2^k`-element array — a pattern with terrible
//! cache locality for large data sets. The paper's conclusion sketches
//! how a vector-aware memory controller handles it: reverse some low
//! address bits, access, increment the original address, repeat until a
//! cache line is filled. For word-interleaved memory the gather is
//! inherently sequential; block-interleaved systems can parallelize it
//! (each bank claims the reversed addresses that decode to it).

use crate::error::PvaError;
use crate::geometry::{BankId, Geometry, WordAddr};

/// Reverses the low `bits` bits of `i`.
///
/// # Panics
///
/// Panics if `bits > 64` or if `i` has bits set above `bits`.
///
/// # Examples
///
/// ```
/// use pva_core::bit_reverse;
/// assert_eq!(bit_reverse(0b001, 3), 0b100);
/// assert_eq!(bit_reverse(0b011, 3), 0b110);
/// assert_eq!(bit_reverse(5, 3), 5); // 101 is a palindrome
/// ```
pub fn bit_reverse(i: u64, bits: u32) -> u64 {
    assert!(bits <= 64, "cannot reverse more than 64 bits");
    if bits == 0 {
        assert_eq!(i, 0);
        return 0;
    }
    assert!(
        bits == 64 || i < (1u64 << bits),
        "value {i} does not fit in {bits} bits"
    );
    i.reverse_bits() >> (64 - bits)
}

/// A bit-reversed application vector: element `i` lives at
/// `base + rev_k(i)`.
///
/// # Examples
///
/// ```
/// use pva_core::BitReversedVector;
///
/// let v = BitReversedVector::new(0x100, 3)?;
/// let addrs: Vec<u64> = v.addresses().collect();
/// assert_eq!(addrs, vec![0x100, 0x104, 0x102, 0x106,
///                        0x101, 0x105, 0x103, 0x107]);
/// # Ok::<(), pva_core::PvaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BitReversedVector {
    base: WordAddr,
    log2_len: u32,
}

impl BitReversedVector {
    /// Creates a bit-reversed vector of `2^log2_len` elements starting
    /// at `base`.
    ///
    /// # Errors
    ///
    /// Returns [`PvaError::GeometryOverflow`] if `log2_len >= 64`.
    pub fn new(base: WordAddr, log2_len: u32) -> Result<Self, PvaError> {
        if log2_len >= 64 {
            return Err(PvaError::GeometryOverflow);
        }
        Ok(BitReversedVector { base, log2_len })
    }

    /// Base address.
    pub const fn base(&self) -> WordAddr {
        self.base
    }

    /// Number of elements, `2^log2_len`.
    pub const fn length(&self) -> u64 {
        1u64 << self.log2_len
    }

    /// `log2` of the length.
    pub const fn log2_len(&self) -> u32 {
        self.log2_len
    }

    /// Address of element `i`: `base + rev(i)`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.length()`.
    pub fn element(&self, i: u64) -> WordAddr {
        assert!(i < self.length(), "element {i} out of range");
        self.base + bit_reverse(i, self.log2_len)
    }

    /// Iterator over all element addresses in element order.
    pub fn addresses(&self) -> impl Iterator<Item = WordAddr> + '_ {
        (0..self.length()).map(move |i| self.element(i))
    }

    /// The element indices that bank `b` holds, in increasing order —
    /// the per-bank claim used to parallelize the gather on interleaved
    /// systems.
    ///
    /// For word interleave, a bank holds element `i` iff
    /// `(base + rev(i)) mod M == b`; because `rev` permutes low address
    /// bits into *high* index bits, consecutive claimed indices are far
    /// apart — the sequentiality the paper notes. On block interleave the
    /// same formula applies through [`Geometry::decode_bank`].
    pub fn subvector_indices<'a>(
        &'a self,
        b: BankId,
        g: &'a Geometry,
    ) -> impl Iterator<Item = u64> + 'a {
        (0..self.length()).filter(move |&i| g.decode_bank(self.element(i)) == b)
    }

    /// Fast per-bank claim for word interleave when the reversal is at
    /// least as wide as the bank-select field: bank bits of
    /// `base + rev(i)` come from `base` plus the *top* bits of `i`
    /// reversed, so the claim is computable with a mask — the "simple
    /// bit-mask operation" of §7. Returns `None` when the fast form does
    /// not apply (narrow reversals or non-word interleave).
    pub fn fast_claim(&self, b: BankId, g: &Geometry) -> Option<Vec<u64>> {
        if g.block_words() != 1 || g.width_words() != 1 {
            return None;
        }
        let m_bits = g.log2_banks();
        if self.log2_len < m_bits {
            return None;
        }
        // rev(i) mod M is the top m bits of i, reversed, xor-adjusted by
        // base. Addresses: (base + rev(i)) mod M. rev(i) mod M = rev of
        // the top m_bits of i. Carry from base's low bits can propagate,
        // so the claim is exact only when base is bank-aligned.
        if self.base & (g.banks() - 1) != 0 {
            return None;
        }
        let b0 = g.decode_bank(self.base).index() as u64;
        let want = (b.index() as u64).wrapping_sub(b0) & (g.banks() - 1);
        // i's top m bits, reversed, must equal `want`.
        let top = bit_reverse(want, m_bits);
        let low_bits = self.log2_len - m_bits;
        Some(
            (0..(1u64 << low_bits))
                .map(|low| (top << low_bits) | low)
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_reverse_involution() {
        for bits in 0..=16u32 {
            for i in 0..(1u64 << bits.min(10)) {
                assert_eq!(bit_reverse(bit_reverse(i, bits), bits), i);
            }
        }
    }

    #[test]
    fn bit_reverse_is_permutation() {
        let bits = 8;
        let mut seen = vec![false; 256];
        for i in 0..256u64 {
            let r = bit_reverse(i, bits) as usize;
            assert!(!seen[r]);
            seen[r] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn bit_reverse_rejects_oversized() {
        bit_reverse(8, 3);
    }

    #[test]
    fn addresses_are_a_permutation_of_the_array() {
        let v = BitReversedVector::new(64, 5).unwrap();
        let mut addrs: Vec<u64> = v.addresses().collect();
        addrs.sort_unstable();
        assert_eq!(addrs, (64..96).collect::<Vec<u64>>());
    }

    #[test]
    fn subvector_claims_partition_elements() {
        let g = Geometry::word_interleaved(8).unwrap();
        let v = BitReversedVector::new(16, 6).unwrap();
        let mut all: Vec<u64> = (0..8)
            .flat_map(|b| v.subvector_indices(BankId::new(b), &g).collect::<Vec<_>>())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..64).collect::<Vec<u64>>());
    }

    #[test]
    fn fast_claim_matches_naive() {
        let g = Geometry::word_interleaved(16).unwrap();
        let v = BitReversedVector::new(256, 8).unwrap();
        for b in 0..16 {
            let b = BankId::new(b);
            let mut fast = v.fast_claim(b, &g).unwrap();
            fast.sort_unstable();
            let naive: Vec<u64> = v.subvector_indices(b, &g).collect();
            assert_eq!(fast, naive, "bank {b}");
        }
    }

    #[test]
    fn fast_claim_declines_unaligned_base() {
        let g = Geometry::word_interleaved(16).unwrap();
        let v = BitReversedVector::new(257, 8).unwrap();
        assert!(v.fast_claim(BankId::new(0), &g).is_none());
        // But the naive claim still partitions correctly.
        let total: usize = (0..16)
            .map(|b| v.subvector_indices(BankId::new(b), &g).count())
            .sum();
        assert_eq!(total, 256);
    }

    #[test]
    fn fast_claim_declines_blocked_interleave() {
        let g = Geometry::cacheline_interleaved(8, 4).unwrap();
        let v = BitReversedVector::new(0, 8).unwrap();
        assert!(v.fast_claim(BankId::new(0), &g).is_none());
    }
}
