//! # cache — the L2 in front of the memory controller
//!
//! The paper's §1 argues that caches *amplify* the strided-access
//! problem: "they might in fact exacerbate the problem by loading and
//! storing entire cachelines even when the application uses only a few
//! of the memory words in a cacheline", wasting both cache capacity and
//! bus bandwidth. The PVA's fix is to satisfy vector accesses as
//! gathered lines (dense, via shadow space) instead of polluting fills.
//!
//! This crate provides the missing piece for quantifying that argument:
//! a write-back / write-allocate set-associative L2 model
//! ([`CacheSim`]) that converts a processor *word* reference stream
//! into the line fills and writebacks a memory system actually sees,
//! and a driver ([`run_reference_stream`]) that charges those to any
//! [`MemorySystem`]. The paper's §6.2 leaves "functional simulation of
//! the whole memory system" as future work; this is a small version of
//! that study (see the `ext_cache_pollution` bench).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use memsys::{MemorySystem, TraceOp};
use pva_core::{Vector, WordAddr};

/// One processor reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reference {
    /// Word load.
    Load(WordAddr),
    /// Word store.
    Store(WordAddr),
}

impl Reference {
    /// The referenced word address.
    pub const fn addr(&self) -> WordAddr {
        match *self {
            Reference::Load(a) | Reference::Store(a) => a,
        }
    }
}

/// Line traffic the cache generated for one reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineOp {
    /// Fetch the line containing this word-aligned line address.
    Fill(WordAddr),
    /// Write back the dirty line at this line address.
    WriteBack(WordAddr),
}

/// L2 configuration. Defaults model the paper's target: 128-byte lines
/// (32 four-byte words), 4-way, 1 MiB-equivalent capacity scaled down
/// for simulation (64 sets x 4 ways x 128 B = 32 KiB; set `sets` higher
/// for larger caches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Words per line (32 = the prototype's 128-byte L2 line).
    pub line_words: u64,
    /// Number of sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            line_words: 32,
            sets: 64,
            ways: 4,
        }
    }
}

impl CacheConfig {
    /// Total capacity in words.
    pub const fn capacity_words(&self) -> u64 {
        self.line_words * (self.sets as u64) * (self.ways as u64)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Line {
    tag: u64,
    dirty: bool,
    /// LRU stamp.
    used: u64,
}

/// Hit/miss/writeback counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// References that hit.
    pub hits: u64,
    /// References that missed (caused a fill).
    pub misses: u64,
    /// Dirty evictions (writebacks).
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit ratio in `0.0..=1.0` (1.0 for an untouched cache).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A write-back, write-allocate, set-associative cache with LRU
/// replacement.
///
/// # Examples
///
/// ```
/// use cache::{CacheConfig, CacheSim, LineOp, Reference};
///
/// let mut l2 = CacheSim::new(CacheConfig::default());
/// // First touch misses and fills the whole 32-word line...
/// assert_eq!(l2.access(Reference::Load(5)), vec![LineOp::Fill(0)]);
/// // ...then neighbouring words hit.
/// assert!(l2.access(Reference::Load(6)).is_empty());
/// assert_eq!(l2.stats().hits, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CacheSim {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    stats: CacheStats,
}

impl CacheSim {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a power of two or any parameter is zero.
    pub fn new(config: CacheConfig) -> Self {
        assert!(config.sets.is_power_of_two(), "sets must be a power of two");
        assert!(config.ways > 0 && config.line_words > 0);
        CacheSim {
            config,
            sets: vec![Vec::new(); config.sets],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configuration.
    pub const fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Counters so far.
    pub const fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Performs one reference, returning the line traffic it caused
    /// (empty on a hit; a fill and possibly a writeback on a miss).
    pub fn access(&mut self, r: Reference) -> Vec<LineOp> {
        self.clock += 1;
        let line_addr = r.addr() / self.config.line_words * self.config.line_words;
        let set_idx = (line_addr / self.config.line_words) as usize & (self.config.sets - 1);
        let tag = line_addr / self.config.line_words / self.config.sets as u64;
        let dirty = matches!(r, Reference::Store(_));
        let clock = self.clock;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.tag == tag) {
            line.used = clock;
            line.dirty |= dirty;
            self.stats.hits += 1;
            return Vec::new();
        }
        self.stats.misses += 1;
        let mut ops = Vec::new();
        if set.len() == self.config.ways {
            let (victim_idx, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.used)
                .expect("full set is nonempty");
            let victim = set.remove(victim_idx);
            if victim.dirty {
                let victim_line = (victim.tag * self.config.sets as u64 + set_idx as u64)
                    * self.config.line_words;
                self.stats.writebacks += 1;
                ops.push(LineOp::WriteBack(victim_line));
            }
        }
        set.push(Line {
            tag,
            dirty,
            used: clock,
        });
        ops.push(LineOp::Fill(line_addr));
        ops
    }

    /// Flushes all dirty lines, returning their writebacks.
    pub fn flush(&mut self) -> Vec<LineOp> {
        let mut ops = Vec::new();
        for (set_idx, set) in self.sets.iter_mut().enumerate() {
            for line in set.drain(..) {
                if line.dirty {
                    let addr = (line.tag * self.config.sets as u64 + set_idx as u64)
                        * self.config.line_words;
                    self.stats.writebacks += 1;
                    ops.push(LineOp::WriteBack(addr));
                }
            }
        }
        ops
    }

    /// Whether the line containing `addr` is currently resident.
    pub fn contains(&self, addr: WordAddr) -> bool {
        let line_addr = addr / self.config.line_words * self.config.line_words;
        let set_idx = (line_addr / self.config.line_words) as usize & (self.config.sets - 1);
        let tag = line_addr / self.config.line_words / self.config.sets as u64;
        self.sets[set_idx].iter().any(|l| l.tag == tag)
    }
}

/// Result of driving a reference stream through cache + memory system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamRunResult {
    /// Cycles the memory system spent on the generated line traffic.
    pub memory_cycles: u64,
    /// Cache counters for the run.
    pub cache: CacheStats,
    /// Line fills issued.
    pub fills: u64,
    /// Writebacks issued.
    pub writebacks: u64,
}

/// Drives a word-reference stream through `cache`; the produced line
/// traffic is charged to `memory` in order (including a final dirty
/// flush when `flush_at_end`).
pub fn run_reference_stream(
    cache: &mut CacheSim,
    memory: &mut dyn MemorySystem,
    refs: &[Reference],
    flush_at_end: bool,
) -> StreamRunResult {
    let before = *cache.stats();
    let mut trace: Vec<TraceOp> = Vec::new();
    let line_words = cache.config().line_words;
    let push = |op: LineOp, trace: &mut Vec<TraceOp>| {
        let v = |addr| Vector::unit_stride(addr, line_words).expect("nonzero line");
        match op {
            LineOp::Fill(a) => trace.push(TraceOp::read(v(a))),
            LineOp::WriteBack(a) => trace.push(TraceOp::write(v(a))),
        }
    };
    for &r in refs {
        for op in cache.access(r) {
            push(op, &mut trace);
        }
    }
    if flush_at_end {
        for op in cache.flush() {
            push(op, &mut trace);
        }
    }
    let fills = trace
        .iter()
        .filter(|t| t.kind == memsys::OpKind::Read)
        .count() as u64;
    let writebacks = trace.len() as u64 - fills;
    let memory_cycles = if trace.is_empty() {
        0
    } else {
        memory.run_trace(&trace).cycles
    };
    let after = *cache.stats();
    StreamRunResult {
        memory_cycles,
        cache: CacheStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            writebacks: after.writebacks - before.writebacks,
        },
        fills,
        writebacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheSim {
        CacheSim::new(CacheConfig {
            line_words: 4,
            sets: 2,
            ways: 2,
        })
    }

    #[test]
    fn fill_then_hit() {
        let mut c = small();
        assert_eq!(c.access(Reference::Load(0)), vec![LineOp::Fill(0)]);
        assert_eq!(c.access(Reference::Load(3)), vec![]);
        assert_eq!(c.access(Reference::Load(4)), vec![LineOp::Fill(4)]);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn store_allocates_and_dirties() {
        let mut c = small();
        assert_eq!(c.access(Reference::Store(1)), vec![LineOp::Fill(0)]);
        let wb = c.flush();
        assert_eq!(wb, vec![LineOp::WriteBack(0)]);
    }

    #[test]
    fn lru_evicts_oldest_and_writes_back_dirty() {
        let mut c = small();
        // Set 0 holds lines 0 and 8 (line_words=4, sets=2: line/4 % 2).
        c.access(Reference::Store(0)); // line 0, dirty
        c.access(Reference::Load(8)); // line 8
                                      // Third line in set 0 evicts line 0 (LRU) -> writeback.
        let ops = c.access(Reference::Load(16));
        assert_eq!(ops, vec![LineOp::WriteBack(0), LineOp::Fill(16)]);
    }

    #[test]
    fn contains_tracks_residency() {
        let mut c = small();
        c.access(Reference::Load(0));
        assert!(c.contains(2));
        assert!(!c.contains(8));
    }

    #[test]
    fn strided_walk_pollutes_capacity() {
        // The §1 argument, measured: a stride-32 walk (1 useful word per
        // 4-word line here with stride 8) touches `n` lines but uses few
        // words; a following re-walk of a dense array misses because the
        // strided lines consumed the capacity.
        let cfg = CacheConfig {
            line_words: 4,
            sets: 8,
            ways: 2,
        };
        let mut c = CacheSim::new(cfg);
        // Dense array resident first: 8 lines = half the capacity.
        for w in 0..32u64 {
            c.access(Reference::Load(w));
        }
        // Strided sweep over a big footprint (one useful word per line,
        // touching every set) evicts it all.
        for i in 0..64u64 {
            c.access(Reference::Load(1024 + i * 4));
        }
        // Dense array re-walk: all misses.
        let before = c.stats().misses;
        for w in 0..32u64 {
            c.access(Reference::Load(w));
        }
        let dense_misses = c.stats().misses - before;
        assert_eq!(dense_misses, 8, "every dense line was evicted");
    }

    #[test]
    fn reference_stream_charges_memory() {
        use memsys::CachelineSerial;
        let mut c = CacheSim::new(CacheConfig::default());
        let refs: Vec<Reference> = (0..64).map(Reference::Load).collect();
        let mut mem = CachelineSerial::default();
        let r = run_reference_stream(&mut c, &mut mem, &refs, true);
        // 64 words = 2 lines = 2 fills x 20 cycles; no writebacks.
        assert_eq!(r.fills, 2);
        assert_eq!(r.writebacks, 0);
        assert_eq!(r.memory_cycles, 40);
        assert_eq!(r.cache.misses, 2);
        assert_eq!(r.cache.hits, 62);
    }
}
