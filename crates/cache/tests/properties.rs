//! Property tests for the L2 model: conservation laws that must hold
//! for any reference stream.

use proptest::prelude::*;

use cache::{CacheConfig, CacheSim, LineOp, Reference};

fn config() -> impl Strategy<Value = CacheConfig> {
    (2u64..=32, 0u32..=5, 1usize..=4).prop_map(|(line, sets_log, ways)| CacheConfig {
        line_words: line.next_power_of_two(),
        sets: 1 << sets_log,
        ways,
    })
}

fn refs() -> impl Strategy<Value = Vec<Reference>> {
    prop::collection::vec(
        (0u64..4096, any::<bool>()).prop_map(|(a, w)| {
            if w {
                Reference::Store(a)
            } else {
                Reference::Load(a)
            }
        }),
        1..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hits + misses always equals references observed.
    #[test]
    fn hit_miss_conservation(cfg in config(), stream in refs()) {
        let mut c = CacheSim::new(cfg);
        for &r in &stream {
            c.access(r);
        }
        prop_assert_eq!(
            c.stats().hits + c.stats().misses,
            stream.len() as u64
        );
    }

    /// Every fill is for the line of the reference that caused it, and
    /// a reference is always resident immediately afterwards.
    #[test]
    fn fills_match_their_reference(cfg in config(), stream in refs()) {
        let mut c = CacheSim::new(cfg);
        for &r in &stream {
            let line = r.addr() / cfg.line_words * cfg.line_words;
            for op in c.access(r) {
                if let LineOp::Fill(a) = op {
                    prop_assert_eq!(a, line);
                }
            }
            prop_assert!(c.contains(r.addr()));
        }
    }

    /// Writebacks never exceed the number of store-dirtied lines, and a
    /// final flush emits each dirty line exactly once.
    #[test]
    fn writeback_accounting(cfg in config(), stream in refs()) {
        let mut c = CacheSim::new(cfg);
        let mut dirtied = std::collections::HashSet::new();
        for &r in &stream {
            if let Reference::Store(a) = r {
                dirtied.insert(a / cfg.line_words);
            }
            c.access(r);
        }
        let flushed = c.flush();
        let mut seen = std::collections::HashSet::new();
        for op in &flushed {
            if let LineOp::WriteBack(a) = op {
                prop_assert!(seen.insert(*a), "line flushed twice");
                prop_assert!(dirtied.contains(&(a / cfg.line_words)),
                    "flushed a never-dirtied line");
            }
        }
        prop_assert!(c.stats().writebacks <= dirtied.len() as u64 * (stream.len() as u64));
        // After a flush, nothing is resident.
        for &r in &stream {
            prop_assert!(!c.contains(r.addr()));
        }
    }

    /// A cache big enough for the whole footprint never evicts: second
    /// pass over the same stream is all hits.
    #[test]
    fn no_capacity_misses_when_footprint_fits(stream in refs()) {
        let cfg = CacheConfig { line_words: 32, sets: 512, ways: 8 }; // 128Ki words
        let mut c = CacheSim::new(cfg);
        for &r in &stream {
            c.access(r);
        }
        let before = c.stats().misses;
        for &r in &stream {
            c.access(r);
        }
        prop_assert_eq!(c.stats().misses, before, "second pass must be all hits");
    }
}
