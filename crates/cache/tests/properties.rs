//! Property-style tests for the L2 model: conservation laws that must
//! hold for any reference stream. Randomized with the deterministic
//! in-tree [`SplitMix64`] (no external crates in this build).

use cache::{CacheConfig, CacheSim, LineOp, Reference};
use pva_core::SplitMix64;

const CASES: u64 = 64;

fn config(r: &mut SplitMix64) -> CacheConfig {
    CacheConfig {
        line_words: r.range(2, 33).next_power_of_two(),
        sets: 1 << r.range(0, 6),
        ways: r.range(1, 5) as usize,
    }
}

fn refs(r: &mut SplitMix64) -> Vec<Reference> {
    let n = r.range(1, 200);
    (0..n)
        .map(|_| {
            let a = r.below(4096);
            if r.coin() {
                Reference::Store(a)
            } else {
                Reference::Load(a)
            }
        })
        .collect()
}

/// Hits + misses always equals references observed.
#[test]
fn hit_miss_conservation() {
    let mut r = SplitMix64::new(0xCAC1);
    for _ in 0..CASES {
        let cfg = config(&mut r);
        let stream = refs(&mut r);
        let mut c = CacheSim::new(cfg);
        for &rf in &stream {
            c.access(rf);
        }
        assert_eq!(c.stats().hits + c.stats().misses, stream.len() as u64);
    }
}

/// Every fill is for the line of the reference that caused it, and a
/// reference is always resident immediately afterwards.
#[test]
fn fills_match_their_reference() {
    let mut r = SplitMix64::new(0xCAC2);
    for _ in 0..CASES {
        let cfg = config(&mut r);
        let stream = refs(&mut r);
        let mut c = CacheSim::new(cfg);
        for &rf in &stream {
            let line = rf.addr() / cfg.line_words * cfg.line_words;
            for op in c.access(rf) {
                if let LineOp::Fill(a) = op {
                    assert_eq!(a, line);
                }
            }
            assert!(c.contains(rf.addr()));
        }
    }
}

/// Writebacks never exceed the number of store-dirtied lines, and a
/// final flush emits each dirty line exactly once.
#[test]
fn writeback_accounting() {
    let mut r = SplitMix64::new(0xCAC3);
    for _ in 0..CASES {
        let cfg = config(&mut r);
        let stream = refs(&mut r);
        let mut c = CacheSim::new(cfg);
        let mut dirtied = std::collections::HashSet::new();
        for &rf in &stream {
            if let Reference::Store(a) = rf {
                dirtied.insert(a / cfg.line_words);
            }
            c.access(rf);
        }
        let flushed = c.flush();
        let mut seen = std::collections::HashSet::new();
        for op in &flushed {
            if let LineOp::WriteBack(a) = op {
                assert!(seen.insert(*a), "line flushed twice");
                assert!(
                    dirtied.contains(&(a / cfg.line_words)),
                    "flushed a never-dirtied line"
                );
            }
        }
        assert!(c.stats().writebacks <= dirtied.len() as u64 * (stream.len() as u64));
        // After a flush, nothing is resident.
        for &rf in &stream {
            assert!(!c.contains(rf.addr()));
        }
    }
}

/// A cache big enough for the whole footprint never evicts: second
/// pass over the same stream is all hits.
#[test]
fn no_capacity_misses_when_footprint_fits() {
    let mut r = SplitMix64::new(0xCAC4);
    for _ in 0..CASES {
        let stream = refs(&mut r);
        let cfg = CacheConfig {
            line_words: 32,
            sets: 512,
            ways: 8,
        }; // 128Ki words
        let mut c = CacheSim::new(cfg);
        for &rf in &stream {
            c.access(rf);
        }
        let before = c.stats().misses;
        for &rf in &stream {
            c.access(rf);
        }
        assert_eq!(c.stats().misses, before, "second pass must be all hits");
    }
}
