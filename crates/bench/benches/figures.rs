//! Benchmarks: one group per table/figure of the paper's evaluation.
//! Each bench measures the *simulation* that regenerates the
//! corresponding data series, so `cargo bench` both exercises the full
//! stack under the measurement harness and reports how expensive each
//! reproduction is.
//!
//! The harness is a minimal self-contained timer (`harness = false`;
//! this build is hermetic, so no criterion): each workload is warmed
//! up, then run for a fixed iteration count, and the mean wall-clock
//! time per iteration is printed in criterion-like format.
//!
//! The actual figure data (the paper's rows/series) is printed by the
//! matching `src/bin/*` regeneration binaries.

use std::hint::black_box;
use std::time::Instant;

use kernels::{run_point, Alignment, Kernel, SystemKind};
use memsys::MemorySystem;
use pva_core::{IndirectVector, Vector};
use pva_sim::{run_indirect_gather, unit_complexity, HostRequest, PvaConfig, PvaUnit};

/// Times `f` and prints a `name ... mean ns/iter` line. The iteration
/// count adapts so each bench takes roughly 100 ms.
fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up + calibration: find an iteration count near the budget.
    let mut iters: u64 = 1;
    loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let elapsed = t0.elapsed();
        if elapsed.as_millis() >= 20 || iters >= 1 << 20 {
            let per_iter = elapsed.as_nanos() as f64 / iters as f64;
            // One measured pass at the calibrated count.
            let target = ((100e6 / per_iter).max(1.0) as u64).min(1 << 20);
            let t1 = Instant::now();
            for _ in 0..target {
                black_box(f());
            }
            let mean = t1.elapsed().as_nanos() as f64 / target as f64;
            println!("{name:<40} {mean:>14.1} ns/iter  ({target} iters)");
            return;
        }
        iters *= 2;
    }
}

/// Table 1: the complexity-proxy computation (PLA generation dominates).
fn table1() {
    bench("table1/unit_complexity", || {
        unit_complexity(&PvaConfig::default())
    });
    bench("table1/pla_scaling_sweep", || pva_core::scaling_sweep(8));
}

/// Table 2: kernel trace generation.
fn table2() {
    let bases = [0u64, 1 << 22, 2 << 22];
    bench("table2/trace_generation", || {
        Kernel::ALL
            .iter()
            .map(|k| k.trace(&bases[..k.array_count()], 4, 1024, 32).len())
            .sum::<usize>()
    });
}

/// Figures 7/8: one representative (kernel, stride, system) cell each.
fn fig7_fig8() {
    for (kernel, stride) in [
        (Kernel::Copy, 1u64),
        (Kernel::Saxpy, 4),
        (Kernel::Scale, 19),
        (Kernel::Swap, 8),
        (Kernel::Tridiag, 16),
        (Kernel::Vaxpy, 19),
    ] {
        bench(
            &format!("fig7_8/{}_s{}_pva_sdram", kernel.name(), stride),
            || run_point(kernel, stride, Alignment::BankStagger, SystemKind::PvaSdram),
        );
    }
    bench("fig7_8/copy_s16_cacheline", || {
        run_point(
            Kernel::Copy,
            16,
            Alignment::BankStagger,
            SystemKind::CachelineSerial,
        )
    });
}

/// Figures 9/10: the all-kernel fixed-stride comparisons at the two
/// extreme strides.
fn fig9_fig10() {
    for stride in [1u64, 19] {
        bench(&format!("fig9_10/all_kernels_s{stride}"), || {
            Kernel::ALL
                .iter()
                .map(|&k| run_point(k, stride, Alignment::Coincident, SystemKind::PvaSdram))
                .sum::<u64>()
        });
    }
}

/// Figure 11: vaxpy across alignments on both PVA back ends.
fn fig11() {
    for sys in [SystemKind::PvaSdram, SystemKind::PvaSram] {
        bench(&format!("fig11/vaxpy_alignments_{}", sys.name()), || {
            Alignment::ALL
                .iter()
                .map(|&a| run_point(Kernel::Vaxpy, 8, a, sys))
                .sum::<u64>()
        });
    }
}

/// Single-command latency of the PVA unit itself (the microscopic view
/// behind every figure). Unit construction is part of the measured
/// body (no batched setup without criterion), which adds a constant
/// that is small next to the simulated gather.
fn unit_micro() {
    for stride in [1u64, 16, 19] {
        bench(&format!("pva_unit/single_gather_s{stride}"), || {
            let mut unit = PvaUnit::new(PvaConfig::default()).expect("valid config");
            let v = Vector::new(0, stride, 32).expect("valid vector");
            unit.run(vec![HostRequest::Read { vector: v }])
                .expect("runs")
        });
    }
}

/// §7 extensions: indirect gather.
fn extensions() {
    let iv = IndirectVector::new(0, (0..64).map(|i| i * 7 % 4096).collect()).expect("nonempty");
    bench("ext/indirect_gather_64", || {
        run_indirect_gather(PvaConfig::default(), &iv, 0).expect("gathers")
    });
}

/// Related-work comparators: CVMS-like subcommand generation and the
/// SMC-like serial stream controller.
fn related_work() {
    bench("related/cvms_like_s19", || {
        let mut unit = PvaUnit::new(PvaConfig::cvms_like()).expect("valid config");
        let v = Vector::new(0, 19, 32).expect("valid vector");
        unit.run(vec![HostRequest::Read { vector: v }])
            .expect("runs")
    });
    let bases = Alignment::BankStagger.bases(2, 1 << 22);
    let trace = Kernel::Copy.trace(&bases, 4, 256, 32);
    bench("related/smc_like_copy_s4", || {
        memsys::SmcLike::default().run_trace(&trace).cycles
    });
}

/// Scheduler ablations and the DRAM technology sweep.
fn ablations_and_tech() {
    let bases = Alignment::Coincident.bases(3, 1 << 22);
    let trace = Kernel::Vaxpy.trace(&bases, 16, 256, 32);
    bench("ablations/row_conflict_probe", || {
        memsys::PvaSystem::sdram().run_trace(&trace).cycles
    });
    bench("ablations/tech_edo_like_s16", || {
        let mut unit = PvaUnit::new(PvaConfig {
            sdram: sdram::SdramConfig::for_device(sdram::DevicePreset::EdoLike),
            ..PvaConfig::default()
        })
        .expect("valid config");
        let v = Vector::new(0, 16, 32).expect("valid vector");
        unit.run(vec![HostRequest::Read { vector: v }])
            .expect("runs")
    });
}

/// STREAM bandwidth measurement.
fn stream() {
    use kernels::StreamKernel;
    bench("stream/triad_pva", || {
        StreamKernel::Triad.bandwidth(&mut memsys::PvaSystem::sdram(), 1024)
    });
}

fn main() {
    // `cargo bench` forwards a `--bench` flag and possibly a filter;
    // `cargo test --benches` passes `--test`. Run everything either
    // way — each bench self-calibrates, so a full pass stays cheap.
    table1();
    table2();
    fig7_fig8();
    fig9_fig10();
    fig11();
    unit_micro();
    extensions();
    related_work();
    ablations_and_tech();
    stream();
}
