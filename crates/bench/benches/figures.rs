//! Criterion benches: one group per table/figure of the paper's
//! evaluation. Each bench measures the *simulation* that regenerates the
//! corresponding data series, so `cargo bench` both exercises the full
//! stack under the measurement harness and reports how expensive each
//! reproduction is.
//!
//! The actual figure data (the paper's rows/series) is printed by the
//! matching `src/bin/*` regeneration binaries.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use kernels::{run_point, Alignment, Kernel, SystemKind};
use pva_core::{IndirectVector, Vector};
use pva_sim::{run_indirect_gather, unit_complexity, HostRequest, PvaConfig, PvaUnit};

/// Table 1: the complexity-proxy computation (PLA generation dominates).
fn table1(c: &mut Criterion) {
    c.bench_function("table1/unit_complexity", |b| {
        b.iter(|| unit_complexity(&PvaConfig::default()))
    });
    c.bench_function("table1/pla_scaling_sweep", |b| {
        b.iter(|| pva_core::scaling_sweep(8))
    });
}

/// Table 2: kernel trace generation.
fn table2(c: &mut Criterion) {
    c.bench_function("table2/trace_generation", |b| {
        let bases = [0u64, 1 << 22, 2 << 22];
        b.iter(|| {
            Kernel::ALL
                .iter()
                .map(|k| k.trace(&bases[..k.array_count()], 4, 1024, 32).len())
                .sum::<usize>()
        })
    });
}

/// Figures 7/8: one representative (kernel, stride, system) cell each.
fn fig7_fig8(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_8");
    for (kernel, stride) in [
        (Kernel::Copy, 1u64),
        (Kernel::Saxpy, 4),
        (Kernel::Scale, 19),
        (Kernel::Swap, 8),
        (Kernel::Tridiag, 16),
        (Kernel::Vaxpy, 19),
    ] {
        g.bench_function(format!("{}_s{}_pva_sdram", kernel.name(), stride), |b| {
            b.iter(|| run_point(kernel, stride, Alignment::BankStagger, SystemKind::PvaSdram))
        });
    }
    g.bench_function("copy_s16_cacheline", |b| {
        b.iter(|| {
            run_point(
                Kernel::Copy,
                16,
                Alignment::BankStagger,
                SystemKind::CachelineSerial,
            )
        })
    });
    g.finish();
}

/// Figures 9/10: the all-kernel fixed-stride comparisons at the two
/// extreme strides.
fn fig9_fig10(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9_10");
    g.sample_size(10);
    for stride in [1u64, 19] {
        g.bench_function(format!("all_kernels_s{stride}"), |b| {
            b.iter(|| {
                Kernel::ALL
                    .iter()
                    .map(|&k| run_point(k, stride, Alignment::Coincident, SystemKind::PvaSdram))
                    .sum::<u64>()
            })
        });
    }
    g.finish();
}

/// Figure 11: vaxpy across alignments on both PVA back ends.
fn fig11(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig11");
    g.sample_size(10);
    for sys in [SystemKind::PvaSdram, SystemKind::PvaSram] {
        g.bench_function(format!("vaxpy_alignments_{}", sys.name()), |b| {
            b.iter(|| {
                Alignment::ALL
                    .iter()
                    .map(|&a| run_point(Kernel::Vaxpy, 8, a, sys))
                    .sum::<u64>()
            })
        });
    }
    g.finish();
}

/// Single-command latency of the PVA unit itself (the microscopic view
/// behind every figure).
fn unit_micro(c: &mut Criterion) {
    let mut g = c.benchmark_group("pva_unit");
    for stride in [1u64, 16, 19] {
        g.bench_function(format!("single_gather_s{stride}"), |b| {
            b.iter_batched(
                || PvaUnit::new(PvaConfig::default()).expect("valid config"),
                |mut unit| {
                    let v = Vector::new(0, stride, 32).expect("valid vector");
                    unit.run(vec![HostRequest::Read { vector: v }])
                        .expect("runs")
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

/// §7 extensions: indirect gather.
fn extensions(c: &mut Criterion) {
    c.bench_function("ext/indirect_gather_64", |b| {
        let iv = IndirectVector::new(0, (0..64).map(|i| i * 7 % 4096).collect()).expect("nonempty");
        b.iter(|| run_indirect_gather(PvaConfig::default(), &iv, 0).expect("gathers"))
    });
}

/// Related-work comparators: CVMS-like subcommand generation and the
/// SMC-like serial stream controller.
fn related_work(c: &mut Criterion) {
    let mut g = c.benchmark_group("related");
    g.bench_function("cvms_like_s19", |b| {
        b.iter_batched(
            || PvaUnit::new(PvaConfig::cvms_like()).expect("valid config"),
            |mut unit| {
                let v = Vector::new(0, 19, 32).expect("valid vector");
                unit.run(vec![HostRequest::Read { vector: v }])
                    .expect("runs")
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("smc_like_copy_s4", |b| {
        use memsys::MemorySystem;
        let bases = Alignment::BankStagger.bases(2, 1 << 22);
        let trace = Kernel::Copy.trace(&bases, 4, 256, 32);
        b.iter(|| memsys::SmcLike::default().run_trace(&trace))
    });
    g.finish();
}

/// Scheduler ablations and the DRAM technology sweep.
fn ablations_and_tech(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("row_conflict_probe", |b| {
        use memsys::MemorySystem;
        let bases = Alignment::Coincident.bases(3, 1 << 22);
        let trace = Kernel::Vaxpy.trace(&bases, 16, 256, 32);
        b.iter(|| memsys::PvaSystem::sdram().run_trace(&trace))
    });
    g.bench_function("tech_edo_like_s16", |b| {
        b.iter_batched(
            || {
                PvaUnit::new(PvaConfig {
                    sdram: sdram::SdramConfig::edo_like(),
                    ..PvaConfig::default()
                })
                .expect("valid config")
            },
            |mut unit| {
                let v = Vector::new(0, 16, 32).expect("valid vector");
                unit.run(vec![HostRequest::Read { vector: v }])
                    .expect("runs")
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

/// STREAM bandwidth measurement.
fn stream(c: &mut Criterion) {
    use kernels::StreamKernel;
    c.bench_function("stream/triad_pva", |b| {
        b.iter(|| StreamKernel::Triad.bandwidth(&mut memsys::PvaSystem::sdram(), 1024))
    });
}

criterion_group!(
    benches,
    table1,
    table2,
    fig7_fig8,
    fig9_fig10,
    fig11,
    unit_micro,
    extensions,
    related_work,
    ablations_and_tech,
    stream
);
criterion_main!(benches);
