//! Chaos harness: proves the resilient execution layer end to end.
//!
//! In-process: a kill-at-every-k-cells sweep truncates the write-ahead
//! journal after k completed cells and resumes, requiring canonical
//! record equality and byte-identical text at varying worker counts;
//! torn trailing journal lines must be tolerated.
//!
//! Out-of-process: a child `pva-bench` running the `chaos` dev scenario
//! is SIGKILLed mid-campaign, resumed with `--resume`, and its record
//! compared against an uninterrupted reference — including through the
//! `pva-bench diff` verb — plus checks of every documented exit code.

use std::path::PathBuf;
use std::process::Command;

use pva_bench::engine::{run_scenarios_checked, ExecConfig, RunRecord, Scenario};
use pva_bench::scenarios::find;

fn must_find(name: &str) -> Scenario {
    find(name).unwrap_or_else(|| panic!("scenario '{name}' not registered"))
}

/// Fresh per-test scratch directory under the target tmpdir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pva-bench-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// Truncates a journal to its header plus the first `k` entry lines —
/// exactly the bytes a run killed after `k` checkpoints leaves behind.
fn truncate_journal(path: &PathBuf, k: usize) {
    let text = std::fs::read_to_string(path).expect("journal readable");
    let keep: Vec<&str> = text.lines().take(1 + k).collect();
    std::fs::write(path, format!("{}\n", keep.join("\n"))).expect("journal writable");
}

#[test]
fn kill_at_every_k_cells_resumes_byte_identically() {
    let names = [
        "table2_kernels",
        "ext_indirect",
        "related_cvms",
        "design_space",
    ];
    let scens: Vec<Scenario> = names.iter().map(|n| must_find(n)).collect();
    let refs: Vec<&Scenario> = scens.iter().collect();

    let reference = run_scenarios_checked(&refs, &ExecConfig::with_jobs(4)).expect("reference run");
    assert_eq!(reference.failed_cells, 0);
    let total_cells: usize = reference.reports.iter().map(|r| r.record.cells.len()).sum();
    assert!(
        total_cells > 10,
        "sweep needs a real grid, got {total_cells}"
    );

    let dir = scratch("kill-sweep");
    // One complete journaled run supplies the full journal to truncate.
    let full = dir.join("full.jsonl");
    let cfg = ExecConfig {
        journal: Some(full.clone()),
        ..ExecConfig::with_jobs(2)
    };
    run_scenarios_checked(&refs, &cfg).expect("journaled run");

    for k in 0..=total_cells {
        let journal = dir.join(format!("k{k}.jsonl"));
        std::fs::copy(&full, &journal).expect("copy journal");
        truncate_journal(&journal, k);
        let jobs = [1, 2, 8][k % 3];
        let cfg = ExecConfig {
            journal: Some(journal),
            resume: true,
            ..ExecConfig::with_jobs(jobs)
        };
        let resumed =
            run_scenarios_checked(&refs, &cfg).unwrap_or_else(|e| panic!("resume at k={k}: {e}"));
        assert_eq!(
            resumed.resumed_cells, k,
            "k={k}: every journaled cell replays"
        );
        for (a, b) in reference.reports.iter().zip(&resumed.reports) {
            assert_eq!(
                a.text, b.text,
                "{}: text differs after kill at k={k} (jobs={jobs})",
                a.name
            );
            assert_eq!(
                a.record.canonical(),
                b.record.canonical(),
                "{}: record differs after kill at k={k} (jobs={jobs})",
                a.name
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_trailing_journal_line_is_tolerated_on_resume() {
    let s = must_find("ext_indirect");
    let dir = scratch("torn-tail");
    let journal = dir.join("torn.jsonl");
    let cfg = ExecConfig {
        journal: Some(journal.clone()),
        ..ExecConfig::with_jobs(2)
    };
    let reference = run_scenarios_checked(&[&s], &cfg).expect("journaled run");

    // Chop the file mid-line: a crash between write() and the final
    // newline leaves exactly this shape.
    let bytes = std::fs::read(&journal).expect("journal readable");
    let cut = bytes.len() - 7;
    assert_ne!(bytes[cut], b'\n', "cut must land inside a line");
    std::fs::write(&journal, &bytes[..cut]).expect("torn write");

    let cfg = ExecConfig {
        journal: Some(journal),
        resume: true,
        ..ExecConfig::with_jobs(1)
    };
    let resumed = run_scenarios_checked(&[&s], &cfg).expect("torn tail tolerated");
    assert!(resumed.resumed_cells > 0, "intact prefix replays");
    assert_eq!(reference.reports[0].text, resumed.reports[0].text);
    assert_eq!(
        reference.reports[0].record.canonical(),
        resumed.reports[0].record.canonical()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Builds a `pva-bench` invocation of the chaos dev scenario with the
/// given injection spec.
fn bench_cmd(spec: &str, args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_pva-bench"));
    cmd.env("PVA_BENCH_CHAOS", spec).args(args);
    cmd
}

#[test]
fn sigkilled_child_campaign_resumes_byte_identically() {
    let dir = scratch("sigkill");
    let spec = "cells=8,sleep_ms=60";
    let journal = dir.join("chaos.jsonl");
    let journal_s = journal.to_str().unwrap();

    // Uninterrupted reference record.
    let ref_dir = dir.join("ref");
    let out = bench_cmd(
        spec,
        &["chaos", "--jobs", "1", "--json", ref_dir.to_str().unwrap()],
    )
    .output()
    .expect("reference child runs");
    assert!(out.status.success(), "reference: {out:?}");

    // Start a journaled run and SIGKILL it mid-campaign (~2-3 cells in).
    let res_dir = dir.join("res");
    let mut child = bench_cmd(
        spec,
        &[
            "chaos",
            "--jobs",
            "1",
            "--journal",
            journal_s,
            "--json",
            res_dir.to_str().unwrap(),
        ],
    )
    .spawn()
    .expect("child starts");
    std::thread::sleep(std::time::Duration::from_millis(150));
    child.kill().expect("SIGKILL");
    let status = child.wait().expect("reaped");
    assert!(!status.success(), "the kill must have landed");
    assert!(
        journal.exists(),
        "the write-ahead journal survives the kill"
    );

    // Resume to completion, then compare records canonically.
    let out = bench_cmd(
        spec,
        &[
            "chaos",
            "--jobs",
            "1",
            "--journal",
            journal_s,
            "--resume",
            "--json",
            res_dir.to_str().unwrap(),
        ],
    )
    .output()
    .expect("resume child runs");
    assert!(out.status.success(), "resume: {out:?}");

    let load = |p: PathBuf| {
        RunRecord::from_json(&std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("{p:?}: {e}")))
            .expect("record parses")
    };
    let a = load(ref_dir.join("BENCH_chaos.json"));
    let b = load(res_dir.join("BENCH_chaos.json"));
    assert_eq!(a.canonical(), b.canonical(), "resumed record must match");

    // The diff verb agrees: canonical-identical records exit 0.
    let out = bench_cmd(
        spec,
        &[
            "diff",
            ref_dir.join("BENCH_chaos.json").to_str().unwrap(),
            res_dir.join("BENCH_chaos.json").to_str().unwrap(),
        ],
    )
    .output()
    .expect("diff runs");
    assert_eq!(out.status.code(), Some(0), "diff: {out:?}");

    // The journal itself passes `validate`.
    let out = bench_cmd(spec, &["validate", journal_s])
        .output()
        .expect("validate runs");
    assert_eq!(out.status.code(), Some(0), "validate: {out:?}");
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("journal for [chaos]"),
        "journal verdict: {out:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_panic_exits_with_the_cell_failures_code() {
    let dir = scratch("panic-code");
    let out = bench_cmd(
        "cells=3,sleep_ms=1,panic=1",
        &["chaos", "--jobs", "1", "--retries", "1"],
    )
    .output()
    .expect("child runs");
    assert_eq!(out.status.code(), Some(5), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("chaos: injected panic in cell 1"),
        "quarantine detail on stderr: {err}"
    );
    assert!(
        err.contains("after 2 attempt(s)"),
        "retry accounting on stderr: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn strict_mode_exits_with_the_cell_failures_code() {
    let out = bench_cmd(
        "cells=3,sleep_ms=1,panic=1",
        &["chaos", "--jobs", "1", "--retries", "0", "--strict"],
    )
    .output()
    .expect("child runs");
    assert_eq!(out.status.code(), Some(5), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("strict"),
        "{out:?}"
    );
}

#[test]
fn hung_cell_is_quarantined_by_the_cooperative_deadline() {
    // The `coop` cell spins on deadline checkpoints forever; a short
    // --cell-timeout must classify it as a timeout, not hang the run.
    let out = bench_cmd(
        "cells=3,sleep_ms=1,coop=2",
        &[
            "chaos",
            "--jobs",
            "1",
            "--retries",
            "0",
            "--cell-timeout",
            "0.2",
        ],
    )
    .output()
    .expect("child runs");
    assert_eq!(out.status.code(), Some(5), "{out:?}");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("[timeout]"),
        "classified as timeout: {out:?}"
    );
}

#[test]
fn documented_exit_codes_for_usage_and_schema_errors() {
    // Usage error -> 2.
    let out = Command::new(env!("CARGO_BIN_EXE_pva-bench"))
        .arg("--definitely-not-a-flag")
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    // Unparseable validate input -> 4.
    let dir = scratch("exit-codes");
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "{not json").expect("write");
    let out = Command::new(env!("CARGO_BIN_EXE_pva-bench"))
        .args(["validate", garbage.to_str().unwrap()])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(4), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("line 1"),
        "parse errors carry line context: {err}"
    );

    // diff of structurally different records -> 3.
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    let rec = |cycles: u64| {
        format!(
            "{{\"schema\": \"pva-bench-record-v1\", \"scenario\": \"x\", \"title\": \"x\", \
             \"total_cycles\": {cycles}, \"total_bytes\": 0, \"wall_ns\": 0, \
             \"sim_cycles_per_sec\": 0.0, \"metrics\": {{}}, \"cells\": []}}"
        )
    };
    std::fs::write(&a, rec(1)).expect("write");
    std::fs::write(&b, rec(2)).expect("write");
    let out = Command::new(env!("CARGO_BIN_EXE_pva-bench"))
        .args(["diff", a.to_str().unwrap(), b.to_str().unwrap()])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_without_journal_flag_is_a_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_pva-bench"))
        .args(["all", "--resume"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
