//! Seeded fault-campaign smoke: the robustness acceptance criteria in
//! test form. With ECC on, no scenario may produce a silent corruption
//! or a hang; with ECC off at a high transient rate, silent corruption
//! must actually show up (proving the campaign can detect it).

use pva_bench::campaign::{run_campaign, CampaignConfig};

#[test]
fn ecc_campaign_has_zero_silent_corruptions() {
    let report = run_campaign(&CampaignConfig::smoke(0xC0FFEE));
    assert_eq!(report.hung_cells(), 0, "no cell may hang");
    for c in &report.cells {
        assert_eq!(
            c.device_silent + c.silent_mismatches,
            0,
            "{}/{} must have no silent corruption",
            c.kernel,
            c.scenario
        );
    }
    // The campaign exercised real faults — it did not pass vacuously.
    assert!(report.total_corrected() > 0, "ECC corrections must occur");
    assert!(
        report.total_detected() > 0,
        "the dead-bank scenarios must detect poisoned reads"
    );
}

#[test]
fn ecc_off_campaign_detects_silent_corruption() {
    let mut cc = CampaignConfig::smoke(0xC0FFEE);
    cc.ecc = false;
    cc.transient_ppm = 500_000;
    let report = run_campaign(&cc);
    assert!(
        report.total_silent() > 0,
        "without ECC, a 50% transient rate must corrupt silently"
    );
}

#[test]
fn campaign_is_reproducible_from_its_seed() {
    let a = run_campaign(&CampaignConfig::smoke(42));
    let b = run_campaign(&CampaignConfig::smoke(42));
    let key = |r: &pva_bench::campaign::CampaignReport| {
        r.cells
            .iter()
            .map(|c| (c.cycles, c.corrected, c.detected, c.flagged_elements))
            .collect::<Vec<_>>()
    };
    assert_eq!(key(&a), key(&b));
    let c = run_campaign(&CampaignConfig::smoke(43));
    assert_ne!(
        key(&a),
        key(&c),
        "a different seed must steer the fault streams differently"
    );
}
