//! Seeded fault-campaign smoke: the robustness acceptance criteria in
//! test form. With ECC on, no scenario may produce a silent corruption
//! or a hang; with ECC off at a high transient rate, silent corruption
//! must actually show up (proving the campaign can detect it).

use pva_bench::campaign::{run_campaign, CampaignConfig};

#[test]
fn ecc_campaign_has_zero_silent_corruptions() {
    let report = run_campaign(&CampaignConfig::smoke(0xC0FFEE));
    assert_eq!(report.hung_cells(), 0, "no cell may hang");
    for c in &report.cells {
        assert_eq!(
            c.device_silent + c.silent_mismatches,
            0,
            "{}/{} must have no silent corruption",
            c.kernel,
            c.scenario
        );
    }
    // The campaign exercised real faults — it did not pass vacuously.
    assert!(report.total_corrected() > 0, "ECC corrections must occur");
    assert!(
        report.total_detected() > 0,
        "the dead-bank scenarios must detect poisoned reads"
    );
}

#[test]
fn ecc_off_campaign_detects_silent_corruption() {
    let mut cc = CampaignConfig::smoke(0xC0FFEE);
    cc.ecc = false;
    cc.transient_ppm = 500_000;
    let report = run_campaign(&cc);
    assert!(
        report.total_silent() > 0,
        "without ECC, a 50% transient rate must corrupt silently"
    );
}

#[test]
fn refresh_storm_decays_rows_without_silent_corruption() {
    let report = run_campaign(&CampaignConfig::smoke(0xC0FFEE));
    let storm: Vec<_> = report
        .cells
        .iter()
        .filter(|c| c.scenario == "refresh-storm")
        .collect();
    assert_eq!(storm.len(), 6, "every base kernel runs the storm");
    let decayed: u64 = storm.iter().map(|c| c.decayed_words).sum();
    assert!(
        decayed > 0,
        "refresh slip under streaming load must actually decay rows"
    );
    for c in &storm {
        assert!(
            !c.hung,
            "{}: refresh pressure must not hang the cell",
            c.kernel
        );
        assert_eq!(
            c.device_silent + c.silent_mismatches,
            0,
            "{}: decay + ECC must never corrupt silently",
            c.kernel
        );
    }
}

#[test]
fn injected_panic_is_quarantined_and_siblings_survive() {
    let mut cc = CampaignConfig::smoke(0xC0FFEE);
    cc.inject_panic = Some("copy");
    cc.max_attempts = 2;
    let report = run_campaign(&cc);
    assert!(
        report.quarantined.iter().all(|q| q.kernel == "copy"),
        "only the chaos kernel may be quarantined"
    );
    assert!(
        !report.quarantined.is_empty(),
        "the injected panic must be quarantined, not swallowed"
    );
    for q in &report.quarantined {
        assert_eq!(q.attempts, 2, "every configured attempt is used");
        assert!(
            q.message.contains("[panic] chaos: injected campaign panic"),
            "classified message, got: {}",
            q.message
        );
    }
    // Every non-chaos cell completed exactly as an uninjected run would.
    let clean = run_campaign(&CampaignConfig::smoke(0xC0FFEE));
    let key = |cells: &[pva_bench::campaign::CellOutcome]| {
        cells
            .iter()
            .filter(|c| c.kernel != "copy")
            .map(|c| (c.kernel, c.scenario, c.cycles, c.corrected, c.detected))
            .collect::<Vec<_>>()
    };
    assert_eq!(key(&report.cells), key(&clean.cells));
}

#[test]
fn campaign_is_reproducible_from_its_seed() {
    let a = run_campaign(&CampaignConfig::smoke(42));
    let b = run_campaign(&CampaignConfig::smoke(42));
    let key = |r: &pva_bench::campaign::CampaignReport| {
        r.cells
            .iter()
            .map(|c| (c.cycles, c.corrected, c.detected, c.flagged_elements))
            .collect::<Vec<_>>()
    };
    assert_eq!(key(&a), key(&b));
    let c = run_campaign(&CampaignConfig::smoke(43));
    assert_ne!(
        key(&a),
        key(&c),
        "a different seed must steer the fault streams differently"
    );
}
