//! Engine integration tests: golden rendering for `report::Table`,
//! JSON record round-trips, determinism across worker counts, and
//! byte-identity of scenario output against the committed goldens.

use pva_bench::engine::{run_scenarios, RunRecord, Scenario};
use pva_bench::report::Table;
use pva_bench::scenarios::find;

#[test]
fn table_rendering_is_stable() {
    let mut t = Table::new(vec!["kernel", "stride", "cycles"]);
    t.row(vec!["copy", "1", "1088"]);
    t.row(vec!["vaxpy", "19", "2176"]);
    let expected = "\
kernel  stride  cycles
----------------------
  copy       1    1088
 vaxpy      19    2176
";
    assert_eq!(t.render(), expected);
}

fn must_find(name: &str) -> Scenario {
    find(name).unwrap_or_else(|| panic!("scenario '{name}' not registered"))
}

/// Zeroes the wall-clock fields, which legitimately vary run to run.
fn normalized(mut r: RunRecord) -> RunRecord {
    r.wall_ns = 0;
    r.sim_cycles_per_sec = 0.0;
    for c in &mut r.cells {
        c.wall_ns = 0;
    }
    r
}

#[test]
fn jobs_1_and_jobs_8_produce_identical_records() {
    // Multi-cell scenarios whose text carries no wall-clock numbers.
    let names = ["related_cvms", "design_space", "ext_indirect"];
    let scenarios: Vec<Scenario> = names.iter().map(|n| must_find(n)).collect();
    let refs: Vec<&Scenario> = scenarios.iter().collect();
    let serial = run_scenarios(&refs, 1);
    let parallel = run_scenarios(&refs, 8);
    assert_eq!(serial.len(), parallel.len());
    for (a, b) in serial.iter().zip(&parallel) {
        assert_eq!(
            a.text, b.text,
            "{}: text differs across worker counts",
            a.name
        );
        assert_eq!(
            normalized(a.record.clone()),
            normalized(b.record.clone()),
            "{}: record differs across worker counts",
            a.name
        );
    }
}

#[test]
fn engine_records_round_trip_through_json() {
    let s = must_find("table2_kernels");
    let reports = run_scenarios(&[&s], 2);
    let rec = &reports[0].record;
    let parsed = RunRecord::from_json(&rec.to_json()).expect("emitted record parses");
    assert_eq!(&parsed, rec);
    assert_eq!(parsed.schema, "pva-bench-record-v2");
    assert_eq!(parsed.scenario, "table2_kernels");
}

#[test]
fn cheap_scenarios_match_committed_goldens() {
    let results = format!("{}/../../results", env!("CARGO_MANIFEST_DIR"));
    for name in [
        "table1_complexity",
        "table2_kernels",
        "ext_indirect",
        "related_cvms",
        "design_space",
        "scaling_banks",
        // The generation sweep doubles as the SDR-equivalence proof:
        // its first block runs the sdr100 preset through the same
        // fig-7 kernels, so a preset drifting from the legacy default
        // config shows up as a golden mismatch here.
        "techsweep",
    ] {
        let s = must_find(name);
        let reports = run_scenarios(&[&s], 4);
        let golden = std::fs::read_to_string(format!("{results}/{name}.txt"))
            .unwrap_or_else(|e| panic!("golden for {name}: {e}"));
        assert_eq!(reports[0].text, golden, "{name} output drifted from golden");
    }
}

#[test]
fn record_totals_are_cell_sums() {
    let s = must_find("related_cvms");
    let reports = run_scenarios(&[&s], 2);
    let r = &reports[0].record;
    assert_eq!(
        r.total_cycles,
        r.cells.iter().map(|c| c.cycles).sum::<u64>()
    );
    assert_eq!(r.total_bytes, r.cells.iter().map(|c| c.bytes).sum::<u64>());
    assert!(r
        .cells
        .iter()
        .all(|c| !c.system.is_empty() && !c.label.is_empty()));
}
