//! Plain-text table rendering for the figure-regeneration binaries.

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header width).
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = String::new();
        out.push_str(&line(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&line(r));
            out.push('\n');
        }
        out
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["k", "cycles"]);
        t.row(vec!["copy", "123"]);
        t.row(vec!["vaxpy", "4"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("cycles"));
        assert!(lines[3].trim_start().starts_with("vaxpy"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(vec!["a"]);
        t.row(vec!["1", "2"]);
    }
}
