//! The scenario registry: every table and figure of the evaluation as
//! a declarative [`Scenario`], plus the `throughput` self-measurement.
//!
//! Each scenario's `render` reproduces — byte for byte — the stdout of
//! the per-figure binary it replaced (goldens are committed under
//! `results/`). Heavy sweeps are decomposed into one cell per
//! (kernel, stride, system)-shaped grid point so the engine can fan
//! them across cores; analytic or cheap studies run as a single cell.

use std::fmt::Write as _;
use std::time::Instant;

use cache::{run_reference_stream, CacheConfig, CacheSim, Reference};
use kernels::{
    run_cell, run_point, run_point_outcome, Alignment, Kernel, SystemKind, ARRAY_REGION, ELEMENTS,
    LINE_WORDS, STRIDES,
};
use memsys::{
    CachelineConfig, CachelineSerial, MemorySystem, PvaSystem, SerialGather, SerialGatherConfig,
    SmcLike, TraceOp, WORD_BYTES,
};
use pva_core::{scaling_sweep, BankId, BitReversedVector, Geometry, IndirectVector, K1Pla, Vector};
use pva_sim::{
    mixed_workload, run_indirect_gather, unit_complexity, CpuConfig, CpuModel, EventStats,
    HostRequest, OpKind, PvaConfig, JUMP_BUCKETS,
};
use sdram::{DevicePreset, SdramConfig};

use crate::engine::{CellData, CellSpec, Scenario};
use crate::report::Table;
use crate::{ablation_configs, ablation_latency_s5, ablation_rw_mix_s16, ablation_vaxpy_s16};

/// All registered scenarios, in the presentation order of
/// `scripts/reproduce.sh`.
pub fn scenarios() -> Vec<Scenario> {
    vec![
        table1(),
        table2(),
        fig7(),
        fig8(),
        fig9(),
        fig10(),
        fig11(),
        headline(),
        ablation(),
        ext_indirect(),
        ext_bitrev(),
        ext_cache_pollution(),
        related_cvms(),
        related_smc(),
        tech_sweep(),
        techsweep(),
        scaling_banks(),
        design_space(),
        cpu_sensitivity(),
        throughput(),
    ]
}

/// Development-only scenarios: resolvable by name through [`find`] but
/// excluded from `pva-bench all`. Currently just `chaos`, the
/// fault-injection grid the resilience harness and the CI kill/resume
/// smoke drive (configured via the `PVA_BENCH_CHAOS` environment
/// variable).
pub fn dev_scenarios() -> Vec<Scenario> {
    vec![chaos()]
}

/// Looks a scenario up by name or alias (registry first, then the dev
/// scenarios).
pub fn find(name: &str) -> Option<Scenario> {
    scenarios()
        .into_iter()
        .chain(dev_scenarios())
        .find(|s| s.name == name || (!s.alias.is_empty() && s.alias == name))
}

// ---------------------------------------------------------------------
// Dev scenario: chaos — deterministic cells with injectable faults.

/// Builds the chaos grid from `PVA_BENCH_CHAOS`, a comma-separated
/// spec: `cells=N` (grid size, default 8), `sleep_ms=M` (per-cell work,
/// default 50), and any number of `panic=I` / `coop=I` / `hang=I`
/// entries marking cell `I` as always-panicking, cooperatively hanging
/// (spins on [`memsys::deadline::checkpoint`], so a `--cell-timeout`
/// classifies it as a timeout), or hard-hanging (sleeps for an hour
/// without checkpoints, tripping the watchdog).
fn chaos_cells() -> Vec<CellSpec> {
    let spec = std::env::var("PVA_BENCH_CHAOS").unwrap_or_default();
    let mut count = 8usize;
    let mut sleep_ms = 50u64;
    let (mut panics, mut coops, mut hangs) = (Vec::new(), Vec::new(), Vec::new());
    for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
        let (k, v) = part.split_once('=').unwrap_or((part, ""));
        let n: u64 = v.trim().parse().unwrap_or(0);
        match k.trim() {
            "cells" => count = n as usize,
            "sleep_ms" => sleep_ms = n,
            "panic" => panics.push(n as usize),
            "coop" => coops.push(n as usize),
            "hang" => hangs.push(n as usize),
            _ => {}
        }
    }
    (0..count)
        .map(|i| {
            let (panic_me, coop_me, hang_me) =
                (panics.contains(&i), coops.contains(&i), hangs.contains(&i));
            CellSpec::new("chaos", format!("cell{i:02}"), move || {
                if panic_me {
                    panic!("chaos: injected panic in cell {i}");
                }
                if coop_me {
                    // Hangs forever, but politely: a --cell-timeout
                    // converts this into a structured Timeout.
                    loop {
                        memsys::deadline::checkpoint();
                        std::thread::sleep(std::time::Duration::from_millis(2));
                    }
                }
                if hang_me {
                    // Never checkpoints; only the watchdog can reclaim it.
                    std::thread::sleep(std::time::Duration::from_secs(3600));
                }
                std::thread::sleep(std::time::Duration::from_millis(sleep_ms));
                CellData::cycles((i as u64 + 1) * 1000, i as u64)
            })
        })
        .collect()
}

fn chaos() -> Scenario {
    Scenario {
        name: "chaos",
        alias: "",
        title: "dev: fault-injection cells for the resilience harness",
        smoke: false,
        golden: false,
        build: chaos_cells,
        render: |cells| {
            let mut out = String::from("chaos cells\n");
            for (i, c) in cells.iter().enumerate() {
                let _ = writeln!(out, "  cell{i:02} cycles={} bytes={}", c.cycles, c.bytes);
            }
            out
        },
    }
}

// ---------------------------------------------------------------------
// Figures 7/8: stride sweeps.

const FIG7_KERNELS: [Kernel; 3] = [Kernel::Copy, Kernel::Saxpy, Kernel::Scale];
const FIG8_KERNELS: [Kernel; 3] = [Kernel::Swap, Kernel::Tridiag, Kernel::Vaxpy];

fn stride_sweep_cells(kernels: &'static [Kernel]) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for &k in kernels {
        for &s in &STRIDES {
            for &sys in &SystemKind::ALL {
                cells.push(CellSpec::new(
                    sys.name(),
                    format!("{}/s{}", k.name(), s),
                    move || {
                        let c = run_cell(k, s, sys);
                        CellData::with_aux(c.min, c.bytes, vec![c.min, c.max])
                    },
                ));
            }
        }
    }
    cells
}

fn render_stride_sweep(title: &str, kernels: &[Kernel], cells: &[CellData]) -> String {
    let mut t = Table::new(vec![
        "kernel",
        "stride",
        "pva-sdram min",
        "pva-sdram max",
        "pva-sram min",
        "pva-sram max",
        "cacheline",
        "serial-gather",
    ]);
    let mut idx = 0;
    for &k in kernels {
        for &s in &STRIDES {
            let g = &cells[idx..idx + 4];
            idx += 4;
            t.row(vec![
                k.name().to_string(),
                s.to_string(),
                g[0].aux[0].to_string(),
                g[0].aux[1].to_string(),
                g[1].aux[0].to_string(),
                g[1].aux[1].to_string(),
                g[2].aux[0].to_string(),
                g[3].aux[0].to_string(),
            ]);
        }
    }
    format!("{title}\n\n{t}\n")
}

fn fig7() -> Scenario {
    Scenario {
        name: "fig7_stride_sweep",
        alias: "fig7",
        title: "Figure 7: copy/saxpy/scale vs stride on the four systems",
        smoke: false,
        golden: true,
        build: || stride_sweep_cells(&FIG7_KERNELS),
        render: |cells| {
            render_stride_sweep(
                "Figure 7 — cycles per 1024-element kernel, varying stride",
                &FIG7_KERNELS,
                cells,
            )
        },
    }
}

fn fig8() -> Scenario {
    Scenario {
        name: "fig8_stride_sweep",
        alias: "fig8",
        title: "Figure 8: swap/tridiag/vaxpy vs stride on the four systems",
        smoke: false,
        golden: true,
        build: || stride_sweep_cells(&FIG8_KERNELS),
        render: |cells| {
            render_stride_sweep(
                "Figure 8 — cycles per 1024-element kernel, varying stride (continued)",
                &FIG8_KERNELS,
                cells,
            )
        },
    }
}

// ---------------------------------------------------------------------
// Figures 9/10: fixed-stride comparisons.

const FIG9_STRIDES: [u64; 2] = [1, 4];
const FIG10_STRIDES: [u64; 3] = [8, 16, 19];

fn fixed_stride_cells(strides: &'static [u64]) -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for &s in strides {
        for &k in &Kernel::ALL {
            for &sys in &SystemKind::ALL {
                cells.push(CellSpec::new(
                    sys.name(),
                    format!("{}/s{}", k.name(), s),
                    move || {
                        let c = run_cell(k, s, sys);
                        CellData::cycles(c.min, c.bytes)
                    },
                ));
            }
        }
    }
    cells
}

fn render_fixed_stride(figure: u64, strides: &[u64], cells: &[CellData]) -> String {
    let mut out = String::new();
    let mut idx = 0;
    for &s in strides {
        let mut t = Table::new(vec![
            "kernel",
            "pva-sdram",
            "pva-sram",
            "cacheline",
            "cl % of pva",
            "serial-gather",
            "sg % of pva",
        ]);
        for &k in &Kernel::ALL {
            let g = &cells[idx..idx + 4];
            idx += 4;
            let pva_min = g[0].cycles;
            let pct = |c: u64| format!("{:.0}%", 100.0 * c as f64 / pva_min as f64);
            t.row(vec![
                k.name().to_string(),
                g[0].cycles.to_string(),
                g[1].cycles.to_string(),
                g[2].cycles.to_string(),
                pct(g[2].cycles),
                g[3].cycles.to_string(),
                pct(g[3].cycles),
            ]);
        }
        let _ = writeln!(
            out,
            "Figure {figure} — all kernels at stride {s} (cycles, min over alignments)\n"
        );
        let _ = writeln!(out, "{t}");
    }
    out
}

fn fig9() -> Scenario {
    Scenario {
        name: "fig9_fixed_stride",
        alias: "fig9",
        title: "Figure 9: all kernels at strides 1 and 4",
        smoke: false,
        golden: true,
        build: || fixed_stride_cells(&FIG9_STRIDES),
        render: |cells| render_fixed_stride(9, &FIG9_STRIDES, cells),
    }
}

fn fig10() -> Scenario {
    Scenario {
        name: "fig10_fixed_stride",
        alias: "fig10",
        title: "Figure 10: all kernels at strides 8, 16 and 19",
        smoke: false,
        golden: true,
        build: || fixed_stride_cells(&FIG10_STRIDES),
        render: |cells| render_fixed_stride(10, &FIG10_STRIDES, cells),
    }
}

// ---------------------------------------------------------------------
// Figure 11: vaxpy alignment detail, SDRAM vs SRAM.

fn vaxpy_detail_cells() -> Vec<CellSpec> {
    let mut cells = Vec::new();
    for &stride in &STRIDES {
        for a in Alignment::ALL {
            for sys in [SystemKind::PvaSdram, SystemKind::PvaSram] {
                cells.push(CellSpec::new(
                    sys.name(),
                    format!("s{}/{}", stride, a.name()),
                    move || {
                        let o = run_point_outcome(Kernel::Vaxpy, stride, a, sys);
                        CellData::cycles(o.cycles, o.bytes_transferred)
                    },
                ));
            }
        }
    }
    cells
}

fn fig11() -> Scenario {
    Scenario {
        name: "fig11_vaxpy_detail",
        alias: "fig11",
        title: "Figure 11: vaxpy alignment sensitivity, PVA-SDRAM vs PVA-SRAM",
        smoke: false,
        golden: true,
        build: vaxpy_detail_cells,
        render: |cells| {
            let base = cells[0].cycles; // stride 1, first alignment, SDRAM
            let mut t = Table::new(vec![
                "stride",
                "alignment",
                "pva-sdram",
                "norm to leftmost",
                "pva-sram",
                "sdram/sram",
            ]);
            let mut worst = 1.0f64;
            let mut idx = 0;
            for &stride in &STRIDES {
                for a in Alignment::ALL {
                    let sdram = cells[idx].cycles;
                    let sram = cells[idx + 1].cycles;
                    idx += 2;
                    let ratio = sdram as f64 / sram as f64;
                    worst = worst.max(ratio);
                    t.row(vec![
                        stride.to_string(),
                        a.name().to_string(),
                        sdram.to_string(),
                        format!("{:.0}%", 100.0 * sdram as f64 / base as f64),
                        sram.to_string(),
                        format!("{ratio:.3}"),
                    ]);
                }
            }
            let mut out = String::new();
            let _ = writeln!(
                out,
                "Figure 11 — vaxpy on PVA-SDRAM vs PVA-SRAM across alignments\n"
            );
            let _ = writeln!(out, "{t}");
            let _ = writeln!(
                out,
                "worst-case SDRAM/SRAM ratio: {worst:.3}  (paper: at most ~1.15, \
                 with two cases below 1.0 from an implementation artifact)"
            );
            out
        },
    }
}

// ---------------------------------------------------------------------
// Headline claims.

const HEADLINE_SYSTEMS: [SystemKind; 3] = [
    SystemKind::PvaSdram,
    SystemKind::CachelineSerial,
    SystemKind::SerialGather,
];

fn headline() -> Scenario {
    Scenario {
        name: "headline_speedups",
        alias: "headline",
        title: "The abstract's headline claims, recomputed on the full design space",
        smoke: false,
        golden: true,
        build: || {
            let mut cells = Vec::new();
            for &k in &Kernel::ALL {
                for &s in &STRIDES {
                    for &sys in &HEADLINE_SYSTEMS {
                        cells.push(CellSpec::new(
                            sys.name(),
                            format!("{}/s{}", k.name(), s),
                            move || {
                                let c = run_cell(k, s, sys);
                                CellData::cycles(c.min, c.bytes)
                            },
                        ));
                    }
                }
            }
            cells.extend(vaxpy_detail_cells());
            cells
        },
        render: |cells| {
            let mut vs_cl: (f64, &'static str, u64) = (0.0, "", 0);
            let mut vs_sg: (f64, &'static str, u64) = (0.0, "", 0);
            let mut parity = f64::MAX;
            let mut idx = 0;
            for &k in &Kernel::ALL {
                for &s in &STRIDES {
                    let pva = cells[idx].cycles as f64;
                    let cl = cells[idx + 1].cycles as f64;
                    let sg = cells[idx + 2].cycles as f64;
                    idx += 3;
                    if cl / pva > vs_cl.0 {
                        vs_cl = (cl / pva, k.name(), s);
                    }
                    if sg / pva > vs_sg.0 {
                        vs_sg = (sg / pva, k.name(), s);
                    }
                    if s == 1 {
                        parity = parity.min(cl / pva);
                    }
                }
            }
            let mut gap: f64 = 1.0;
            while idx < cells.len() {
                gap = gap.max(cells[idx].cycles as f64 / cells[idx + 1].cycles as f64);
                idx += 2;
            }
            let mut out = String::new();
            let _ = writeln!(out, "Headline claims, recomputed on this reproduction\n");
            let _ = writeln!(
                out,
                "max speedup vs cache-line serial system : {:.1}x  (at {} stride {})",
                vs_cl.0, vs_cl.1, vs_cl.2
            );
            let _ = writeln!(out, "  paper claim                            : 32.8x");
            let _ = writeln!(
                out,
                "max speedup vs gathering serial system  : {:.1}x  (at {} stride {})",
                vs_sg.0, vs_sg.1, vs_sg.2
            );
            let _ = writeln!(out, "  paper claim                            : 3.3x");
            let _ = writeln!(
                out,
                "worst unit-stride cacheline/pva ratio   : {parity:.2}  (>= ~0.9 means line fills unhurt)"
            );
            let _ = writeln!(
                out,
                "  paper claim                            : 1.00-1.09 (100%-109%)"
            );
            let _ = writeln!(out, "worst-case SDRAM/SRAM gap (fig. 11)     : {gap:.3}");
            let _ = writeln!(out, "  paper claim                            : <= ~1.15");
            out
        },
    }
}

// ---------------------------------------------------------------------
// Scheduler ablations.

fn ablation() -> Scenario {
    Scenario {
        name: "ablation_scheduler",
        alias: "ablation",
        title: "Ablations of the §5.2 scheduler design choices",
        smoke: false,
        golden: true,
        build: || {
            let mut cells = Vec::new();
            for (label, cfg) in ablation_configs() {
                cells.push(CellSpec::new(label, "latency_s5", move || {
                    CellData::cycles(ablation_latency_s5(cfg), 0)
                }));
                cells.push(CellSpec::new(label, "vaxpy_s16", move || {
                    CellData::cycles(ablation_vaxpy_s16(label, cfg), 0)
                }));
                cells.push(CellSpec::new(label, "rw_mix_s16", move || {
                    CellData::cycles(ablation_rw_mix_s16(cfg), 0)
                }));
            }
            cells
        },
        render: |cells| {
            let labels: Vec<&'static str> =
                ablation_configs().into_iter().map(|(l, _)| l).collect();
            let mut t = Table::new(vec![
                "configuration",
                "latency s5",
                "vs base",
                "vaxpy s16",
                "vs base",
                "rw-mix s16",
                "vs base",
            ]);
            let base = &cells[0..3];
            let pct = |x: u64, b: u64| format!("{:+.1}%", 100.0 * (x as f64 - b as f64) / b as f64);
            for (i, label) in labels.iter().enumerate() {
                let g = &cells[i * 3..i * 3 + 3];
                t.row(vec![
                    label.to_string(),
                    g[0].cycles.to_string(),
                    pct(g[0].cycles, base[0].cycles),
                    g[1].cycles.to_string(),
                    pct(g[1].cycles, base[1].cycles),
                    g[2].cycles.to_string(),
                    pct(g[2].cycles, base[2].cycles),
                ]);
            }
            let mut out = String::new();
            let _ = writeln!(
                out,
                "Scheduler ablations — scheduler-bound probes (cycles)\n"
            );
            let _ = writeln!(out, "{t}");
            let _ = writeln!(
                out,
                "probes are scheduler-bound (single-command latency / single-bank stride 16);"
            );
            let _ = writeln!(
                out,
                "fully-pipelined multi-bank workloads are BC-bus-bound and insensitive to these switches"
            );
            out
        },
    }
}

// ---------------------------------------------------------------------
// Tables 1 and 2 (analytic, monolithic cells).

fn table1() -> Scenario {
    Scenario {
        name: "table1_complexity",
        alias: "table1",
        title: "Table 1: hardware complexity proxy and PLA scaling",
        smoke: true,
        golden: true,
        build: || {
            vec![CellSpec::new("analysis", "complexity", || {
                let r = unit_complexity(&PvaConfig::default());
                let mut out = String::new();
                let _ = writeln!(
                    out,
                    "Table 1 proxy — per-bank-controller storage (prototype, 16 banks)\n"
                );
                let mut t = Table::new(vec!["module", "state bits", "table bits", "RAM bytes"]);
                for m in &r.per_bc {
                    t.row(vec![
                        m.module.to_string(),
                        m.state_bits.to_string(),
                        m.table_bits.to_string(),
                        m.ram_bytes.to_string(),
                    ]);
                }
                let _ = writeln!(out, "{t}");
                let _ = writeln!(
                    out,
                    "unit totals: {} state bits, {} table bits, {} RAM bytes",
                    r.total_state_bits, r.total_table_bits, r.total_ram_bytes
                );
                let _ = writeln!(
                    out,
                    "paper's Table 1: 1039 D flip-flops + 32 latches, 5488 NAND2 (logic), 2K bytes on-chip RAM"
                );
                let _ = writeln!(
                    out,
                    "  -> the staging RAM (2048 bytes) is reproduced exactly;"
                );
                let _ = writeln!(
                    out,
                    "     state bits land in the same order of magnitude as the paper's flip-flop count\n"
                );
                let _ = writeln!(
                    out,
                    "PLA scaling (section 4.3.1): K1 PLA vs full-Ki PLA, total bits\n"
                );
                let mut t = Table::new(vec!["banks", "K1 PLA bits", "full-Ki PLA bits", "ratio"]);
                for (banks, k1, full) in scaling_sweep(8) {
                    t.row(vec![
                        banks.to_string(),
                        k1.to_string(),
                        full.to_string(),
                        format!("{:.1}", full as f64 / k1 as f64),
                    ]);
                }
                let _ = writeln!(out, "{t}");
                let _ = writeln!(
                    out,
                    "full-Ki grows ~quadratically (ratio doubles per bank doubling): PLA-only designs cap near 16 banks."
                );
                CellData::text(0, 0, out)
            })]
        },
        render: |cells| cells[0].text.clone(),
    }
}

fn table2() -> Scenario {
    Scenario {
        name: "table2_kernels",
        alias: "table2",
        title: "Table 2: evaluation kernels with trace self-checks",
        smoke: true,
        golden: true,
        build: || {
            vec![CellSpec::new("analysis", "kernels", || {
                let mut out = String::new();
                let _ = writeln!(out, "Table 2 — kernels used to evaluate the design\n");
                let mut t = Table::new(vec![
                    "kernel",
                    "arrays",
                    "cmds/chunk",
                    "unroll",
                    "access pattern",
                ]);
                for k in Kernel::ALL {
                    t.row(vec![
                        k.name().to_string(),
                        k.array_count().to_string(),
                        k.accesses().len().to_string(),
                        k.unroll().to_string(),
                        k.source().to_string(),
                    ]);
                }
                let _ = writeln!(out, "{t}");
                let _ = writeln!(
                    out,
                    "trace self-check (stride 4, {ELEMENTS} elements, {LINE_WORDS}-word commands):"
                );
                let mut elements = 0u64;
                for k in Kernel::ALL {
                    let bases: Vec<u64> = (0..k.array_count() as u64).map(|i| i << 22).collect();
                    let trace = k.trace(&bases, 4, ELEMENTS, LINE_WORDS);
                    let reads = trace.iter().filter(|op| op.kind == OpKind::Read).count();
                    let writes = trace.len() - reads;
                    let _ = writeln!(
                        out,
                        "  {:8} {} commands ({} reads, {} writes)",
                        k.name(),
                        trace.len(),
                        reads,
                        writes
                    );
                    assert_eq!(
                        trace.len() as u64,
                        (ELEMENTS / LINE_WORDS) * k.accesses().len() as u64
                    );
                    elements += trace.len() as u64 * LINE_WORDS;
                }
                let _ = writeln!(out, "all traces consistent with Table 2 access patterns");
                CellData::text(0, elements * WORD_BYTES, out)
            })]
        },
        render: |cells| cells[0].text.clone(),
    }
}

// ---------------------------------------------------------------------
// §7 extensions.

fn indirect_patterns() -> Vec<(&'static str, Vec<u64>)> {
    vec![
        ("dense-run", (0..64).collect()),
        ("every-16th (one bank)", (0..64).map(|i| i * 16).collect()),
        (
            "random-ish spread",
            (0..64).map(|i| (i * 2654435761u64) % 65536).collect(),
        ),
        (
            "csr row walk",
            (0..64).map(|i| i * 7 + (i % 5) * 1000).collect(),
        ),
    ]
}

/// Serial comparator for the indirect study: one element per cycle plus
/// per-element row management on a single device.
fn indirect_serial_cycles(iv: &IndirectVector) -> u64 {
    6 * iv.length() / 4 + iv.length()
}

fn ext_indirect() -> Scenario {
    Scenario {
        name: "ext_indirect",
        alias: "indirect",
        title: "Extension: two-phase vector-indirect gather vs element-serial",
        smoke: true,
        golden: true,
        build: || {
            indirect_patterns()
                .into_iter()
                .map(|(name, offsets)| {
                    CellSpec::new("pva-indirect", name, move || {
                        let cfg = PvaConfig::default();
                        let iv = IndirectVector::new(0x10000, offsets).unwrap();
                        let timing = run_indirect_gather(cfg, &iv, 0).unwrap();
                        let serial = indirect_serial_cycles(&iv);
                        CellData::with_aux(
                            timing.total_cycles,
                            iv.length() * WORD_BYTES,
                            vec![
                                timing.phase1_cycles,
                                timing.broadcast_cycles,
                                timing.phase2_cycles,
                                timing.stage_cycles,
                                timing.total_cycles,
                                serial,
                            ],
                        )
                    })
                })
                .collect()
        },
        render: |cells| {
            let mut t = Table::new(vec![
                "pattern",
                "phase1",
                "broadcast",
                "phase2",
                "stage",
                "pva total",
                "serial",
                "speedup",
            ]);
            for ((name, _), c) in indirect_patterns().iter().zip(cells) {
                t.row(vec![
                    name.to_string(),
                    c.aux[0].to_string(),
                    c.aux[1].to_string(),
                    c.aux[2].to_string(),
                    c.aux[3].to_string(),
                    c.aux[4].to_string(),
                    c.aux[5].to_string(),
                    format!("{:.2}x", c.aux[5] as f64 / c.aux[4] as f64),
                ]);
            }
            let mut out = String::new();
            let _ = writeln!(
                out,
                "Vector-indirect gather: two-phase PVA vs element-serial (64 elements)\n"
            );
            let _ = writeln!(out, "{t}");
            let _ = writeln!(
                out,
                "spread claims parallelize across banks; single-bank claims serialize (as §7 predicts)"
            );
            out
        },
    }
}

const BITREV_SIZES: [u32; 3] = [6, 8, 10];

fn ext_bitrev() -> Scenario {
    Scenario {
        name: "ext_bitrev",
        alias: "bitrev",
        title: "Extension: bit-reversed (FFT reorder) gather",
        smoke: false,
        golden: true,
        build: || {
            BITREV_SIZES
                .iter()
                .map(|&k| {
                    CellSpec::new("pva-indirect", format!("log2n={k}"), move || {
                        let cfg = PvaConfig::default();
                        let g = Geometry::word_interleaved(16).unwrap();
                        let v = BitReversedVector::new(0, k).unwrap();
                        let claims: Vec<usize> = (0..16)
                            .map(|b| v.subvector_indices(BankId::new(b), &g).count())
                            .collect();
                        let mut pva_total = 0u64;
                        for line_start in (0..v.length()).step_by(32) {
                            let offsets: Vec<u64> = (line_start..line_start + 32)
                                .map(|i| v.element(i))
                                .collect();
                            let iv = IndirectVector::new(0, offsets).unwrap();
                            let timing = run_indirect_gather(cfg, &iv, 1 << 20).unwrap();
                            pva_total += timing.broadcast_cycles
                                + timing.phase2_cycles
                                + timing.stage_cycles;
                        }
                        let lines_per_gather = 32.min(v.length());
                        let cacheline = (v.length() / 32) * lines_per_gather * 20;
                        CellData::with_aux(
                            pva_total,
                            v.length() * WORD_BYTES,
                            vec![
                                v.length(),
                                *claims.iter().max().unwrap() as u64,
                                *claims.iter().min().unwrap() as u64,
                                pva_total,
                                cacheline,
                            ],
                        )
                    })
                })
                .collect()
        },
        render: |cells| {
            let mut t = Table::new(vec![
                "log2 n",
                "elements",
                "max claim/bank",
                "min claim/bank",
                "pva cycles",
                "cacheline cycles",
                "speedup",
            ]);
            for (&k, c) in BITREV_SIZES.iter().zip(cells) {
                t.row(vec![
                    k.to_string(),
                    c.aux[0].to_string(),
                    c.aux[1].to_string(),
                    c.aux[2].to_string(),
                    c.aux[3].to_string(),
                    c.aux[4].to_string(),
                    format!("{:.2}x", c.aux[4] as f64 / c.aux[3] as f64),
                ]);
            }
            let mut out = String::new();
            let _ = writeln!(out, "Bit-reversal gather (FFT reorder) through the PVA\n");
            let _ = writeln!(out, "{t}");
            let _ = writeln!(
                out,
                "claims are balanced across banks, so the reorder parallelizes despite its poor cache locality"
            );
            out
        },
    }
}

// Cache-pollution study (monolithic helpers shared by both paths).

const POLLUTION_ITERS: u64 = 1024;
const POLLUTION_X_BASE: u64 = 1 << 22;
const POLLUTION_Y_BASE: u64 = 0;
const POLLUTION_Y_WORDS: u64 = 4096; // half the 8192-word L2

fn pollution_mixed_refs(stride: u64) -> Vec<Reference> {
    let mut refs = Vec::new();
    for i in 0..POLLUTION_ITERS {
        refs.push(Reference::Load(POLLUTION_X_BASE + i * stride));
        refs.push(Reference::Load(POLLUTION_Y_BASE + (i % POLLUTION_Y_WORDS)));
    }
    refs
}

fn pollution_y_hit_rate(l2: &mut CacheSim) -> f64 {
    let before = *l2.stats();
    for w in 0..POLLUTION_Y_WORDS {
        l2.access(Reference::Load(POLLUTION_Y_BASE + w));
    }
    let after = *l2.stats();
    (after.hits - before.hits) as f64 / POLLUTION_Y_WORDS as f64
}

fn pollution_cached_path(stride: u64) -> (f64, u64, u64) {
    let mut l2 = CacheSim::new(CacheConfig::default());
    for w in 0..POLLUTION_Y_WORDS {
        l2.access(Reference::Load(POLLUTION_Y_BASE + w));
    }
    let mut mem = PvaSystem::sdram();
    let r = run_reference_stream(&mut l2, &mut mem, &pollution_mixed_refs(stride), false);
    let y_hits = pollution_y_hit_rate(&mut l2);
    let words_moved = (r.fills + r.writebacks) * 32;
    (y_hits, words_moved, r.memory_cycles)
}

fn pollution_pva_path(stride: u64) -> (f64, u64, u64) {
    let mut l2 = CacheSim::new(CacheConfig::default());
    for w in 0..POLLUTION_Y_WORDS {
        l2.access(Reference::Load(POLLUTION_Y_BASE + w));
    }
    let mut mem = PvaSystem::sdram();
    let mut trace: Vec<TraceOp> = Vec::new();
    let x = Vector::new(POLLUTION_X_BASE, stride, POLLUTION_ITERS).expect("valid vector");
    for chunk in x.chunks(32) {
        trace.push(TraceOp::read(chunk));
    }
    let r = run_reference_stream(
        &mut l2,
        &mut mem,
        &(0..POLLUTION_ITERS)
            .map(|i| Reference::Load(POLLUTION_Y_BASE + (i % POLLUTION_Y_WORDS)))
            .collect::<Vec<_>>(),
        false,
    );
    let gather_cycles = mem.run_trace(&trace).cycles;
    let y_hits = pollution_y_hit_rate(&mut l2);
    let words_moved = (r.fills + r.writebacks) * 32 + POLLUTION_ITERS;
    (y_hits, words_moved, r.memory_cycles + gather_cycles)
}

const POLLUTION_STRIDES: [u64; 6] = [2, 4, 8, 16, 32, 64];

fn ext_cache_pollution() -> Scenario {
    Scenario {
        name: "ext_cache_pollution",
        alias: "pollution",
        title: "Extension: cache pollution by strided access, cached vs PVA path",
        smoke: false,
        golden: true,
        build: || {
            POLLUTION_STRIDES
                .iter()
                .map(|&stride| {
                    CellSpec::new("cached-vs-pva", format!("s{stride}"), move || {
                        let (ch, cw, cc) = pollution_cached_path(stride);
                        let (ph, pw, pc) = pollution_pva_path(stride);
                        CellData::with_aux(
                            cc + pc,
                            (cw + pw) * WORD_BYTES,
                            vec![ch.to_bits(), cw, cc, ph.to_bits(), pw, pc],
                        )
                    })
                })
                .collect()
        },
        render: |cells| {
            let mut t = Table::new(vec![
                "stride",
                "cached: y hits",
                "cached: bus words",
                "cached: cycles",
                "pva: y hits",
                "pva: bus words",
                "pva: cycles",
            ]);
            for (&stride, c) in POLLUTION_STRIDES.iter().zip(cells) {
                t.row(vec![
                    stride.to_string(),
                    format!("{:.0}%", f64::from_bits(c.aux[0]) * 100.0),
                    c.aux[1].to_string(),
                    c.aux[2].to_string(),
                    format!("{:.0}%", f64::from_bits(c.aux[3]) * 100.0),
                    c.aux[4].to_string(),
                    c.aux[5].to_string(),
                ]);
            }
            let mut out = String::new();
            let _ = writeln!(
                out,
                "Cache pollution by strided access (1024 iterations; x strided, y dense/cached)\n"
            );
            let _ = writeln!(out, "{t}");
            let _ = writeln!(
                out,
                "the cached path moves a whole line per strided element and evicts the dense"
            );
            let _ = writeln!(
                out,
                "working set; the PVA path moves only the used words and leaves y resident —"
            );
            let _ = writeln!(
                out,
                "the two bullet points of the paper's introduction, measured"
            );
            out
        },
    }
}

// ---------------------------------------------------------------------
// Related-work comparisons.

fn cvms_latency(cfg: PvaConfig, stride: u64) -> u64 {
    let mut unit = pva_sim::PvaUnit::new(cfg).expect("valid config");
    let v = Vector::new(0, stride, 32).expect("valid vector");
    unit.run(vec![HostRequest::Read { vector: v }])
        .expect("runs")
        .cycles
}

fn cvms_throughput(cfg: PvaConfig, stride: u64, commands: u64) -> u64 {
    let mut unit = pva_sim::PvaUnit::new(cfg).expect("valid config");
    let reqs: Vec<HostRequest> = (0..commands)
        .map(|i| HostRequest::Read {
            vector: Vector::new(i * 32 * stride, stride, 32).expect("valid vector"),
        })
        .collect();
    unit.run(reqs).expect("runs").cycles
}

const CVMS_STRIDES: [u64; 4] = [4, 8, 5, 19];

fn related_cvms() -> Scenario {
    Scenario {
        name: "related_cvms",
        alias: "cvms",
        title: "Related work: PVA vs CVMS-like subcommand generation",
        smoke: true,
        golden: true,
        build: || {
            CVMS_STRIDES
                .iter()
                .map(|&stride| {
                    CellSpec::new("pva-vs-cvms", format!("s{stride}"), move || {
                        let pl = cvms_latency(PvaConfig::default(), stride);
                        let cl = cvms_latency(PvaConfig::cvms_like(), stride);
                        let pt = cvms_throughput(PvaConfig::default(), stride, 8);
                        let ct = cvms_throughput(PvaConfig::cvms_like(), stride, 8);
                        CellData::with_aux(
                            pl + cl + pt + ct,
                            (32 + 32 + 8 * 32 + 8 * 32) * WORD_BYTES,
                            vec![pl, cl, pt, ct],
                        )
                    })
                })
                .collect()
        },
        render: |cells| {
            let mut t = Table::new(vec![
                "stride",
                "pva latency",
                "cvms latency",
                "delta",
                "pva 8-cmd",
                "cvms 8-cmd",
            ]);
            for (&stride, c) in CVMS_STRIDES.iter().zip(cells) {
                t.row(vec![
                    format!(
                        "{stride}{}",
                        if stride.is_power_of_two() {
                            " (pow2)"
                        } else {
                            ""
                        }
                    ),
                    c.aux[0].to_string(),
                    c.aux[1].to_string(),
                    format!("{:+}", c.aux[1] as i64 - c.aux[0] as i64),
                    c.aux[2].to_string(),
                    c.aux[3].to_string(),
                ]);
            }
            let mut out = String::new();
            let _ = writeln!(
                out,
                "PVA vs CVMS-like subcommand generation (section 3.1)\n"
            );
            let _ = writeln!(out, "{t}");
            let _ = writeln!(
                out,
                "power-of-two strides: identical (both generate subcommands in 2 cycles);"
            );
            let _ = writeln!(
                out,
                "other strides: the CVMS pays ~12 extra cycles of latency per command,"
            );
            let _ = writeln!(
                out,
                "largely hidden once commands pipeline (the paper's latency-hiding point)"
            );
            out
        },
    }
}

fn smc_trace(stride: u64) -> Vec<TraceOp> {
    let bases = Alignment::BankStagger.bases(Kernel::Copy.array_count(), 1 << 22);
    Kernel::Copy.trace(&bases, stride, ELEMENTS, LINE_WORDS)
}

fn related_smc() -> Scenario {
    Scenario {
        name: "related_smc",
        alias: "smc",
        title: "Related work: PVA vs SMC-like stream controller",
        smoke: false,
        golden: true,
        build: || {
            let mut cells: Vec<CellSpec> = STRIDES
                .iter()
                .map(|&s| {
                    CellSpec::new("pva-vs-smc", format!("s{s}"), move || {
                        let tr = smc_trace(s);
                        let pva = PvaSystem::sdram().run_trace(&tr);
                        let smc = SmcLike::default().run_trace(&tr);
                        let ser = SerialGather::default().run_trace(&tr);
                        CellData::with_aux(
                            pva.cycles + smc.cycles + ser.cycles,
                            pva.bytes_transferred + smc.bytes_transferred + ser.bytes_transferred,
                            vec![pva.cycles, smc.cycles, ser.cycles],
                        )
                    })
                })
                .collect();
            cells.push(CellSpec::new("pva-vs-smc", "single-s19", || {
                let one = [TraceOp::read(Vector::new(0, 19, 32).expect("valid"))];
                let pva = PvaSystem::sdram().run_trace(&one).cycles;
                let smc = SmcLike::default().run_trace(&one).cycles;
                CellData::with_aux(pva + smc, 2 * 32 * WORD_BYTES, vec![pva, smc])
            }));
            cells
        },
        render: |cells| {
            let mut t = Table::new(vec![
                "stride",
                "pva-sdram",
                "smc-like",
                "smc/pva",
                "serial-gather",
            ]);
            for (&s, c) in STRIDES.iter().zip(cells) {
                t.row(vec![
                    s.to_string(),
                    c.aux[0].to_string(),
                    c.aux[1].to_string(),
                    format!("{:.2}x", c.aux[1] as f64 / c.aux[0] as f64),
                    c.aux[2].to_string(),
                ]);
            }
            let single = &cells[STRIDES.len()];
            let mut out = String::new();
            let _ = writeln!(
                out,
                "PVA vs SMC-like stream controller (copy kernel, 1024 elements)\n"
            );
            let _ = writeln!(out, "{t}");
            let _ = writeln!(
                out,
                "single stride-19 gather: pva {} vs smc {} cycles",
                single.aux[0], single.aux[1]
            );
            let _ = writeln!(
                out,
                "\nthe SMC's dynamic ordering beats the naive serial gatherer, but its serial"
            );
            let _ = writeln!(
                out,
                "issue caps it near 1 element/cycle; the PVA's broadcast parallelism wins"
            );
            let _ = writeln!(out, "wherever more than one bank holds vector elements");
            out
        },
    }
}

// ---------------------------------------------------------------------
// Technology / scaling / design-space / CPU-sensitivity sweeps.

fn gathered_reads(cfg: PvaConfig, stride: u64) -> u64 {
    let mut unit = pva_sim::PvaUnit::new(cfg).expect("valid config");
    let reqs: Vec<HostRequest> = (0..16u64)
        .map(|i| HostRequest::Read {
            vector: Vector::new(i * 32 * stride, stride, 32).expect("valid vector"),
        })
        .collect();
    unit.run(reqs).expect("runs").cycles
}

fn tech_list() -> Vec<(&'static str, SdramConfig)> {
    vec![
        (
            "edo-like (1 row buffer)",
            SdramConfig::for_device(DevicePreset::EdoLike),
        ),
        ("sdram (4 internal banks)", SdramConfig::default()),
        (
            "sldram-like (8 banks)",
            SdramConfig::for_device(DevicePreset::SldramLike),
        ),
        (
            "drdram-like (32 banks)",
            SdramConfig::for_device(DevicePreset::DrdramLike),
        ),
        (
            "ideal sram",
            SdramConfig::for_device(DevicePreset::SramLike),
        ),
    ]
}

fn tech_row_conflict(sdram: SdramConfig) -> u64 {
    let cfg = PvaConfig {
        sdram,
        ..PvaConfig::default()
    };
    let k = Kernel::Vaxpy;
    let bases = Alignment::Coincident.bases(k.array_count(), ARRAY_REGION);
    let trace = k.trace(&bases, 16, ELEMENTS, LINE_WORDS);
    PvaSystem::with_config("tech", cfg).run_trace(&trace).cycles
}

fn tech_sweep() -> Scenario {
    Scenario {
        name: "tech_sweep",
        alias: "tech",
        title: "DRAM technology sweep: the PVA over EDO/SDRAM/SLDRAM/DRDRAM/SRAM",
        smoke: false,
        golden: true,
        build: || {
            tech_list()
                .into_iter()
                .map(|(name, sdram)| {
                    CellSpec::new(name, "tech", move || {
                        let run = |stride| {
                            gathered_reads(
                                PvaConfig {
                                    sdram,
                                    ..PvaConfig::default()
                                },
                                stride,
                            )
                        };
                        let (s1, s16, s19) = (run(1), run(16), run(19));
                        let rc = tech_row_conflict(sdram);
                        CellData::with_aux(s1 + s16 + s19 + rc, 0, vec![s1, s16, s19, rc])
                    })
                })
                .collect()
        },
        render: |cells| {
            let mut t = Table::new(vec![
                "device",
                "stride 1",
                "stride 16",
                "stride 19",
                "vaxpy s16 (row conflicts)",
            ]);
            for ((name, _), c) in tech_list().iter().zip(cells) {
                t.row(vec![
                    name.to_string(),
                    c.aux[0].to_string(),
                    c.aux[1].to_string(),
                    c.aux[2].to_string(),
                    c.aux[3].to_string(),
                ]);
            }
            let mut out = String::new();
            let _ = writeln!(
                out,
                "DRAM technology sweep — 16 gathered reads through the PVA (cycles)\n"
            );
            let _ = writeln!(out, "{t}");
            let _ = writeln!(
                out,
                "on pure vector bursts (first three columns) the PVA's scheduling amortizes row"
            );
            let _ = writeln!(
                out,
                "opens so thoroughly that even a single-row-buffer EDO-like device keeps pace —"
            );
            let _ = writeln!(
                out,
                "the latency-hiding claim of the paper in its strongest form; device differences"
            );
            let _ = writeln!(
                out,
                "surface only under row *conflicts* (last column), where internal-bank overlap"
            );
            let _ = writeln!(
                out,
                "and the core timings separate the technologies, SRAM bounding them below"
            );
            out
        },
    }
}

// ---------------------------------------------------------------------
// Technology-generation sweep: the fig-7 comparison per device preset.

/// The generations the sweep runs by default: the paper's SDR part plus
/// the two modern profiles whose channel constraints (tCCD/tRRD/tFAW)
/// could plausibly erode the PVA's parallel-access advantage.
const TECHSWEEP_DEFAULT: [DevicePreset; 3] = [
    DevicePreset::Sdr100,
    DevicePreset::Ddr3_1600,
    DevicePreset::Hbm2Like,
];

/// Strides of the generation sweep — the fig-7 corners: dense, powers
/// of two (cache-pathological), and relatively prime.
const TECHSWEEP_STRIDES: [u64; 4] = [1, 4, 16, 19];

/// The device generations this run covers. `PVA_BENCH_DEVICE` (set by
/// `pva-bench --device`) narrows the sweep to a single preset — any
/// shipped [`DevicePreset`], not just the default trio — which is how
/// the CI smoke exercises every generation one at a time. An
/// unrecognized value falls back to the default trio (the `--device`
/// flag validates before setting the variable).
fn techsweep_devices() -> Vec<DevicePreset> {
    match std::env::var("PVA_BENCH_DEVICE") {
        Ok(name) if !name.trim().is_empty() => DevicePreset::from_name(name.trim())
            .map(|p| vec![p])
            .unwrap_or_else(|| TECHSWEEP_DEFAULT.to_vec()),
        _ => TECHSWEEP_DEFAULT.to_vec(),
    }
}

/// One sweep point: (pva, cacheline, serial-gather) cycles for the
/// kernel at the stride on one device generation, plus the
/// generation-aware scheduler's counters (group switches, coalesced
/// bursts, deferred activates, CAS commands) from the PVA run. The PVA
/// runs the full simulator under the preset's timing; the two serial
/// baselines are the paper's closed-form comparators re-parameterized
/// with the same generation's core timings (and the data-rate-scaled
/// burst for the line-fill system, since DDR moves two words per
/// clock).
fn techsweep_point(preset: DevicePreset, kernel: Kernel, stride: u64) -> (u64, u64, u64, [u64; 4]) {
    let sdram = SdramConfig::for_device(preset);
    let bases = Alignment::Coincident.bases(kernel.array_count(), ARRAY_REGION);
    let trace = kernel.trace(&bases, stride, ELEMENTS, LINE_WORDS);
    let mut system = PvaSystem::with_config(
        "techsweep",
        PvaConfig {
            sdram,
            ..PvaConfig::default()
        },
    );
    let pva = system.run_trace(&trace).cycles;
    let sched = system.scheduler_stats();
    let counters = [
        sched.group_switches,
        sched.coalesced_bursts,
        sched.deferred_activates,
        system.cas_commands(),
    ];
    let data_rate = u64::from(sdram.data_rate.max(1));
    let cacheline = CachelineSerial::new(CachelineConfig {
        line_words: LINE_WORDS,
        ras: u64::from(sdram.t_rcd),
        cas: u64::from(sdram.t_cas),
        // 16 bus transfers per 128-byte line, data_rate per clock.
        burst: 16u64.div_ceil(data_rate),
    })
    .run_trace(&trace)
    .cycles;
    let serial = SerialGather::new(SerialGatherConfig {
        t_rp: u64::from(sdram.t_rp),
        t_rcd: u64::from(sdram.t_rcd),
        t_cas: u64::from(sdram.t_cas),
    })
    .run_trace(&trace)
    .cycles;
    (pva, cacheline, serial, counters)
}

fn techsweep() -> Scenario {
    Scenario {
        name: "techsweep",
        alias: "gen",
        title: "Technology-generation sweep: fig-7 kernels per device preset",
        smoke: true,
        golden: true,
        build: || {
            let mut cells = Vec::new();
            for preset in techsweep_devices() {
                for &k in &FIG7_KERNELS {
                    for &s in &TECHSWEEP_STRIDES {
                        cells.push(CellSpec::new(
                            preset.name(),
                            format!("{}/s{}", k.name(), s),
                            move || {
                                let (pva, cacheline, serial, sched) = techsweep_point(preset, k, s);
                                // aux[0..3] feed the rendered table;
                                // aux[3..7] are the scheduler counters
                                // (group switches, coalesced bursts,
                                // deferred activates, CAS commands)
                                // consumed by `techsweep_metrics`.
                                let mut aux = vec![pva, cacheline, serial];
                                aux.extend(sched);
                                CellData::with_aux(pva + cacheline + serial, 0, aux)
                            },
                        ));
                    }
                }
            }
            cells
        },
        render: |cells| {
            let mut out = String::new();
            let _ = writeln!(
                out,
                "Technology-generation sweep — fig-7 kernels x strides per device"
            );
            let _ = writeln!(
                out,
                "(coincident alignment; cycles per 1024-element kernel)"
            );
            let mut idx = 0;
            for preset in techsweep_devices() {
                let cfg = SdramConfig::for_device(preset);
                let _ = writeln!(out, "\n{} — {}", preset.name(), preset.title());
                let _ = writeln!(
                    out,
                    "channel constraints: tCCD_L/S {}/{}, tRRD {}, tFAW {}\n",
                    cfg.t_ccd_l, cfg.t_ccd_s, cfg.t_rrd, cfg.t_faw
                );
                let mut t = Table::new(vec![
                    "kernel",
                    "stride",
                    "pva",
                    "cacheline",
                    "serial-gather",
                    "cache/pva",
                    "serial/pva",
                ]);
                let (mut min_up, mut max_up) = (f64::INFINITY, 0.0f64);
                for &k in &FIG7_KERNELS {
                    for &s in &TECHSWEEP_STRIDES {
                        let c = &cells[idx];
                        idx += 1;
                        let (pva, cacheline, serial) = (c.aux[0], c.aux[1], c.aux[2]);
                        let up = cacheline as f64 / pva as f64;
                        min_up = min_up.min(up);
                        max_up = max_up.max(up);
                        t.row(vec![
                            k.name().to_string(),
                            s.to_string(),
                            pva.to_string(),
                            cacheline.to_string(),
                            serial.to_string(),
                            format!("{up:.2}x"),
                            format!("{:.2}x", serial as f64 / pva as f64),
                        ]);
                    }
                }
                let _ = writeln!(out, "{t}");
                let verdict = if min_up >= 1.0 {
                    "the PVA advantage survives this generation"
                } else {
                    "the PVA advantage does NOT survive every point of this generation"
                };
                let _ = writeln!(out, "vs cacheline: {min_up:.2}x-{max_up:.2}x — {verdict}");
            }
            out
        },
    }
}

const BANK_COUNTS: [u64; 6] = [2, 4, 8, 16, 32, 64];

fn scaling_banks() -> Scenario {
    Scenario {
        name: "scaling_banks",
        alias: "banks",
        title: "Bank-count scaling: throughput and K1-PLA cost vs banks",
        smoke: false,
        golden: true,
        build: || {
            BANK_COUNTS
                .iter()
                .map(|&m| {
                    CellSpec::new("pva-sdram", format!("banks={m}"), move || {
                        let run = |stride| {
                            gathered_reads(
                                PvaConfig {
                                    geometry: Geometry::word_interleaved(m).expect("power of two"),
                                    ..PvaConfig::default()
                                },
                                stride,
                            )
                        };
                        let (s1, s3, s8) = (run(1), run(3), run(8));
                        let g = Geometry::word_interleaved(m).expect("power of two");
                        let bits = K1Pla::new(&g).complexity().total_bits;
                        CellData::with_aux(s1 + s3 + s8, 0, vec![s1, s3, s8, bits])
                    })
                })
                .collect()
        },
        render: |cells| {
            let mut t = Table::new(vec![
                "banks",
                "stride 1",
                "stride 3",
                "stride 8",
                "K1 PLA bits/BC",
            ]);
            for (&m, c) in BANK_COUNTS.iter().zip(cells) {
                t.row(vec![
                    m.to_string(),
                    c.aux[0].to_string(),
                    c.aux[1].to_string(),
                    c.aux[2].to_string(),
                    c.aux[3].to_string(),
                ]);
            }
            let mut out = String::new();
            let _ = writeln!(
                out,
                "Bank-count scaling — 16 gathered reads (cycles) and K1-PLA bits\n"
            );
            let _ = writeln!(out, "{t}");
            let _ = writeln!(
                out,
                "small systems are bank-limited (stride 8 on 4 banks = single bank);"
            );
            let _ = writeln!(
                out,
                "beyond 16 banks the 17-cycle/command staging bus dominates, so extra banks"
            );
            let _ = writeln!(
                out,
                "buy robustness to bad strides, not raw throughput — while K1-PLA cost stays linear"
            );
            out
        },
    }
}

const DS_VCS: [usize; 4] = [1, 2, 4, 8];
const DS_IDS: [usize; 4] = [2, 4, 8, 16];
const DS_RATES: [u64; 4] = [1, 2, 4, 8];

fn design_space() -> Scenario {
    Scenario {
        name: "design_space",
        alias: "design",
        title: "Design-space sweep: vector contexts, transaction ids, staging rate",
        smoke: true,
        golden: true,
        build: || {
            let mut cells = Vec::new();
            let probe = |cfg: PvaConfig| {
                let s19 = gathered_reads(cfg, 19);
                let s16 = gathered_reads(cfg, 16);
                CellData::with_aux(s19 + s16, 0, vec![s19, s16])
            };
            for vcs in DS_VCS {
                cells.push(CellSpec::new(
                    "pva-sdram",
                    format!("vcs={vcs}"),
                    move || {
                        probe(PvaConfig {
                            vector_contexts: vcs,
                            ..PvaConfig::default()
                        })
                    },
                ));
            }
            for ids in DS_IDS {
                cells.push(CellSpec::new(
                    "pva-sdram",
                    format!("ids={ids}"),
                    move || {
                        probe(PvaConfig {
                            transaction_ids: ids,
                            request_fifo_entries: ids,
                            ..PvaConfig::default()
                        })
                    },
                ));
            }
            for rate in DS_RATES {
                cells.push(CellSpec::new(
                    "pva-sdram",
                    format!("rate={rate}"),
                    move || {
                        probe(PvaConfig {
                            stage_words_per_cycle: rate,
                            ..PvaConfig::default()
                        })
                    },
                ));
            }
            cells
        },
        render: |cells| {
            let mut out = String::new();
            let _ = writeln!(out, "PVA design-space sweep — 16 gathered reads (cycles)\n");
            let _ = writeln!(
                out,
                "vector contexts per bank controller (txn ids = 8, stage rate = 2):"
            );
            let mut t = Table::new(vec!["VCs", "stride 19", "stride 16"]);
            for (i, vcs) in DS_VCS.iter().enumerate() {
                let c = &cells[i];
                t.row(vec![
                    vcs.to_string(),
                    c.aux[0].to_string(),
                    c.aux[1].to_string(),
                ]);
            }
            let _ = writeln!(out, "{t}");
            let _ = writeln!(
                out,
                "outstanding transaction ids (VCs = 4, stage rate = 2):"
            );
            let mut t = Table::new(vec!["txn ids", "stride 19", "stride 16"]);
            for (i, ids) in DS_IDS.iter().enumerate() {
                let c = &cells[4 + i];
                t.row(vec![
                    ids.to_string(),
                    c.aux[0].to_string(),
                    c.aux[1].to_string(),
                ]);
            }
            let _ = writeln!(out, "{t}");
            let _ = writeln!(
                out,
                "BC-bus staging rate in words/cycle (VCs = 4, txn ids = 8):"
            );
            let mut t = Table::new(vec!["words/cycle", "stride 19", "stride 16"]);
            for (i, rate) in DS_RATES.iter().enumerate() {
                let c = &cells[8 + i];
                t.row(vec![
                    rate.to_string(),
                    c.aux[0].to_string(),
                    c.aux[1].to_string(),
                ]);
            }
            let _ = writeln!(out, "{t}");
            let _ = writeln!(
                out,
                "at parallel strides the staging rate is the binding resource (the 17-cycle"
            );
            let _ = writeln!(
                out,
                "floor halves when the bus doubles); at single-bank strides the SDRAM command"
            );
            let _ = writeln!(
                out,
                "rate binds and none of the front-end knobs help — matching the paper's choice"
            );
            let _ = writeln!(
                out,
                "to spend area on per-bank parallelism rather than deeper queues"
            );
            out
        },
    }
}

fn cpu_reads(n: u64, stride: u64) -> Vec<HostRequest> {
    (0..n)
        .map(|i| HostRequest::Read {
            vector: Vector::new(i * 32 * stride, stride, 32).expect("valid"),
        })
        .collect()
}

const CPU_OUTSTANDING: [usize; 4] = [1, 2, 4, 8];
const CPU_GAPS: [u64; 5] = [0, 8, 17, 34, 68];
const CPU_PCTS: [u64; 5] = [0, 25, 50, 75, 100];

fn cpu_sensitivity() -> Scenario {
    Scenario {
        name: "cpu_sensitivity",
        alias: "cpu",
        title: "CPU sensitivity: outstanding misses, issue gap, vectorizable fraction",
        smoke: false,
        golden: true,
        build: || {
            let mut cells = vec![CellSpec::new("cacheline-serial", "baseline", || {
                let c = run_point(
                    Kernel::Scale,
                    19,
                    Alignment::BankStagger,
                    SystemKind::CachelineSerial,
                );
                CellData::cycles(c, 0)
            })];
            for k in CPU_OUTSTANDING {
                cells.push(CellSpec::new(
                    "cpu-pva",
                    format!("outstanding={k}"),
                    move || {
                        let r = CpuModel::new(CpuConfig {
                            max_outstanding: k,
                            ..CpuConfig::default()
                        })
                        .drive(PvaConfig::default(), &cpu_reads(32, 19))
                        .expect("runs");
                        CellData::with_aux(r.cycles, 0, vec![r.cycles, r.stall_cycles])
                    },
                ));
            }
            for gap in CPU_GAPS {
                cells.push(CellSpec::new("cpu-pva", format!("gap={gap}"), move || {
                    let r = CpuModel::new(CpuConfig {
                        cycles_between_requests: gap,
                        max_outstanding: 8,
                    })
                    .drive(PvaConfig::default(), &cpu_reads(32, 19))
                    .expect("runs");
                    CellData::with_aux(r.cycles, 0, vec![r.cycles])
                }));
            }
            for pct in CPU_PCTS {
                cells.push(CellSpec::new(
                    "cpu-pva",
                    format!("vector={pct}%"),
                    move || {
                        let w = mixed_workload(32, pct, 19);
                        let r = CpuModel::new(CpuConfig::default())
                            .drive(PvaConfig::default(), &w)
                            .expect("runs");
                        CellData::with_aux(r.cycles, 0, vec![r.cycles])
                    },
                ));
            }
            cells
        },
        render: |cells| {
            let baseline_cl = cells[0].cycles / 2;
            // (scale = 64 commands; the probe is 32 reads, so halve.)
            let mut out = String::new();
            let _ = writeln!(
                out,
                "CPU sensitivity — 32 stride-19 gathers vs the cache-line baseline\n"
            );
            let _ = writeln!(
                out,
                "outstanding L2 misses permitted (infinitely fast issue):"
            );
            let mut t = Table::new(vec![
                "outstanding",
                "pva cycles",
                "stalls",
                "speedup vs cacheline",
            ]);
            for (i, k) in CPU_OUTSTANDING.iter().enumerate() {
                let c = &cells[1 + i];
                t.row(vec![
                    k.to_string(),
                    c.aux[0].to_string(),
                    c.aux[1].to_string(),
                    format!("{:.1}x", baseline_cl as f64 / c.aux[0] as f64),
                ]);
            }
            let _ = writeln!(out, "{t}");
            let _ = writeln!(out, "compute cycles between requests (8 outstanding):");
            let mut t = Table::new(vec!["gap", "pva cycles", "speedup vs cacheline"]);
            for (i, gap) in CPU_GAPS.iter().enumerate() {
                let c = &cells[5 + i];
                t.row(vec![
                    gap.to_string(),
                    c.aux[0].to_string(),
                    format!("{:.1}x", baseline_cl as f64 / c.aux[0] as f64),
                ]);
            }
            let _ = writeln!(out, "{t}");
            let _ = writeln!(
                out,
                "fraction of accesses that are vectorizable (rest are unit-stride fills):"
            );
            let mut t = Table::new(vec![
                "% vector",
                "pva-path cycles",
                "all-cacheline cycles",
                "speedup",
            ]);
            for (i, pct) in CPU_PCTS.iter().enumerate() {
                let c = &cells[10 + i];
                let strided = (32 * pct / 100) as f64;
                let cl = strided * 19.0 * 20.0 + (32.0 - strided) * 20.0;
                t.row(vec![
                    format!("{pct}%"),
                    c.aux[0].to_string(),
                    format!("{cl:.0}"),
                    format!("{:.1}x", cl / c.aux[0] as f64),
                ]);
            }
            let _ = writeln!(out, "{t}");
            let _ = writeln!(
                out,
                "peak speedups need many outstanding misses and dense vector traffic —"
            );
            let _ = writeln!(
                out,
                "exactly the qualification the paper attaches to its own numbers"
            );
            out
        },
    }
}

// ---------------------------------------------------------------------
// Simulator throughput: fast-path vs reference model.

const THROUGHPUT_REPS: u64 = 15;

/// Measures the reference and fast-path models *paired in time*: for
/// each (kernel, stride) point the two systems alternate rep by rep,
/// so slow drift (hypervisor steal, frequency scaling) hits both sides
/// of the ratio equally. Each side is scored by its fastest rep —
/// noise only ever adds time, so min-of-N estimates the true per-run
/// cost. The cell's `aux` carries
/// `[model_cycles, ref_wall_ns, fast_wall_ns,
///   executed_cycles, skipped_cycles, jumps, events_popped,
///   jump_hist[0..JUMP_BUCKETS]]`
/// where the event-loop counters are one sweep's worth from the fast
/// model (runs are deterministic, so every rep agrees);
/// `cycles`/`bytes` count both models' simulated work.
fn throughput_probe() -> CellData {
    let ref_cfg = PvaConfig {
        fast_sim: false,
        ..PvaConfig::default()
    };
    let fast_cfg = PvaConfig::default();
    let mut cycles = 0u64;
    let mut bytes = 0u64;
    let mut ref_wall = 0u64;
    let mut fast_wall = 0u64;
    let mut events = EventStats::default();
    for &kernel in &FIG7_KERNELS {
        for &stride in &STRIDES {
            let bases = Alignment::BankStagger.bases(kernel.array_count(), ARRAY_REGION);
            let trace = kernel.trace(&bases, stride, ELEMENTS, LINE_WORDS);
            let mut ref_sys = PvaSystem::with_config("probe-ref", ref_cfg);
            let mut fast_sys = PvaSystem::with_config("probe-fast", fast_cfg);
            // One untimed warm-up per side keeps one-time allocation
            // and paging costs out of the measured window.
            ref_sys.run_trace(&trace);
            fast_sys.run_trace(&trace);
            let mut best_ref = u64::MAX;
            let mut best_fast = u64::MAX;
            for _ in 0..THROUGHPUT_REPS {
                ref_sys.reset();
                let t0 = Instant::now();
                let r = ref_sys.run_trace(&trace);
                best_ref = best_ref.min(t0.elapsed().as_nanos() as u64);

                fast_sys.reset();
                let t0 = Instant::now();
                let f = fast_sys.run_trace(&trace);
                best_fast = best_fast.min(t0.elapsed().as_nanos() as u64);

                debug_assert_eq!(r.cycles, f.cycles, "models must agree cycle-for-cycle");
                cycles += r.cycles + f.cycles;
                bytes += r.bytes_transferred + f.bytes_transferred;
            }
            events.absorb(fast_sys.event_stats());
            ref_wall += best_ref * THROUGHPUT_REPS;
            fast_wall += best_fast * THROUGHPUT_REPS;
        }
    }
    // Both models simulate the same cycle counts, so each side's share
    // is exactly half the combined total.
    let mut aux = vec![
        cycles / 2,
        ref_wall,
        fast_wall,
        events.executed_cycles,
        events.skipped_cycles,
        events.jumps,
        events.events_popped,
    ];
    aux.extend(events.jump_hist);
    CellData::with_aux(cycles, bytes, aux)
}

/// Simulated-cycles-per-second of one side of the paired probe cell.
fn sim_rate(c: &CellData, wall_ns: u64) -> f64 {
    c.aux[0] as f64 / (wall_ns.max(1) as f64 / 1e9)
}

/// The fast-vs-reference speedup from a throughput scenario's cells.
/// Returns 0.0 when the probe cell was quarantined (empty `aux`), so a
/// `--min-speedup` gate fails rather than panics.
pub fn throughput_speedup(cells: &[CellData]) -> f64 {
    let Some(c) = cells.first().filter(|c| c.aux.len() >= 3) else {
        return 0.0;
    };
    sim_rate(c, c.aux[2]) / sim_rate(c, c.aux[1])
}

/// Derived metrics of the `techsweep` scenario: the generation-aware
/// scheduler's counters summed over every (device, kernel, stride)
/// cell — bank-group switch rate per CAS, coalesced bursts, and
/// tFAW-deferred activates. Cells that predate the counter aux columns
/// (or were quarantined) contribute nothing.
pub fn techsweep_metrics(cells: &[CellData]) -> Vec<(String, f64)> {
    let mut switches = 0u64;
    let mut coalesced = 0u64;
    let mut deferred = 0u64;
    let mut cas = 0u64;
    for c in cells.iter().filter(|c| c.aux.len() >= 7) {
        switches += c.aux[3];
        coalesced += c.aux[4];
        deferred += c.aux[5];
        cas += c.aux[6];
    }
    if cas == 0 {
        return Vec::new();
    }
    vec![
        // pva-lint: allow(nonconst-div): metric over a checked nonzero total
        ("group_switch_rate".into(), switches as f64 / cas as f64),
        ("coalesced_bursts".into(), coalesced as f64),
        ("tfaw_deferred_activates".into(), deferred as f64),
        ("cas_commands".into(), cas as f64),
    ]
}

/// Derived figures for the throughput scenario's `BENCH_*.json` record:
/// per-model simulated-cycles-per-second, the fast-path speedup, the
/// event-loop density (wake-ups popped per thousand simulated cycles —
/// the cost the event queue pays for the cycles it skips), and the
/// jump-size histogram (bucket `i` counts bulk time-advances of
/// `2^i..2^(i+1)-1` cycles; the last bucket is open-ended).
pub fn throughput_metrics(cells: &[CellData]) -> Vec<(String, f64)> {
    let Some(c) = cells.first().filter(|c| c.aux.len() >= 7 + JUMP_BUCKETS) else {
        return Vec::new(); // probe cell quarantined
    };
    let sweep_cycles = c.aux[0] / THROUGHPUT_REPS;
    let mut m = vec![
        ("sim_cycles_per_sec_reference".into(), sim_rate(c, c.aux[1])),
        ("sim_cycles_per_sec_event".into(), sim_rate(c, c.aux[2])),
        ("fast_path_speedup".into(), throughput_speedup(cells)),
        (
            "executed_cycle_fraction".into(),
            c.aux[3] as f64 / sweep_cycles.max(1) as f64,
        ),
        (
            "events_per_kcycle".into(),
            c.aux[6] as f64 * 1e3 / sweep_cycles.max(1) as f64,
        ),
    ];
    for (i, &count) in c.aux[7..7 + JUMP_BUCKETS].iter().enumerate() {
        let label = if i + 1 == JUMP_BUCKETS {
            format!("jump_hist_{}_plus", 1u64 << i)
        } else {
            format!("jump_hist_{}_{}", 1u64 << i, (1u64 << (i + 1)) - 1)
        };
        m.push((label, count as f64));
    }
    m
}

fn throughput() -> Scenario {
    Scenario {
        name: "throughput",
        alias: "",
        title: "Simulator throughput: idle-cycle-skipping fast path vs reference model",
        smoke: true,
        golden: false,
        build: || {
            vec![CellSpec::new("paired ref/fast probe", "fig7-probe", || {
                throughput_probe()
            })]
        },
        render: |cells| {
            let c = &cells[0];
            let mut t = Table::new(vec!["configuration", "sim cycles", "wall ms", "Mcycles/s"]);
            for (name, wall) in [
                ("reference (fast_sim off)", c.aux[1]),
                ("event-driven (default)", c.aux[2]),
            ] {
                t.row(vec![
                    name.to_string(),
                    c.aux[0].to_string(),
                    format!("{:.1}", wall as f64 / 1e6),
                    format!("{:.2}", sim_rate(c, wall) / 1e6),
                ]);
            }
            let mut out = String::new();
            let _ = writeln!(
                out,
                "Simulator throughput — figure-7 kernels x stride sweep, {THROUGHPUT_REPS} reps per point\n"
            );
            let _ = writeln!(out, "{t}");
            let _ = writeln!(
                out,
                "fast-path speedup: {:.2}x (simulated cycles per second, fast vs reference;",
                throughput_speedup(cells)
            );
            let _ = writeln!(
                out,
                "cycle counts are bit-identical between the two models by construction)\n"
            );
            let sweep = (c.aux[0] / THROUGHPUT_REPS).max(1);
            let _ = writeln!(
                out,
                "event loop: {:.1}% of cycles executed, {} wake-ups ({:.0} per kcycle), {} jumps",
                100.0 * c.aux[3] as f64 / sweep as f64,
                c.aux[6],
                c.aux[6] as f64 * 1e3 / sweep as f64,
                c.aux[5],
            );
            let hist: Vec<String> = c.aux[7..7 + JUMP_BUCKETS]
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    if i + 1 == JUMP_BUCKETS {
                        format!("{}+:{n}", 1u64 << i)
                    } else {
                        format!("{}-{}:{n}", 1u64 << i, (1u64 << (i + 1)) - 1)
                    }
                })
                .collect();
            let _ = writeln!(out, "jump sizes (cycles): {}", hist.join("  "));
            out
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_and_aliases_are_unique() {
        let all = scenarios();
        let mut names: Vec<&str> = all
            .iter()
            .map(|s| s.name)
            .chain(all.iter().map(|s| s.alias).filter(|a| !a.is_empty()))
            .collect();
        let before = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(before, names.len(), "duplicate scenario name or alias");
        assert_eq!(all.len(), 20);
    }

    #[test]
    fn techsweep_covers_the_default_generations() {
        // The default sweep must include the paper's SDR part (the
        // equivalence anchor) plus at least two later generations.
        assert!(TECHSWEEP_DEFAULT.contains(&DevicePreset::Sdr100));
        assert!(TECHSWEEP_DEFAULT.len() >= 3);
        let cells = (find("techsweep").unwrap().build)();
        assert_eq!(
            cells.len(),
            TECHSWEEP_DEFAULT.len() * FIG7_KERNELS.len() * TECHSWEEP_STRIDES.len()
        );
    }

    #[test]
    fn find_resolves_names_and_aliases() {
        assert_eq!(find("fig7").unwrap().name, "fig7_stride_sweep");
        assert_eq!(find("fig7_stride_sweep").unwrap().name, "fig7_stride_sweep");
        assert_eq!(find("throughput").unwrap().name, "throughput");
        assert!(find("nope").is_none());
    }

    #[test]
    fn chaos_is_a_dev_scenario_outside_the_registry() {
        assert!(find("chaos").is_some(), "resolvable by name");
        assert!(
            scenarios().iter().all(|s| s.name != "chaos"),
            "but never part of `all`"
        );
        let dev = dev_scenarios();
        assert!(dev.iter().all(|s| !s.smoke && !s.golden));
    }

    #[test]
    fn smoke_subset_is_nonempty_and_contains_throughput() {
        let smoke: Vec<_> = scenarios().into_iter().filter(|s| s.smoke).collect();
        assert!(smoke.len() >= 3);
        assert!(smoke.iter().any(|s| s.name == "throughput"));
    }
}
