//! `pva-bench` — the unified experiment CLI.
//!
//! ```text
//! pva-bench list
//! pva-bench <scenario> [--jobs N] [--json DIR] [--out DIR] [--verify DIR]
//!                      [--device PRESET] [EXEC FLAGS]
//! pva-bench all [--smoke] [--jobs N] [--json DIR] [--out DIR] [--verify DIR]
//!               [--min-speedup X] [--device PRESET] [EXEC FLAGS]
//! pva-bench validate FILE...
//! pva-bench diff A.json B.json
//!
//! EXEC FLAGS: [--journal PATH] [--resume] [--cell-timeout SECS]
//!             [--retries N] [--strict]
//! ```
//!
//! `--device` narrows device-parameterized scenarios (currently the
//! `techsweep` generation sweep) to one named [`sdram::DevicePreset`]
//! — the per-generation CI smoke. It is exported to cells through the
//! `PVA_BENCH_DEVICE` environment variable; such runs write and verify
//! per-preset goldens (`techsweep.<preset>.txt`) instead of the
//! default-sweep `techsweep.txt`.
//!
//! A single scenario prints exactly what its legacy binary printed
//! (goldens live in `results/`). `all` fans every cell of every
//! selected scenario across a work-stealing pool, writes per-scenario
//! text (`--out`) and `BENCH_<name>.json` records (`--json`), and can
//! diff the text against committed goldens (`--verify`). `--min-speedup`
//! gates on the `throughput` scenario's fast-path speedup.
//!
//! Execution is resilient: `--journal` checkpoints every completed cell
//! to a write-ahead JSONL file so a killed run continues with
//! `--resume`; `--cell-timeout` bounds each cell's wall clock (0
//! disables); failing cells retry up to `--retries` times and are then
//! quarantined into the record's `failures` section — or abort the run
//! under `--strict`. `validate` checks `BENCH_*.json` records *and*
//! journal files; `diff` compares two records canonically (ignoring
//! wall-clock fields).
//!
//! Exit codes: 0 ok · 1 runtime error · 2 usage · 3 verify/diff
//! mismatch · 4 schema-invalid input · 5 cell failures present.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use pva_bench::engine::{
    run_scenarios_checked, EngineError, EngineRun, ExecConfig, RunRecord, Scenario, ScenarioReport,
};
use pva_bench::journal;
use pva_bench::resilient::ExecPolicy;
use pva_bench::scenarios::{
    find, scenarios, techsweep_metrics, throughput_metrics, throughput_speedup,
};

/// Everything went fine.
const EXIT_OK: u8 = 0;
/// Runtime/environment error (I/O, unreadable journal, strict-less
/// engine failure).
const EXIT_ERROR: u8 = 1;
/// Bad command line.
const EXIT_USAGE: u8 = 2;
/// `--verify` golden mismatch, `--min-speedup` gate failure, or `diff`
/// records differ.
const EXIT_VERIFY: u8 = 3;
/// `validate`/`diff` input failed to parse or validate.
const EXIT_SCHEMA: u8 = 4;
/// One or more cells were quarantined (also used for `--strict`
/// aborts).
const EXIT_CELL_FAILURES: u8 = 5;

/// What went wrong during a run; folded into one documented exit code.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
struct RunStatus {
    /// I/O or engine-environment error.
    error: bool,
    /// Quarantined cells present (or a strict abort).
    cell_failures: bool,
    /// Golden text / throughput-gate mismatch.
    verify_mismatch: bool,
    /// A record or journal failed schema validation.
    schema_invalid: bool,
}

/// The documented exit-code mapping, most severe first: cell failures
/// (5) over schema problems (4) over verify mismatches (3) over plain
/// errors (1).
fn exit_code(s: RunStatus) -> u8 {
    if s.cell_failures {
        EXIT_CELL_FAILURES
    } else if s.schema_invalid {
        EXIT_SCHEMA
    } else if s.verify_mismatch {
        EXIT_VERIFY
    } else if s.error {
        EXIT_ERROR
    } else {
        EXIT_OK
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: pva-bench list\n\
         \x20      pva-bench <scenario> [--jobs N] [--json DIR] [--out DIR]\n\
         \x20                           [--verify DIR] [--device PRESET] [EXEC FLAGS]\n\
         \x20      pva-bench all [--smoke] [--jobs N] [--json DIR] [--out DIR]\n\
         \x20                    [--verify DIR] [--min-speedup X] [--device PRESET]\n\
         \x20                    [EXEC FLAGS]\n\
         \x20      pva-bench validate FILE...\n\
         \x20      pva-bench diff A.json B.json\n\
         EXEC FLAGS: [--journal PATH] [--resume] [--cell-timeout SECS]\n\
         \x20           [--retries N] [--strict]\n\
         exit codes: 0 ok, 1 error, 2 usage, 3 verify/diff mismatch,\n\
         \x20           4 schema-invalid, 5 cell failures\n\
         run `pva-bench list` for scenario names; --device takes one of: {}",
        device_names()
    );
    std::process::exit(EXIT_USAGE as i32);
}

/// Comma-separated CLI slugs of every shipped device preset.
fn device_names() -> String {
    sdram::DevicePreset::ALL
        .iter()
        .map(|p| p.name())
        .collect::<Vec<_>>()
        .join(", ")
}

struct Options {
    jobs: usize,
    smoke: bool,
    json_dir: Option<String>,
    out_dir: Option<String>,
    verify_dir: Option<String>,
    min_speedup: Option<f64>,
    journal: Option<String>,
    resume: bool,
    /// Per-cell wall-clock budget in seconds; 0 disables.
    cell_timeout: f64,
    retries: u32,
    strict: bool,
}

fn parse_options(args: &[String]) -> Options {
    let mut o = Options {
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        smoke: false,
        json_dir: None,
        out_dir: None,
        verify_dir: None,
        min_speedup: None,
        journal: None,
        resume: false,
        cell_timeout: 120.0,
        retries: 2,
        strict: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{flag} takes a value");
                    std::process::exit(EXIT_USAGE as i32);
                })
                .clone()
        };
        match a.as_str() {
            "--smoke" => o.smoke = true,
            "--jobs" => {
                o.jobs = value("--jobs").parse().unwrap_or_else(|_| {
                    eprintln!("--jobs takes a positive integer");
                    std::process::exit(EXIT_USAGE as i32);
                });
                if o.jobs == 0 {
                    eprintln!("--jobs takes a positive integer");
                    std::process::exit(EXIT_USAGE as i32);
                }
            }
            "--json" => o.json_dir = Some(value("--json")),
            "--out" => o.out_dir = Some(value("--out")),
            "--verify" => o.verify_dir = Some(value("--verify")),
            "--min-speedup" => {
                o.min_speedup = Some(value("--min-speedup").parse().unwrap_or_else(|_| {
                    eprintln!("--min-speedup takes a number");
                    std::process::exit(EXIT_USAGE as i32);
                }))
            }
            "--device" => {
                let name = value("--device");
                let Some(preset) = sdram::DevicePreset::from_name(name.trim()) else {
                    eprintln!(
                        "--device: unknown preset '{name}' (expected one of: {})",
                        device_names()
                    );
                    std::process::exit(EXIT_USAGE as i32);
                };
                // Cells read the selection from the environment (same
                // channel the chaos grid uses for its spec).
                std::env::set_var("PVA_BENCH_DEVICE", preset.name());
            }
            "--journal" => o.journal = Some(value("--journal")),
            "--resume" => o.resume = true,
            "--cell-timeout" => {
                o.cell_timeout = value("--cell-timeout").parse().unwrap_or_else(|_| {
                    eprintln!("--cell-timeout takes seconds (0 disables)");
                    std::process::exit(EXIT_USAGE as i32);
                });
                if !o.cell_timeout.is_finite() || o.cell_timeout < 0.0 {
                    eprintln!("--cell-timeout takes seconds (0 disables)");
                    std::process::exit(EXIT_USAGE as i32);
                }
            }
            "--retries" => {
                o.retries = value("--retries").parse().unwrap_or_else(|_| {
                    eprintln!("--retries takes a non-negative integer");
                    std::process::exit(EXIT_USAGE as i32);
                })
            }
            "--strict" => o.strict = true,
            _ => usage(),
        }
    }
    if o.resume && o.journal.is_none() {
        eprintln!("--resume requires --journal PATH");
        std::process::exit(EXIT_USAGE as i32);
    }
    o
}

fn exec_config(o: &Options) -> ExecConfig {
    ExecConfig {
        jobs: o.jobs,
        policy: ExecPolicy {
            cell_timeout: (o.cell_timeout > 0.0).then(|| Duration::from_secs_f64(o.cell_timeout)),
            retries: o.retries,
            strict: o.strict,
            ..ExecPolicy::default()
        },
        journal: o.journal.as_ref().map(PathBuf::from),
        resume: o.resume,
    }
}

/// Attaches scenario-specific derived metrics to the structured
/// records (the throughput scenario's fast-path speedup; the techsweep
/// scenario's generation-aware scheduler counters). Scenarios with
/// quarantined cells keep empty metrics.
fn attach_metrics(reports: &mut [ScenarioReport]) {
    if let Some(r) = reports.iter_mut().find(|r| r.name == "throughput") {
        if r.record.failures.is_empty() {
            r.record.metrics = throughput_metrics(&r.data);
        }
    }
    if let Some(r) = reports.iter_mut().find(|r| r.name == "techsweep") {
        if r.record.failures.is_empty() {
            r.record.metrics = techsweep_metrics(&r.data);
        }
    }
}

/// File stem of a report's rendered-text output and golden. A
/// device-narrowed run (`--device`) of the device-sensitive techsweep
/// scenario renders a different table per preset, so each preset gets
/// its own golden (`techsweep.<preset>.txt`); JSON records keep the
/// plain name — CI already separates them by directory.
fn text_stem(name: &str) -> String {
    match std::env::var("PVA_BENCH_DEVICE") {
        Ok(d) if name == "techsweep" && !d.is_empty() => format!("{name}.{d}"),
        _ => name.to_string(),
    }
}

fn write_outputs(reports: &[ScenarioReport], opts: &Options) -> Result<(), String> {
    if let Some(dir) = &opts.json_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
        for r in reports {
            let path = format!("{dir}/BENCH_{}.json", r.name);
            std::fs::write(&path, r.record.to_json())
                .map_err(|e| format!("writing {path}: {e}"))?;
        }
    }
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
        for r in reports {
            let path = format!("{dir}/{}.txt", text_stem(r.name));
            std::fs::write(&path, &r.text).map_err(|e| format!("writing {path}: {e}"))?;
        }
    }
    Ok(())
}

/// Diffs rendered text against `<dir>/<stem>.txt` goldens; returns the
/// names that mismatched.
fn verify(reports: &[ScenarioReport], dir: &str) -> Vec<String> {
    let mut bad = Vec::new();
    for r in reports.iter().filter(|r| r.golden) {
        let path = format!("{dir}/{}.txt", text_stem(r.name));
        match std::fs::read_to_string(&path) {
            Ok(golden) if golden == r.text => {}
            Ok(_) => bad.push(format!("{} (differs from {path})", r.name)),
            Err(e) => bad.push(format!("{} (cannot read {path}: {e})", r.name)),
        }
    }
    bad
}

fn gate_speedup(reports: &[ScenarioReport], floor: f64) -> Result<f64, String> {
    let t = reports
        .iter()
        .find(|r| r.name == "throughput")
        .ok_or("--min-speedup given but the throughput scenario did not run")?;
    if !t.record.failures.is_empty() {
        return Err("--min-speedup given but the throughput probe cell was quarantined".into());
    }
    let speedup = throughput_speedup(&t.data);
    if speedup < floor {
        return Err(format!(
            "fast-path speedup {speedup:.2}x is below the --min-speedup floor {floor:.2}x"
        ));
    }
    Ok(speedup)
}

/// Prints quarantined-cell details to stderr; returns how many there
/// were.
fn report_failures(reports: &[ScenarioReport]) -> usize {
    let mut n = 0;
    for r in reports {
        for f in &r.record.failures {
            n += 1;
            eprintln!(
                "cell FAILED: {}: [{}] {} {} after {} attempt(s): {}",
                r.name, f.kind, f.system, f.label, f.attempts, f.message
            );
        }
    }
    n
}

fn run_checked(selected: &[&Scenario], opts: &Options) -> Result<EngineRun, (String, RunStatus)> {
    run_scenarios_checked(selected, &exec_config(opts)).map_err(|e| {
        let status = match &e {
            EngineError::StrictFailure(_) => RunStatus {
                cell_failures: true,
                ..RunStatus::default()
            },
            EngineError::Environment(_) => RunStatus {
                error: true,
                ..RunStatus::default()
            },
        };
        (e.to_string(), status)
    })
}

fn cmd_all(opts: &Options) -> ExitCode {
    let all = scenarios();
    let selected: Vec<&Scenario> = all.iter().filter(|s| !opts.smoke || s.smoke).collect();
    eprintln!(
        "running {} scenario(s) on {} worker(s){}",
        selected.len(),
        opts.jobs,
        if opts.smoke { " [smoke subset]" } else { "" }
    );
    let mut status = RunStatus::default();
    let run = match run_checked(&selected, opts) {
        Ok(run) => run,
        Err((msg, st)) => {
            eprintln!("error: {msg}");
            return ExitCode::from(exit_code(st));
        }
    };
    if run.resumed_cells > 0 {
        eprintln!("resumed {} cell(s) from the journal", run.resumed_cells);
    }
    let mut reports = run.reports;
    attach_metrics(&mut reports);
    if let Err(e) = write_outputs(&reports, opts) {
        eprintln!("error: {e}");
        status.error = true;
    }

    let mut t = pva_bench::report::Table::new(vec![
        "scenario",
        "cells",
        "sim cycles",
        "bytes moved",
        "wall ms",
        "Mcycles/s",
    ]);
    for r in &reports {
        t.row(vec![
            r.name.to_string(),
            r.record.cells.len().to_string(),
            r.record.total_cycles.to_string(),
            r.record.total_bytes.to_string(),
            format!("{:.1}", r.record.wall_ns as f64 / 1e6),
            format!("{:.2}", r.record.sim_cycles_per_sec / 1e6),
        ]);
    }
    println!("{t}");

    if report_failures(&reports) > 0 {
        status.cell_failures = true;
        eprintln!(
            "{} cell(s) quarantined; partial results written (exit code {})",
            run.failed_cells, EXIT_CELL_FAILURES
        );
    }
    if let Some(dir) = &opts.verify_dir {
        let bad = verify(&reports, dir);
        if bad.is_empty() {
            let checked = reports.iter().filter(|r| r.golden).count();
            println!("verify: {checked} scenario(s) byte-identical to {dir}/");
        } else {
            status.verify_mismatch = true;
            for b in &bad {
                eprintln!("verify FAILED: {b}");
            }
        }
    }
    if let Some(floor) = opts.min_speedup {
        match gate_speedup(&reports, floor) {
            Ok(s) => println!("throughput gate: fast-path speedup {s:.2}x >= {floor:.2}x"),
            Err(e) => {
                status.verify_mismatch = true;
                eprintln!("error: {e}");
            }
        }
    }
    ExitCode::from(exit_code(status))
}

fn cmd_one(name: &str, opts: &Options) -> ExitCode {
    let Some(s) = find(name) else {
        eprintln!("unknown scenario '{name}'; run `pva-bench list`");
        return ExitCode::from(EXIT_USAGE);
    };
    let mut status = RunStatus::default();
    let run = match run_checked(&[&s], opts) {
        Ok(run) => run,
        Err((msg, st)) => {
            eprintln!("error: {msg}");
            return ExitCode::from(exit_code(st));
        }
    };
    if run.resumed_cells > 0 {
        eprintln!("resumed {} cell(s) from the journal", run.resumed_cells);
    }
    let mut reports = run.reports;
    attach_metrics(&mut reports);
    if let Err(e) = write_outputs(&reports, opts) {
        eprintln!("error: {e}");
        status.error = true;
    }
    print!("{}", reports[0].text);
    let _ = std::io::stdout().flush();
    if report_failures(&reports) > 0 {
        status.cell_failures = true;
    }
    if let Some(dir) = &opts.verify_dir {
        let bad = verify(&reports, dir);
        if bad.is_empty() {
            if reports.iter().any(|r| r.golden) {
                println!("verify: byte-identical to {dir}/");
            }
        } else {
            status.verify_mismatch = true;
            for b in &bad {
                eprintln!("verify FAILED: {b}");
            }
        }
    }
    ExitCode::from(exit_code(status))
}

fn cmd_list() -> ExitCode {
    let mut t = pva_bench::report::Table::new(vec!["name", "alias", "smoke", "description"]);
    for s in scenarios() {
        t.row(vec![
            s.name.to_string(),
            s.alias.to_string(),
            if s.smoke { "yes" } else { "" }.to_string(),
            s.title.to_string(),
        ]);
    }
    println!("{t}");
    ExitCode::SUCCESS
}

/// Validates one journal file, printing a verdict line.
fn validate_journal(f: &str) -> Result<String, String> {
    match journal::load(std::path::Path::new(f))? {
        None => Ok("empty journal (nothing to resume)".into()),
        Some(r) => Ok(format!(
            "journal for [{}]: {} cell(s), {} failure(s){}",
            r.selection.join(", "),
            r.cells.len(),
            r.failures.len(),
            if r.torn_tail {
                ", torn trailing line (tolerated on resume)"
            } else {
                ""
            }
        )),
    }
}

fn cmd_validate(files: &[String]) -> ExitCode {
    if files.is_empty() {
        usage();
    }
    let mut status = RunStatus::default();
    for f in files {
        let verdict = std::fs::read_to_string(f)
            .map_err(|e| e.to_string())
            .and_then(|text| {
                if text.trim_start().starts_with("{\"journal\"") {
                    validate_journal(f)
                } else {
                    RunRecord::from_json(&text).map(|rec| {
                        format!(
                            "ok ({}, {} cells, {} cycles{}{})",
                            rec.scenario,
                            rec.cells.len(),
                            rec.total_cycles,
                            if rec.resumed > 0 {
                                format!(", {} resumed", rec.resumed)
                            } else {
                                String::new()
                            },
                            if rec.failures.is_empty() {
                                String::new()
                            } else {
                                format!(", {} FAILED cells", rec.failures.len())
                            }
                        )
                    })
                }
            });
        match verdict {
            Ok(line) => println!("{f}: {line}"),
            Err(e) => {
                status.schema_invalid = true;
                eprintln!("{f}: INVALID: {e}");
            }
        }
    }
    ExitCode::from(exit_code(status))
}

/// Compares two run records canonically (wall-clock-derived fields —
/// per-cell and total wall times, throughput, metrics, resumed counts —
/// zeroed on both sides first).
fn cmd_diff(a: &str, b: &str) -> ExitCode {
    let load = |f: &str| -> Result<RunRecord, String> {
        let text = std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?;
        RunRecord::from_json(&text).map_err(|e| format!("{f}: {e}"))
    };
    let (ra, rb) = match (load(a), load(b)) {
        (Ok(ra), Ok(rb)) => (ra, rb),
        (a_res, b_res) => {
            for r in [a_res, b_res] {
                if let Err(e) = r {
                    eprintln!("INVALID: {e}");
                }
            }
            return ExitCode::from(EXIT_SCHEMA);
        }
    };
    let (ca, cb) = (ra.canonical(), rb.canonical());
    if ca == cb {
        println!(
            "identical (canonical): {} — {} cells, {} cycles",
            ca.scenario,
            ca.cells.len(),
            ca.total_cycles
        );
        return ExitCode::SUCCESS;
    }
    eprintln!("records differ (canonical comparison):");
    if ca.scenario != cb.scenario {
        eprintln!("  scenario: {} vs {}", ca.scenario, cb.scenario);
    }
    if ca.total_cycles != cb.total_cycles {
        eprintln!("  total_cycles: {} vs {}", ca.total_cycles, cb.total_cycles);
    }
    if ca.cells.len() != cb.cells.len() {
        eprintln!("  cells: {} vs {}", ca.cells.len(), cb.cells.len());
    } else {
        for (i, (x, y)) in ca.cells.iter().zip(&cb.cells).enumerate() {
            if x != y {
                eprintln!(
                    "  cell {i} ({}/{}): cycles {} vs {}, bytes {} vs {}",
                    x.system, x.label, x.cycles, y.cycles, x.bytes, y.bytes
                );
            }
        }
    }
    if ca.failures != cb.failures {
        eprintln!("  failures: {} vs {}", ca.failures.len(), cb.failures.len());
    }
    ExitCode::from(EXIT_VERIFY)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => usage(),
        Some("list") => cmd_list(),
        Some("validate") => cmd_validate(&args[1..]),
        Some("diff") => match &args[1..] {
            [a, b] => cmd_diff(a, b),
            _ => usage(),
        },
        Some("all") => cmd_all(&parse_options(&args[1..])),
        Some(name) if name.starts_with('-') => usage(),
        Some(name) => cmd_one(name, &parse_options(&args[1..])),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn status(
        error: bool,
        cell_failures: bool,
        verify_mismatch: bool,
        schema_invalid: bool,
    ) -> RunStatus {
        RunStatus {
            error,
            cell_failures,
            verify_mismatch,
            schema_invalid,
        }
    }

    #[test]
    fn exit_codes_are_distinct_and_documented() {
        let codes = [
            EXIT_OK,
            EXIT_ERROR,
            EXIT_USAGE,
            EXIT_VERIFY,
            EXIT_SCHEMA,
            EXIT_CELL_FAILURES,
        ];
        let mut uniq = codes.to_vec();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), codes.len(), "codes must be distinct");
        assert_eq!(codes, [0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn exit_code_mapping_and_precedence() {
        assert_eq!(exit_code(status(false, false, false, false)), EXIT_OK);
        assert_eq!(exit_code(status(true, false, false, false)), EXIT_ERROR);
        assert_eq!(exit_code(status(false, false, true, false)), EXIT_VERIFY);
        assert_eq!(exit_code(status(false, false, false, true)), EXIT_SCHEMA);
        assert_eq!(
            exit_code(status(false, true, false, false)),
            EXIT_CELL_FAILURES
        );
        // Precedence: cell failures > schema > verify > error.
        assert_eq!(
            exit_code(status(true, true, true, true)),
            EXIT_CELL_FAILURES
        );
        assert_eq!(exit_code(status(true, false, true, true)), EXIT_SCHEMA);
        assert_eq!(exit_code(status(true, false, true, false)), EXIT_VERIFY);
    }
}
