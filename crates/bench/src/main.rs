//! `pva-bench` — the unified experiment CLI.
//!
//! ```text
//! pva-bench list
//! pva-bench <scenario> [--jobs N] [--json DIR]
//! pva-bench all [--smoke] [--jobs N] [--json DIR] [--out DIR] [--verify DIR]
//!               [--min-speedup X]
//! pva-bench validate FILE...
//! ```
//!
//! A single scenario prints exactly what its legacy binary printed
//! (goldens live in `results/`). `all` fans every cell of every
//! selected scenario across a work-stealing pool, writes per-scenario
//! text (`--out`) and `BENCH_<name>.json` records (`--json`), and can
//! diff the text against committed goldens (`--verify`). `--min-speedup`
//! gates on the `throughput` scenario's fast-path speedup.

use std::io::Write as _;
use std::process::ExitCode;

use pva_bench::engine::{run_scenarios, RunRecord, Scenario, ScenarioReport};
use pva_bench::scenarios::{find, scenarios, throughput_metrics, throughput_speedup};

fn usage() -> ! {
    eprintln!(
        "usage: pva-bench list\n\
         \x20      pva-bench <scenario> [--jobs N] [--json DIR]\n\
         \x20      pva-bench all [--smoke] [--jobs N] [--json DIR] [--out DIR]\n\
         \x20                    [--verify DIR] [--min-speedup X]\n\
         \x20      pva-bench validate FILE...\n\
         run `pva-bench list` for scenario names"
    );
    std::process::exit(2);
}

struct Options {
    jobs: usize,
    smoke: bool,
    json_dir: Option<String>,
    out_dir: Option<String>,
    verify_dir: Option<String>,
    min_speedup: Option<f64>,
}

fn parse_options(args: &[String]) -> Options {
    let mut o = Options {
        jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
        smoke: false,
        json_dir: None,
        out_dir: None,
        verify_dir: None,
        min_speedup: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("{flag} takes a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match a.as_str() {
            "--smoke" => o.smoke = true,
            "--jobs" => {
                o.jobs = value("--jobs").parse().unwrap_or_else(|_| {
                    eprintln!("--jobs takes a positive integer");
                    std::process::exit(2);
                });
                if o.jobs == 0 {
                    eprintln!("--jobs takes a positive integer");
                    std::process::exit(2);
                }
            }
            "--json" => o.json_dir = Some(value("--json")),
            "--out" => o.out_dir = Some(value("--out")),
            "--verify" => o.verify_dir = Some(value("--verify")),
            "--min-speedup" => {
                o.min_speedup = Some(value("--min-speedup").parse().unwrap_or_else(|_| {
                    eprintln!("--min-speedup takes a number");
                    std::process::exit(2);
                }))
            }
            _ => usage(),
        }
    }
    o
}

/// Attaches scenario-specific derived metrics to the structured
/// records (currently: the throughput scenario's fast-path speedup).
fn attach_metrics(reports: &mut [ScenarioReport]) {
    if let Some(r) = reports.iter_mut().find(|r| r.name == "throughput") {
        r.record.metrics = throughput_metrics(&r.data);
    }
}

fn write_outputs(reports: &[ScenarioReport], opts: &Options) -> Result<(), String> {
    if let Some(dir) = &opts.json_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
        for r in reports {
            let path = format!("{dir}/BENCH_{}.json", r.name);
            std::fs::write(&path, r.record.to_json())
                .map_err(|e| format!("writing {path}: {e}"))?;
        }
    }
    if let Some(dir) = &opts.out_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
        for r in reports {
            let path = format!("{dir}/{}.txt", r.name);
            std::fs::write(&path, &r.text).map_err(|e| format!("writing {path}: {e}"))?;
        }
    }
    Ok(())
}

/// Diffs rendered text against `<dir>/<name>.txt` goldens; returns the
/// names that mismatched.
fn verify(reports: &[ScenarioReport], dir: &str) -> Vec<String> {
    let mut bad = Vec::new();
    for r in reports.iter().filter(|r| r.golden) {
        let path = format!("{dir}/{}.txt", r.name);
        match std::fs::read_to_string(&path) {
            Ok(golden) if golden == r.text => {}
            Ok(_) => bad.push(format!("{} (differs from {path})", r.name)),
            Err(e) => bad.push(format!("{} (cannot read {path}: {e})", r.name)),
        }
    }
    bad
}

fn gate_speedup(reports: &[ScenarioReport], floor: f64) -> Result<f64, String> {
    let t = reports
        .iter()
        .find(|r| r.name == "throughput")
        .ok_or("--min-speedup given but the throughput scenario did not run")?;
    let speedup = throughput_speedup(&t.data);
    if speedup < floor {
        return Err(format!(
            "fast-path speedup {speedup:.2}x is below the --min-speedup floor {floor:.2}x"
        ));
    }
    Ok(speedup)
}

fn cmd_all(opts: &Options) -> ExitCode {
    let all = scenarios();
    let selected: Vec<&Scenario> = all.iter().filter(|s| !opts.smoke || s.smoke).collect();
    eprintln!(
        "running {} scenario(s) on {} worker(s){}",
        selected.len(),
        opts.jobs,
        if opts.smoke { " [smoke subset]" } else { "" }
    );
    let mut reports = run_scenarios(&selected, opts.jobs);
    attach_metrics(&mut reports);
    if let Err(e) = write_outputs(&reports, opts) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }

    let mut t = pva_bench::report::Table::new(vec![
        "scenario",
        "cells",
        "sim cycles",
        "bytes moved",
        "wall ms",
        "Mcycles/s",
    ]);
    for r in &reports {
        t.row(vec![
            r.name.to_string(),
            r.record.cells.len().to_string(),
            r.record.total_cycles.to_string(),
            r.record.total_bytes.to_string(),
            format!("{:.1}", r.record.wall_ns as f64 / 1e6),
            format!("{:.2}", r.record.sim_cycles_per_sec / 1e6),
        ]);
    }
    println!("{t}");

    let mut ok = true;
    if let Some(dir) = &opts.verify_dir {
        let bad = verify(&reports, dir);
        if bad.is_empty() {
            let checked = reports.iter().filter(|r| r.golden).count();
            println!("verify: {checked} scenario(s) byte-identical to {dir}/");
        } else {
            ok = false;
            for b in &bad {
                eprintln!("verify FAILED: {b}");
            }
        }
    }
    if let Some(floor) = opts.min_speedup {
        match gate_speedup(&reports, floor) {
            Ok(s) => println!("throughput gate: fast-path speedup {s:.2}x >= {floor:.2}x"),
            Err(e) => {
                ok = false;
                eprintln!("error: {e}");
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_one(name: &str, opts: &Options) -> ExitCode {
    let Some(s) = find(name) else {
        eprintln!("unknown scenario '{name}'; run `pva-bench list`");
        return ExitCode::from(2);
    };
    let mut reports = run_scenarios(&[&s], opts.jobs);
    attach_metrics(&mut reports);
    if let Err(e) = write_outputs(&reports, opts) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }
    print!("{}", reports[0].text);
    let _ = std::io::stdout().flush();
    ExitCode::SUCCESS
}

fn cmd_list() -> ExitCode {
    let mut t = pva_bench::report::Table::new(vec!["name", "alias", "smoke", "description"]);
    for s in scenarios() {
        t.row(vec![
            s.name.to_string(),
            s.alias.to_string(),
            if s.smoke { "yes" } else { "" }.to_string(),
            s.title.to_string(),
        ]);
    }
    println!("{t}");
    ExitCode::SUCCESS
}

fn cmd_validate(files: &[String]) -> ExitCode {
    if files.is_empty() {
        usage();
    }
    let mut ok = true;
    for f in files {
        let verdict = std::fs::read_to_string(f)
            .map_err(|e| e.to_string())
            .and_then(|text| RunRecord::from_json(&text).map_err(|e| e.to_string()));
        match verdict {
            Ok(rec) => println!(
                "{f}: ok ({}, {} cells, {} cycles)",
                rec.scenario,
                rec.cells.len(),
                rec.total_cycles
            ),
            Err(e) => {
                ok = false;
                eprintln!("{f}: INVALID: {e}");
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => usage(),
        Some("list") => cmd_list(),
        Some("validate") => cmd_validate(&args[1..]),
        Some("all") => cmd_all(&parse_options(&args[1..])),
        Some(name) if name.starts_with('-') => usage(),
        Some(name) => cmd_one(name, &parse_options(&args[1..])),
    }
}
