//! Write-ahead checkpoint journal for resumable campaigns.
//!
//! While a campaign runs, every completed (or quarantined) cell is
//! appended to a JSONL journal — one compact JSON object per line,
//! flushed line-by-line so a SIGKILL loses at most the line being
//! written. On `--resume`, the journal is replayed: cells already
//! recorded are restored (including their original wall times, so the
//! final records match what the uninterrupted run would have produced)
//! and only the remaining cells are simulated.
//!
//! Durability model: a complete line always ends in `\n`, written with
//! a single `write` syscall. A trailing line without `\n` is a torn
//! write from the killed process and is dropped on load (the cell it
//! described simply reruns); a malformed line *before* the tail means
//! the file is not a journal we wrote and is a hard error with line
//! context. All `u64` fields are serialized as decimal strings because
//! `aux` words carry `f64::to_bits` payloads above 2^53, beyond JSON
//! number precision.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;

use crate::engine::CellData;
use crate::json::{self, Value};
use crate::resilient::{CellFailure, FailureKind};

/// Schema identifier in the journal header line.
pub const JOURNAL_SCHEMA: &str = "pva-bench-journal-v1";

/// Default journal file name, next to the JSON output directory.
pub const DEFAULT_JOURNAL: &str = ".pva-bench-journal.jsonl";

fn u64_str(v: u64) -> Value {
    Value::Str(v.to_string())
}

fn parse_u64_str(v: &Value, what: &str) -> Result<u64, String> {
    match v {
        Value::Str(s) => s
            .parse::<u64>()
            .map_err(|_| format!("{what}: '{s}' is not a u64")),
        // Tolerate plain numbers for small fields.
        Value::Num(_) => v.as_u64().ok_or_else(|| format!("{what}: not a u64")),
        _ => Err(format!("{what}: not a u64 string")),
    }
}

fn str_field(v: &Value, k: &str) -> Result<String, String> {
    v.get(k)
        .and_then(Value::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field '{k}'"))
}

fn u64_field(v: &Value, k: &str) -> Result<u64, String> {
    parse_u64_str(
        v.get(k).ok_or_else(|| format!("missing field '{k}'"))?,
        &format!("field '{k}'"),
    )
}

/// Append-mode writer over the journal file.
pub struct Journal {
    file: File,
}

impl Journal {
    /// Starts a fresh journal at `path` (truncating any previous one)
    /// and writes the header line binding it to `selection` — the
    /// scenario names of this run, in order.
    pub fn create(path: &Path, selection: &[&str]) -> std::io::Result<Journal> {
        let mut file = File::create(path)?;
        let header = Value::Obj(vec![
            ("journal".into(), Value::Str(JOURNAL_SCHEMA.into())),
            (
                "selection".into(),
                Value::Arr(
                    selection
                        .iter()
                        .map(|s| Value::Str((*s).to_string()))
                        .collect(),
                ),
            ),
        ]);
        Journal::write_line(&mut file, &header)?;
        Ok(Journal { file })
    }

    /// Reopens `path` for appending after a resume: the file is first
    /// truncated to `valid_bytes` (dropping a torn trailing line), then
    /// new completions append after the replayed ones.
    pub fn resume(path: &Path, valid_bytes: u64) -> std::io::Result<Journal> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        file.set_len(valid_bytes)?;
        let mut file = OpenOptions::new().append(true).open(path)?;
        file.flush()?;
        Ok(Journal { file })
    }

    fn write_line(file: &mut File, v: &Value) -> std::io::Result<()> {
        let mut line = v.to_json_compact();
        line.push('\n');
        // One write call per line: a kill between lines tears at most
        // the line in flight, which load() drops.
        file.write_all(line.as_bytes())?;
        file.flush()
    }

    /// Appends a completed cell.
    pub fn record_cell(
        &mut self,
        scenario: &str,
        cell: usize,
        system: &str,
        label: &str,
        data: &CellData,
        wall_ns: u64,
    ) -> std::io::Result<()> {
        let v = Value::Obj(vec![
            ("type".into(), Value::Str("cell".into())),
            ("scenario".into(), Value::Str(scenario.into())),
            ("cell".into(), Value::Num(cell as f64)),
            ("system".into(), Value::Str(system.into())),
            ("label".into(), Value::Str(label.into())),
            ("cycles".into(), u64_str(data.cycles)),
            ("bytes".into(), u64_str(data.bytes)),
            ("wall_ns".into(), u64_str(wall_ns)),
            (
                "aux".into(),
                Value::Arr(data.aux.iter().map(|&a| u64_str(a)).collect()),
            ),
            ("text".into(), Value::Str(data.text.clone())),
        ]);
        Journal::write_line(&mut self.file, &v)
    }

    /// Appends a quarantined cell failure.
    pub fn record_failure(
        &mut self,
        scenario: &str,
        cell: usize,
        failure: &CellFailure,
    ) -> std::io::Result<()> {
        let v = Value::Obj(vec![
            ("type".into(), Value::Str("failure".into())),
            ("scenario".into(), Value::Str(scenario.into())),
            ("cell".into(), Value::Num(cell as f64)),
            ("system".into(), Value::Str(failure.system.clone())),
            ("label".into(), Value::Str(failure.label.clone())),
            ("kind".into(), Value::Str(failure.kind.as_str().into())),
            ("attempts".into(), Value::Num(failure.attempts as f64)),
            ("message".into(), Value::Str(failure.message.clone())),
        ]);
        Journal::write_line(&mut self.file, &v)
    }
}

/// One replayed cell completion.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayCell {
    /// Memory-system column.
    pub system: String,
    /// Grid label.
    pub label: String,
    /// The cell's measured data.
    pub data: CellData,
    /// Wall time of the original computation, restored verbatim so the
    /// resumed record matches the uninterrupted one.
    pub wall_ns: u64,
}

/// Everything recoverable from a journal file.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Scenario names the journal was created for, in run order.
    pub selection: Vec<String>,
    /// Completed cells, keyed by `(scenario, cell index)`.
    pub cells: HashMap<(String, usize), ReplayCell>,
    /// Quarantined failures, keyed the same way.
    pub failures: HashMap<(String, usize), CellFailure>,
    /// Byte length of the valid prefix (through the last `\n`).
    pub valid_bytes: u64,
    /// Whether a torn trailing line was dropped.
    pub torn_tail: bool,
}

/// Loads a journal for resume. Returns `Ok(None)` when the file does
/// not exist or holds no complete header line (nothing to resume);
/// `Err` with line context when a complete line is malformed.
pub fn load(path: &Path) -> Result<Option<Replay>, String> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let valid = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |p| p + 1);
    let torn_tail = valid < bytes.len();
    let text = std::str::from_utf8(&bytes[..valid])
        .map_err(|e| format!("{}: journal is not UTF-8: {e}", path.display()))?;
    let mut lines = text.lines().enumerate();
    let Some((_, header_line)) = lines.next() else {
        return Ok(None);
    };
    let header =
        json::parse(header_line).map_err(|e| format!("{}: line 1: {e}", path.display()))?;
    let schema = header
        .get("journal")
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{}: line 1: not a pva-bench journal", path.display()))?;
    if schema != JOURNAL_SCHEMA {
        return Err(format!(
            "{}: unknown journal schema '{schema}' (expected '{JOURNAL_SCHEMA}')",
            path.display()
        ));
    }
    let selection = header
        .get("selection")
        .and_then(Value::as_arr)
        .ok_or_else(|| format!("{}: line 1: missing 'selection' array", path.display()))?
        .iter()
        .map(|v| {
            v.as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("{}: line 1: non-string selection entry", path.display()))
        })
        .collect::<Result<Vec<_>, _>>()?;

    let mut replay = Replay {
        selection,
        valid_bytes: valid as u64,
        torn_tail,
        ..Replay::default()
    };
    for (idx, line) in lines {
        let lineno = idx + 1;
        let at = |msg: String| format!("{}: line {lineno}: {msg}", path.display());
        let v = json::parse(line).map_err(|e| at(e.to_string()))?;
        let kind = str_field(&v, "type").map_err(&at)?;
        let scenario = str_field(&v, "scenario").map_err(&at)?;
        let cell = v
            .get("cell")
            .and_then(Value::as_u64)
            .ok_or_else(|| at("missing cell index".into()))? as usize;
        let key = (scenario, cell);
        match kind.as_str() {
            "cell" => {
                let aux = v
                    .get("aux")
                    .and_then(Value::as_arr)
                    .ok_or_else(|| at("missing 'aux' array".into()))?
                    .iter()
                    .map(|a| parse_u64_str(a, "aux entry"))
                    .collect::<Result<Vec<_>, _>>()
                    .map_err(&at)?;
                let data = CellData {
                    cycles: u64_field(&v, "cycles").map_err(&at)?,
                    bytes: u64_field(&v, "bytes").map_err(&at)?,
                    aux,
                    text: str_field(&v, "text").map_err(&at)?,
                };
                let cell = ReplayCell {
                    system: str_field(&v, "system").map_err(&at)?,
                    label: str_field(&v, "label").map_err(&at)?,
                    data,
                    wall_ns: u64_field(&v, "wall_ns").map_err(&at)?,
                };
                replay.cells.insert(key, cell);
            }
            "failure" => {
                let kind_str = str_field(&v, "kind").map_err(&at)?;
                let failure = CellFailure {
                    system: str_field(&v, "system").map_err(&at)?,
                    label: str_field(&v, "label").map_err(&at)?,
                    kind: FailureKind::parse(&kind_str)
                        .ok_or_else(|| at(format!("unknown failure kind '{kind_str}'")))?,
                    attempts: u64_field(&v, "attempts").map_err(&at)? as u32,
                    message: str_field(&v, "message").map_err(&at)?,
                };
                replay.failures.insert(key, failure);
            }
            other => return Err(at(format!("unknown journal line type '{other}'"))),
        }
    }
    Ok(Some(replay))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pva-bench-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn journal_round_trips_cells_and_failures() {
        let path = tmp("round_trip.jsonl");
        let mut j = Journal::create(&path, &["alpha", "beta"]).unwrap();
        let data = CellData {
            cycles: 123,
            bytes: 456,
            // A float bit pattern above 2^53 — the reason for string u64s.
            aux: vec![f64::to_bits(2.32), u64::MAX],
            text: "multi\nline\ttext".into(),
        };
        j.record_cell("alpha", 0, "pva-sdram", "copy/s16", &data, 987)
            .unwrap();
        let failure = CellFailure {
            system: "pva-sram".into(),
            label: "scale/s2".into(),
            kind: FailureKind::Timeout,
            attempts: 3,
            message: "cell exceeded its 0.100s wall-clock budget".into(),
        };
        j.record_failure("beta", 4, &failure).unwrap();
        drop(j);

        let replay = load(&path).unwrap().expect("journal present");
        assert_eq!(replay.selection, ["alpha", "beta"]);
        assert!(!replay.torn_tail);
        let cell = &replay.cells[&("alpha".to_string(), 0)];
        assert_eq!(cell.system, "pva-sdram");
        assert_eq!(cell.wall_ns, 987);
        assert_eq!(cell.data, data);
        assert_eq!(cell.data.aux[1], u64::MAX);
        assert_eq!(replay.failures[&("beta".to_string(), 4)], failure);
    }

    #[test]
    fn missing_file_is_a_fresh_start() {
        assert!(load(&tmp("never_written.jsonl")).unwrap().is_none());
    }

    #[test]
    fn torn_trailing_line_is_dropped_and_resume_truncates() {
        let path = tmp("torn.jsonl");
        let mut j = Journal::create(&path, &["alpha"]).unwrap();
        j.record_cell("alpha", 0, "s", "l", &CellData::cycles(1, 2), 3)
            .unwrap();
        drop(j);
        let clean_len = std::fs::metadata(&path).unwrap().len();
        // Simulate a SIGKILL mid-write: half a JSON line, no newline.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"{\"type\":\"cell\",\"scenario\":\"alph")
            .unwrap();
        drop(f);

        let replay = load(&path).unwrap().expect("journal present");
        assert!(replay.torn_tail);
        assert_eq!(replay.valid_bytes, clean_len);
        assert_eq!(replay.cells.len(), 1);

        let mut j = Journal::resume(&path, replay.valid_bytes).unwrap();
        j.record_cell("alpha", 1, "s", "l", &CellData::cycles(4, 5), 6)
            .unwrap();
        drop(j);
        let replay = load(&path).unwrap().unwrap();
        assert!(!replay.torn_tail);
        assert_eq!(replay.cells.len(), 2);
    }

    #[test]
    fn malformed_complete_line_errors_with_line_number() {
        let path = tmp("malformed.jsonl");
        let mut j = Journal::create(&path, &["alpha"]).unwrap();
        j.record_cell("alpha", 0, "s", "l", &CellData::default(), 0)
            .unwrap();
        drop(j);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"this is not json\n").unwrap();
        drop(f);
        let err = load(&path).unwrap_err();
        assert!(err.contains("line 3"), "{err}");
    }

    #[test]
    fn empty_and_headerless_files_start_fresh() {
        let path = tmp("empty.jsonl");
        std::fs::write(&path, "").unwrap();
        assert!(load(&path).unwrap().is_none());
        // A torn header (no newline) is also nothing-to-resume.
        std::fs::write(&path, "{\"journal\":\"pva-b").unwrap();
        assert!(load(&path).unwrap().is_none());
    }

    #[test]
    fn wrong_schema_is_rejected() {
        let path = tmp("wrong_schema.jsonl");
        std::fs::write(&path, "{\"journal\":\"other-v9\",\"selection\":[]}\n").unwrap();
        assert!(load(&path).unwrap_err().contains("unknown journal schema"));
    }
}
