//! # pva-bench — data generation for every table and figure
//!
//! Each table/figure of the paper's evaluation has one data-generation
//! function here, shared by a regeneration binary (`src/bin/…`, prints
//! the series) and a criterion bench (`benches/figures.rs`, measures the
//! simulation itself). See `EXPERIMENTS.md` for the paper-vs-measured
//! record.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use kernels::{run_cell, run_point, Alignment, CellResult, Kernel, SystemKind, STRIDES};
use pva_sim::{PvaConfig, RowPolicy};

pub mod campaign;
pub mod engine;
pub mod journal;
pub mod json;
pub mod report;
pub mod resilient;
pub mod scenarios;

/// One row of the figure-7/8 stride sweeps: a kernel at a stride, with
/// min/max cycles per system over the five alignments.
#[derive(Debug, Clone)]
pub struct StrideSweepRow {
    /// Kernel name.
    pub kernel: &'static str,
    /// Element stride.
    pub stride: u64,
    /// Cells in [`SystemKind::ALL`] order.
    pub cells: Vec<(SystemKind, CellResult)>,
}

/// Figure 7 (copy, saxpy, scale) or figure 8 (swap, tridiag, vaxpy):
/// each kernel swept over the six strides on all four systems.
pub fn stride_sweep(kernels: &[Kernel]) -> Vec<StrideSweepRow> {
    let mut rows = Vec::new();
    for &k in kernels {
        for &s in &STRIDES {
            rows.push(StrideSweepRow {
                kernel: k.name(),
                stride: s,
                cells: SystemKind::ALL
                    .iter()
                    .map(|&sys| (sys, run_cell(k, s, sys)))
                    .collect(),
            });
        }
    }
    rows
}

/// One row of the figure-9/10 fixed-stride comparisons: a kernel with
/// per-system cycles *normalized to the PVA-SDRAM minimum* (the
/// percentage annotations of the paper's bars).
#[derive(Debug, Clone)]
pub struct FixedStrideRow {
    /// Kernel name.
    pub kernel: &'static str,
    /// Per-system (cycles-min, cycles-max, normalized-%-of-pva-min).
    pub cells: Vec<(SystemKind, CellResult, f64)>,
}

/// Figure 9 (strides 1 and 4) / figure 10 (8, 16, 19): all eight access
/// patterns at one stride.
pub fn fixed_stride(stride: u64) -> Vec<FixedStrideRow> {
    Kernel::ALL
        .iter()
        .map(|&k| {
            let pva_min = run_cell(k, stride, SystemKind::PvaSdram).min;
            FixedStrideRow {
                kernel: k.name(),
                cells: SystemKind::ALL
                    .iter()
                    .map(|&sys| {
                        let cell = run_cell(k, stride, sys);
                        let pct = 100.0 * cell.min as f64 / pva_min as f64;
                        (sys, cell, pct)
                    })
                    .collect(),
            }
        })
        .collect()
}

/// One point of the figure-11 vaxpy detail: stride x alignment on the
/// PVA-SDRAM and PVA-SRAM systems.
#[derive(Debug, Clone)]
pub struct VaxpyDetailPoint {
    /// Element stride.
    pub stride: u64,
    /// Alignment preset.
    pub alignment: &'static str,
    /// PVA over SDRAM cycles.
    pub sdram: u64,
    /// PVA over idealized SRAM cycles.
    pub sram: u64,
}

/// Figure 11: vaxpy across strides and relative alignments, SDRAM vs
/// SRAM back ends.
pub fn vaxpy_detail() -> Vec<VaxpyDetailPoint> {
    let mut out = Vec::new();
    for &stride in &STRIDES {
        for a in Alignment::ALL {
            out.push(VaxpyDetailPoint {
                stride,
                alignment: a.name(),
                sdram: run_point(Kernel::Vaxpy, stride, a, SystemKind::PvaSdram),
                sram: run_point(Kernel::Vaxpy, stride, a, SystemKind::PvaSram),
            });
        }
    }
    out
}

/// The abstract's headline numbers, recomputed on this model.
#[derive(Debug, Clone, Copy)]
pub struct Headline {
    /// Largest speedup of PVA-SDRAM (min) over the cache-line serial
    /// system across the whole design space ("up to 32.8x" in the
    /// paper), and where it occurred.
    pub vs_cacheline: (f64, &'static str, u64),
    /// Largest speedup over the gathering serial system ("3.3x faster
    /// than a pipelined vector unit").
    pub vs_serial_gather: (f64, &'static str, u64),
    /// Worst unit-stride ratio of cache-line serial to PVA ("without
    /// hurting normal cache line fill performance": >= ~1.0 means the
    /// PVA matches line fills).
    pub unit_stride_parity: f64,
    /// Worst-case SDRAM/SRAM ratio over the vaxpy detail (paper: at most
    /// ~15% slower, figure 11).
    pub sram_gap: f64,
}

/// Recomputes the headline claims from full sweeps.
pub fn headline() -> Headline {
    let mut vs_cl: (f64, &'static str, u64) = (0.0, "", 0);
    let mut vs_sg: (f64, &'static str, u64) = (0.0, "", 0);
    let mut parity = f64::MAX;
    for k in Kernel::ALL {
        for &s in &STRIDES {
            let pva = run_cell(k, s, SystemKind::PvaSdram).min as f64;
            let cl = run_cell(k, s, SystemKind::CachelineSerial).min as f64;
            let sg = run_cell(k, s, SystemKind::SerialGather).min as f64;
            if cl / pva > vs_cl.0 {
                vs_cl = (cl / pva, k.name(), s);
            }
            if sg / pva > vs_sg.0 {
                vs_sg = (sg / pva, k.name(), s);
            }
            if s == 1 {
                parity = parity.min(cl / pva);
            }
        }
    }
    let mut gap: f64 = 1.0;
    for p in vaxpy_detail() {
        gap = gap.max(p.sdram as f64 / p.sram as f64);
    }
    Headline {
        vs_cacheline: vs_cl,
        vs_serial_gather: vs_sg,
        unit_stride_parity: parity,
        sram_gap: gap,
    }
}

/// One configuration of the scheduler-ablation study and its cycles on
/// probes chosen to be *scheduler-bound* rather than staging-bus-bound
/// (at full pipelining the 17-cycle/command BC-bus floor hides the
/// scheduler entirely — itself a finding the `ablation_scheduler` bench
/// reports).
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Human-readable configuration label.
    pub label: &'static str,
    /// Single-command gather latency at a non-power-of-two stride
    /// (exercises the FHC path and the §5.2.3 bypass paths).
    pub latency_s5: u64,
    /// vaxpy at stride 16, coincident alignment: every vector in one
    /// external bank, rows conflicting (row policy + open promotion).
    pub vaxpy_s16: u64,
    /// Alternating single-bank reads/writes (polarity rule +
    /// out-of-order issue).
    pub rw_mix_s16: u64,
}

/// The ablation configurations of §5.2, in presentation order.
pub fn ablation_configs() -> Vec<(&'static str, PvaConfig)> {
    let mut out = vec![("baseline (all features)", PvaConfig::default())];

    let mut c = PvaConfig::default();
    c.options.out_of_order = false;
    out.push(("no out-of-order issue", c));

    let mut c = PvaConfig::default();
    c.options.promote_opens = false;
    out.push(("no open/precharge promotion", c));

    let mut c = PvaConfig::default();
    c.options.bypass_paths = false;
    out.push(("no bypass paths", c));

    let mut c = PvaConfig::default();
    c.options.row_policy = RowPolicy::PaperLiteral;
    out.push(("row policy: paper-literal", c));

    let mut c = PvaConfig::default();
    c.options.row_policy = RowPolicy::AlwaysClose;
    out.push(("row policy: always close", c));

    let mut c = PvaConfig::default();
    c.options.row_policy = RowPolicy::AlwaysOpen;
    out.push(("row policy: always open", c));

    let mut c = PvaConfig::default();
    c.options.row_policy = RowPolicy::AlphaHistory;
    out.push(("row policy: 21174 4-bit history", c));

    out
}

/// Ablation probe 1: single-command gather latency at stride 5
/// (non-power-of-two — FHC + §5.2.3 bypass paths).
pub fn ablation_latency_s5(cfg: PvaConfig) -> u64 {
    use pva_core::Vector;
    use pva_sim::{HostRequest, PvaUnit};
    let mut unit = PvaUnit::new(cfg).expect("valid config");
    let v = Vector::new(0, 5, 32).expect("valid vector");
    unit.run(vec![HostRequest::Read { vector: v }])
        .expect("runs")
        .cycles
}

/// Ablation probe 2: vaxpy at stride 16, coincident alignment
/// (bank-bound, row-conflict heavy — the scheduler's home turf).
pub fn ablation_vaxpy_s16(label: &'static str, cfg: PvaConfig) -> u64 {
    use memsys::MemorySystem;
    let k = Kernel::Vaxpy;
    let bases = Alignment::Coincident.bases(k.array_count(), kernels::ARRAY_REGION);
    let trace = k.trace(&bases, 16, kernels::ELEMENTS, kernels::LINE_WORDS);
    memsys::PvaSystem::with_config(label, cfg)
        .run_trace(&trace)
        .cycles
}

/// Ablation probe 3: alternating read/write commands all hitting one
/// bank (polarity rule + out-of-order issue).
pub fn ablation_rw_mix_s16(cfg: PvaConfig) -> u64 {
    use pva_core::Vector;
    use pva_sim::{HostRequest, PvaUnit};
    let mut unit = PvaUnit::new(cfg).expect("valid config");
    let reqs: Vec<HostRequest> = (0..8u64)
        .map(|i| {
            let v = Vector::new(i * 512 * 16, 16, 32).expect("valid vector");
            if i % 2 == 0 {
                HostRequest::Read { vector: v }
            } else {
                HostRequest::Write {
                    vector: v,
                    data: vec![0; 32],
                }
            }
        })
        .collect();
    unit.run(reqs).expect("runs").cycles
}

/// Ablations of the §5.2 design choices: out-of-order issue, open/
/// precharge promotion, bypass paths, and the four row policies.
pub fn ablations() -> Vec<AblationRow> {
    ablation_configs()
        .into_iter()
        .map(|(label, cfg)| AblationRow {
            label,
            latency_s5: ablation_latency_s5(cfg),
            vaxpy_s16: ablation_vaxpy_s16(label, cfg),
            rw_mix_s16: ablation_rw_mix_s16(cfg),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_sweep_has_expected_shape() {
        let rows = stride_sweep(&[Kernel::Scale]);
        assert_eq!(rows.len(), STRIDES.len());
        for r in &rows {
            assert_eq!(r.cells.len(), 4);
        }
    }

    #[test]
    fn fixed_stride_normalizes_to_pva_min() {
        let rows = fixed_stride(1);
        for r in &rows {
            let (sys, _, pct) = r.cells[0];
            assert_eq!(sys, SystemKind::PvaSdram);
            assert!((pct - 100.0).abs() < 1e-9, "{}: {pct}", r.kernel);
        }
    }

    #[test]
    fn headline_directions_are_right() {
        let h = headline();
        assert!(h.vs_cacheline.0 > 5.0, "big win at large strides");
        assert!(h.vs_serial_gather.0 > 1.0, "beats serial gathering");
        assert!(h.unit_stride_parity > 0.7, "line fills not hurt");
        assert!(h.sram_gap < 1.5, "close to SRAM");
    }

    #[test]
    fn ablations_cover_all_switches() {
        let rows = ablations();
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().all(|r| r.latency_s5 > 0));
        // The bypass-path ablation must show up in single-command
        // latency (the §5.2.3 claim).
        let base = rows[0].latency_s5;
        let no_bypass = rows
            .iter()
            .find(|r| r.label.contains("bypass"))
            .expect("bypass row present")
            .latency_s5;
        assert!(no_bypass > base, "bypass paths reduce idle latency");
    }
}
