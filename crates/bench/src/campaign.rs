//! Seeded fault-injection campaign over the Table-2 kernels.
//!
//! Sweeps fault scenario × kernel, running each kernel's vector trace
//! through a faulty [`PvaUnit`] while a golden map tracks every word the
//! campaign wrote. Each gathered line is checked end to end: a wrong
//! word covered by the completion's `faulted` flag counts as *flagged*
//! (detected, delivered honestly); a wrong word without the flag is a
//! *silent* corruption. With ECC on and single-bit fault mechanisms,
//! the campaign must report zero silent corruptions — the repeatable,
//! seeded form of the robustness acceptance criterion.

use std::collections::{HashMap, HashSet};

use kernels::Kernel;
use memsys::OpKind;
use pva_core::{PvaError, Vector};
use pva_sim::{HostRequest, PvaConfig, PvaUnit};

/// Campaign-wide knobs. Everything downstream is a pure function of
/// these, so a report is reproducible from its config alone.
#[derive(Debug, Clone, Copy)]
pub struct CampaignConfig {
    /// Master fault seed (propagated into every device).
    pub seed: u64,
    /// Application-vector length per kernel (1024 in the paper; use a
    /// smaller multiple of the line length for smoke runs).
    pub elements: u64,
    /// Element stride shared by every vector.
    pub stride: u64,
    /// Whether the devices encode/decode SEC-DED.
    pub ecc: bool,
    /// Transient flip rate for the `transient` scenario (ppm of reads).
    pub transient_ppm: u32,
    /// Stuck-cell rate for the `stuck` scenario (ppm of words).
    pub stuck_ppm: u32,
    /// Attempts each cell gets before it is quarantined (at least 1):
    /// a cell that panics is retried from scratch, and only a cell that
    /// fails every attempt lands in
    /// [`CampaignReport::quarantined`].
    pub max_attempts: u32,
    /// Chaos hook: kernel whose cells panic at the start of every
    /// attempt. Used by the chaos tests to prove quarantine keeps the
    /// sibling cells alive; `None` in real campaigns.
    pub inject_panic: Option<&'static str>,
}

impl CampaignConfig {
    /// The full-size campaign at the paper's 1024-element vectors.
    pub fn full(seed: u64) -> Self {
        CampaignConfig {
            seed,
            elements: 1024,
            stride: 1,
            ecc: true,
            transient_ppm: 20_000,
            stuck_ppm: 20_000,
            max_attempts: 2,
            inject_panic: None,
        }
    }

    /// A small, fast configuration for CI smoke runs.
    pub fn smoke(seed: u64) -> Self {
        CampaignConfig {
            elements: 128,
            transient_ppm: 100_000,
            stuck_ppm: 100_000,
            ..Self::full(seed)
        }
    }
}

/// Outcome of one kernel × scenario cell.
#[derive(Debug, Clone, Copy)]
pub struct CellOutcome {
    /// Kernel name.
    pub kernel: &'static str,
    /// Scenario label.
    pub scenario: &'static str,
    /// Simulated cycles across the whole trace.
    pub cycles: u64,
    /// Device counter: single-bit errors the SEC-DED code corrected.
    pub corrected: u64,
    /// Device counter: detected-uncorrectable (poisoned) reads.
    pub detected: u64,
    /// Device counter: wrong data delivered without the poison flag.
    pub device_silent: u64,
    /// Device counter: transient flips injected.
    pub transient_faults: u64,
    /// Device counter: words lost to refresh decay.
    pub decayed_words: u64,
    /// Elements delivered with the completion's `faulted` flag.
    pub flagged_elements: u64,
    /// End-to-end mismatches that *were* covered by a flag.
    pub flagged_mismatches: u64,
    /// End-to-end mismatches with no flag — silent corruption as the
    /// application would experience it.
    pub silent_mismatches: u64,
    /// The watchdog aborted the cell.
    pub hung: bool,
    /// Attempts it took to produce this outcome (1 = first try).
    pub attempts: u32,
}

/// A cell that failed every attempt and was dropped from the results,
/// leaving its siblings intact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedCell {
    /// Kernel name.
    pub kernel: &'static str,
    /// Scenario label.
    pub scenario: &'static str,
    /// Attempts made before giving up.
    pub attempts: u32,
    /// Classified cause, e.g. `[panic] chaos: injected campaign panic`.
    pub message: String,
}

/// Aggregated campaign results.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// The configuration that produced the report.
    pub config: CampaignConfig,
    /// One outcome per kernel × scenario that completed.
    pub cells: Vec<CellOutcome>,
    /// Cells that failed every attempt; the rest of the sweep is
    /// unaffected (graceful degradation).
    pub quarantined: Vec<QuarantinedCell>,
}

impl CampaignReport {
    /// Total silent corruptions: device-level plus end-to-end.
    pub fn total_silent(&self) -> u64 {
        self.cells
            .iter()
            .map(|c| c.device_silent + c.silent_mismatches)
            .sum()
    }

    /// Total ECC corrections across all cells.
    pub fn total_corrected(&self) -> u64 {
        self.cells.iter().map(|c| c.corrected).sum()
    }

    /// Total detected-uncorrectable reads across all cells.
    pub fn total_detected(&self) -> u64 {
        self.cells.iter().map(|c| c.detected).sum()
    }

    /// Number of cells the watchdog had to abort.
    pub fn hung_cells(&self) -> usize {
        self.cells.iter().filter(|c| c.hung).count()
    }
}

/// The fault scenarios of the sweep, as ready-to-run unit configs.
pub fn scenarios(cc: &CampaignConfig) -> Vec<(&'static str, PvaConfig)> {
    let mut base = PvaConfig::default();
    base.sdram.ecc = cc.ecc;
    base.sdram.fault.seed = cc.seed;
    base.watchdog_cycles = 200_000;
    let mut out = Vec::new();
    {
        let mut c = base;
        c.sdram.fault.transient_ppm = cc.transient_ppm;
        out.push(("transient", c));
    }
    {
        let mut c = base;
        c.sdram.fault.stuck_ppm = cc.stuck_ppm;
        out.push(("stuck", c));
    }
    {
        // On-schedule refresh must keep retention satisfied under load:
        // the expected outcome of this scenario is zero faults.
        let mut c = base;
        c.sdram.refresh_interval = 781;
        c.sdram.fault.retention_cycles = 3_000;
        out.push(("decay", c));
    }
    {
        let mut c = base;
        c.sdram.fault.hard_failed_bank = Some(0);
        out.push(("hard-bank-remap", c));
    }
    {
        let mut c = base;
        c.sdram.fault.hard_failed_bank = Some(0);
        c.degradation = false;
        out.push(("hard-bank-flagged", c));
    }
    {
        // Refresh storm (Chang et al., PAPERS.md): demand traffic has
        // crowded AUTO REFRESH out entirely (interval 0 = the refresh
        // engine starved), so rows ride on raw retention — and the
        // retention window is shorter than the streaming kernels'
        // re-activation gaps, so rows decay mid-kernel. (With refresh
        // *enabled* this model refreshes punctually — refresh preempts
        // scheduling — so decay cannot occur; the `decay` scenario
        // above is that negative control.) A transient overlay
        // occasionally lands a second flipped bit on a decayed word,
        // turning a corrected read into a detected-uncorrectable one
        // and driving the cranked bank-level read-retry path.
        let mut c = base;
        c.sdram.refresh_interval = 0;
        c.sdram.fault.retention_cycles = 80;
        c.sdram.fault.transient_ppm = cc.transient_ppm;
        c.max_read_retries = 7;
        c.retry_backoff_cycles = 16;
        out.push(("refresh-storm", c));
    }
    out
}

/// Runs the whole campaign: every base kernel under every scenario.
///
/// Each cell is isolated: a panicking cell is retried from scratch up
/// to [`CampaignConfig::max_attempts`] times (a fresh unit and golden
/// map per attempt, so the retry is deterministic), and a cell that
/// fails every attempt is quarantined without aborting its siblings.
pub fn run_campaign(cc: &CampaignConfig) -> CampaignReport {
    let mut cells = Vec::new();
    let mut quarantined = Vec::new();
    let max_attempts = cc.max_attempts.max(1);
    for (name, unit_cfg) in scenarios(cc) {
        for k in Kernel::BASE {
            let mut attempt = 1;
            loop {
                match crate::resilient::catch_classified(|| run_cell(cc, k, name, unit_cfg)) {
                    Ok(mut cell) => {
                        cell.attempts = attempt;
                        cells.push(cell);
                        break;
                    }
                    Err(e) if attempt >= max_attempts => {
                        quarantined.push(QuarantinedCell {
                            kernel: k.name(),
                            scenario: name,
                            attempts: attempt,
                            message: format!("[{}] {}", e.kind, e.message),
                        });
                        break;
                    }
                    Err(_) => attempt += 1,
                }
            }
        }
    }
    CampaignReport {
        config: *cc,
        cells,
        quarantined,
    }
}

/// Deterministic word value for address `addr`, version `v` (version 0
/// is the priming fill; later writes bump it so overwrites are visible).
fn synth(seed: u64, addr: u64, v: u64) -> u64 {
    (addr ^ seed ^ (v << 56)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs one kernel's trace against one faulty unit, comparing every
/// gathered word against the golden map.
fn run_cell(
    cc: &CampaignConfig,
    kernel: Kernel,
    scenario: &'static str,
    unit_cfg: PvaConfig,
) -> CellOutcome {
    if cc.inject_panic == Some(kernel.name()) {
        panic!(
            "chaos: injected campaign panic in {}/{scenario}",
            kernel.name()
        );
    }
    let bases = [0u64, 1 << 20, 2 << 20];
    let trace = kernel.trace(&bases, cc.stride, cc.elements, unit_cfg.line_words);

    // Priming pass: any vector that is read before the trace ever writes
    // it gets filled up front (through the unit, so hard-bank remapping
    // applies to the fill exactly as it will to the kernel's accesses).
    let mut prime: Vec<Vector> = Vec::new();
    {
        let mut known: HashSet<u64> = HashSet::new();
        for op in &trace {
            match op.kind {
                OpKind::Read => {
                    if op.vector.addresses().all(|a| !known.contains(&a)) {
                        prime.push(op.vector);
                        known.extend(op.vector.addresses());
                    }
                }
                OpKind::Write => known.extend(op.vector.addresses()),
            }
        }
    }

    let mut out = CellOutcome {
        kernel: kernel.name(),
        scenario,
        cycles: 0,
        corrected: 0,
        detected: 0,
        device_silent: 0,
        transient_faults: 0,
        decayed_words: 0,
        flagged_elements: 0,
        flagged_mismatches: 0,
        silent_mismatches: 0,
        hung: false,
        attempts: 1,
    };
    let mut unit = PvaUnit::new(unit_cfg).expect("campaign configs are valid");
    let mut golden: HashMap<u64, u64> = HashMap::new();

    // Priming fills (version 0), then the kernel's own ops; trace
    // writes carry versioned data so overwrites are distinguishable.
    let mut ops: Vec<HostRequest> = prime
        .into_iter()
        .map(|v| HostRequest::Write {
            data: v.addresses().map(|a| synth(cc.seed, a, 0)).collect(),
            vector: v,
        })
        .collect();
    for (i, op) in trace.iter().enumerate() {
        ops.push(match op.kind {
            OpKind::Read => HostRequest::Read { vector: op.vector },
            OpKind::Write => HostRequest::Write {
                vector: op.vector,
                data: op
                    .vector
                    .addresses()
                    .map(|a| synth(cc.seed, a, 1 + i as u64))
                    .collect(),
            },
        });
    }

    // Ops run one at a time so each gathered line is checked before the
    // next op, and so a hang is attributed to the op that caused it.
    // The per-op deadline checkpoint keeps campaign cells cooperative
    // when the caller armed a wall-clock budget.
    for op in ops {
        memsys::deadline::checkpoint();
        if let HostRequest::Write { vector, data } = &op {
            for (a, &d) in vector.addresses().zip(data.iter()) {
                golden.insert(a, d);
            }
        }
        let vector = *op.vector();
        let result = match unit.run(vec![op]) {
            Ok(r) => r,
            Err(PvaError::Watchdog { .. }) => {
                out.hung = true;
                break;
            }
            Err(e) => panic!("campaign request failed: {e}"),
        };
        out.cycles += result.cycles;
        let c = &result.completions[0];
        out.flagged_elements += c.faulted.len() as u64;
        if let Some(data) = &c.data {
            for (j, &w) in data.iter().enumerate() {
                let addr = vector.element(j as u64);
                if let Some(&expected) = golden.get(&addr) {
                    if w != expected {
                        if c.faulted.contains(&(j as u64)) {
                            out.flagged_mismatches += 1;
                        } else {
                            out.silent_mismatches += 1;
                        }
                    }
                }
            }
        }
    }

    let s = unit.sdram_stats();
    out.corrected = s.corrected;
    out.detected = s.detected_uncorrectable;
    out.device_silent = s.silent;
    out.transient_faults = s.transient_faults;
    out.decayed_words = s.decayed_words;
    out
}
