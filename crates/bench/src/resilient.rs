//! Resilient cell execution: panic isolation, wall-clock deadlines,
//! bounded retry with jittered backoff, and structured failure records.
//!
//! Each scenario cell is a pure closure over deterministic simulations,
//! so a failure is either a bug (panic), a configuration that simulates
//! far longer than budgeted (timeout via [`memsys::deadline`]), or a
//! genuine hang that never reaches a cooperative checkpoint (watchdog
//! trip). This module runs one cell under `catch_unwind`, optionally on
//! a watchdog-supervised thread, classifies the outcome, and retries a
//! bounded number of times with seeded exponential backoff before
//! quarantining the cell as a [`CellFailure`].

use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Once;
use std::time::{Duration, Instant};

use memsys::deadline::{self, DeadlineExceeded};
use pva_core::SplitMix64;

use crate::engine::{CellData, Work};

/// How a cell failed, after all retries were exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The cell's closure panicked.
    Panic,
    /// The cell hit its wall-clock deadline at a cooperative
    /// checkpoint ([`memsys::deadline::checkpoint`]).
    Timeout,
    /// The cell blew through deadline *and* grace without reaching a
    /// checkpoint; its thread was abandoned by the watchdog.
    WatchdogTrip,
}

impl FailureKind {
    /// Stable identifier used in journals and run records.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
            FailureKind::WatchdogTrip => "watchdog-trip",
        }
    }

    /// Parses the stable identifier back (journal replay).
    pub fn parse(s: &str) -> Option<FailureKind> {
        match s {
            "panic" => Some(FailureKind::Panic),
            "timeout" => Some(FailureKind::Timeout),
            "watchdog-trip" => Some(FailureKind::WatchdogTrip),
            _ => None,
        }
    }
}

impl std::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A quarantined cell: identity, classification, and the (wall-clock
/// free, hence deterministic) message from its final attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Memory-system column of the failed cell.
    pub system: String,
    /// Grid label of the failed cell.
    pub label: String,
    /// Classification of the final attempt.
    pub kind: FailureKind,
    /// Total attempts made (1 + retries actually used).
    pub attempts: u32,
    /// Human-readable cause (panic payload / budget description).
    pub message: String,
}

/// Retry/deadline policy for cell execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecPolicy {
    /// Wall-clock budget per attempt; `None` disables deadlines and the
    /// watchdog (cells still run under `catch_unwind`).
    pub cell_timeout: Option<Duration>,
    /// Retries after the first failed attempt.
    pub retries: u32,
    /// Extra wall-clock slack past the deadline before the watchdog
    /// abandons a cell thread that never reached a checkpoint.
    pub watchdog_grace: Duration,
    /// Base delay of the exponential backoff between attempts.
    pub backoff_base: Duration,
    /// Fail fast: abort the run on the first exhausted cell instead of
    /// quarantining it.
    pub strict: bool,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy {
            cell_timeout: None,
            retries: 2,
            watchdog_grace: Duration::from_secs(2),
            backoff_base: Duration::from_millis(25),
            strict: false,
        }
    }
}

/// One attempt's failure, before retry accounting.
#[derive(Debug, Clone)]
pub struct AttemptError {
    /// Classification of this attempt.
    pub kind: FailureKind,
    /// Deterministic description of the cause.
    pub message: String,
}

std::thread_local! {
    // Armed while a cell closure runs so the process panic hook stays
    // quiet about unwinds we catch and classify ourselves.
    static SILENCE_PANICS: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Installs (once, process-wide) a panic hook that suppresses the
/// default stderr backtrace for panics the resilient executor catches,
/// while leaving every other panic's reporting untouched.
pub fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SILENCE_PANICS.with(|s| s.get()) {
                prev(info);
            }
        }));
    });
}

fn classify_payload(
    payload: Box<dyn std::any::Any + Send>,
    limit: Option<Duration>,
) -> AttemptError {
    if let Some(d) = payload.downcast_ref::<DeadlineExceeded>() {
        let budget = limit.unwrap_or(d.limit).as_secs_f64();
        return AttemptError {
            kind: FailureKind::Timeout,
            message: format!("cell exceeded its {budget:.3}s wall-clock budget"),
        };
    }
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    AttemptError {
        kind: FailureKind::Panic,
        message,
    }
}

/// Runs an arbitrary closure under the quiet panic hook, classifying
/// any unwind exactly as cell attempts are classified (a
/// [`DeadlineExceeded`] payload becomes [`FailureKind::Timeout`],
/// everything else [`FailureKind::Panic`]). The fault campaign's
/// per-cell isolation shares this path.
pub fn catch_classified<R>(f: impl FnOnce() -> R) -> Result<R, AttemptError> {
    install_quiet_hook();
    struct Unsilence;
    impl Drop for Unsilence {
        fn drop(&mut self) {
            SILENCE_PANICS.with(|s| s.set(false));
        }
    }
    SILENCE_PANICS.with(|s| s.set(true));
    let _guard = Unsilence;
    panic::catch_unwind(AssertUnwindSafe(f)).map_err(|p| classify_payload(p, None))
}

fn run_silenced(work: Work) -> std::thread::Result<CellData> {
    struct Unsilence;
    impl Drop for Unsilence {
        fn drop(&mut self) {
            SILENCE_PANICS.with(|s| s.set(false));
        }
    }
    SILENCE_PANICS.with(|s| s.set(true));
    let _guard = Unsilence;
    panic::catch_unwind(AssertUnwindSafe(work))
}

/// Runs one attempt of a cell under isolation. With a timeout, the cell
/// runs on its own watchdog-supervised thread and a cooperative
/// deadline is armed ([`memsys::deadline::with_deadline`]); without
/// one, it runs inline under `catch_unwind` only. Returns the cell
/// data plus the attempt's wall time in nanoseconds.
pub fn attempt_once(work: Work, policy: &ExecPolicy) -> Result<(CellData, u64), AttemptError> {
    install_quiet_hook();
    let t0 = Instant::now();
    let Some(limit) = policy.cell_timeout else {
        return run_silenced(work)
            .map(|d| (d, t0.elapsed().as_nanos() as u64))
            .map_err(|p| classify_payload(p, None));
    };
    let (tx, rx) = mpsc::channel::<std::thread::Result<CellData>>();
    // A plain (non-scoped) thread: if it wedges, the watchdog abandons
    // it and the process can still make progress / exit.
    let handle = std::thread::Builder::new()
        .name("pva-bench-cell".into())
        .spawn(move || {
            let result = run_silenced(Box::new(move || deadline::with_deadline(limit, work)));
            // The watchdog may have given up on us; a dead receiver is fine.
            let _ = tx.send(result);
        })
        .expect("spawn cell thread");
    match rx.recv_timeout(limit + policy.watchdog_grace) {
        Ok(result) => {
            let _ = handle.join();
            result
                .map(|d| (d, t0.elapsed().as_nanos() as u64))
                .map_err(|p| classify_payload(p, Some(limit)))
        }
        Err(_) => {
            // Deliberately do NOT join: the cell never reached a
            // checkpoint, so the thread may never terminate.
            drop(handle);
            Err(AttemptError {
                kind: FailureKind::WatchdogTrip,
                message: format!(
                    "cell unresponsive past its {:.3}s budget plus {:.3}s grace; thread abandoned",
                    limit.as_secs_f64(),
                    policy.watchdog_grace.as_secs_f64()
                ),
            })
        }
    }
}

/// Seeded, jittered exponential backoff delay before retry `attempt`
/// (1-based: the delay taken before the first retry is `attempt == 1`).
/// The jitter is ±50%, seeded from the cell identity so reruns sleep
/// identically.
pub fn backoff_delay(policy: &ExecPolicy, scenario: &str, cell: usize, attempt: u32) -> Duration {
    let base = policy.backoff_base.as_nanos() as u64;
    let exp = base.saturating_mul(1u64 << attempt.min(16));
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in scenario.bytes() {
        seed = (seed ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    seed = (seed ^ cell as u64).wrapping_mul(0x100_0000_01b3);
    seed = (seed ^ attempt as u64).wrapping_mul(0x100_0000_01b3);
    let jitter = SplitMix64::new(seed).next_u64() % (exp.max(1));
    // exp/2 .. 3*exp/2
    Duration::from_nanos(exp / 2 + jitter)
}

/// Runs a cell to completion or quarantine: the first attempt consumes
/// `work`; each retry rebuilds the closure via `rebuild` (cell closures
/// are `FnOnce`). Returns the data + wall time of the successful
/// attempt, or the failure of the final attempt with the attempt count.
pub fn run_cell(
    work: Work,
    rebuild: impl Fn() -> Option<Work>,
    policy: &ExecPolicy,
    scenario: &str,
    cell: usize,
) -> Result<(CellData, u64), (AttemptError, u32)> {
    let mut attempt = 0u32;
    let mut current = Some(work);
    loop {
        attempt += 1;
        let w = match current.take() {
            Some(w) => w,
            // The scenario no longer produces this cell index (cannot
            // happen for fn-pointer builds, but fail structurally
            // rather than panic if it ever does).
            None => {
                return Err((
                    AttemptError {
                        kind: FailureKind::Panic,
                        message: format!(
                            "cell {cell} vanished from scenario '{scenario}' on retry"
                        ),
                    },
                    attempt,
                ))
            }
        };
        match attempt_once(w, policy) {
            Ok(done) => return Ok(done),
            Err(e) => {
                if attempt > policy.retries {
                    return Err((e, attempt));
                }
                std::thread::sleep(backoff_delay(policy, scenario, cell, attempt));
                current = rebuild();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(policy_timeout: Option<Duration>) -> ExecPolicy {
        ExecPolicy {
            cell_timeout: policy_timeout,
            retries: 2,
            watchdog_grace: Duration::from_millis(200),
            backoff_base: Duration::from_millis(1),
            strict: false,
        }
    }

    #[test]
    fn success_passes_data_through() {
        let (d, wall) = attempt_once(
            Box::new(|| CellData::cycles(7, 3)),
            &quick(Some(Duration::from_secs(5))),
        )
        .expect("succeeds");
        assert_eq!((d.cycles, d.bytes), (7, 3));
        assert!(wall > 0);
    }

    #[test]
    fn panic_is_classified_with_payload() {
        let err = attempt_once(Box::new(|| panic!("boom {}", 42)), &quick(None)).unwrap_err();
        assert_eq!(err.kind, FailureKind::Panic);
        assert_eq!(err.message, "boom 42");
    }

    #[test]
    fn cooperative_timeout_is_classified() {
        let err = attempt_once(
            Box::new(|| {
                let t0 = Instant::now();
                while t0.elapsed() < Duration::from_secs(10) {
                    deadline::checkpoint();
                    std::thread::sleep(Duration::from_millis(1));
                }
                CellData::default()
            }),
            &quick(Some(Duration::from_millis(20))),
        )
        .unwrap_err();
        assert_eq!(err.kind, FailureKind::Timeout);
        assert!(err.message.contains("wall-clock budget"), "{}", err.message);
    }

    #[test]
    fn hard_hang_trips_the_watchdog() {
        let err = attempt_once(
            // Never checkpoints: sleeps straight through budget + grace.
            Box::new(|| {
                std::thread::sleep(Duration::from_millis(600));
                CellData::default()
            }),
            &quick(Some(Duration::from_millis(20))),
        )
        .unwrap_err();
        assert_eq!(err.kind, FailureKind::WatchdogTrip);
    }

    #[test]
    fn retry_recovers_from_transient_panics() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static TRIES: AtomicU32 = AtomicU32::new(0);
        TRIES.store(0, Ordering::SeqCst);
        let mk = || -> Work {
            Box::new(|| {
                if TRIES.fetch_add(1, Ordering::SeqCst) < 2 {
                    panic!("transient");
                }
                CellData::cycles(1, 1)
            })
        };
        let (d, _) = run_cell(mk(), || Some(mk()), &quick(None), "t", 0).expect("third try lands");
        assert_eq!(d.cycles, 1);
        assert_eq!(TRIES.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn exhausted_retries_quarantine_with_attempt_count() {
        let mk = || -> Work { Box::new(|| panic!("always")) };
        let (err, attempts) =
            run_cell(mk(), || Some(mk()), &quick(None), "t", 1).expect_err("always fails");
        assert_eq!(err.kind, FailureKind::Panic);
        assert_eq!(attempts, 3); // 1 + 2 retries
    }

    #[test]
    fn backoff_is_deterministic_and_grows() {
        let p = ExecPolicy::default();
        let d1 = backoff_delay(&p, "scen", 4, 1);
        assert_eq!(d1, backoff_delay(&p, "scen", 4, 1));
        // Jitter is bounded: attempt k sits in [base*2^k / 2, base*2^k * 1.5].
        for k in 1..=4u32 {
            let d = backoff_delay(&p, "scen", 4, k);
            let exp = p.backoff_base.as_nanos() as u64 * (1 << k);
            let d = d.as_nanos() as u64;
            assert!(
                d >= exp / 2 && d <= exp + exp / 2,
                "attempt {k}: {d} vs {exp}"
            );
        }
    }

    #[test]
    fn failure_kind_identifiers_round_trip() {
        for k in [
            FailureKind::Panic,
            FailureKind::Timeout,
            FailureKind::WatchdogTrip,
        ] {
            assert_eq!(FailureKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(FailureKind::parse("nope"), None);
    }
}
