//! Minimal hand-rolled JSON value, emitter and parser.
//!
//! The workspace deliberately carries zero external dependencies, so
//! the experiment engine's `BENCH_*.json` records are serialized with
//! this module instead of serde. Object key order is preserved
//! (insertion order), which keeps emitted records deterministic and
//! diff-friendly; the parser accepts any RFC-8259 document.

use std::fmt::Write as _;

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (integers are exact up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole non-negative
    /// number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes with two-space indentation and a trailing newline.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    /// Serializes onto a single line with no trailing newline — the
    /// form used for journal (JSONL) lines, where one record must never
    /// span lines.
    pub fn to_json_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Value::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null"); // JSON has no NaN/inf
    } else if n.fract() == 0.0 && n.abs() <= 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n:?}"); // shortest round-tripping form
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

/// A parse failure with byte-offset and line/column context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub offset: usize,
    /// 1-based line of the failure.
    pub line: usize,
    /// 1-based column (in bytes) of the failure.
    pub column: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at line {}, column {} (byte {}): {}",
            self.line, self.column, self.offset, self.message
        )
    }
}

/// 1-based (line, column) of a byte offset within `input`. Offsets past
/// the end report the position just after the last byte.
pub fn line_col(input: &[u8], offset: usize) -> (usize, usize) {
    let upto = offset.min(input.len());
    let line = 1 + input[..upto].iter().filter(|&&b| b == b'\n').count();
    let col = 1 + upto
        - input[..upto]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
    (line, col)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        let (line, column) = line_col(self.bytes, self.pos);
        ParseError {
            offset: self.pos,
            line,
            column,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates are not recombined; records never
                            // contain astral-plane text.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar value.
                    let rest = &self.bytes[self.pos..];
                    let s_rest = std::str::from_utf8(rest)
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = s_rest.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let v = Value::Obj(vec![
            ("schema".into(), Value::Str("pva-bench-record-v1".into())),
            ("count".into(), Value::Num(42.0)),
            ("ratio".into(), Value::Num(1.5)),
            ("ok".into(), Value::Bool(true)),
            ("nothing".into(), Value::Null),
            (
                "cells".into(),
                Value::Arr(vec![
                    Value::Obj(vec![("cycles".into(), Value::Num(1088.0))]),
                    Value::Obj(vec![]),
                ]),
            ),
        ]);
        let text = v.to_json();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_emit_without_decimal_point() {
        assert_eq!(Value::Num(1088.0).to_json(), "1088\n");
        assert_eq!(Value::Num(1.5).to_json(), "1.5\n");
    }

    #[test]
    fn escapes_round_trip() {
        let v = Value::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\": ").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn parses_standard_forms() {
        assert_eq!(parse("-3.25e2").unwrap(), Value::Num(-325.0));
        assert_eq!(
            parse("  [true, null, \"\\u0041\"]  ").unwrap(),
            Value::Arr(vec![Value::Bool(true), Value::Null, Value::Str("A".into())])
        );
    }

    #[test]
    fn compact_form_is_single_line_and_round_trips() {
        let v = parse("{\"a\": 1, \"b\": [true, null, \"x\"], \"c\": {}}").unwrap();
        let compact = v.to_json_compact();
        assert_eq!(compact, "{\"a\":1,\"b\":[true,null,\"x\"],\"c\":{}}");
        assert!(!compact.contains('\n'));
        assert_eq!(parse(&compact).unwrap(), v);
    }

    #[test]
    fn parse_errors_carry_line_and_column() {
        let err = parse("{\n  \"a\": 1,\n  \"b\": ?\n}").unwrap_err();
        assert_eq!((err.line, err.column), (3, 8));
        let shown = err.to_string();
        assert!(shown.contains("line 3, column 8"), "{shown}");
        // Offsets past the end (truncated document) still locate.
        let err = parse("[1,\n2,").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn line_col_maps_offsets() {
        let b = b"ab\ncd\n";
        assert_eq!(line_col(b, 0), (1, 1));
        assert_eq!(line_col(b, 2), (1, 3));
        assert_eq!(line_col(b, 3), (2, 1));
        assert_eq!(line_col(b, 4), (2, 2));
        assert_eq!(line_col(b, 6), (3, 1));
        assert_eq!(line_col(b, 999), (3, 1));
    }

    #[test]
    fn get_and_accessors() {
        let v = parse("{\"a\": 1, \"b\": [\"x\"]}").unwrap();
        assert_eq!(v.get("a").and_then(Value::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Value::as_arr).map(|a| a.len()), Some(1));
        assert!(v.get("missing").is_none());
    }
}
