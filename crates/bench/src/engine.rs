//! The experiment engine: declarative scenarios, a work-stealing
//! thread pool, and structured run records.
//!
//! A [`Scenario`] declares a grid of independent [`CellSpec`]s plus a
//! pure `render` function that turns the cell results into the exact
//! text the old per-figure binaries printed. The engine fans the cells
//! of one or many scenarios across worker threads (results are ordered
//! by cell index, so the output is identical at any `--jobs` value) and
//! assembles a [`RunRecord`] per scenario for the `BENCH_<name>.json`
//! side channel.
//!
//! Execution is resilient (see [`crate::resilient`]): each cell runs
//! under `catch_unwind` with an optional wall-clock deadline and
//! bounded retries, failures are quarantined into the record's
//! `failures` section instead of aborting siblings, and — when a
//! journal path is configured — every completion is checkpointed to a
//! write-ahead JSONL journal ([`crate::journal`]) so a killed run
//! resumes where it left off with identical final output.

use std::collections::VecDeque;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Mutex};

use crate::journal::{self, Journal};
use crate::json::{self, Value};
use crate::resilient::{self, CellFailure, ExecPolicy, FailureKind};

/// Schema identifier stamped into every emitted record.
pub const SCHEMA: &str = "pva-bench-record-v2";

/// The previous schema; still accepted by [`RunRecord::from_json`]
/// (records without `failures`/`resumed` fields).
pub const SCHEMA_V1: &str = "pva-bench-record-v1";

/// The measured output of one cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellData {
    /// Simulated cycles attributed to this cell (0 for analytic cells).
    pub cycles: u64,
    /// Bytes moved across the memory interface by this cell.
    pub bytes: u64,
    /// Scenario-specific numbers the `render` function needs beyond
    /// cycles/bytes (floats are stashed via `f64::to_bits`).
    pub aux: Vec<u64>,
    /// Pre-rendered text fragment, for monolithic scenarios whose
    /// render is the identity.
    pub text: String,
}

impl CellData {
    /// A cell that is just a cycle count plus bytes moved.
    pub fn cycles(cycles: u64, bytes: u64) -> Self {
        CellData {
            cycles,
            bytes,
            ..CellData::default()
        }
    }

    /// A cell with auxiliary values for the renderer.
    pub fn with_aux(cycles: u64, bytes: u64, aux: Vec<u64>) -> Self {
        CellData {
            cycles,
            bytes,
            aux,
            ..CellData::default()
        }
    }

    /// A monolithic cell carrying fully rendered text.
    pub fn text(cycles: u64, bytes: u64, text: String) -> Self {
        CellData {
            cycles,
            bytes,
            text,
            ..CellData::default()
        }
    }
}

/// The work closure of a cell.
pub type Work = Box<dyn FnOnce() -> CellData + Send>;

/// One independent unit of work in a scenario's grid.
pub struct CellSpec {
    /// Memory system (or configuration) the cell exercises.
    pub system: String,
    /// Grid coordinates, e.g. `"copy/s16"`.
    pub label: String,
    /// The computation.
    pub work: Work,
}

impl CellSpec {
    /// Builds a cell.
    pub fn new(
        system: impl Into<String>,
        label: impl Into<String>,
        work: impl FnOnce() -> CellData + Send + 'static,
    ) -> Self {
        CellSpec {
            system: system.into(),
            label: label.into(),
            work: Box::new(work),
        }
    }
}

/// A declarative experiment: a named grid of cells plus a renderer
/// that reproduces the legacy figure/table text byte-for-byte.
pub struct Scenario {
    /// Canonical name; also the golden/text/JSON file stem.
    pub name: &'static str,
    /// Short CLI alias (`pva-bench fig7`), or `""`.
    pub alias: &'static str,
    /// One-line description for `pva-bench list`.
    pub title: &'static str,
    /// Included in the `--smoke` subset?
    pub smoke: bool,
    /// Has a committed golden at `results/<name>.txt`?
    pub golden: bool,
    /// Produces the cell grid.
    pub build: fn() -> Vec<CellSpec>,
    /// Renders the cell results (in build order) into the report text.
    pub render: fn(&[CellData]) -> String,
}

/// One cell's row in a [`RunRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Memory system / configuration name.
    pub system: String,
    /// Grid coordinates.
    pub label: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Wall-clock nanoseconds spent computing the cell.
    pub wall_ns: u64,
}

/// The structured result of running one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Schema identifier ([`SCHEMA`]; [`SCHEMA_V1`] when parsed from an
    /// old record).
    pub schema: String,
    /// Scenario name.
    pub scenario: String,
    /// Scenario title.
    pub title: String,
    /// Per-cell measurements, in grid order (quarantined cells appear
    /// zeroed; see `failures`).
    pub cells: Vec<CellRecord>,
    /// Sum of cell cycles.
    pub total_cycles: u64,
    /// Sum of cell bytes.
    pub total_bytes: u64,
    /// Sum of cell wall times (CPU-seconds of simulation, independent
    /// of the worker count).
    pub wall_ns: u64,
    /// Simulation throughput: `total_cycles / wall seconds`.
    pub sim_cycles_per_sec: f64,
    /// Scenario-specific derived figures (e.g. the throughput
    /// scenario's fast-path speedup), attached after the run; empty for
    /// most scenarios.
    pub metrics: Vec<(String, f64)>,
    /// Number of cells restored from a checkpoint journal rather than
    /// simulated in this process.
    pub resumed: u64,
    /// Cells quarantined after exhausting retries, in grid order.
    pub failures: Vec<CellFailure>,
}

impl RunRecord {
    /// Serializes the record as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let cells: Vec<Value> = self
            .cells
            .iter()
            .map(|c| {
                Value::Obj(vec![
                    ("system".into(), Value::Str(c.system.clone())),
                    ("label".into(), Value::Str(c.label.clone())),
                    ("cycles".into(), Value::Num(c.cycles as f64)),
                    ("bytes".into(), Value::Num(c.bytes as f64)),
                    ("wall_ns".into(), Value::Num(c.wall_ns as f64)),
                ])
            })
            .collect();
        let failures: Vec<Value> = self
            .failures
            .iter()
            .map(|f| {
                Value::Obj(vec![
                    ("system".into(), Value::Str(f.system.clone())),
                    ("label".into(), Value::Str(f.label.clone())),
                    ("kind".into(), Value::Str(f.kind.as_str().into())),
                    ("attempts".into(), Value::Num(f.attempts as f64)),
                    ("message".into(), Value::Str(f.message.clone())),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".into(), Value::Str(self.schema.clone())),
            ("scenario".into(), Value::Str(self.scenario.clone())),
            ("title".into(), Value::Str(self.title.clone())),
            ("cells".into(), Value::Arr(cells)),
            ("total_cycles".into(), Value::Num(self.total_cycles as f64)),
            ("total_bytes".into(), Value::Num(self.total_bytes as f64)),
            ("wall_ns".into(), Value::Num(self.wall_ns as f64)),
            (
                "sim_cycles_per_sec".into(),
                Value::Num(self.sim_cycles_per_sec),
            ),
            (
                "metrics".into(),
                Value::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v)))
                        .collect(),
                ),
            ),
            ("resumed".into(), Value::Num(self.resumed as f64)),
            ("failures".into(), Value::Arr(failures)),
        ])
        .to_json()
    }

    /// Parses and schema-validates a record. Accepts the current
    /// [`SCHEMA`] and the previous [`SCHEMA_V1`] (whose records have no
    /// `failures`/`resumed` fields).
    pub fn from_json(text: &str) -> Result<RunRecord, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field '{k}'"));
        let str_field = |k: &str| {
            field(k)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("field '{k}' is not a string"))
        };
        let u64_field = |val: &Value, k: &str| {
            val.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("field '{k}' is not an unsigned integer"))
        };
        let schema = str_field("schema")?;
        if schema != SCHEMA && schema != SCHEMA_V1 {
            return Err(format!(
                "unknown schema '{schema}' (expected '{SCHEMA}' or '{SCHEMA_V1}')"
            ));
        }
        let cells = field("cells")?
            .as_arr()
            .ok_or("field 'cells' is not an array")?
            .iter()
            .map(|c| {
                Ok(CellRecord {
                    system: c
                        .get("system")
                        .and_then(Value::as_str)
                        .ok_or("cell field 'system' is not a string")?
                        .to_string(),
                    label: c
                        .get("label")
                        .and_then(Value::as_str)
                        .ok_or("cell field 'label' is not a string")?
                        .to_string(),
                    cycles: u64_field(c, "cycles")?,
                    bytes: u64_field(c, "bytes")?,
                    wall_ns: u64_field(c, "wall_ns")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let failures = match v.get("failures") {
            None => Vec::new(),
            Some(Value::Arr(items)) => items
                .iter()
                .map(|f| {
                    let kind_str = f
                        .get("kind")
                        .and_then(Value::as_str)
                        .ok_or("failure field 'kind' is not a string")?;
                    Ok(CellFailure {
                        system: f
                            .get("system")
                            .and_then(Value::as_str)
                            .ok_or("failure field 'system' is not a string")?
                            .to_string(),
                        label: f
                            .get("label")
                            .and_then(Value::as_str)
                            .ok_or("failure field 'label' is not a string")?
                            .to_string(),
                        kind: FailureKind::parse(kind_str)
                            .ok_or_else(|| format!("unknown failure kind '{kind_str}'"))?,
                        attempts: u64_field(f, "attempts")? as u32,
                        message: f
                            .get("message")
                            .and_then(Value::as_str)
                            .ok_or("failure field 'message' is not a string")?
                            .to_string(),
                    })
                })
                .collect::<Result<Vec<_>, String>>()?,
            Some(_) => return Err("field 'failures' is not an array".into()),
        };
        Ok(RunRecord {
            schema,
            scenario: str_field("scenario")?,
            title: str_field("title")?,
            cells,
            total_cycles: u64_field(&v, "total_cycles")?,
            total_bytes: u64_field(&v, "total_bytes")?,
            wall_ns: u64_field(&v, "wall_ns")?,
            sim_cycles_per_sec: field("sim_cycles_per_sec")?
                .as_f64()
                .ok_or("field 'sim_cycles_per_sec' is not a number")?,
            metrics: match v.get("metrics") {
                None => Vec::new(),
                Some(Value::Obj(pairs)) => pairs
                    .iter()
                    .map(|(k, val)| {
                        val.as_f64()
                            .map(|f| (k.clone(), f))
                            .ok_or_else(|| format!("metric '{k}' is not a number"))
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                Some(_) => return Err("field 'metrics' is not an object".into()),
            },
            resumed: match v.get("resumed") {
                None => 0,
                Some(r) => r
                    .as_u64()
                    .ok_or("field 'resumed' is not an unsigned integer")?,
            },
            failures,
        })
    }

    /// The record with every wall-clock-derived field zeroed: cell and
    /// total `wall_ns`, `sim_cycles_per_sec`, derived `metrics`, and
    /// the `resumed` count. Two runs of the same scenario — including a
    /// killed-and-resumed one — must compare equal under `canonical()`;
    /// everything left is simulation-derived and deterministic.
    pub fn canonical(&self) -> RunRecord {
        let mut r = self.clone();
        r.wall_ns = 0;
        r.sim_cycles_per_sec = 0.0;
        r.resumed = 0;
        r.metrics.clear();
        for c in &mut r.cells {
            c.wall_ns = 0;
        }
        r
    }
}

/// A completed scenario: rendered text, structured record, and the raw
/// cell data (for callers that post-process, e.g. the throughput gate).
#[derive(Debug)]
pub struct ScenarioReport {
    /// Scenario name.
    pub name: &'static str,
    /// Whether a committed golden exists for the text.
    pub golden: bool,
    /// The exact text the legacy binary printed (or, when cells were
    /// quarantined, a deterministic failure summary).
    pub text: String,
    /// The structured record.
    pub record: RunRecord,
    /// Raw cell results, in grid order (quarantined cells are
    /// `CellData::default()`).
    pub data: Vec<CellData>,
}

/// How to execute a batch of scenarios.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Worker threads.
    pub jobs: usize,
    /// Isolation / retry / deadline policy.
    pub policy: ExecPolicy,
    /// Write-ahead journal path; `None` disables checkpointing.
    pub journal: Option<PathBuf>,
    /// Replay a prior journal at `journal` before executing (skipping
    /// completed cells); ignored when the file is missing or empty.
    pub resume: bool,
}

impl ExecConfig {
    /// A plain configuration: `jobs` workers, default policy, no
    /// journal.
    pub fn with_jobs(jobs: usize) -> Self {
        ExecConfig {
            jobs,
            policy: ExecPolicy::default(),
            journal: None,
            resume: false,
        }
    }
}

/// Why [`run_scenarios_checked`] gave up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The environment failed the run: unreadable or mismatched
    /// journal, journal write error.
    Environment(String),
    /// A cell exhausted its retries while `strict` was set.
    StrictFailure(String),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Environment(m) => f.write_str(m),
            EngineError::StrictFailure(m) => write!(f, "strict: {m}"),
        }
    }
}

/// The outcome of [`run_scenarios_checked`].
#[derive(Debug)]
pub struct EngineRun {
    /// Per-scenario reports, in selection order.
    pub reports: Vec<ScenarioReport>,
    /// Cells restored from the journal instead of simulated.
    pub resumed_cells: usize,
    /// Cells quarantined after exhausting retries (sum over scenarios).
    pub failed_cells: usize,
}

/// Runs a batch of scenarios, fanning every cell of every scenario
/// across `jobs` workers. Results are deterministic in content and
/// order for any `jobs >= 1`. Panics if any cell fails after retries —
/// use [`run_scenarios_checked`] for quarantine semantics.
pub fn run_scenarios(scenarios: &[&Scenario], jobs: usize) -> Vec<ScenarioReport> {
    let run = run_scenarios_checked(scenarios, &ExecConfig::with_jobs(jobs))
        .expect("engine run succeeds");
    if let Some(f) = run
        .reports
        .iter()
        .flat_map(|r| r.record.failures.iter())
        .next()
    {
        panic!(
            "cell {}/{} failed after {} attempt(s): {}",
            f.system, f.label, f.attempts, f.message
        );
    }
    run.reports
}

enum Slot {
    Done(CellData, u64),
    Failed(CellFailure),
}

/// Deterministic report text for a scenario with quarantined cells (the
/// renderer is never called on partial data — some renderers index into
/// `aux`).
fn failure_text(name: &str, failures: &[CellFailure]) -> String {
    let mut out = format!(
        "{name}: {} cell(s) quarantined; report not rendered\n",
        failures.len()
    );
    for f in failures {
        out.push_str(&format!(
            "  [{}] {} {} after {} attempt(s): {}\n",
            f.kind, f.system, f.label, f.attempts, f.message
        ));
    }
    out
}

/// A not-yet-executed cell on the pool's deques:
/// `(global submission index, scenario index, cell index, work)`.
type PendingCell = (usize, usize, usize, Work);

/// Runs a batch of scenarios under a full [`ExecConfig`]: resilient
/// per-cell execution, optional write-ahead journaling, and resume.
///
/// Returns `Err` on environmental problems (unreadable/mismatched
/// journal, journal write failure) and — in `strict` mode — on the
/// first quarantined cell. Cell failures in non-strict mode are *not*
/// errors: they are quarantined into each record's `failures` list and
/// counted in [`EngineRun::failed_cells`].
pub fn run_scenarios_checked(
    scenarios: &[&Scenario],
    cfg: &ExecConfig,
) -> Result<EngineRun, EngineError> {
    let env = EngineError::Environment;
    let names: Vec<&str> = scenarios.iter().map(|s| s.name).collect();
    if cfg.journal.is_some() {
        let mut uniq = names.clone();
        uniq.sort_unstable();
        uniq.dedup();
        if uniq.len() != names.len() {
            return Err(env(
                "journaling requires unique scenario names in the selection".into(),
            ));
        }
    }

    let replay = match (&cfg.journal, cfg.resume) {
        (Some(path), true) => journal::load(path).map_err(env)?,
        _ => None,
    };
    if let Some(r) = &replay {
        if r.selection
            .iter()
            .map(String::as_str)
            .ne(names.iter().copied())
        {
            return Err(env(format!(
                "journal selection [{}] does not match this run's selection [{}]; \
                 re-run without --resume to start over",
                r.selection.join(", "),
                names.join(", ")
            )));
        }
    }

    // Partition cells: replayed (from the journal) vs pending work.
    let mut meta: Vec<(usize, usize, String, String)> = Vec::new(); // (si, ci, system, label)
    let mut slots: Vec<Option<Slot>> = Vec::new();
    let mut replayed: Vec<bool> = Vec::new();
    let mut pending: Vec<PendingCell> = Vec::new();
    for (si, s) in scenarios.iter().enumerate() {
        for (ci, cell) in (s.build)().into_iter().enumerate() {
            let global = meta.len();
            let key = (s.name.to_string(), ci);
            let hit = replay.as_ref().and_then(|r| {
                r.cells
                    .get(&key)
                    .map(|c| Slot::Done(c.data.clone(), c.wall_ns))
                    .or_else(|| r.failures.get(&key).cloned().map(Slot::Failed))
            });
            match hit {
                Some(slot) => {
                    slots.push(Some(slot));
                    replayed.push(true);
                }
                None => {
                    slots.push(None);
                    replayed.push(false);
                    pending.push((global, si, ci, cell.work));
                }
            }
            meta.push((si, ci, cell.system, cell.label));
        }
    }

    let mut writer = match (&cfg.journal, &replay) {
        (None, _) => None,
        (Some(path), None) => Some(
            Journal::create(path, &names)
                .map_err(|e| env(format!("creating journal {}: {e}", path.display())))?,
        ),
        (Some(path), Some(r)) => Some(
            Journal::resume(path, r.valid_bytes)
                .map_err(|e| env(format!("resuming journal {}: {e}", path.display())))?,
        ),
    };

    let resumed_cells = replayed.iter().filter(|&&r| r).count();
    let mut strict_failure: Option<String> = None;
    let mut journal_error: Option<String> = None;

    if !pending.is_empty() {
        let workers = cfg.jobs.max(1).min(pending.len());
        let queues: Vec<Mutex<VecDeque<PendingCell>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, job) in pending.into_iter().enumerate() {
            queues[i % workers].lock().unwrap().push_back(job);
        }
        let abort = AtomicBool::new(false);
        type CellResult = Result<(CellData, u64), (resilient::AttemptError, u32)>;
        let (tx, rx) = mpsc::channel::<(usize, CellResult)>();
        std::thread::scope(|scope| {
            let queues = &queues;
            let abort = &abort;
            let policy = &cfg.policy;
            for wi in 0..workers {
                let tx = tx.clone();
                scope.spawn(move || loop {
                    if abort.load(Ordering::Relaxed) {
                        break;
                    }
                    let own = queues[wi].lock().unwrap().pop_front();
                    let job = own.or_else(|| {
                        (1..workers)
                            .find_map(|d| queues[(wi + d) % workers].lock().unwrap().pop_back())
                    });
                    match job {
                        Some((global, si, ci, work)) => {
                            let s = scenarios[si];
                            let build = s.build;
                            let rebuild = move || build().into_iter().nth(ci).map(|c| c.work);
                            let result = resilient::run_cell(work, rebuild, policy, s.name, ci);
                            // The collector drains inside this scope;
                            // send cannot fail.
                            tx.send((global, result)).expect("collector alive");
                        }
                        None => break,
                    }
                });
            }
            drop(tx);
            // Collect (and journal) on the scope's own thread while the
            // workers run: the loop ends when every worker has exited
            // and dropped its sender, so nothing blocks scope exit.
            for (global, result) in rx {
                let (si, ci, system, label) = &meta[global];
                let name = scenarios[*si].name;
                match result {
                    Ok((data, wall_ns)) => {
                        if let Some(j) = writer.as_mut() {
                            if let Err(e) = j.record_cell(name, *ci, system, label, &data, wall_ns)
                            {
                                journal_error.get_or_insert(format!("journal write: {e}"));
                            }
                        }
                        slots[global] = Some(Slot::Done(data, wall_ns));
                    }
                    Err((err, attempts)) => {
                        let failure = CellFailure {
                            system: system.clone(),
                            label: label.clone(),
                            kind: err.kind,
                            attempts,
                            message: err.message,
                        };
                        if cfg.policy.strict {
                            // Fail fast; deliberately NOT journaled, so
                            // a later --resume retries the cell instead
                            // of replaying the failure forever.
                            abort.store(true, Ordering::Relaxed);
                            strict_failure.get_or_insert(format!(
                                "cell {}/{} failed after {} attempt(s): {}",
                                failure.system, failure.label, attempts, failure.message
                            ));
                        } else if let Some(j) = writer.as_mut() {
                            if let Err(e) = j.record_failure(name, *ci, &failure) {
                                journal_error.get_or_insert(format!("journal write: {e}"));
                            }
                        }
                        slots[global] = Some(Slot::Failed(failure));
                    }
                }
            }
        });
    }
    if let Some(msg) = strict_failure {
        return Err(EngineError::StrictFailure(msg));
    }
    if let Some(msg) = journal_error {
        return Err(env(msg));
    }

    // Assemble per-scenario reports in grid order.
    let mut reports = Vec::new();
    let mut failed_cells = 0usize;
    let mut cursor = 0usize;
    for (si, s) in scenarios.iter().enumerate() {
        let mut data = Vec::new();
        let mut cells = Vec::new();
        let mut failures = Vec::new();
        let mut resumed = 0u64;
        while cursor < meta.len() && meta[cursor].0 == si {
            let (_, _, system, label) = &meta[cursor];
            if replayed[cursor] {
                resumed += 1;
            }
            match slots[cursor].take().expect("every cell resolved") {
                Slot::Done(d, wall_ns) => {
                    cells.push(CellRecord {
                        system: system.clone(),
                        label: label.clone(),
                        cycles: d.cycles,
                        bytes: d.bytes,
                        wall_ns,
                    });
                    data.push(d);
                }
                Slot::Failed(f) => {
                    cells.push(CellRecord {
                        system: system.clone(),
                        label: label.clone(),
                        cycles: 0,
                        bytes: 0,
                        wall_ns: 0,
                    });
                    data.push(CellData::default());
                    failures.push(f);
                }
            }
            cursor += 1;
        }
        failed_cells += failures.len();
        let total_cycles: u64 = cells.iter().map(|c| c.cycles).sum();
        let total_bytes: u64 = cells.iter().map(|c| c.bytes).sum();
        let wall_ns: u64 = cells.iter().map(|c| c.wall_ns).sum();
        let text = if failures.is_empty() {
            (s.render)(&data)
        } else {
            failure_text(s.name, &failures)
        };
        reports.push(ScenarioReport {
            name: s.name,
            golden: s.golden,
            text,
            record: RunRecord {
                schema: SCHEMA.to_string(),
                scenario: s.name.to_string(),
                title: s.title.to_string(),
                cells,
                total_cycles,
                total_bytes,
                wall_ns,
                sim_cycles_per_sec: if wall_ns == 0 {
                    0.0
                } else {
                    total_cycles as f64 / (wall_ns as f64 / 1e9)
                },
                metrics: Vec::new(),
                resumed,
                failures,
            },
            data,
        });
    }
    Ok(EngineRun {
        reports,
        resumed_cells,
        failed_cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn tiny_scenario() -> Scenario {
        Scenario {
            name: "tiny",
            alias: "",
            title: "tiny test scenario",
            smoke: false,
            golden: false,
            build: || {
                (0..17u64)
                    .map(|i| {
                        CellSpec::new("sys", format!("cell{i}"), move || {
                            CellData::cycles(i * 100, i)
                        })
                    })
                    .collect()
            },
            render: |cells| {
                let total: u64 = cells.iter().map(|c| c.cycles).sum();
                format!("total {total}\n")
            },
        }
    }

    fn panicky_scenario() -> Scenario {
        Scenario {
            name: "panicky",
            alias: "",
            title: "one cell always panics",
            smoke: false,
            golden: false,
            build: || {
                (0..5u64)
                    .map(|i| {
                        CellSpec::new("sys", format!("cell{i}"), move || {
                            if i == 2 {
                                panic!("cell 2 is broken");
                            }
                            CellData::cycles(i, 0)
                        })
                    })
                    .collect()
            },
            render: |cells| format!("sum {}\n", cells.iter().map(|c| c.cycles).sum::<u64>()),
        }
    }

    #[test]
    fn pool_preserves_order_at_any_width() {
        let s = tiny_scenario();
        for jobs in [1, 2, 8, 32] {
            let reports = run_scenarios(&[&s], jobs);
            assert_eq!(reports.len(), 1);
            let r = &reports[0];
            assert_eq!(r.text, "total 13600\n");
            assert_eq!(r.record.cells.len(), 17);
            for (i, c) in r.record.cells.iter().enumerate() {
                assert_eq!(c.label, format!("cell{i}"));
                assert_eq!(c.cycles, i as u64 * 100);
            }
            assert_eq!(r.record.total_cycles, 13600);
            assert_eq!(r.record.total_bytes, 136);
        }
    }

    #[test]
    fn record_json_round_trips() {
        let reports = run_scenarios(&[&tiny_scenario()], 4);
        let rec = &reports[0].record;
        assert_eq!(rec.schema, SCHEMA);
        let parsed = RunRecord::from_json(&rec.to_json()).expect("valid record");
        assert_eq!(&parsed, rec);
    }

    #[test]
    fn failures_round_trip_through_json() {
        let mut rec = run_scenarios(&[&tiny_scenario()], 1)[0].record.clone();
        rec.failures.push(CellFailure {
            system: "sys".into(),
            label: "cell3".into(),
            kind: FailureKind::WatchdogTrip,
            attempts: 3,
            message: "no response".into(),
        });
        rec.resumed = 5;
        let parsed = RunRecord::from_json(&rec.to_json()).expect("valid record");
        assert_eq!(parsed, rec);
    }

    #[test]
    fn from_json_accepts_v1_records() {
        let v1 = r#"{"schema": "pva-bench-record-v1", "scenario": "x", "title": "y",
            "cells": [{"system": "s", "label": "l", "cycles": 1, "bytes": 2,
            "wall_ns": 3}], "total_cycles": 1, "total_bytes": 2,
            "wall_ns": 3, "sim_cycles_per_sec": 0.5}"#;
        let rec = RunRecord::from_json(v1).expect("v1 accepted");
        assert_eq!(rec.schema, SCHEMA_V1);
        assert_eq!(rec.resumed, 0);
        assert!(rec.failures.is_empty());
    }

    #[test]
    fn from_json_rejects_bad_schema_and_shape() {
        assert!(RunRecord::from_json("{}").is_err());
        let wrong = r#"{"schema": "other-v9", "scenario": "x", "title": "y",
            "cells": [], "total_cycles": 0, "total_bytes": 0,
            "wall_ns": 0, "sim_cycles_per_sec": 0}"#;
        let err = RunRecord::from_json(wrong).unwrap_err();
        assert!(err.contains("unknown schema"), "{err}");
        let bad_cell = r#"{"schema": "pva-bench-record-v2", "scenario": "x",
            "title": "y", "cells": [{"system": "s"}], "total_cycles": 0,
            "total_bytes": 0, "wall_ns": 0, "sim_cycles_per_sec": 0}"#;
        assert!(RunRecord::from_json(bad_cell).is_err());
    }

    #[test]
    fn canonical_zeroes_wall_derived_fields_only() {
        let mut rec = run_scenarios(&[&tiny_scenario()], 2)[0].record.clone();
        rec.metrics.push(("speedup".into(), 2.0));
        rec.resumed = 3;
        let c = rec.canonical();
        assert_eq!(c.wall_ns, 0);
        assert_eq!(c.sim_cycles_per_sec, 0.0);
        assert_eq!(c.resumed, 0);
        assert!(c.metrics.is_empty());
        assert!(c.cells.iter().all(|cell| cell.wall_ns == 0));
        assert_eq!(c.total_cycles, rec.total_cycles);
        assert_eq!(
            c.cells.iter().map(|x| x.cycles).collect::<Vec<_>>(),
            rec.cells.iter().map(|x| x.cycles).collect::<Vec<_>>()
        );
    }

    #[test]
    fn multi_scenario_batch_keeps_scenario_boundaries() {
        let a = tiny_scenario();
        let b = tiny_scenario();
        let reports = run_scenarios(&[&a, &b], 3);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].record.cells.len(), 17);
        assert_eq!(reports[1].record.cells.len(), 17);
        assert_eq!(reports[0].text, reports[1].text);
    }

    #[test]
    fn quarantine_preserves_siblings_and_grid_order() {
        let bad = panicky_scenario();
        let good = tiny_scenario();
        let cfg = ExecConfig {
            policy: ExecPolicy {
                retries: 1,
                backoff_base: Duration::from_millis(1),
                ..ExecPolicy::default()
            },
            ..ExecConfig::with_jobs(4)
        };
        let run = run_scenarios_checked(&[&bad, &good], &cfg).expect("quarantine, not error");
        assert_eq!(run.failed_cells, 1);
        let r = &run.reports[0];
        assert_eq!(r.record.failures.len(), 1);
        let f = &r.record.failures[0];
        assert_eq!(f.label, "cell2");
        assert_eq!(f.kind, FailureKind::Panic);
        assert_eq!(f.attempts, 2);
        assert_eq!(f.message, "cell 2 is broken");
        // Sibling cells of the same scenario still ran...
        assert_eq!(r.record.cells.len(), 5);
        assert_eq!(r.record.cells[4].cycles, 4);
        // ...the failed one is zeroed in place...
        assert_eq!(r.record.cells[2].cycles, 0);
        // ...and the failure text is deterministic.
        assert!(r.text.contains("1 cell(s) quarantined"), "{}", r.text);
        // The healthy sibling scenario is untouched.
        assert_eq!(run.reports[1].text, "total 13600\n");
    }

    #[test]
    fn strict_mode_fails_fast_with_the_cell_identity() {
        let bad = panicky_scenario();
        let cfg = ExecConfig {
            policy: ExecPolicy {
                strict: true,
                retries: 0,
                ..ExecPolicy::default()
            },
            ..ExecConfig::with_jobs(2)
        };
        let err = run_scenarios_checked(&[&bad], &cfg).expect_err("strict fails");
        let EngineError::StrictFailure(msg) = err else {
            panic!("expected a strict failure, got {err:?}");
        };
        assert!(msg.contains("cell sys/cell2"), "{msg}");
        assert!(msg.contains("cell 2 is broken"), "{msg}");
    }

    #[test]
    fn journal_then_full_resume_replays_every_cell() {
        let dir = std::env::temp_dir().join("pva-bench-engine-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("full_resume.jsonl");
        let _ = std::fs::remove_file(&path);
        let s = tiny_scenario();
        let cfg = ExecConfig {
            journal: Some(path.clone()),
            ..ExecConfig::with_jobs(4)
        };
        let first = run_scenarios_checked(&[&s], &cfg).expect("first run");
        assert_eq!(first.resumed_cells, 0);
        let cfg_resume = ExecConfig {
            journal: Some(path.clone()),
            resume: true,
            ..ExecConfig::with_jobs(4)
        };
        let second = run_scenarios_checked(&[&s], &cfg_resume).expect("resume");
        assert_eq!(second.resumed_cells, 17);
        assert_eq!(second.reports[0].record.resumed, 17);
        // Wall times were restored verbatim, so even the non-canonical
        // records match (modulo the resumed counter).
        let mut replayed = second.reports[0].record.clone();
        replayed.resumed = 0;
        assert_eq!(replayed, first.reports[0].record);
        assert_eq!(second.reports[0].text, first.reports[0].text);
    }

    #[test]
    fn resume_with_mismatched_selection_is_refused() {
        let dir = std::env::temp_dir().join("pva-bench-engine-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mismatch.jsonl");
        let _ = std::fs::remove_file(&path);
        let s = tiny_scenario();
        let cfg = ExecConfig {
            journal: Some(path.clone()),
            ..ExecConfig::with_jobs(2)
        };
        run_scenarios_checked(&[&s], &cfg).expect("first run");
        let other = panicky_scenario();
        let cfg_resume = ExecConfig {
            journal: Some(path.clone()),
            resume: true,
            ..ExecConfig::with_jobs(2)
        };
        let err = run_scenarios_checked(&[&other], &cfg_resume).expect_err("selection mismatch");
        let EngineError::Environment(msg) = err else {
            panic!("expected an environment error, got {err:?}");
        };
        assert!(msg.contains("does not match"), "{msg}");
    }
}
