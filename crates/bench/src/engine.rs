//! The experiment engine: declarative scenarios, a work-stealing
//! thread pool, and structured run records.
//!
//! A [`Scenario`] declares a grid of independent [`CellSpec`]s plus a
//! pure `render` function that turns the cell results into the exact
//! text the old per-figure binaries printed. The engine fans the cells
//! of one or many scenarios across worker threads (results are ordered
//! by cell index, so the output is identical at any `--jobs` value) and
//! assembles a [`RunRecord`] per scenario for the `BENCH_<name>.json`
//! side channel.

use std::collections::VecDeque;
use std::sync::{mpsc, Mutex};
use std::time::Instant;

use crate::json::{self, Value};

/// Schema identifier stamped into every emitted record.
pub const SCHEMA: &str = "pva-bench-record-v1";

/// The measured output of one cell.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CellData {
    /// Simulated cycles attributed to this cell (0 for analytic cells).
    pub cycles: u64,
    /// Bytes moved across the memory interface by this cell.
    pub bytes: u64,
    /// Scenario-specific numbers the `render` function needs beyond
    /// cycles/bytes (floats are stashed via `f64::to_bits`).
    pub aux: Vec<u64>,
    /// Pre-rendered text fragment, for monolithic scenarios whose
    /// render is the identity.
    pub text: String,
}

impl CellData {
    /// A cell that is just a cycle count plus bytes moved.
    pub fn cycles(cycles: u64, bytes: u64) -> Self {
        CellData {
            cycles,
            bytes,
            ..CellData::default()
        }
    }

    /// A cell with auxiliary values for the renderer.
    pub fn with_aux(cycles: u64, bytes: u64, aux: Vec<u64>) -> Self {
        CellData {
            cycles,
            bytes,
            aux,
            ..CellData::default()
        }
    }

    /// A monolithic cell carrying fully rendered text.
    pub fn text(cycles: u64, bytes: u64, text: String) -> Self {
        CellData {
            cycles,
            bytes,
            text,
            ..CellData::default()
        }
    }
}

/// The work closure of a cell.
pub type Work = Box<dyn FnOnce() -> CellData + Send>;

/// One independent unit of work in a scenario's grid.
pub struct CellSpec {
    /// Memory system (or configuration) the cell exercises.
    pub system: String,
    /// Grid coordinates, e.g. `"copy/s16"`.
    pub label: String,
    /// The computation.
    pub work: Work,
}

impl CellSpec {
    /// Builds a cell.
    pub fn new(
        system: impl Into<String>,
        label: impl Into<String>,
        work: impl FnOnce() -> CellData + Send + 'static,
    ) -> Self {
        CellSpec {
            system: system.into(),
            label: label.into(),
            work: Box::new(work),
        }
    }
}

/// A declarative experiment: a named grid of cells plus a renderer
/// that reproduces the legacy figure/table text byte-for-byte.
pub struct Scenario {
    /// Canonical name; also the golden/text/JSON file stem.
    pub name: &'static str,
    /// Short CLI alias (`pva-bench fig7`), or `""`.
    pub alias: &'static str,
    /// One-line description for `pva-bench list`.
    pub title: &'static str,
    /// Included in the `--smoke` subset?
    pub smoke: bool,
    /// Has a committed golden at `results/<name>.txt`?
    pub golden: bool,
    /// Produces the cell grid.
    pub build: fn() -> Vec<CellSpec>,
    /// Renders the cell results (in build order) into the report text.
    pub render: fn(&[CellData]) -> String,
}

/// One cell's row in a [`RunRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct CellRecord {
    /// Memory system / configuration name.
    pub system: String,
    /// Grid coordinates.
    pub label: String,
    /// Simulated cycles.
    pub cycles: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Wall-clock nanoseconds spent computing the cell.
    pub wall_ns: u64,
}

/// The structured result of running one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct RunRecord {
    /// Schema identifier ([`SCHEMA`]).
    pub schema: String,
    /// Scenario name.
    pub scenario: String,
    /// Scenario title.
    pub title: String,
    /// Per-cell measurements, in grid order.
    pub cells: Vec<CellRecord>,
    /// Sum of cell cycles.
    pub total_cycles: u64,
    /// Sum of cell bytes.
    pub total_bytes: u64,
    /// Sum of cell wall times (CPU-seconds of simulation, independent
    /// of the worker count).
    pub wall_ns: u64,
    /// Simulation throughput: `total_cycles / wall seconds`.
    pub sim_cycles_per_sec: f64,
    /// Scenario-specific derived figures (e.g. the throughput
    /// scenario's fast-path speedup), attached after the run; empty for
    /// most scenarios.
    pub metrics: Vec<(String, f64)>,
}

impl RunRecord {
    /// Serializes the record as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let cells: Vec<Value> = self
            .cells
            .iter()
            .map(|c| {
                Value::Obj(vec![
                    ("system".into(), Value::Str(c.system.clone())),
                    ("label".into(), Value::Str(c.label.clone())),
                    ("cycles".into(), Value::Num(c.cycles as f64)),
                    ("bytes".into(), Value::Num(c.bytes as f64)),
                    ("wall_ns".into(), Value::Num(c.wall_ns as f64)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".into(), Value::Str(self.schema.clone())),
            ("scenario".into(), Value::Str(self.scenario.clone())),
            ("title".into(), Value::Str(self.title.clone())),
            ("cells".into(), Value::Arr(cells)),
            ("total_cycles".into(), Value::Num(self.total_cycles as f64)),
            ("total_bytes".into(), Value::Num(self.total_bytes as f64)),
            ("wall_ns".into(), Value::Num(self.wall_ns as f64)),
            (
                "sim_cycles_per_sec".into(),
                Value::Num(self.sim_cycles_per_sec),
            ),
            (
                "metrics".into(),
                Value::Obj(
                    self.metrics
                        .iter()
                        .map(|(k, v)| (k.clone(), Value::Num(*v)))
                        .collect(),
                ),
            ),
        ])
        .to_json()
    }

    /// Parses and schema-validates a record.
    pub fn from_json(text: &str) -> Result<RunRecord, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let field = |k: &str| v.get(k).ok_or_else(|| format!("missing field '{k}'"));
        let str_field = |k: &str| {
            field(k)?
                .as_str()
                .map(str::to_string)
                .ok_or_else(|| format!("field '{k}' is not a string"))
        };
        let u64_field = |val: &Value, k: &str| {
            val.get(k)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("field '{k}' is not an unsigned integer"))
        };
        let schema = str_field("schema")?;
        if schema != SCHEMA {
            return Err(format!("unknown schema '{schema}' (expected '{SCHEMA}')"));
        }
        let cells = field("cells")?
            .as_arr()
            .ok_or("field 'cells' is not an array")?
            .iter()
            .map(|c| {
                Ok(CellRecord {
                    system: c
                        .get("system")
                        .and_then(Value::as_str)
                        .ok_or("cell field 'system' is not a string")?
                        .to_string(),
                    label: c
                        .get("label")
                        .and_then(Value::as_str)
                        .ok_or("cell field 'label' is not a string")?
                        .to_string(),
                    cycles: u64_field(c, "cycles")?,
                    bytes: u64_field(c, "bytes")?,
                    wall_ns: u64_field(c, "wall_ns")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(RunRecord {
            schema,
            scenario: str_field("scenario")?,
            title: str_field("title")?,
            cells,
            total_cycles: u64_field(&v, "total_cycles")?,
            total_bytes: u64_field(&v, "total_bytes")?,
            wall_ns: u64_field(&v, "wall_ns")?,
            sim_cycles_per_sec: field("sim_cycles_per_sec")?
                .as_f64()
                .ok_or("field 'sim_cycles_per_sec' is not a number")?,
            metrics: match v.get("metrics") {
                None => Vec::new(),
                Some(Value::Obj(pairs)) => pairs
                    .iter()
                    .map(|(k, val)| {
                        val.as_f64()
                            .map(|f| (k.clone(), f))
                            .ok_or_else(|| format!("metric '{k}' is not a number"))
                    })
                    .collect::<Result<Vec<_>, String>>()?,
                Some(_) => return Err("field 'metrics' is not an object".into()),
            },
        })
    }
}

/// A completed scenario: rendered text, structured record, and the raw
/// cell data (for callers that post-process, e.g. the throughput gate).
pub struct ScenarioReport {
    /// Scenario name.
    pub name: &'static str,
    /// Whether a committed golden exists for the text.
    pub golden: bool,
    /// The exact text the legacy binary printed.
    pub text: String,
    /// The structured record.
    pub record: RunRecord,
    /// Raw cell results, in grid order.
    pub data: Vec<CellData>,
}

/// Runs a batch of scenarios, fanning every cell of every scenario
/// across `jobs` workers. Results are deterministic in content and
/// order for any `jobs >= 1`.
pub fn run_scenarios(scenarios: &[&Scenario], jobs: usize) -> Vec<ScenarioReport> {
    let mut works: Vec<Work> = Vec::new();
    let mut meta: Vec<(usize, String, String)> = Vec::new();
    for (si, s) in scenarios.iter().enumerate() {
        for cell in (s.build)() {
            works.push(cell.work);
            meta.push((si, cell.system, cell.label));
        }
    }
    let mut results: VecDeque<(CellData, u64)> = run_jobs(works, jobs).into();

    let mut reports = Vec::new();
    let mut cursor = 0usize;
    for (si, s) in scenarios.iter().enumerate() {
        let mut data = Vec::new();
        let mut cells = Vec::new();
        while cursor < meta.len() && meta[cursor].0 == si {
            let (d, wall_ns) = results.pop_front().expect("one result per cell");
            cells.push(CellRecord {
                system: meta[cursor].1.clone(),
                label: meta[cursor].2.clone(),
                cycles: d.cycles,
                bytes: d.bytes,
                wall_ns,
            });
            data.push(d);
            cursor += 1;
        }
        let total_cycles: u64 = cells.iter().map(|c| c.cycles).sum();
        let total_bytes: u64 = cells.iter().map(|c| c.bytes).sum();
        let wall_ns: u64 = cells.iter().map(|c| c.wall_ns).sum();
        let text = (s.render)(&data);
        reports.push(ScenarioReport {
            name: s.name,
            golden: s.golden,
            text,
            record: RunRecord {
                schema: SCHEMA.to_string(),
                scenario: s.name.to_string(),
                title: s.title.to_string(),
                cells,
                total_cycles,
                total_bytes,
                wall_ns,
                sim_cycles_per_sec: if wall_ns == 0 {
                    0.0
                } else {
                    total_cycles as f64 / (wall_ns as f64 / 1e9)
                },
                metrics: Vec::new(),
            },
            data,
        });
    }
    reports
}

/// Executes the closures on a work-stealing pool and returns
/// `(result, wall_ns)` in submission order.
///
/// Jobs are dealt round-robin onto per-worker deques; a worker pops
/// from the front of its own deque and steals from the back of the
/// others when it runs dry. With a fixed job set (no job enqueues new
/// work) "all deques empty" is a correct termination test.
fn run_jobs(works: Vec<Work>, jobs: usize) -> Vec<(CellData, u64)> {
    let n = works.len();
    if jobs <= 1 || n <= 1 {
        return works
            .into_iter()
            .map(|w| {
                let t0 = Instant::now();
                let d = w();
                (d, t0.elapsed().as_nanos() as u64)
            })
            .collect();
    }
    let workers = jobs.min(n);
    let queues: Vec<Mutex<VecDeque<(usize, Work)>>> =
        (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, w) in works.into_iter().enumerate() {
        queues[i % workers].lock().unwrap().push_back((i, w));
    }
    let (tx, rx) = mpsc::channel::<(usize, CellData, u64)>();
    std::thread::scope(|scope| {
        let queues = &queues;
        for wi in 0..workers {
            let tx = tx.clone();
            scope.spawn(move || loop {
                let own = queues[wi].lock().unwrap().pop_front();
                let job = own.or_else(|| {
                    (1..workers).find_map(|d| queues[(wi + d) % workers].lock().unwrap().pop_back())
                });
                match job {
                    Some((i, w)) => {
                        let t0 = Instant::now();
                        let d = w();
                        let ns = t0.elapsed().as_nanos() as u64;
                        // The receiver outlives the scope; send cannot fail.
                        tx.send((i, d, ns)).expect("collector alive");
                    }
                    None => break,
                }
            });
        }
        drop(tx);
    });
    let mut slots: Vec<Option<(CellData, u64)>> = (0..n).map(|_| None).collect();
    for (i, d, ns) in rx {
        slots[i] = Some((d, ns));
    }
    slots
        .into_iter()
        .map(|s| s.expect("every job reports exactly once"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scenario() -> Scenario {
        Scenario {
            name: "tiny",
            alias: "",
            title: "tiny test scenario",
            smoke: false,
            golden: false,
            build: || {
                (0..17u64)
                    .map(|i| {
                        CellSpec::new("sys", format!("cell{i}"), move || {
                            CellData::cycles(i * 100, i)
                        })
                    })
                    .collect()
            },
            render: |cells| {
                let total: u64 = cells.iter().map(|c| c.cycles).sum();
                format!("total {total}\n")
            },
        }
    }

    #[test]
    fn pool_preserves_order_at_any_width() {
        let s = tiny_scenario();
        for jobs in [1, 2, 8, 32] {
            let reports = run_scenarios(&[&s], jobs);
            assert_eq!(reports.len(), 1);
            let r = &reports[0];
            assert_eq!(r.text, "total 13600\n");
            assert_eq!(r.record.cells.len(), 17);
            for (i, c) in r.record.cells.iter().enumerate() {
                assert_eq!(c.label, format!("cell{i}"));
                assert_eq!(c.cycles, i as u64 * 100);
            }
            assert_eq!(r.record.total_cycles, 13600);
            assert_eq!(r.record.total_bytes, 136);
        }
    }

    #[test]
    fn record_json_round_trips() {
        let reports = run_scenarios(&[&tiny_scenario()], 4);
        let rec = &reports[0].record;
        let parsed = RunRecord::from_json(&rec.to_json()).expect("valid record");
        assert_eq!(&parsed, rec);
    }

    #[test]
    fn from_json_rejects_bad_schema_and_shape() {
        assert!(RunRecord::from_json("{}").is_err());
        let wrong = r#"{"schema": "other-v9", "scenario": "x", "title": "y",
            "cells": [], "total_cycles": 0, "total_bytes": 0,
            "wall_ns": 0, "sim_cycles_per_sec": 0}"#;
        let err = RunRecord::from_json(wrong).unwrap_err();
        assert!(err.contains("unknown schema"), "{err}");
        let bad_cell = r#"{"schema": "pva-bench-record-v1", "scenario": "x",
            "title": "y", "cells": [{"system": "s"}], "total_cycles": 0,
            "total_bytes": 0, "wall_ns": 0, "sim_cycles_per_sec": 0}"#;
        assert!(RunRecord::from_json(bad_cell).is_err());
    }

    #[test]
    fn multi_scenario_batch_keeps_scenario_boundaries() {
        let a = tiny_scenario();
        let b = tiny_scenario();
        let reports = run_scenarios(&[&a, &b], 3);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].record.cells.len(), 17);
        assert_eq!(reports[1].record.cells.len(), 17);
        assert_eq!(reports[0].text, reports[1].text);
    }
}
