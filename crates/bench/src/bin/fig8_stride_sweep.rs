//! Figure 8: comparative performance with varying stride, continued —
//! swap, tridiag and vaxpy (see `fig7_stride_sweep` for the format).

use kernels::Kernel;
use pva_bench::report::Table;
use pva_bench::stride_sweep;

fn main() {
    let rows = stride_sweep(&[Kernel::Swap, Kernel::Tridiag, Kernel::Vaxpy]);
    let mut t = Table::new(vec![
        "kernel",
        "stride",
        "pva-sdram min",
        "pva-sdram max",
        "pva-sram min",
        "pva-sram max",
        "cacheline",
        "serial-gather",
    ]);
    for r in &rows {
        t.row(vec![
            r.kernel.to_string(),
            r.stride.to_string(),
            r.cells[0].1.min.to_string(),
            r.cells[0].1.max.to_string(),
            r.cells[1].1.min.to_string(),
            r.cells[1].1.max.to_string(),
            r.cells[2].1.min.to_string(),
            r.cells[3].1.min.to_string(),
        ]);
    }
    println!("Figure 8 — cycles per 1024-element kernel, varying stride (continued)\n");
    println!("{t}");
}
