//! The abstract's headline numbers, recomputed over the full 240-point
//! design space:
//!
//! * "the PVA is able to load elements up to **32.8 times faster** than
//!   a conventional memory system" (vs. the cache-line serial system),
//! * "and **3.3 times faster** than a pipelined vector unit" (vs. the
//!   gathering serial system),
//! * "**without hurting normal cache line fill performance**"
//!   (unit-stride parity).

use pva_bench::headline;

fn main() {
    let h = headline();
    println!("Headline claims, recomputed on this reproduction\n");
    println!(
        "max speedup vs cache-line serial system : {:.1}x  (at {} stride {})",
        h.vs_cacheline.0, h.vs_cacheline.1, h.vs_cacheline.2
    );
    println!("  paper claim                            : 32.8x");
    println!(
        "max speedup vs gathering serial system  : {:.1}x  (at {} stride {})",
        h.vs_serial_gather.0, h.vs_serial_gather.1, h.vs_serial_gather.2
    );
    println!("  paper claim                            : 3.3x");
    println!(
        "worst unit-stride cacheline/pva ratio   : {:.2}  (>= ~0.9 means line fills unhurt)",
        h.unit_stride_parity
    );
    println!("  paper claim                            : 1.00-1.09 (100%-109%)");
    println!(
        "worst-case SDRAM/SRAM gap (fig. 11)     : {:.3}",
        h.sram_gap
    );
    println!("  paper claim                            : <= ~1.15");
}
