//! §3.1 related-work comparison: PVA vs a Stream Memory Controller-like
//! design (McKee et al.).
//!
//! Both gather only the useful words and reorder for row locality; the
//! architectural difference is the SMC's *serial* address issue (one
//! SDRAM command per cycle across the whole memory) versus the PVA's
//! per-bank controllers operating in parallel. The gap should therefore
//! track the available bank parallelism: large at odd strides, small at
//! single-bank strides.

use kernels::{Kernel, STRIDES};
use memsys::{MemorySystem, PvaSystem, SerialGather, SmcLike, TraceOp};
use pva_bench::report::Table;
use pva_core::Vector;

fn trace(stride: u64) -> Vec<TraceOp> {
    let bases = kernels::Alignment::BankStagger.bases(Kernel::Copy.array_count(), 1 << 22);
    Kernel::Copy.trace(&bases, stride, kernels::ELEMENTS, kernels::LINE_WORDS)
}

fn main() {
    println!("PVA vs SMC-like stream controller (copy kernel, 1024 elements)\n");
    let mut t = Table::new(vec![
        "stride",
        "pva-sdram",
        "smc-like",
        "smc/pva",
        "serial-gather",
    ]);
    for &s in &STRIDES {
        let tr = trace(s);
        let pva = PvaSystem::sdram().run_trace(&tr);
        let smc = SmcLike::default().run_trace(&tr);
        let ser = SerialGather::default().run_trace(&tr);
        t.row(vec![
            s.to_string(),
            pva.to_string(),
            smc.to_string(),
            format!("{:.2}x", smc as f64 / pva as f64),
            ser.to_string(),
        ]);
    }
    println!("{t}");
    // A single-vector sanity point for context.
    let one = [TraceOp::read(Vector::new(0, 19, 32).expect("valid"))];
    println!(
        "single stride-19 gather: pva {} vs smc {} cycles",
        PvaSystem::sdram().run_trace(&one),
        SmcLike::default().run_trace(&one)
    );
    println!("\nthe SMC's dynamic ordering beats the naive serial gatherer, but its serial");
    println!("issue caps it near 1 element/cycle; the PVA's broadcast parallelism wins");
    println!("wherever more than one bank holds vector elements");
}
