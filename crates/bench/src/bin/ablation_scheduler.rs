//! Ablation study of the §5.2 scheduler design choices.
//!
//! The paper motivates each mechanism (out-of-order issue across vector
//! contexts, promoting row opens/precharges, the bypass paths, and the
//! row-management predictor) but evaluates only the full design. This
//! bench quantifies each choice by disabling it on three probes:
//!
//! * single-command gather latency at stride 5 — FHC + bypass paths;
//! * vaxpy at stride 16, coincident — single-bank, row-conflict heavy;
//! * alternating single-bank reads/writes — polarity + out-of-order.
//!
//! It also settles the paper's ambiguous predictor definition (see
//! `RowPolicy` docs) empirically.

use pva_bench::ablations;
use pva_bench::report::Table;

fn main() {
    println!("Scheduler ablations — scheduler-bound probes (cycles)\n");
    let rows = ablations();
    let base = &rows[0];
    let mut t = Table::new(vec![
        "configuration",
        "latency s5",
        "vs base",
        "vaxpy s16",
        "vs base",
        "rw-mix s16",
        "vs base",
    ]);
    for r in &rows {
        let pct = |x: u64, b: u64| format!("{:+.1}%", 100.0 * (x as f64 - b as f64) / b as f64);
        t.row(vec![
            r.label.to_string(),
            r.latency_s5.to_string(),
            pct(r.latency_s5, base.latency_s5),
            r.vaxpy_s16.to_string(),
            pct(r.vaxpy_s16, base.vaxpy_s16),
            r.rw_mix_s16.to_string(),
            pct(r.rw_mix_s16, base.rw_mix_s16),
        ]);
    }
    println!("{t}");
    println!("probes are scheduler-bound (single-command latency / single-bank stride 16);");
    println!(
        "fully-pipelined multi-bank workloads are BC-bus-bound and insensitive to these switches"
    );
}
