//! Quantifying §1's motivation: strided access through a cache wastes
//! cache capacity and bus bandwidth; the PVA's gathered lines fix both.
//!
//! Scenario: a loop combines a *strided* walk over a large array `x`
//! (stride S words) with a *dense* walk over a small array `y` that
//! fits comfortably in the L2.
//!
//! * **cached path** — every reference goes through the L2; each
//!   strided `x` touch fills a whole 32-word line (31 wasted words at
//!   S >= 32) and evicts `y`.
//! * **PVA path** — the strided `x` accesses bypass the cache as
//!   gathered vector reads (the Impulse shadow-space usage); `y` stays
//!   resident.
//!
//! Reported per stride: `y`'s hit rate, words moved across the bus, and
//! total memory cycles (both paths charge the PVA-SDRAM system, so the
//! difference is purely the access discipline).

use cache::{run_reference_stream, CacheConfig, CacheSim, Reference};
use memsys::{MemorySystem, PvaSystem, TraceOp};
use pva_bench::report::Table;
use pva_core::Vector;

const ITERS: u64 = 1024;
const X_BASE: u64 = 1 << 22;
const Y_BASE: u64 = 0;
const Y_WORDS: u64 = 4096; // half the 8192-word L2

/// The interleaved reference stream: `x[i*S]` and `y[i % Y_WORDS]` per
/// iteration.
fn mixed_refs(stride: u64) -> Vec<Reference> {
    let mut refs = Vec::new();
    for i in 0..ITERS {
        refs.push(Reference::Load(X_BASE + i * stride));
        refs.push(Reference::Load(Y_BASE + (i % Y_WORDS)));
    }
    refs
}

/// Cached path: everything through the L2.
fn cached_path(stride: u64) -> (f64, u64, u64) {
    let mut l2 = CacheSim::new(CacheConfig::default());
    // Warm y.
    for w in 0..Y_WORDS {
        l2.access(Reference::Load(Y_BASE + w));
    }
    let mut mem = PvaSystem::sdram();
    let r = run_reference_stream(&mut l2, &mut mem, &mixed_refs(stride), false);
    // y hit rate: measure with a separate pass over y only.
    let y_hits = {
        let before = *l2.stats();
        for w in 0..Y_WORDS {
            l2.access(Reference::Load(Y_BASE + w));
        }
        let after = *l2.stats();
        (after.hits - before.hits) as f64 / Y_WORDS as f64
    };
    let words_moved = (r.fills + r.writebacks) * 32;
    (y_hits, words_moved, r.memory_cycles)
}

/// PVA path: x bypasses the cache as gathered vectors; y cached.
fn pva_path(stride: u64) -> (f64, u64, u64) {
    let mut l2 = CacheSim::new(CacheConfig::default());
    for w in 0..Y_WORDS {
        l2.access(Reference::Load(Y_BASE + w));
    }
    let mut mem = PvaSystem::sdram();
    // x as gathered vector commands (32 elements each).
    let mut trace: Vec<TraceOp> = Vec::new();
    let x = Vector::new(X_BASE, stride, ITERS).expect("valid vector");
    for chunk in x.chunks(32) {
        trace.push(TraceOp::read(chunk));
    }
    // y through the cache: all hits after warmup, so no line traffic.
    let r = run_reference_stream(
        &mut l2,
        &mut mem,
        &(0..ITERS)
            .map(|i| Reference::Load(Y_BASE + (i % Y_WORDS)))
            .collect::<Vec<_>>(),
        false,
    );
    let gather_cycles = mem.run_trace(&trace);
    let y_hits = {
        let before = *l2.stats();
        for w in 0..Y_WORDS {
            l2.access(Reference::Load(Y_BASE + w));
        }
        let after = *l2.stats();
        (after.hits - before.hits) as f64 / Y_WORDS as f64
    };
    let words_moved = (r.fills + r.writebacks) * 32 + ITERS; // gathers move only useful words
    (y_hits, words_moved, r.memory_cycles + gather_cycles)
}

fn main() {
    println!("Cache pollution by strided access (1024 iterations; x strided, y dense/cached)\n");
    let mut t = Table::new(vec![
        "stride",
        "cached: y hits",
        "cached: bus words",
        "cached: cycles",
        "pva: y hits",
        "pva: bus words",
        "pva: cycles",
    ]);
    for stride in [2u64, 4, 8, 16, 32, 64] {
        let (ch, cw, cc) = cached_path(stride);
        let (ph, pw, pc) = pva_path(stride);
        t.row(vec![
            stride.to_string(),
            format!("{:.0}%", ch * 100.0),
            cw.to_string(),
            cc.to_string(),
            format!("{:.0}%", ph * 100.0),
            pw.to_string(),
            pc.to_string(),
        ]);
    }
    println!("{t}");
    println!("the cached path moves a whole line per strided element and evicts the dense");
    println!("working set; the PVA path moves only the used words and leaves y resident —");
    println!("the two bullet points of the paper's introduction, measured");
}
