//! Figure 9: comparative performance of all kernels (including the
//! unrolled copy2/scale2) at fixed strides 1 and 4.
//!
//! The `% of pva` column is each system's best time normalized to the
//! PVA-SDRAM minimum — the annotation above each bar in the paper
//! (e.g. 100%–109% for the cache-line system at unit stride, 307%–408%
//! at stride 4).

use pva_bench::fixed_stride;
use pva_bench::report::Table;

fn main() {
    for stride in [1u64, 4] {
        let rows = fixed_stride(stride);
        let mut t = Table::new(vec![
            "kernel",
            "pva-sdram",
            "pva-sram",
            "cacheline",
            "cl % of pva",
            "serial-gather",
            "sg % of pva",
        ]);
        for r in &rows {
            t.row(vec![
                r.kernel.to_string(),
                r.cells[0].1.min.to_string(),
                r.cells[1].1.min.to_string(),
                r.cells[2].1.min.to_string(),
                format!("{:.0}%", r.cells[2].2),
                r.cells[3].1.min.to_string(),
                format!("{:.0}%", r.cells[3].2),
            ]);
        }
        println!("Figure 9 — all kernels at stride {stride} (cycles, min over alignments)\n");
        println!("{t}");
    }
}
