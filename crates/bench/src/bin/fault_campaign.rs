//! Seeded fault-injection campaign: fault scenario × kernel sweep with
//! end-to-end silent-corruption accounting.
//!
//! ```text
//! cargo run --release -p pva-bench --bin fault_campaign -- [--smoke] [--ecc-off] [--seed N]
//! ```
//!
//! With ECC on (the default) the binary exits nonzero if any silent
//! corruption is observed — the CI gate for the robustness layer.

use pva_bench::campaign::{run_campaign, CampaignConfig};

fn main() {
    let mut smoke = false;
    let mut ecc = true;
    let mut seed = 0xC0FFEEu64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--ecc-off" => ecc = false,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed takes an integer");
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: fault_campaign [--smoke] [--ecc-off] [--seed N]");
                std::process::exit(2);
            }
        }
    }
    let mut cc = if smoke {
        CampaignConfig::smoke(seed)
    } else {
        CampaignConfig::full(seed)
    };
    cc.ecc = ecc;

    let report = run_campaign(&cc);
    println!(
        "fault campaign: seed={seed:#x} elements={} ecc={}",
        cc.elements, cc.ecc
    );
    println!(
        "{:<10} {:<18} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>6} {:>4}",
        "kernel",
        "scenario",
        "cycles",
        "corrected",
        "detected",
        "flagged",
        "flg-mis",
        "silent",
        "hung",
        "try"
    );
    for c in &report.cells {
        println!(
            "{:<10} {:<18} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8} {:>6} {:>4}",
            c.kernel,
            c.scenario,
            c.cycles,
            c.corrected,
            c.detected,
            c.flagged_elements,
            c.flagged_mismatches,
            c.device_silent + c.silent_mismatches,
            if c.hung { "YES" } else { "-" },
            c.attempts
        );
    }
    for q in &report.quarantined {
        println!(
            "{:<10} {:<18} QUARANTINED after {} attempt(s): {}",
            q.kernel, q.scenario, q.attempts, q.message
        );
    }
    println!(
        "totals: corrected={} detected={} silent={} hung-cells={} quarantined={}",
        report.total_corrected(),
        report.total_detected(),
        report.total_silent(),
        report.hung_cells(),
        report.quarantined.len()
    );
    if cc.ecc && report.total_silent() > 0 {
        eprintln!(
            "FAIL: {} silent corruption(s) with ECC enabled",
            report.total_silent()
        );
        std::process::exit(1);
    }
    if report.hung_cells() > 0 {
        eprintln!("FAIL: {} cell(s) hit the watchdog", report.hung_cells());
        std::process::exit(1);
    }
    if !report.quarantined.is_empty() {
        eprintln!(
            "FAIL: {} cell(s) quarantined (partial results above)",
            report.quarantined.len()
        );
        std::process::exit(1);
    }
}
