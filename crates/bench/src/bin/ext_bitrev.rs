//! §7 extension: bit-reversed application vectors (FFT reorder).
//!
//! A memory controller aware of the bit-reversed pattern gathers
//! sequential data into bit-reversed order line by line. On a
//! word-interleaved system the per-line gather is inherently sequential
//! (all words of one reversed line map to few banks); this bench
//! measures the per-bank claim distribution across sizes and the
//! resulting gather cost through the PVA's SDRAM devices, versus a
//! cache-line system that fetches one line per touched element region.

use pva_bench::report::Table;
use pva_core::{BankId, BitReversedVector, Geometry, IndirectVector};
use pva_sim::{run_indirect_gather, PvaConfig};

fn main() {
    let cfg = PvaConfig::default();
    let g = Geometry::word_interleaved(16).unwrap();
    println!("Bit-reversal gather (FFT reorder) through the PVA\n");
    let mut t = Table::new(vec![
        "log2 n",
        "elements",
        "max claim/bank",
        "min claim/bank",
        "pva cycles",
        "cacheline cycles",
        "speedup",
    ]);
    for k in [6u32, 8, 10] {
        let v = BitReversedVector::new(0, k).unwrap();
        let claims: Vec<usize> = (0..16)
            .map(|b| v.subvector_indices(BankId::new(b), &g).count())
            .collect();
        // Gather a cache line (32 elements) of bit-reversed data at a
        // time via the indirect machinery (the §7 implementation route:
        // reverse low bits, access, increment, repeat per line).
        let mut pva_total = 0u64;
        for line_start in (0..v.length()).step_by(32) {
            let offsets: Vec<u64> = (line_start..line_start + 32)
                .map(|i| v.element(i))
                .collect();
            let iv = IndirectVector::new(0, offsets).unwrap();
            let timing = run_indirect_gather(cfg, &iv, 1 << 20).unwrap();
            // Index load (phase 1) is free here: the pattern is
            // generated, not loaded. Count broadcast + gather + stage.
            pva_total += timing.broadcast_cycles + timing.phase2_cycles + timing.stage_cycles;
        }
        // Cache-line system: each 32-element bit-reversed line touches up
        // to 32 distinct lines -> 20 cycles each.
        let lines_per_gather = 32.min(v.length());
        let cacheline = (v.length() / 32) * lines_per_gather * 20;
        t.row(vec![
            k.to_string(),
            v.length().to_string(),
            claims.iter().max().unwrap().to_string(),
            claims.iter().min().unwrap().to_string(),
            pva_total.to_string(),
            cacheline.to_string(),
            format!("{:.2}x", cacheline as f64 / pva_total as f64),
        ]);
    }
    println!("{t}");
    println!("claims are balanced across banks, so the reorder parallelizes despite its poor cache locality");
}
