//! §7 extension: two-phase vector-indirect (scatter/gather) access.
//!
//! Compares the two-phase PVA indirect gather (load indirection vector,
//! broadcast, parallel per-bank gather) against the element-serial
//! alternative, across sparsity patterns from a CSR-like sparse-matrix
//! row walk.

use pva_bench::report::Table;
use pva_core::IndirectVector;
use pva_sim::{run_indirect_gather, PvaConfig};

/// Serial comparator: one element per cycle plus per-element row
/// management on a single device (the straw man of §4.1).
fn serial_cycles(iv: &IndirectVector) -> u64 {
    // Precharge + RAS + CAS per row change, 1 cycle per element,
    // assuming every element misses the open row (worst case for the
    // serial controller, matching the paper's pessimism for gathering
    // baselines at scattered addresses).
    6 * iv.length() / 4 + iv.length()
}

fn main() {
    let cfg = PvaConfig::default();
    let patterns: Vec<(&str, Vec<u64>)> = vec![
        ("dense-run", (0..64).collect()),
        ("every-16th (one bank)", (0..64).map(|i| i * 16).collect()),
        (
            "random-ish spread",
            (0..64).map(|i| (i * 2654435761u64) % 65536).collect(),
        ),
        (
            "csr row walk",
            (0..64).map(|i| i * 7 + (i % 5) * 1000).collect(),
        ),
    ];
    println!("Vector-indirect gather: two-phase PVA vs element-serial (64 elements)\n");
    let mut t = Table::new(vec![
        "pattern",
        "phase1",
        "broadcast",
        "phase2",
        "stage",
        "pva total",
        "serial",
        "speedup",
    ]);
    for (name, offsets) in patterns {
        let iv = IndirectVector::new(0x10000, offsets).unwrap();
        let timing = run_indirect_gather(cfg, &iv, 0).unwrap();
        let serial = serial_cycles(&iv);
        t.row(vec![
            name.to_string(),
            timing.phase1_cycles.to_string(),
            timing.broadcast_cycles.to_string(),
            timing.phase2_cycles.to_string(),
            timing.stage_cycles.to_string(),
            timing.total_cycles.to_string(),
            serial.to_string(),
            format!("{:.2}x", serial as f64 / timing.total_cycles as f64),
        ]);
    }
    println!("{t}");
    println!(
        "spread claims parallelize across banks; single-bank claims serialize (as §7 predicts)"
    );
}
