//! §5's opening point, explored: "The design space for a PVA unit is
//! enormous: the type of DRAM, the number of banks, the interleave
//! factor, and the implementation strategy for FirstHit() can all be
//! varied to trade hardware complexity for performance."
//!
//! This bench sweeps the three sizing knobs of the prototype — vector
//! contexts per bank controller, outstanding transaction ids, and the
//! BC-bus staging rate — on two probes (parallel stride 19, single-bank
//! stride 16) to show which resource binds where.

use pva_bench::report::Table;
use pva_core::Vector;
use pva_sim::{HostRequest, PvaConfig, PvaUnit};

fn run(cfg: PvaConfig, stride: u64) -> u64 {
    let mut unit = PvaUnit::new(cfg).expect("valid config");
    let reqs: Vec<HostRequest> = (0..16u64)
        .map(|i| HostRequest::Read {
            vector: Vector::new(i * 32 * stride, stride, 32).expect("valid vector"),
        })
        .collect();
    unit.run(reqs).expect("runs").cycles
}

fn main() {
    println!("PVA design-space sweep — 16 gathered reads (cycles)\n");

    println!("vector contexts per bank controller (txn ids = 8, stage rate = 2):");
    let mut t = Table::new(vec!["VCs", "stride 19", "stride 16"]);
    for vcs in [1usize, 2, 4, 8] {
        let cfg = PvaConfig {
            vector_contexts: vcs,
            ..PvaConfig::default()
        };
        t.row(vec![
            vcs.to_string(),
            run(cfg, 19).to_string(),
            run(cfg, 16).to_string(),
        ]);
    }
    println!("{t}");

    println!("outstanding transaction ids (VCs = 4, stage rate = 2):");
    let mut t = Table::new(vec!["txn ids", "stride 19", "stride 16"]);
    for ids in [2usize, 4, 8, 16] {
        let cfg = PvaConfig {
            transaction_ids: ids,
            request_fifo_entries: ids,
            ..PvaConfig::default()
        };
        t.row(vec![
            ids.to_string(),
            run(cfg, 19).to_string(),
            run(cfg, 16).to_string(),
        ]);
    }
    println!("{t}");

    println!("BC-bus staging rate in words/cycle (VCs = 4, txn ids = 8):");
    let mut t = Table::new(vec!["words/cycle", "stride 19", "stride 16"]);
    for rate in [1u64, 2, 4, 8] {
        let cfg = PvaConfig {
            stage_words_per_cycle: rate,
            ..PvaConfig::default()
        };
        t.row(vec![
            rate.to_string(),
            run(cfg, 19).to_string(),
            run(cfg, 16).to_string(),
        ]);
    }
    println!("{t}");
    println!("at parallel strides the staging rate is the binding resource (the 17-cycle");
    println!("floor halves when the bus doubles); at single-bank strides the SDRAM command");
    println!("rate binds and none of the front-end knobs help — matching the paper's choice");
    println!("to spend area on per-bank parallelism rather than deeper queues");
}
