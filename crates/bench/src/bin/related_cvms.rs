//! §3.1 related-work comparison: PVA vs a Command Vector Memory
//! System-like design.
//!
//! The CVMS broadcasts commands to section controllers like the PVA,
//! but its subcommand generation needs ~15 memory cycles for
//! non-power-of-two strides where the PVA needs at most five (both need
//! two for powers of two). This bench measures what that difference is
//! worth: single-command latency and lightly-pipelined throughput, for
//! power-of-two and prime strides.

use pva_bench::report::Table;
use pva_core::Vector;
use pva_sim::{HostRequest, PvaConfig, PvaUnit};

fn latency(cfg: PvaConfig, stride: u64) -> u64 {
    let mut unit = PvaUnit::new(cfg).expect("valid config");
    let v = Vector::new(0, stride, 32).expect("valid vector");
    unit.run(vec![HostRequest::Read { vector: v }])
        .expect("runs")
        .cycles
}

fn throughput(cfg: PvaConfig, stride: u64, commands: u64) -> u64 {
    let mut unit = PvaUnit::new(cfg).expect("valid config");
    let reqs: Vec<HostRequest> = (0..commands)
        .map(|i| HostRequest::Read {
            vector: Vector::new(i * 32 * stride, stride, 32).expect("valid vector"),
        })
        .collect();
    unit.run(reqs).expect("runs").cycles
}

fn main() {
    println!("PVA vs CVMS-like subcommand generation (section 3.1)\n");
    let mut t = Table::new(vec![
        "stride",
        "pva latency",
        "cvms latency",
        "delta",
        "pva 8-cmd",
        "cvms 8-cmd",
    ]);
    for stride in [4u64, 8, 5, 19] {
        let pl = latency(PvaConfig::default(), stride);
        let cl = latency(PvaConfig::cvms_like(), stride);
        let pt = throughput(PvaConfig::default(), stride, 8);
        let ct = throughput(PvaConfig::cvms_like(), stride, 8);
        t.row(vec![
            format!(
                "{stride}{}",
                if stride.is_power_of_two() {
                    " (pow2)"
                } else {
                    ""
                }
            ),
            pl.to_string(),
            cl.to_string(),
            format!("{:+}", cl as i64 - pl as i64),
            pt.to_string(),
            ct.to_string(),
        ]);
    }
    println!("{t}");
    println!("power-of-two strides: identical (both generate subcommands in 2 cycles);");
    println!("other strides: the CVMS pays ~12 extra cycles of latency per command,");
    println!("largely hidden once commands pipeline (the paper's latency-hiding point)");
}
