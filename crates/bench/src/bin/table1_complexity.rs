//! Table 1: hardware complexity.
//!
//! The paper reports Xilinx gate counts from synthesis (AND2 1193,
//! NAND2 5488, D flip-flops 1039, ..., 2 KB on-chip RAM). Gate counts
//! need an HDL toolchain; what this model reproduces is (a) the storage
//! complexity of each Figure-6 module, (b) the 2 KB staging RAM exactly,
//! and (c) the §4.3.1 scaling argument: the full-`K_i` PLA grows
//! quadratically with the bank count while the `K_1` PLA grows linearly
//! — the reason the paper recommends the `K_1` + multiplier design for
//! large systems.

use pva_bench::report::Table;
use pva_core::scaling_sweep;
use pva_sim::{unit_complexity, PvaConfig};

fn main() {
    let r = unit_complexity(&PvaConfig::default());
    println!("Table 1 proxy — per-bank-controller storage (prototype, 16 banks)\n");
    let mut t = Table::new(vec!["module", "state bits", "table bits", "RAM bytes"]);
    for m in &r.per_bc {
        t.row(vec![
            m.module.to_string(),
            m.state_bits.to_string(),
            m.table_bits.to_string(),
            m.ram_bytes.to_string(),
        ]);
    }
    println!("{t}");
    println!(
        "unit totals: {} state bits, {} table bits, {} RAM bytes",
        r.total_state_bits, r.total_table_bits, r.total_ram_bytes
    );
    println!(
        "paper's Table 1: 1039 D flip-flops + 32 latches, 5488 NAND2 (logic), 2K bytes on-chip RAM"
    );
    println!("  -> the staging RAM (2048 bytes) is reproduced exactly;");
    println!(
        "     state bits land in the same order of magnitude as the paper's flip-flop count\n"
    );

    println!("PLA scaling (section 4.3.1): K1 PLA vs full-Ki PLA, total bits\n");
    let mut t = Table::new(vec!["banks", "K1 PLA bits", "full-Ki PLA bits", "ratio"]);
    for (banks, k1, full) in scaling_sweep(8) {
        t.row(vec![
            banks.to_string(),
            k1.to_string(),
            full.to_string(),
            format!("{:.1}", full as f64 / k1 as f64),
        ]);
    }
    println!("{t}");
    println!("full-Ki grows ~quadratically (ratio doubles per bank doubling): PLA-only designs cap near 16 banks.");
}
