//! Figure 11: vaxpy alignment sensitivity — PVA-SDRAM across the five
//! relative alignments and six strides (graph a), and the ratio to the
//! PVA-SRAM system under the same conditions (graph b).
//!
//! The key claim (§6.3.1): the SDRAM PVA performs "remarkably close" to
//! the SRAM PVA — at most ~15% slower in the worst alignment — proving
//! the scheduler hides SDRAM activate/precharge latencies.

use pva_bench::report::Table;
use pva_bench::vaxpy_detail;

fn main() {
    let pts = vaxpy_detail();
    let base = pts
        .iter()
        .find(|p| p.stride == 1)
        .expect("stride 1 present")
        .sdram;
    let mut t = Table::new(vec![
        "stride",
        "alignment",
        "pva-sdram",
        "norm to leftmost",
        "pva-sram",
        "sdram/sram",
    ]);
    let mut worst = 1.0f64;
    for p in &pts {
        let ratio = p.sdram as f64 / p.sram as f64;
        worst = worst.max(ratio);
        t.row(vec![
            p.stride.to_string(),
            p.alignment.to_string(),
            p.sdram.to_string(),
            format!("{:.0}%", 100.0 * p.sdram as f64 / base as f64),
            p.sram.to_string(),
            format!("{ratio:.3}"),
        ]);
    }
    println!("Figure 11 — vaxpy on PVA-SDRAM vs PVA-SRAM across alignments\n");
    println!("{t}");
    println!(
        "worst-case SDRAM/SRAM ratio: {worst:.3}  (paper: at most ~1.15, \
         with two cases below 1.0 from an implementation artifact)"
    );
}
