//! Figure 7: comparative performance of copy, saxpy and scale with
//! varying stride (1, 2, 4, 8, 16, 19) on the four memory systems.
//!
//! Columns are total cycles for the 1024-element kernel; PVA systems
//! report min/max over the five relative alignments. The paper's bars
//! are these numbers; who wins and by what factor is the reproduction
//! target (absolute cycles differ from the gate-level testbed).

use kernels::Kernel;
use pva_bench::report::Table;
use pva_bench::stride_sweep;

fn main() {
    let rows = stride_sweep(&[Kernel::Copy, Kernel::Saxpy, Kernel::Scale]);
    let mut t = Table::new(vec![
        "kernel",
        "stride",
        "pva-sdram min",
        "pva-sdram max",
        "pva-sram min",
        "pva-sram max",
        "cacheline",
        "serial-gather",
    ]);
    for r in &rows {
        t.row(vec![
            r.kernel.to_string(),
            r.stride.to_string(),
            r.cells[0].1.min.to_string(),
            r.cells[0].1.max.to_string(),
            r.cells[1].1.min.to_string(),
            r.cells[1].1.max.to_string(),
            r.cells[2].1.min.to_string(),
            r.cells[3].1.min.to_string(),
        ]);
    }
    println!("Figure 7 — cycles per 1024-element kernel, varying stride\n");
    println!("{t}");
}
