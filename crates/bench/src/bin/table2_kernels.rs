//! Table 2: the kernels used to evaluate the design, with a self-check
//! that each kernel's generated command trace matches its access
//! pattern (reads/writes per iteration, array count, unrolling).

use kernels::{Kernel, ELEMENTS, LINE_WORDS};
use pva_bench::report::Table;
use pva_sim::OpKind;

fn main() {
    println!("Table 2 — kernels used to evaluate the design\n");
    let mut t = Table::new(vec![
        "kernel",
        "arrays",
        "cmds/chunk",
        "unroll",
        "access pattern",
    ]);
    for k in Kernel::ALL {
        t.row(vec![
            k.name().to_string(),
            k.array_count().to_string(),
            k.accesses().len().to_string(),
            k.unroll().to_string(),
            k.source().to_string(),
        ]);
    }
    println!("{t}");

    // Self-check: trace structure for each kernel at stride 4.
    println!("trace self-check (stride 4, {ELEMENTS} elements, {LINE_WORDS}-word commands):");
    for k in Kernel::ALL {
        let bases: Vec<u64> = (0..k.array_count() as u64).map(|i| i << 22).collect();
        let trace = k.trace(&bases, 4, ELEMENTS, LINE_WORDS);
        let reads = trace.iter().filter(|op| op.kind == OpKind::Read).count();
        let writes = trace.len() - reads;
        println!(
            "  {:8} {} commands ({} reads, {} writes)",
            k.name(),
            trace.len(),
            reads,
            writes
        );
        assert_eq!(
            trace.len() as u64,
            (ELEMENTS / LINE_WORDS) * k.accesses().len() as u64
        );
    }
    println!("all traces consistent with Table 2 access patterns");
}
