//! §4.3.1 "Scaling the Number of Banks": PVA throughput and PLA cost as
//! the bank count grows.
//!
//! The paper argues the K1-PLA design scales to large bank counts while
//! the full-Ki PLA caps near 16 banks. This bench adds the performance
//! half of that story: on the fixed 32-word line, parallelism saturates
//! once the banks outnumber the line's elements per bank — the staging
//! bus, not the banks, becomes the limit.

use pva_bench::report::Table;
use pva_core::{Geometry, K1Pla, Vector};
use pva_sim::{HostRequest, PvaConfig, PvaUnit};

fn run(banks: u64, stride: u64) -> u64 {
    let cfg = PvaConfig {
        geometry: Geometry::word_interleaved(banks).expect("power of two"),
        ..PvaConfig::default()
    };
    let mut unit = PvaUnit::new(cfg).expect("valid config");
    let reqs: Vec<HostRequest> = (0..16u64)
        .map(|i| HostRequest::Read {
            vector: Vector::new(i * 32 * stride, stride, 32).expect("valid vector"),
        })
        .collect();
    unit.run(reqs).expect("runs").cycles
}

fn main() {
    println!("Bank-count scaling — 16 gathered reads (cycles) and K1-PLA bits\n");
    let mut t = Table::new(vec![
        "banks",
        "stride 1",
        "stride 3",
        "stride 8",
        "K1 PLA bits/BC",
    ]);
    for m in [2u64, 4, 8, 16, 32, 64] {
        let g = Geometry::word_interleaved(m).expect("power of two");
        t.row(vec![
            m.to_string(),
            run(m, 1).to_string(),
            run(m, 3).to_string(),
            run(m, 8).to_string(),
            K1Pla::new(&g).complexity().total_bits.to_string(),
        ]);
    }
    println!("{t}");
    println!("small systems are bank-limited (stride 8 on 4 banks = single bank);");
    println!("beyond 16 banks the 17-cycle/command staging bus dominates, so extra banks");
    println!("buy robustness to bad strides, not raw throughput — while K1-PLA cost stays linear");
}
