//! DRAM-technology sweep (§2.3): the PVA front end over device models
//! inspired by the technologies the paper surveys — conventional/EDO
//! (one row buffer), SDRAM (4 internal banks), SLDRAM-like (8),
//! Direct-Rambus-like (32) and idealized SRAM.
//!
//! The point the paper's background section makes: modern DRAM's value
//! is *pipelined, overlappable* access, and a smart controller converts
//! it into SRAM-like effective latency. This sweep measures how much of
//! that the PVA achieves on each device class, and where the device
//! still shows through (row-conflict-heavy access).

use kernels::{Alignment, Kernel};
use memsys::{MemorySystem, PvaSystem};
use pva_bench::report::Table;
use pva_core::Vector;
use pva_sim::{HostRequest, PvaConfig, PvaUnit};
use sdram::SdramConfig;

fn run(sdram: SdramConfig, stride: u64) -> u64 {
    let cfg = PvaConfig {
        sdram,
        ..PvaConfig::default()
    };
    let mut unit = PvaUnit::new(cfg).expect("valid config");
    let reqs: Vec<HostRequest> = (0..16u64)
        .map(|i| HostRequest::Read {
            vector: Vector::new(i * 32 * stride, stride, 32).expect("valid vector"),
        })
        .collect();
    unit.run(reqs).expect("runs").cycles
}

/// Row-conflict-heavy probe: vaxpy at stride 16, coincident alignment —
/// three arrays fighting over the rows of one external bank.
fn row_conflict(sdram: SdramConfig) -> u64 {
    let cfg = PvaConfig {
        sdram,
        ..PvaConfig::default()
    };
    let k = Kernel::Vaxpy;
    let bases = Alignment::Coincident.bases(k.array_count(), kernels::ARRAY_REGION);
    let trace = k.trace(&bases, 16, kernels::ELEMENTS, kernels::LINE_WORDS);
    PvaSystem::with_config("tech", cfg).run_trace(&trace)
}

fn main() {
    println!("DRAM technology sweep — 16 gathered reads through the PVA (cycles)\n");
    let techs: Vec<(&str, SdramConfig)> = vec![
        ("edo-like (1 row buffer)", SdramConfig::edo_like()),
        ("sdram (4 internal banks)", SdramConfig::default()),
        ("sldram-like (8 banks)", SdramConfig::sldram_like()),
        ("drdram-like (32 banks)", SdramConfig::drdram_like()),
        ("ideal sram", SdramConfig::sram_like()),
    ];
    let mut t = Table::new(vec![
        "device",
        "stride 1",
        "stride 16",
        "stride 19",
        "vaxpy s16 (row conflicts)",
    ]);
    for (name, cfg) in &techs {
        t.row(vec![
            name.to_string(),
            run(*cfg, 1).to_string(),
            run(*cfg, 16).to_string(),
            run(*cfg, 19).to_string(),
            row_conflict(*cfg).to_string(),
        ]);
    }
    println!("{t}");
    println!("on pure vector bursts (first three columns) the PVA's scheduling amortizes row");
    println!("opens so thoroughly that even a single-row-buffer EDO-like device keeps pace —");
    println!("the latency-hiding claim of the paper in its strongest form; device differences");
    println!("surface only under row *conflicts* (last column), where internal-bank overlap");
    println!("and the core timings separate the technologies, SRAM bounding them below");
}
