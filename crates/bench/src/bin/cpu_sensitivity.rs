//! The §6.2 caveat, measured: how processor-side limits erode the
//! PVA's peak speedups.
//!
//! "Speed up experienced by vector applications will be subject to
//! several criteria like the percentage of vectoriseable memory
//! accesses, the issue width of the processor, number of outstanding L2
//! cache misses permitted..." This bench sweeps all three against the
//! cache-line baseline on a stride-19 workload.

use kernels::{run_point, Alignment, Kernel, SystemKind};
use pva_bench::report::Table;
use pva_core::Vector;
use pva_sim::{mixed_workload, CpuConfig, CpuModel, HostRequest, PvaConfig};

fn reads(n: u64, stride: u64) -> Vec<HostRequest> {
    (0..n)
        .map(|i| HostRequest::Read {
            vector: Vector::new(i * 32 * stride, stride, 32).expect("valid"),
        })
        .collect()
}

fn main() {
    let reqs = reads(32, 19);
    let baseline_cl = run_point(
        Kernel::Scale,
        19,
        Alignment::BankStagger,
        SystemKind::CachelineSerial,
    ) / 2;
    // (scale = 64 commands; our probe is 32 reads, so halve.)

    println!("CPU sensitivity — 32 stride-19 gathers vs the cache-line baseline\n");

    println!("outstanding L2 misses permitted (infinitely fast issue):");
    let mut t = Table::new(vec![
        "outstanding",
        "pva cycles",
        "stalls",
        "speedup vs cacheline",
    ]);
    for k in [1usize, 2, 4, 8] {
        let r = CpuModel::new(CpuConfig {
            max_outstanding: k,
            ..CpuConfig::default()
        })
        .drive(PvaConfig::default(), &reqs)
        .expect("runs");
        t.row(vec![
            k.to_string(),
            r.cycles.to_string(),
            r.stall_cycles.to_string(),
            format!("{:.1}x", baseline_cl as f64 / r.cycles as f64),
        ]);
    }
    println!("{t}");

    println!("compute cycles between requests (8 outstanding):");
    let mut t = Table::new(vec!["gap", "pva cycles", "speedup vs cacheline"]);
    for gap in [0u64, 8, 17, 34, 68] {
        let r = CpuModel::new(CpuConfig {
            cycles_between_requests: gap,
            max_outstanding: 8,
        })
        .drive(PvaConfig::default(), &reqs)
        .expect("runs");
        t.row(vec![
            gap.to_string(),
            r.cycles.to_string(),
            format!("{:.1}x", baseline_cl as f64 / r.cycles as f64),
        ]);
    }
    println!("{t}");

    println!("fraction of accesses that are vectorizable (rest are unit-stride fills):");
    let mut t = Table::new(vec![
        "% vector",
        "pva-path cycles",
        "all-cacheline cycles",
        "speedup",
    ]);
    for pct in [0u64, 25, 50, 75, 100] {
        let w = mixed_workload(32, pct, 19);
        let r = CpuModel::new(CpuConfig::default())
            .drive(PvaConfig::default(), &w)
            .expect("runs");
        // The all-cache-line alternative pays per-line costs for the
        // strided fraction (19 lines each) and one line for the rest.
        let strided = (32 * pct / 100) as f64;
        let cl = strided * 19.0 * 20.0 + (32.0 - strided) * 20.0;
        t.row(vec![
            format!("{pct}%"),
            r.cycles.to_string(),
            format!("{cl:.0}"),
            format!("{:.1}x", cl / r.cycles as f64),
        ]);
    }
    println!("{t}");
    println!("peak speedups need many outstanding misses and dense vector traffic —");
    println!("exactly the qualification the paper attaches to its own numbers");
}
