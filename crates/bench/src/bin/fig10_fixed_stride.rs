//! Figure 10: comparative performance of all kernels at fixed strides
//! 8, 16 and 19, continued from figure 9 (same format).
//!
//! Stride 19 is the paper's prime-stride showcase: the PVA runs at
//! near-unit-stride speed while the cache-line system fetches a whole
//! line per few elements (2878%–3278% of PVA time in the paper).

use pva_bench::fixed_stride;
use pva_bench::report::Table;

fn main() {
    for stride in [8u64, 16, 19] {
        let rows = fixed_stride(stride);
        let mut t = Table::new(vec![
            "kernel",
            "pva-sdram",
            "pva-sram",
            "cacheline",
            "cl % of pva",
            "serial-gather",
            "sg % of pva",
        ]);
        for r in &rows {
            t.row(vec![
                r.kernel.to_string(),
                r.cells[0].1.min.to_string(),
                r.cells[1].1.min.to_string(),
                r.cells[2].1.min.to_string(),
                format!("{:.0}%", r.cells[2].2),
                r.cells[3].1.min.to_string(),
                format!("{:.0}%", r.cells[3].2),
            ]);
        }
        println!("Figure 10 — all kernels at stride {stride} (cycles, min over alignments)\n");
        println!("{t}");
    }
}
