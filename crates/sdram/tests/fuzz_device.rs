//! Fuzz the SDRAM device with random-but-legal command streams and
//! cross-check the device's restimer enforcement against the
//! independent [`TimingAuditor`]. Randomized with the deterministic
//! in-tree [`SplitMix64`] so failures replay exactly.

use pva_core::SplitMix64;
use sdram::{Sdram, SdramCmd, SdramConfig, TimingAuditor};

const CASES: u64 = 64;

/// Drives `steps` cycles of random legal traffic; returns the auditor
/// and the set of (local_addr, data) writes performed.
fn drive(seed: u64, steps: u32, cfg: SdramConfig) -> (TimingAuditor, Vec<(u64, u64)>, Sdram) {
    let mut rng = SplitMix64::new(seed);
    let mut dev = Sdram::new(cfg);
    let mut audit = TimingAuditor::new(cfg);
    let mut writes = Vec::new();
    for _ in 0..steps {
        // Propose a few random commands; issue the first legal one.
        let mut issued = false;
        for _ in 0..8 {
            let bank = rng.below(cfg.internal_banks as u64) as u32;
            let cmd = match rng.below(4) {
                0 => SdramCmd::Activate {
                    bank,
                    row: rng.below(8),
                },
                1 => SdramCmd::Read {
                    bank,
                    col: rng.below(16),
                    auto_precharge: rng.chance(3, 10),
                    tag: rng.next_u64(),
                },
                2 => SdramCmd::Write {
                    bank,
                    col: rng.below(16),
                    data: rng.next_u64(),
                    auto_precharge: rng.chance(3, 10),
                },
                _ => SdramCmd::Precharge { bank },
            };
            if dev.can_issue(&cmd).is_ok() {
                if let SdramCmd::Write {
                    bank, col, data, ..
                } = cmd
                {
                    if let Some(row) = dev.open_row(bank) {
                        writes.push((dev.local_addr(bank, row, col), data));
                    }
                }
                audit.observe(dev.now(), &cmd);
                dev.issue(cmd).expect("can_issue approved this command");
                issued = true;
                break;
            }
        }
        if !issued {
            dev.issue(SdramCmd::Nop).expect("nop always legal");
        }
        dev.tick();
        dev.take_ready_data();
    }
    (audit, writes, dev)
}

/// Any stream the device accepts is clean under independent audit.
#[test]
fn device_never_violates_timing() {
    let mut seeds = SplitMix64::new(0x5D01);
    for _ in 0..CASES {
        let (audit, _, _) = drive(seeds.next_u64(), 400, SdramConfig::default());
        audit.assert_clean();
    }
}

/// Tighter timing parameters are enforced too.
#[test]
fn device_clean_with_slow_timings() {
    let cfg = SdramConfig {
        t_rcd: 3,
        t_cas: 3,
        t_rp: 3,
        t_ras: 7,
        t_rc: 10,
        t_wr: 2,
        ..SdramConfig::default()
    };
    let mut seeds = SplitMix64::new(0x5D02);
    for _ in 0..CASES {
        let (audit, _, _) = drive(seeds.next_u64(), 400, cfg);
        audit.assert_clean();
    }
}

/// The last write to each address is what a functional read returns.
#[test]
fn writes_are_durable() {
    let mut seeds = SplitMix64::new(0x5D03);
    for _ in 0..CASES {
        let (_, writes, dev) = drive(seeds.next_u64(), 300, SdramConfig::default());
        use std::collections::HashMap;
        let mut last: HashMap<u64, u64> = HashMap::new();
        for (addr, data) in writes {
            last.insert(addr, data);
        }
        for (addr, data) in last {
            assert_eq!(dev.peek(addr), data);
        }
    }
}

#[test]
fn back_to_back_reads_stream_every_cycle() {
    // The pipelining claim of §2: "it is possible to apply one address to
    // an SDRAM every cycle". 16 reads from an open row take 16 command
    // cycles + CAS latency.
    let cfg = SdramConfig::default();
    let mut dev = Sdram::new(cfg);
    dev.issue(SdramCmd::Activate { bank: 0, row: 0 }).unwrap();
    dev.tick();
    dev.tick();
    let start = dev.now();
    for i in 0..16u64 {
        dev.issue(SdramCmd::Read {
            bank: 0,
            col: i,
            auto_precharge: false,
            tag: i,
        })
        .unwrap();
        dev.tick();
    }
    let mut got = Vec::new();
    while dev.has_in_flight() {
        dev.tick();
        got.extend(dev.take_ready_data());
    }
    assert_eq!(got.len(), 16);
    let last = got.last().unwrap().at_cycle;
    assert_eq!(last - start, 15 + cfg.t_cas as u64);
}
