//! Fault injection and SEC-DED ECC behaviour of the SDRAM device.

use sdram::{FaultConfig, Sdram, SdramCmd, SdramConfig};

/// Reads `col` of `row` on `bank` end to end, returning the
/// `ReadReturn`.
fn timed_read(d: &mut Sdram, bank: u32, row: u64, col: u64) -> sdram::ReadReturn {
    d.issue(SdramCmd::Activate { bank, row }).unwrap();
    d.tick();
    d.tick();
    d.issue(SdramCmd::Read {
        bank,
        col,
        auto_precharge: false,
        tag: 7,
    })
    .unwrap();
    d.tick();
    d.tick();
    d.take_ready_data()[0]
}

fn cfg_with(fault: FaultConfig, ecc: bool) -> SdramConfig {
    SdramConfig {
        ecc,
        fault,
        ..SdramConfig::default()
    }
}

#[test]
fn clean_device_reports_no_fault_stats() {
    let mut d = Sdram::new(cfg_with(FaultConfig::none(), true));
    let local = d.local_addr(0, 1, 2);
    d.poke(local, 0xABCD);
    let r = timed_read(&mut d, 0, 1, 2);
    assert_eq!(r.data, 0xABCD);
    assert!(!r.poisoned);
    let s = *d.stats();
    assert_eq!((s.corrected, s.detected_uncorrectable, s.silent), (0, 0, 0));
}

#[test]
fn every_read_transient_is_corrected_with_ecc() {
    // transient_ppm = 1_000_000: every read suffers one bit flip.
    let fault = FaultConfig {
        seed: 5,
        transient_ppm: 1_000_000,
        ..FaultConfig::none()
    };
    let mut d = Sdram::new(cfg_with(fault, true));
    for col in 0..16u64 {
        let local = d.local_addr(0, 1, col);
        d.poke(local, 0x1111_0000 + col);
    }
    let mut dev_now = d;
    for col in 0..16u64 {
        let r = timed_read(&mut dev_now, 0, 1, col);
        assert_eq!(r.data, 0x1111_0000 + col, "flip at col {col} corrected");
        assert!(!r.poisoned);
        // Re-close the row for the next iteration's activate.
        for _ in 0..4 {
            dev_now.tick();
        }
        dev_now.issue(SdramCmd::Precharge { bank: 0 }).unwrap();
        for _ in 0..6 {
            dev_now.tick();
        }
    }
    let s = *dev_now.stats();
    assert_eq!(s.transient_faults, 16);
    assert_eq!(s.corrected, 16);
    assert_eq!(s.silent, 0);
}

#[test]
fn transients_without_ecc_corrupt_silently() {
    let fault = FaultConfig {
        seed: 5,
        transient_ppm: 1_000_000,
        ..FaultConfig::none()
    };
    let mut d = Sdram::new(cfg_with(fault, false));
    let local = d.local_addr(0, 1, 0);
    d.poke(local, 0xABCD);
    let mut silent = 0;
    let mut d2 = d;
    for _ in 0..8 {
        let r = timed_read(&mut d2, 0, 1, 0);
        assert!(!r.poisoned, "without ECC nothing is flagged");
        if r.data != 0xABCD {
            silent += 1;
        }
        for _ in 0..4 {
            d2.tick();
        }
        d2.issue(SdramCmd::Precharge { bank: 0 }).unwrap();
        for _ in 0..6 {
            d2.tick();
        }
    }
    assert!(silent > 0, "some flips must land in the data bits");
    assert_eq!(d2.stats().silent, silent);
    assert_eq!(d2.stats().corrected, 0);
}

#[test]
fn stuck_cells_are_deterministic_and_corrected() {
    // stuck_ppm = 1_000_000: every word has one stuck bit.
    let fault = FaultConfig {
        seed: 77,
        stuck_ppm: 1_000_000,
        ..FaultConfig::none()
    };
    let mut d = Sdram::new(cfg_with(fault, true));
    let local = d.local_addr(2, 4, 9);
    d.poke(local, 0);
    let first = timed_read(&mut d, 2, 4, 9);
    assert!(!first.poisoned);
    assert_eq!(first.data, 0, "stuck bit corrected (or already agreed)");
    assert_eq!(d.stats().silent, 0);
    // The same location read again behaves identically.
    for _ in 0..4 {
        d.tick();
    }
    d.issue(SdramCmd::Precharge { bank: 2 }).unwrap();
    for _ in 0..6 {
        d.tick();
    }
    let second = timed_read(&mut d, 2, 4, 9);
    assert_eq!(second.data, 0);
}

#[test]
fn hard_failed_bank_poisons_reads_and_drops_writes() {
    let fault = FaultConfig {
        seed: 1,
        hard_failed_bank: Some(1),
        ..FaultConfig::none()
    };
    let mut d = Sdram::new(cfg_with(fault, false));
    // A write to the dead bank stores nothing.
    d.issue(SdramCmd::Activate { bank: 1, row: 0 }).unwrap();
    d.tick();
    d.tick();
    d.issue(SdramCmd::Write {
        bank: 1,
        col: 0,
        data: 0x5555,
        auto_precharge: false,
    })
    .unwrap();
    d.tick();
    d.issue(SdramCmd::Read {
        bank: 1,
        col: 0,
        auto_precharge: false,
        tag: 3,
    })
    .unwrap();
    d.tick();
    d.tick();
    let r = d.take_ready_data()[0];
    assert!(r.poisoned, "reads from a dead bank are flagged");
    assert_eq!(d.stats().dropped_writes, 1);
    assert_eq!(d.stats().detected_uncorrectable, 1);
    assert_eq!(d.stats().silent, 0, "flagged loss is not silent");
    // Healthy banks are unaffected.
    let ok = timed_read(&mut d, 0, 0, 0);
    assert!(!ok.poisoned);
}

#[test]
fn fault_streams_replay_bit_identically_from_the_seed() {
    let fault = FaultConfig {
        seed: 909,
        transient_ppm: 300_000,
        stuck_ppm: 50_000,
        ..FaultConfig::none()
    };
    let run = || {
        let mut d = Sdram::new(cfg_with(fault, true));
        let mut out = Vec::new();
        for col in 0..8u64 {
            let r = timed_read(&mut d, 0, 2, col);
            out.push((r.data, r.poisoned));
            for _ in 0..4 {
                d.tick();
            }
            d.issue(SdramCmd::Precharge { bank: 0 }).unwrap();
            for _ in 0..6 {
                d.tick();
            }
        }
        (out, *d.stats())
    };
    assert_eq!(run(), run());
}

#[test]
fn try_new_rejects_bad_fault_configs_without_panicking() {
    let bad = cfg_with(
        FaultConfig {
            hard_failed_bank: Some(99),
            ..FaultConfig::none()
        },
        false,
    );
    assert!(Sdram::try_new(bad).is_err());
    let bad_rate = cfg_with(
        FaultConfig {
            transient_ppm: 2_000_000,
            ..FaultConfig::none()
        },
        false,
    );
    assert!(Sdram::try_new(bad_rate).is_err());
}
