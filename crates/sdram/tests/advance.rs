//! `Sdram::advance` is the fast path's bulk clock: it must be exactly
//! equivalent to the same number of `tick` calls, for any delta — the
//! event-driven simulator hands it jumps far beyond `u32` when a trace
//! goes quiescent, and a wrap in any internal countdown would let a
//! stale timer gate (or fail to gate) a later command.

use sdram::{DevicePreset, Sdram, SdramCmd, SdramConfig};

fn device() -> Sdram {
    Sdram::new(SdramConfig::default())
}

/// Snapshot of the observable device state used for tick-vs-advance
/// comparisons.
fn fingerprint(d: &Sdram) -> (u64, Option<u64>, bool, Vec<u64>) {
    let banks = d.config().internal_banks;
    (
        d.now(),
        d.open_row(0),
        d.quiet(),
        (0..banks)
            .flat_map(|b| {
                [
                    d.activate_ready_at(b),
                    d.access_ready_at(b),
                    d.precharge_ready_at(b),
                ]
            })
            .collect(),
    )
}

#[test]
fn advance_matches_repeated_ticks() {
    for n in [0u64, 1, 2, 3, 7, 50] {
        let mut ticked = device();
        let mut jumped = device();
        for d in [&mut ticked, &mut jumped] {
            d.issue(SdramCmd::Activate { bank: 1, row: 9 }).unwrap();
        }
        for _ in 0..n {
            ticked.tick();
        }
        jumped.advance(n);
        assert_eq!(
            fingerprint(&ticked),
            fingerprint(&jumped),
            "advance({n}) vs {n} ticks"
        );
        // Both must agree on whether the activate's tRCD has lapsed.
        let probe = SdramCmd::Read {
            bank: 1,
            col: 0,
            auto_precharge: false,
            tag: 0,
        };
        assert_eq!(
            ticked.can_issue(&probe).is_ok(),
            jumped.can_issue(&probe).is_ok(),
            "tRCD gating after advance({n})"
        );
    }
}

#[test]
fn advance_far_beyond_u32_expires_every_timer() {
    let mut d = device();
    d.issue(SdramCmd::Activate { bank: 0, row: 3 }).unwrap();
    d.advance(1 << 40);
    assert_eq!(d.now(), 1 << 40);
    // Every restimer armed by the activate lies deep in the past.
    for b in 0..d.config().internal_banks {
        assert!(d.access_ready_at(b) <= d.now(), "bank {b} access timer");
        assert!(
            d.precharge_ready_at(b) <= d.now(),
            "bank {b} precharge timer"
        );
    }
    // The device is fully usable at the far side of the jump.
    d.issue(SdramCmd::Precharge { bank: 0 }).unwrap();
    d.advance(1 << 41);
    d.issue(SdramCmd::Activate { bank: 0, row: 4 }).unwrap();
    assert_eq!(d.stats().activates, 2);
}

#[test]
fn advance_saturates_at_the_end_of_time() {
    let mut d = device();
    d.advance(u64::MAX);
    assert_eq!(d.now(), u64::MAX);
    // A second maximal jump must saturate, not wrap to the past.
    d.advance(u64::MAX);
    assert_eq!(d.now(), u64::MAX);
    assert!(d.quiet());
}

#[test]
fn advance_preserves_refresh_accounting_across_huge_jumps() {
    let mut d = Sdram::new(SdramConfig::for_device(DevicePreset::SdrRefresh));
    // A jump of many whole refresh intervals leaves refresh overdue —
    // not wrapped back to "recently refreshed".
    d.advance(1 << 40);
    assert!(d.refresh_due(), "refresh pressure must survive the jump");
    d.issue(SdramCmd::Refresh).unwrap();
    assert_eq!(d.stats().refreshes, 1);
}
