//! AUTO REFRESH semantics of the SDRAM device (§2.2).

use sdram::{DevicePreset, IssueError, Sdram, SdramCmd, SdramConfig};

fn refreshing() -> Sdram {
    Sdram::new(SdramConfig::for_device(DevicePreset::SdrRefresh))
}

#[test]
fn refresh_requires_closed_rows() {
    let mut d = refreshing();
    d.issue(SdramCmd::Activate { bank: 0, row: 1 }).unwrap();
    d.tick();
    assert_eq!(
        d.issue(SdramCmd::Refresh).unwrap_err(),
        IssueError::RefreshNeedsIdleBanks
    );
}

#[test]
fn refresh_blocks_commands_for_trfc() {
    let mut d = refreshing();
    d.issue(SdramCmd::Refresh).unwrap();
    d.tick();
    // tRFC = 8: commands rejected for 7 more cycles after the first tick.
    for _ in 0..7 {
        assert_eq!(
            d.issue(SdramCmd::Activate { bank: 0, row: 0 }).unwrap_err(),
            IssueError::RefreshInProgress
        );
        d.tick();
    }
    assert!(d.issue(SdramCmd::Activate { bank: 0, row: 0 }).is_ok());
    assert_eq!(d.stats().refreshes, 1);
}

#[test]
fn refresh_due_tracks_interval() {
    let mut d = refreshing();
    assert!(!d.refresh_due());
    for _ in 0..781 {
        d.tick();
    }
    assert!(d.refresh_due());
    d.issue(SdramCmd::Refresh).unwrap();
    d.tick();
    assert!(!d.refresh_due());
}

#[test]
fn refresh_disabled_by_default() {
    let mut d = Sdram::new(SdramConfig::default());
    for _ in 0..10_000 {
        d.tick();
    }
    assert!(!d.refresh_due());
}

#[test]
fn nop_is_legal_during_refresh() {
    let mut d = refreshing();
    d.issue(SdramCmd::Refresh).unwrap();
    assert!(d.issue(SdramCmd::Nop).is_ok());
}

// ---------------------------------------------------------------------
// Refresh decay: data survives iff the row's charge is restored (by
// ACTIVATE or AUTO REFRESH) within the retention window.
// ---------------------------------------------------------------------

use sdram::FaultConfig;

/// A device with decay modeled: refresh enabled (interval 781) and a
/// retention window of `retention` cycles.
fn decaying(retention: u64) -> Sdram {
    Sdram::new(SdramConfig {
        fault: FaultConfig {
            seed: 42,
            retention_cycles: retention,
            ..FaultConfig::none()
        },
        ..SdramConfig::for_device(DevicePreset::SdrRefresh)
    })
}

/// Opens `row` on bank 0, writes `data` at column 0, and precharges.
fn write_row0(d: &mut Sdram, row: u64, data: u64) {
    d.issue(SdramCmd::Activate { bank: 0, row }).unwrap();
    d.tick();
    d.tick();
    d.issue(SdramCmd::Write {
        bank: 0,
        col: 0,
        data,
        auto_precharge: false,
    })
    .unwrap();
    for _ in 0..5 {
        d.tick(); // out-wait tRAS/tWR
    }
    d.issue(SdramCmd::Precharge { bank: 0 }).unwrap();
    d.tick();
    d.tick();
}

/// Activates `row` on bank 0 and reads column 0 back.
fn read_row0(d: &mut Sdram, row: u64) -> u64 {
    d.issue(SdramCmd::Activate { bank: 0, row }).unwrap();
    d.tick();
    d.tick();
    d.issue(SdramCmd::Read {
        bank: 0,
        col: 0,
        auto_precharge: false,
        tag: 0,
    })
    .unwrap();
    d.tick();
    d.tick();
    d.take_ready_data()[0].data
}

#[test]
fn data_decays_when_retention_window_lapses() {
    let mut d = decaying(2_000);
    write_row0(&mut d, 3, 0xCAFE);
    // Violate the retention window: no activate, no refresh.
    for _ in 0..3_000 {
        d.tick();
    }
    let got = read_row0(&mut d, 3);
    assert_ne!(got, 0xCAFE, "retention violated: data must decay");
    assert_eq!(
        (got ^ 0xCAFE).count_ones(),
        1,
        "decay loses exactly one (deterministic) bit per word"
    );
    assert_eq!(d.stats().decayed_words, 1);
    assert_eq!(d.stats().silent, 1, "without ECC the corruption is silent");
}

#[test]
fn data_survives_within_retention_window() {
    let mut d = decaying(2_000);
    write_row0(&mut d, 3, 0xCAFE);
    for _ in 0..1_500 {
        d.tick();
    }
    assert_eq!(read_row0(&mut d, 3), 0xCAFE);
    assert_eq!(d.stats().decayed_words, 0);
}

#[test]
fn on_schedule_refreshes_prevent_decay() {
    // Refresh whenever refresh_due() says so; the decay model must
    // agree that an on-schedule device never loses data.
    let mut d = decaying(2_000);
    write_row0(&mut d, 7, 0xBEEF);
    for _ in 0..10_000 {
        if d.refresh_due() && !d.refresh_in_progress() {
            d.issue(SdramCmd::Refresh).unwrap();
        }
        d.tick();
    }
    assert!(d.stats().refreshes >= 10, "refresh_due drove the cadence");
    assert_eq!(read_row0(&mut d, 7), 0xBEEF);
    assert_eq!(d.stats().decayed_words, 0);
    assert_eq!(d.stats().silent, 0);
}

#[test]
fn late_refresh_perpetuates_the_decayed_value() {
    // A refresh after the window lapsed recharges the *corrupted*
    // cells: the data stays wrong even though refreshes resume.
    let mut d = decaying(2_000);
    write_row0(&mut d, 5, 0xF00D);
    for _ in 0..3_000 {
        d.tick();
    }
    d.issue(SdramCmd::Refresh).unwrap();
    for _ in 0..10 {
        d.tick();
    }
    assert_eq!(d.stats().decayed_words, 1, "the late refresh found decay");
    let got = read_row0(&mut d, 5);
    assert_ne!(got, 0xF00D);
}

#[test]
fn rewrite_recharges_a_decayed_word() {
    let mut d = decaying(2_000);
    write_row0(&mut d, 3, 0xCAFE);
    for _ in 0..3_000 {
        d.tick();
    }
    assert_ne!(read_row0(&mut d, 3), 0xCAFE);
    // The row is still open; rewrite the word and read it back.
    d.issue(SdramCmd::Write {
        bank: 0,
        col: 0,
        data: 0x1234,
        auto_precharge: false,
    })
    .unwrap();
    d.tick();
    d.issue(SdramCmd::Read {
        bank: 0,
        col: 0,
        auto_precharge: false,
        tag: 1,
    })
    .unwrap();
    d.tick();
    d.tick();
    assert_eq!(d.take_ready_data()[0].data, 0x1234);
}

#[test]
fn ecc_corrects_single_bit_decay() {
    let mut d = Sdram::new(SdramConfig {
        ecc: true,
        fault: FaultConfig {
            seed: 42,
            retention_cycles: 2_000,
            ..FaultConfig::none()
        },
        ..SdramConfig::for_device(DevicePreset::SdrRefresh)
    });
    write_row0(&mut d, 3, 0xCAFE);
    for _ in 0..3_000 {
        d.tick();
    }
    assert_eq!(read_row0(&mut d, 3), 0xCAFE, "ECC repairs the decayed bit");
    assert_eq!(d.stats().decayed_words, 1);
    assert_eq!(d.stats().corrected, 1);
    assert_eq!(d.stats().silent, 0);
}

#[test]
fn retention_shorter_than_refresh_interval_is_rejected() {
    let cfg = SdramConfig {
        fault: FaultConfig {
            retention_cycles: 100, // < interval 781
            ..FaultConfig::none()
        },
        ..SdramConfig::for_device(DevicePreset::SdrRefresh)
    };
    assert!(Sdram::try_new(cfg).is_err());
}
