//! AUTO REFRESH semantics of the SDRAM device (§2.2).

use sdram::{IssueError, Sdram, SdramCmd, SdramConfig};

fn refreshing() -> Sdram {
    Sdram::new(SdramConfig::with_refresh())
}

#[test]
fn refresh_requires_closed_rows() {
    let mut d = refreshing();
    d.issue(SdramCmd::Activate { bank: 0, row: 1 }).unwrap();
    d.tick();
    assert_eq!(
        d.issue(SdramCmd::Refresh).unwrap_err(),
        IssueError::RefreshNeedsIdleBanks
    );
}

#[test]
fn refresh_blocks_commands_for_trfc() {
    let mut d = refreshing();
    d.issue(SdramCmd::Refresh).unwrap();
    d.tick();
    // tRFC = 8: commands rejected for 7 more cycles after the first tick.
    for _ in 0..7 {
        assert_eq!(
            d.issue(SdramCmd::Activate { bank: 0, row: 0 }).unwrap_err(),
            IssueError::RefreshInProgress
        );
        d.tick();
    }
    assert!(d.issue(SdramCmd::Activate { bank: 0, row: 0 }).is_ok());
    assert_eq!(d.stats().refreshes, 1);
}

#[test]
fn refresh_due_tracks_interval() {
    let mut d = refreshing();
    assert!(!d.refresh_due());
    for _ in 0..781 {
        d.tick();
    }
    assert!(d.refresh_due());
    d.issue(SdramCmd::Refresh).unwrap();
    d.tick();
    assert!(!d.refresh_due());
}

#[test]
fn refresh_disabled_by_default() {
    let mut d = Sdram::new(SdramConfig::default());
    for _ in 0..10_000 {
        d.tick();
    }
    assert!(!d.refresh_due());
}

#[test]
fn nop_is_legal_during_refresh() {
    let mut d = refreshing();
    d.issue(SdramCmd::Refresh).unwrap();
    assert!(d.issue(SdramCmd::Nop).is_ok());
}
