//! Channel-constraint gating in the DDR3-1600 profile: tCCD_L/tCCD_S
//! per bank group, tRRD spacing, and the tFAW four-activate window —
//! the modern-generation timing the SDR part leaves disabled.

use sdram::{DevicePreset, IssueError, Sdram, SdramCmd, SdramConfig, TimingAuditor};

fn ddr3() -> Sdram {
    Sdram::new(SdramConfig::for_device(DevicePreset::Ddr3_1600))
}

fn read(bank: u32) -> SdramCmd {
    SdramCmd::Read {
        bank,
        col: 0,
        auto_precharge: false,
        tag: 0,
    }
}

fn tick_to(d: &mut Sdram, cycle: u64) {
    while d.now() < cycle {
        d.tick();
    }
}

/// Opens rows in `banks`, spacing the ACTIVATEs by tRRD, and advances
/// until every tRCD has expired.
fn open_rows(d: &mut Sdram, banks: &[u32]) {
    let cfg = *d.config();
    for &bank in banks {
        tick_to(d, d.activate_ready_at(bank).max(d.now()));
        d.issue(SdramCmd::Activate { bank, row: 1 }).unwrap();
        d.tick();
    }
    let ready = banks.iter().map(|&b| d.access_ready_at(b)).max().unwrap();
    tick_to(d, ready.max(d.now() + u64::from(cfg.t_rcd)));
}

#[test]
fn tccd_l_gates_same_group_cas() {
    // Banks 0 and 2 are both group 0 (bank & 1): the second CAS must
    // wait tCCD_L = 5 cycles.
    let mut d = ddr3();
    open_rows(&mut d, &[0, 2]);
    d.issue(read(0)).unwrap();
    let issued_at = d.now();
    d.tick();
    for _ in 0..3 {
        assert_eq!(
            d.can_issue(&read(2)),
            Err(IssueError::TimingViolation {
                bank: 2,
                timer: "tCCD"
            })
        );
        d.tick();
    }
    assert_eq!(d.now(), issued_at + 4);
    assert!(d.can_issue(&read(2)).is_err(), "4 < tCCD_L = 5");
    d.tick();
    d.issue(read(2)).unwrap();
}

#[test]
fn tccd_s_relaxes_cross_group_cas() {
    // Banks 0 (group 0) and 1 (group 1): cross-group spacing is
    // tCCD_S = 4, one cycle tighter than tCCD_L.
    let mut d = ddr3();
    open_rows(&mut d, &[0, 1]);
    d.issue(read(0)).unwrap();
    let issued_at = d.now();
    tick_to(&mut d, issued_at + 4);
    // Legal cross-group at +4, while the same group would still wait.
    assert!(d.can_issue(&read(2)).is_err(), "same group still gated");
    d.issue(read(1)).unwrap();
}

#[test]
fn access_ready_at_covers_the_ccd_gate() {
    let mut d = ddr3();
    open_rows(&mut d, &[0, 1, 2]);
    d.issue(read(0)).unwrap();
    let issued_at = d.now();
    d.tick();
    // The wake hint must point at the exact cycle each gate opens.
    assert_eq!(d.access_ready_at(2), issued_at + 5); // same group: tCCD_L
    assert_eq!(d.access_ready_at(1), issued_at + 4); // cross group: tCCD_S
    let ready = d.access_ready_at(2);
    tick_to(&mut d, ready);
    d.issue(read(2)).unwrap();
}

#[test]
fn trrd_spaces_activates_across_banks() {
    let mut d = ddr3();
    d.issue(SdramCmd::Activate { bank: 0, row: 1 }).unwrap();
    d.tick();
    // A different bank's ACTIVATE is bank-timer legal but channel
    // (tRRD = 6) gated.
    assert_eq!(
        d.can_issue(&SdramCmd::Activate { bank: 1, row: 1 }),
        Err(IssueError::TimingViolation {
            bank: 1,
            timer: "tRRD"
        })
    );
    assert_eq!(d.activate_ready_at(1), 6);
    tick_to(&mut d, 6);
    d.issue(SdramCmd::Activate { bank: 1, row: 1 }).unwrap();
}

#[test]
fn tfaw_throttles_the_fifth_activate() {
    let mut d = ddr3();
    // Four ACTIVATEs at the tRRD floor: cycles 0, 6, 12, 18.
    for bank in 0..4 {
        let ready = d.activate_ready_at(bank);
        tick_to(&mut d, ready);
        d.issue(SdramCmd::Activate { bank, row: 1 }).unwrap();
        d.tick();
    }
    assert_eq!(d.now(), 19);
    // tRRD would admit bank 4 at cycle 24, but the window of the first
    // ACTIVATE (cycle 0 + tFAW 26) holds it to 26.
    tick_to(&mut d, 24);
    assert_eq!(
        d.can_issue(&SdramCmd::Activate { bank: 4, row: 1 }),
        Err(IssueError::TimingViolation {
            bank: 4,
            timer: "tFAW"
        })
    );
    assert_eq!(d.activate_ready_at(4), 26);
    tick_to(&mut d, 26);
    d.issue(SdramCmd::Activate { bank: 4, row: 1 }).unwrap();
}

#[test]
fn next_resource_wake_includes_channel_expiries() {
    let mut d = ddr3();
    open_rows(&mut d, &[0, 1]);
    let quiet_from = d.now();
    // Wait until every bank timer from the opens has expired so the
    // only pending expiries left are channel-armed ones (plus the
    // periodic refresh deadline, thousands of cycles out).
    tick_to(&mut d, quiet_from + 64);
    let refresh_wake = d.next_resource_wake().expect("periodic refresh pending");
    assert!(
        refresh_wake > d.now() + 1000,
        "only the far refresh is left"
    );
    d.issue(read(0)).unwrap();
    let at = d.now();
    // tCCD_S = 4 is the earliest channel expiry (tCCD_L = 5 later).
    assert_eq!(d.next_resource_wake(), Some(at + 4));
}

#[test]
fn auditor_agrees_with_a_legal_ddr3_stream() {
    // Drive a greedy legal stream through the device and replay every
    // accepted command into the independent auditor: the two timing
    // implementations must agree the stream is clean.
    let cfg = SdramConfig::for_device(DevicePreset::Ddr3_1600);
    let mut d = Sdram::new(cfg);
    let mut audit = TimingAuditor::new(cfg);
    let mut reads = 0u32;
    while reads < 32 && d.now() < 4000 {
        let mut issued = None;
        for bank in 0..cfg.internal_banks {
            if d.open_row(bank).is_some() {
                let cmd = read(bank);
                if d.can_issue(&cmd).is_ok() {
                    issued = Some(cmd);
                    break;
                }
            } else {
                let cmd = SdramCmd::Activate { bank, row: 1 };
                if d.can_issue(&cmd).is_ok() {
                    issued = Some(cmd);
                    break;
                }
            }
        }
        if let Some(cmd) = issued {
            audit.observe(d.now(), &cmd);
            d.issue(cmd).unwrap();
            if matches!(cmd, SdramCmd::Read { .. }) {
                reads += 1;
            }
        }
        d.tick();
    }
    assert_eq!(reads, 32, "stream must make progress under the gates");
    audit.assert_clean();
}

#[test]
fn read_burst_staggers_beats_on_the_data_rate() {
    // One CAS, k words: beat j lands at tCAS + j / data_rate. On the
    // DDR3 part (data_rate 2) an 8-word burst spans four bus cycles.
    let mut d = ddr3();
    open_rows(&mut d, &[0]);
    let items: Vec<(u64, u64)> = (0..8).map(|j| (j, 100 + j)).collect();
    let issued_at = d.now();
    d.issue_read_burst(0, false, &items).unwrap();
    assert_eq!(d.stats().reads, 1, "a burst counts as one CAS");
    let t_cas = u64::from(d.config().t_cas);
    tick_to(&mut d, issued_at + t_cas + 4);
    let mut got = Vec::new();
    while let Some(r) = d.pop_ready() {
        got.push((r.tag, r.at_cycle));
    }
    assert_eq!(got.len(), 8, "every burst beat returns");
    for (j, &(tag, at)) in got.iter().enumerate() {
        assert_eq!(tag, 100 + j as u64, "beats return in column order");
        assert_eq!(
            at,
            issued_at + t_cas + j as u64 / 2,
            "beat {j} lands on the DDR schedule"
        );
    }
}

#[test]
fn write_burst_round_trips_through_single_reads() {
    let mut d = ddr3();
    open_rows(&mut d, &[0]);
    let items: Vec<(u64, u64)> = (0..8).map(|j| (j, 0xBEEF_0000 + j)).collect();
    d.issue_write_burst(0, false, &items).unwrap();
    assert_eq!(d.stats().writes, 1, "a burst counts as one CAS");
    // Read each column back individually; the burst must have stored
    // every word at its own column.
    for (col, data) in items {
        let ready = d.access_ready_at(0).max(d.now());
        tick_to(&mut d, ready);
        d.issue(SdramCmd::Read {
            bank: 0,
            col,
            auto_precharge: false,
            tag: col,
        })
        .unwrap();
        let data_at = d.next_data_at().unwrap();
        tick_to(&mut d, data_at);
        let r = d.pop_ready().expect("read data ready");
        assert_eq!(r.data, data, "column {col} holds the burst word");
        d.tick();
    }
}

#[test]
fn sdr_profile_is_unconstrained_by_channel_gates() {
    // The SDR part (all channel parameters 0) must accept back-to-back
    // CAS commands exactly as before this redesign.
    let mut d = Sdram::new(SdramConfig::for_device(DevicePreset::Sdr100));
    open_rows(&mut d, &[0, 1]);
    d.issue(read(0)).unwrap();
    d.tick();
    d.issue(read(1)).unwrap();
    d.tick();
    d.issue(read(0)).unwrap();
}
