//! Multi-rank (multi-chip) capacity scaling (§4.3.1): one bank
//! controller managing several SDRAM chips, each with its own row
//! buffers.

use sdram::{Sdram, SdramCmd, SdramConfig};

fn two_ranks() -> SdramConfig {
    SdramConfig {
        ranks: 2,
        log2_cols: 4,
        log2_rows: 2,
        internal_banks: 4,
        ..SdramConfig::default()
    }
}

#[test]
fn capacity_scales_with_ranks() {
    let one = SdramConfig {
        ranks: 1,
        ..two_ranks()
    };
    let two = two_ranks();
    assert_eq!(two.capacity_words(), 2 * one.capacity_words());
    assert_eq!(two.total_row_buffers(), 8);
}

#[test]
fn high_addresses_select_the_second_rank() {
    let cfg = two_ranks();
    let rank_size = cfg.capacity_words() / 2;
    let lo = cfg.map(5);
    let hi = cfg.map(rank_size + 5);
    // Same in-chip coordinates, different effective row buffer.
    assert_eq!(lo.col, hi.col);
    assert_eq!(lo.row, hi.row);
    assert_eq!(hi.bank, lo.bank + cfg.internal_banks);
}

#[test]
fn map_and_local_addr_invert_across_ranks() {
    let cfg = two_ranks();
    let dev = Sdram::new(cfg);
    for addr in (0..cfg.capacity_words()).step_by(7) {
        let ia = cfg.map(addr);
        assert_eq!(dev.local_addr(ia.bank, ia.row, ia.col), addr, "addr {addr}");
        assert!(ia.bank < cfg.total_row_buffers());
    }
}

#[test]
fn ranks_have_independent_row_buffers() {
    let cfg = two_ranks();
    let mut dev = Sdram::new(cfg);
    // Open rows in internal bank 0 of both ranks simultaneously —
    // impossible with a single chip ("different current row registers").
    dev.issue(SdramCmd::Activate { bank: 0, row: 1 }).unwrap();
    dev.tick();
    dev.issue(SdramCmd::Activate { bank: 4, row: 2 }).unwrap();
    dev.tick();
    assert_eq!(dev.open_row(0), Some(1));
    assert_eq!(dev.open_row(4), Some(2));
    // Both readable after tRCD.
    dev.issue(SdramCmd::Read {
        bank: 0,
        col: 0,
        auto_precharge: false,
        tag: 1,
    })
    .unwrap();
    dev.tick();
    dev.issue(SdramCmd::Read {
        bank: 4,
        col: 0,
        auto_precharge: false,
        tag: 2,
    })
    .unwrap();
}

#[test]
fn rank_out_of_range_rejected() {
    let mut dev = Sdram::new(two_ranks());
    assert!(dev.issue(SdramCmd::Activate { bank: 8, row: 0 }).is_err());
}
