//! Deterministic fault injection for the SDRAM device model.
//!
//! The paper's experiments assume an ideal device; this module lets the
//! simulator model the ways real SDRAM fails, so the PVA-side recovery
//! machinery (ECC, retry, watchdog, degradation) has something real to
//! recover from. Four fault kinds are modeled:
//!
//! - **Transient flips**: each READ independently flips one random bit
//!   of the returned codeword with probability `transient_ppm` parts
//!   per million (an alpha-particle / cosmic-ray upset).
//! - **Stuck-at cells**: a deterministic `stuck_ppm` fraction of word
//!   locations has one bit welded to a fixed value (a manufacturing
//!   weak cell). Which words, which bit, and which value are pure
//!   functions of the seed and the address, so the same config always
//!   yields the same defect map.
//! - **Refresh decay**: a row whose charge has not been restored (by
//!   ACTIVATE or AUTO REFRESH) within `retention_cycles` loses its
//!   weakest bit per word — see the decay bookkeeping in `device.rs`.
//! - **Hard bank failure**: one internal bank returns garbage on every
//!   read and drops every write, modeling a dead subarray.
//!
//! All randomness comes from the in-tree SplitMix64 stream, so an
//! entire fault campaign replays bit-identically from its seed.

use pva_core::SplitMix64;

use crate::ecc;

/// One million — the denominator for the parts-per-million fault rates.
pub const PPM: u64 = 1_000_000;

/// Mixing constant (the SplitMix64 golden-gamma) used to derive
/// per-address and per-controller fault streams from the base seed.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Fault-injection configuration for one SDRAM device.
///
/// The default is [`FaultConfig::none`]: no faults, matching the
/// ideal device the paper assumes. Rates are integers in parts per
/// million so the config stays `Eq` and hashable (no floats).
///
/// # Examples
///
/// ```
/// use sdram::FaultConfig;
/// let f = FaultConfig { transient_ppm: 100, ..FaultConfig::none() };
/// assert!(f.any_enabled());
/// assert!(!FaultConfig::none().any_enabled());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FaultConfig {
    /// Seed for the deterministic fault streams. Two devices with the
    /// same seed and rates develop identical faults.
    pub seed: u64,
    /// Probability, in parts per million per READ, of a transient
    /// single-bit flip in the returned codeword. `0` disables.
    pub transient_ppm: u32,
    /// Fraction, in parts per million, of word locations carrying a
    /// stuck-at bit. `0` disables.
    pub stuck_ppm: u32,
    /// Retention window in cycles: a row not restored within this many
    /// cycles decays (one bit per stored word). `0` disables decay.
    pub retention_cycles: u64,
    /// Internal bank (effective row-buffer index) that has failed
    /// hard: reads return flagged garbage, writes are dropped.
    pub hard_failed_bank: Option<u32>,
}

impl FaultConfig {
    /// The ideal device: no faults of any kind.
    pub const fn none() -> Self {
        FaultConfig {
            seed: 0,
            transient_ppm: 0,
            stuck_ppm: 0,
            retention_cycles: 0,
            hard_failed_bank: None,
        }
    }

    /// True when any fault kind is enabled.
    pub const fn any_enabled(&self) -> bool {
        self.transient_ppm > 0
            || self.stuck_ppm > 0
            || self.retention_cycles > 0
            || self.hard_failed_bank.is_some()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::none()
    }
}

/// The per-device fault engine: owns the transient-upset stream and
/// derives the deterministic stuck-cell and decay maps.
#[derive(Debug, Clone)]
pub struct FaultEngine {
    config: FaultConfig,
    rng: SplitMix64,
}

impl FaultEngine {
    /// Creates an engine for the given config, seeded from
    /// `config.seed`.
    pub fn new(config: FaultConfig) -> Self {
        FaultEngine {
            config,
            rng: SplitMix64::new(config.seed ^ GOLDEN),
        }
    }

    /// Re-derives the transient stream from the base seed and a salt,
    /// so each bank controller in a multi-device system sees an
    /// independent (but still reproducible) upset sequence. The
    /// deterministic stuck-cell and decay maps are unaffected.
    pub fn reseed(&mut self, salt: u64) {
        self.rng = SplitMix64::new(self.config.seed ^ salt.wrapping_mul(GOLDEN));
    }

    /// Decides whether this READ suffers a transient upset; if so,
    /// returns which codeword bit (`0..72`) flips. Consumes the
    /// transient stream, so call exactly once per read event.
    pub fn transient_flip(&mut self) -> Option<u32> {
        if self.config.transient_ppm == 0 {
            return None;
        }
        if self.rng.chance(u64::from(self.config.transient_ppm), PPM) {
            Some(self.rng.below(u64::from(ecc::CODEWORD_BITS)) as u32)
        } else {
            None
        }
    }

    /// The stuck-at defect at a word location, if any: `(bit, value)`
    /// welds codeword bit `bit` (`0..72`) to `value`. Pure in
    /// `(seed, local_addr)` — the defect map never changes.
    pub fn stuck_bit(&self, local_addr: u64) -> Option<(u32, bool)> {
        if self.config.stuck_ppm == 0 {
            return None;
        }
        let mut cell = SplitMix64::new(
            self.config
                .seed
                .wrapping_add(local_addr.wrapping_mul(GOLDEN)),
        );
        if cell.chance(u64::from(self.config.stuck_ppm), PPM) {
            let bit = cell.below(u64::from(ecc::CODEWORD_BITS)) as u32;
            Some((bit, cell.coin()))
        } else {
            None
        }
    }

    /// The "weakest" data bit (`0..64`) of a word — the one that decays
    /// first when the retention window is violated. Pure in
    /// `(seed, local_addr)`.
    pub fn decay_bit(&self, local_addr: u64) -> u32 {
        let mut cell = SplitMix64::new(
            self.config
                .seed
                .wrapping_add(local_addr.wrapping_mul(GOLDEN))
                .rotate_left(17),
        );
        cell.below(64) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_is_inert() {
        let mut e = FaultEngine::new(FaultConfig::none());
        assert_eq!(e.transient_flip(), None);
        assert_eq!(e.stuck_bit(123), None);
    }

    #[test]
    fn stuck_map_is_deterministic() {
        let cfg = FaultConfig {
            seed: 99,
            stuck_ppm: 500_000,
            ..FaultConfig::none()
        };
        let a = FaultEngine::new(cfg);
        let b = FaultEngine::new(cfg);
        let mut hits = 0;
        for addr in 0..2000u64 {
            assert_eq!(a.stuck_bit(addr), b.stuck_bit(addr));
            if a.stuck_bit(addr).is_some() {
                hits += 1;
            }
        }
        // 50% rate over 2000 words: comfortably inside (800, 1200).
        assert!((800..1200).contains(&hits), "stuck hits = {hits}");
    }

    #[test]
    fn transient_stream_replays_from_seed() {
        let cfg = FaultConfig {
            seed: 7,
            transient_ppm: 250_000,
            ..FaultConfig::none()
        };
        let mut a = FaultEngine::new(cfg);
        let mut b = FaultEngine::new(cfg);
        let flips_a: Vec<_> = (0..100).map(|_| a.transient_flip()).collect();
        let flips_b: Vec<_> = (0..100).map(|_| b.transient_flip()).collect();
        assert_eq!(flips_a, flips_b);
        assert!(flips_a.iter().any(Option::is_some));
        assert!(flips_a.iter().any(Option::is_none));
    }

    #[test]
    fn reseed_gives_distinct_streams() {
        let cfg = FaultConfig {
            seed: 7,
            transient_ppm: 500_000,
            ..FaultConfig::none()
        };
        let mut a = FaultEngine::new(cfg);
        let mut b = FaultEngine::new(cfg);
        a.reseed(1);
        b.reseed(2);
        let fa: Vec<_> = (0..64).map(|_| a.transient_flip()).collect();
        let fb: Vec<_> = (0..64).map(|_| b.transient_flip()).collect();
        assert_ne!(fa, fb);
    }

    #[test]
    fn decay_bit_is_stable_and_in_range() {
        let e = FaultEngine::new(FaultConfig {
            seed: 3,
            retention_cycles: 100,
            ..FaultConfig::none()
        });
        for addr in 0..512u64 {
            let bit = e.decay_bit(addr);
            assert!(bit < 64);
            assert_eq!(bit, e.decay_bit(addr));
        }
    }
}
