//! SDRAM device configuration and internal address mapping.

use core::fmt;

use crate::fault::{FaultConfig, PPM};

/// Timing and geometry parameters of one SDRAM device (one external bank
/// of the PVA memory system).
///
/// Defaults model the paper's prototype: Micron 256 Mbit SDRAM-like
/// parts at 100 MHz, RAS and CAS latencies of two cycles each, four
/// internal banks with independent row buffers (§5.1, §6.1). All times
/// are in memory-clock cycles.
///
/// # Examples
///
/// ```
/// use sdram::SdramConfig;
/// let cfg = SdramConfig::default();
/// assert_eq!(cfg.t_rcd, 2);
/// assert_eq!(cfg.internal_banks, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdramConfig {
    /// ACTIVATE-to-READ/WRITE delay (RAS-to-CAS, `tRCD`).
    pub t_rcd: u32,
    /// READ-to-data delay (CAS latency, `tCL`).
    pub t_cas: u32,
    /// PRECHARGE-to-ACTIVATE delay (`tRP`).
    pub t_rp: u32,
    /// Minimum ACTIVATE-to-PRECHARGE time (`tRAS`).
    pub t_ras: u32,
    /// Minimum ACTIVATE-to-ACTIVATE time, same internal bank (`tRC`).
    pub t_rc: u32,
    /// WRITE-to-PRECHARGE recovery (`tWR`).
    pub t_wr: u32,
    /// Number of internal banks (row buffers) per device.
    pub internal_banks: u32,
    /// log2 of the row (page) size in device words.
    pub log2_cols: u32,
    /// log2 of the number of rows per internal bank.
    pub log2_rows: u32,
    /// Memory chips (ranks) behind one bank controller (§4.3.1
    /// capacity scaling: "use a single bank controller for multiple
    /// slots, but maintain different current row registers"). Each rank
    /// carries its own internal banks and row buffers; high local-
    /// address bits select the rank (chip select).
    pub ranks: u32,
    /// Number of bank groups the internal banks are divided into
    /// (DDR4/HBM-style topology). `1` models a flat SDR/DDR3 device
    /// with no group distinction; must be a power of two, at most
    /// [`MAX_BANK_GROUPS`] and at most `internal_banks`. Consecutive
    /// internal banks alternate groups (`bank & (bank_groups - 1)`),
    /// so page-interleaved streams cross groups and see `tCCD_S`.
    pub bank_groups: u32,
    /// Words transferred per column command (burst length). `1` models
    /// the paper's SDR part (one word per CAS); `8` models a BL8
    /// DDR3/DDR4-class device. Bus occupancy of a burst is
    /// [`SdramConfig::burst_cycles`] and is enforced through `tCCD`
    /// (which must cover it).
    pub burst_words: u32,
    /// Data transfers per memory-clock cycle: `1` for single data rate,
    /// `2` for DDR-style devices. Only the ratio to `burst_words`
    /// matters to the model (it sets the burst's bus occupancy).
    pub data_rate: u32,
    /// Minimum CAS-to-CAS spacing within the *same* bank group
    /// (`tCCD_L`); `0` disables the constraint (SDR parts issue a CAS
    /// per cycle).
    pub t_ccd_l: u32,
    /// Minimum CAS-to-CAS spacing across *different* bank groups
    /// (`tCCD_S`); `0` disables the constraint. Must not exceed
    /// `t_ccd_l`.
    pub t_ccd_s: u32,
    /// Minimum ACTIVATE-to-ACTIVATE spacing between *different* banks
    /// of the device (`tRRD`); `0` disables the constraint. (Same-bank
    /// spacing is `tRC`.)
    pub t_rrd: u32,
    /// Four-activate window (`tFAW`): at most four ACTIVATEs may issue
    /// within any window of this many cycles; `0` disables the
    /// constraint.
    pub t_faw: u32,
    /// Cycles an AUTO REFRESH occupies the whole device (`tRFC`).
    pub t_rfc: u32,
    /// Average interval between required refresh commands in cycles
    /// (64 ms / 8192 rows at 100 MHz is ~781); `0` disables refresh.
    pub refresh_interval: u64,
    /// Store a SEC-DED Hamming(72,64) check byte with every word,
    /// correcting single-bit and detecting double-bit errors on read
    /// (see [`crate::ecc`]). Off by default — the paper's ideal device.
    pub ecc: bool,
    /// Fault-injection configuration; [`FaultConfig::none`] (the
    /// default) models the ideal, fault-free device.
    pub fault: FaultConfig,
}

impl Default for SdramConfig {
    fn default() -> Self {
        SdramConfig {
            t_rcd: 2,
            t_cas: 2,
            t_rp: 2,
            t_ras: 5,
            t_rc: 7,
            t_wr: 1,
            internal_banks: 4,
            log2_cols: 9, // 512-word pages
            log2_rows: 13,
            ranks: 1,
            bank_groups: 1,
            burst_words: 1,
            data_rate: 1,
            t_ccd_l: 0,
            t_ccd_s: 0,
            t_rrd: 0,
            t_faw: 0,
            t_rfc: 8,
            refresh_interval: 0,
            ecc: false,
            fault: FaultConfig::none(),
        }
    }
}

/// Upper bound on [`SdramConfig::bank_groups`]: the per-group channel
/// timers live in fixed-size hardware-style arrays
/// (see [`crate::ChannelTimers`]).
pub const MAX_BANK_GROUPS: u32 = 8;

/// A named device generation the workspace ships a timing profile for.
///
/// The typed form of the old ad-hoc `SdramConfig::{sram_like, ...}`
/// constructors: every shipped profile is an enum variant, so sweeps
/// (`pva-bench --device`, the analysis passes) can iterate
/// [`DevicePreset::ALL`] instead of maintaining hand-written lists.
///
/// # Examples
///
/// ```
/// use sdram::{DevicePreset, SdramConfig};
///
/// // The SDR profile is the paper's prototype device, bit-identical
/// // to `SdramConfig::default()`.
/// assert_eq!(SdramConfig::for_device(DevicePreset::Sdr100), SdramConfig::default());
/// // Modern generations carry channel constraints the SDR part lacks.
/// let ddr3 = SdramConfig::for_device(DevicePreset::Ddr3_1600);
/// assert_eq!(ddr3.burst_words, 8);
/// assert!(ddr3.t_faw > 0);
/// assert_eq!(DevicePreset::from_name("ddr3-1600"), Some(DevicePreset::Ddr3_1600));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DevicePreset {
    /// The paper's prototype: Micron 256 Mbit SDR SDRAM at 100 MHz
    /// (identical to `SdramConfig::default()`).
    Sdr100,
    /// Idealized uniform-latency device modeling SRAM comparators.
    SramLike,
    /// The SDR part with periodic AUTO REFRESH enabled.
    SdrRefresh,
    /// EDO-like conventional DRAM (§2.3.2): one row buffer, slower core.
    EdoLike,
    /// SLDRAM-like analogue (§2.3.4): 8 internal banks.
    SldramLike,
    /// Direct-Rambus-like analogue (§2.3.5): 32 internal banks.
    DrdramLike,
    /// A DDR3-1600-class profile at the 800 MHz command clock: BL8,
    /// two bank groups with a tCCD_L/tCCD_S split (DDR4-style), tRRD
    /// and tFAW activate throttling, periodic refresh.
    Ddr3_1600,
    /// An LPDDR/HBM-class short-channel profile: many banks in four
    /// groups, short core timings, BL4 at double data rate.
    Hbm2Like,
}

impl DevicePreset {
    /// Every shipped device generation, oldest first.
    pub const ALL: [DevicePreset; 8] = [
        DevicePreset::EdoLike,
        DevicePreset::Sdr100,
        DevicePreset::SdrRefresh,
        DevicePreset::SldramLike,
        DevicePreset::DrdramLike,
        DevicePreset::Ddr3_1600,
        DevicePreset::Hbm2Like,
        DevicePreset::SramLike,
    ];

    /// The CLI slug (`pva-bench --device <name>`).
    pub const fn name(self) -> &'static str {
        match self {
            DevicePreset::Sdr100 => "sdr100",
            DevicePreset::SramLike => "sram",
            DevicePreset::SdrRefresh => "sdr-refresh",
            DevicePreset::EdoLike => "edo",
            DevicePreset::SldramLike => "sldram",
            DevicePreset::DrdramLike => "drdram",
            DevicePreset::Ddr3_1600 => "ddr3-1600",
            DevicePreset::Hbm2Like => "hbm2",
        }
    }

    /// A one-line human description for tables and `--device` listings.
    pub const fn title(self) -> &'static str {
        match self {
            DevicePreset::Sdr100 => "SDR-100 (paper prototype, 4 banks)",
            DevicePreset::SramLike => "ideal SRAM (uniform latency)",
            DevicePreset::SdrRefresh => "SDR-100 with periodic refresh",
            DevicePreset::EdoLike => "EDO-like (1 row buffer)",
            DevicePreset::SldramLike => "SLDRAM-like (8 banks)",
            DevicePreset::DrdramLike => "DRDRAM-like (32 banks)",
            DevicePreset::Ddr3_1600 => "DDR3-1600-class (BL8, 2 groups)",
            DevicePreset::Hbm2Like => "HBM-class (16 banks, 4 groups)",
        }
    }

    /// Parses a CLI slug back to its preset.
    pub fn from_name(s: &str) -> Option<DevicePreset> {
        DevicePreset::ALL.into_iter().find(|p| p.name() == s)
    }

    /// The timing profile of this generation — equivalent to
    /// [`SdramConfig::for_device`].
    pub fn config(self) -> SdramConfig {
        let base = SdramConfig::default();
        match self {
            DevicePreset::Sdr100 => base,
            DevicePreset::SramLike => SdramConfig {
                t_rcd: 0,
                t_cas: 1,
                t_rp: 0,
                t_ras: 0,
                t_rc: 0,
                t_wr: 0,
                internal_banks: 1,
                log2_cols: 22,
                log2_rows: 0,
                t_rfc: 0,
                ..base
            },
            DevicePreset::SdrRefresh => SdramConfig {
                refresh_interval: 781,
                ..base
            },
            DevicePreset::EdoLike => SdramConfig {
                t_rcd: 3,
                t_cas: 2,
                t_rp: 3,
                t_ras: 6,
                t_rc: 9,
                internal_banks: 1,
                ..base
            },
            DevicePreset::SldramLike => SdramConfig {
                internal_banks: 8,
                ..base
            },
            DevicePreset::DrdramLike => SdramConfig {
                t_rcd: 3,
                t_cas: 4,
                t_rp: 3,
                t_ras: 7,
                t_rc: 10,
                internal_banks: 32,
                log2_rows: 11,
                ..base
            },
            // DDR3-1600 speed bin at the 800 MHz command clock:
            // tRCD/tCL/tRP 13.75 ns ≈ 11 cycles, tRAS 35 ns = 28,
            // tRC 48.75 ns = 39, tWR 15 ns = 12, tRFC(4Gb) 160 ns = 128,
            // tREFI 7.8 µs = 6240, tRRD 7.5 ns = 6, tFAW 32.5 ns = 26.
            // The tCCD_L/tCCD_S split over two bank groups is the
            // DDR4-refinement the sweep is asking about: BL8 occupies
            // the bus for 4 command-clock cycles, so tCCD_S = 4 is the
            // burst back-to-back floor and tCCD_L = 5 adds the
            // same-group penalty.
            DevicePreset::Ddr3_1600 => SdramConfig {
                t_rcd: 11,
                t_cas: 11,
                t_rp: 11,
                t_ras: 28,
                t_rc: 39,
                t_wr: 12,
                internal_banks: 8,
                bank_groups: 2,
                burst_words: 8,
                data_rate: 2,
                t_ccd_l: 5,
                t_ccd_s: 4,
                t_rrd: 6,
                t_faw: 26,
                t_rfc: 128,
                refresh_interval: 6240,
                ..base
            },
            // HBM-class short channel: low absolute latency, many small
            // banks in four groups, BL4 at double data rate (2-cycle
            // bursts), tight tRRD/tFAW, small 256-word rows.
            DevicePreset::Hbm2Like => SdramConfig {
                t_rcd: 7,
                t_cas: 7,
                t_rp: 7,
                t_ras: 17,
                t_rc: 24,
                t_wr: 8,
                internal_banks: 16,
                bank_groups: 4,
                log2_cols: 8,
                burst_words: 4,
                data_rate: 2,
                t_ccd_l: 4,
                t_ccd_s: 2,
                t_rrd: 4,
                t_faw: 15,
                t_rfc: 120,
                refresh_interval: 3900,
                ..base
            },
        }
    }
}

impl fmt::Display for DevicePreset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl SdramConfig {
    /// The timing profile of a shipped device generation — the typed
    /// replacement for the old ad-hoc preset constructors.
    ///
    /// # Examples
    ///
    /// ```
    /// use sdram::{DevicePreset, SdramConfig};
    /// let cfg = SdramConfig::for_device(DevicePreset::SldramLike);
    /// assert_eq!(cfg.internal_banks, 8);
    /// ```
    pub fn for_device(preset: DevicePreset) -> Self {
        preset.config()
    }

    /// Total row buffers the controller must track:
    /// `ranks * internal_banks`.
    pub fn total_row_buffers(&self) -> u32 {
        self.ranks * self.internal_banks
    }

    /// Memory-clock cycles one burst occupies the data bus:
    /// `ceil(burst_words / data_rate)`. `1` for the SDR part.
    pub fn burst_cycles(&self) -> u32 {
        self.burst_words.div_ceil(self.data_rate.max(1))
    }

    /// The bank group an effective row-buffer index belongs to.
    ///
    /// Consecutive internal banks alternate groups (a bit mask, like the
    /// hardware wiring), so the page-interleaved address map spreads
    /// adjacent pages across groups and streams see `tCCD_S`.
    pub fn bank_group_of(&self, bank: u32) -> u32 {
        bank & (self.bank_groups - 1)
    }

    /// Whether this part declares any post-SDR channel structure —
    /// bank groups, multi-word bursts, or the tCCD/tRRD/tFAW channel
    /// gates. The generation-aware scheduling policy keys off this:
    /// on parts that declare nothing (the SDR-era presets) it keeps
    /// strict arrival order, which is what the goldens pin.
    pub fn declares_channel_structure(&self) -> bool {
        self.bank_groups > 1
            || self.burst_words > 1
            || self.t_ccd_l > 0
            || self.t_ccd_s > 0
            || self.t_rrd > 0
            || self.t_faw > 0
    }

    /// Total capacity behind the controller in words (all ranks).
    pub fn capacity_words(&self) -> u64 {
        (self.total_row_buffers() as u64) << (self.log2_cols + self.log2_rows)
    }

    /// Checks every consistency rule and returns all violations.
    ///
    /// The rules are the invariants the device model and the address
    /// mapper rely on; a config that passes cannot drive the simulator
    /// into a state the bank FSM has no transition for. The same pass
    /// runs in three places: here (asserted by [`Sdram::new`]), in the
    /// `pva-analysis` binary over every preset, and in the randomized
    /// property tests.
    ///
    /// [`Sdram::new`]: crate::Sdram::new
    pub fn check(&self) -> Vec<ConfigError> {
        let mut errs = Vec::new();
        if self.internal_banks == 0 || !self.internal_banks.is_power_of_two() {
            // `map()` selects the internal bank with `internal_banks - 1`
            // as a bit mask and counts field width with trailing_zeros().
            errs.push(ConfigError::InternalBanksNotPowerOfTwo(self.internal_banks));
        }
        if self.ranks == 0 {
            errs.push(ConfigError::NoRanks);
        }
        if self.t_cas == 0 {
            errs.push(ConfigError::ZeroCasLatency);
        }
        if self.t_ras == 0 && self.t_rcd != 0 {
            // Uniform-latency (SRAM-like) mode: with tRAS = 0 a precharge
            // may legally land the cycle after ACTIVATE, which the bank
            // FSM only admits when the activate completes instantly.
            errs.push(ConfigError::SramModeNeedsZeroRcd { t_rcd: self.t_rcd });
        }
        if self.t_ras > 0 && self.t_ras < self.t_rcd + self.t_cas {
            errs.push(ConfigError::RowOpenTooShort {
                t_ras: self.t_ras,
                t_rcd: self.t_rcd,
                t_cas: self.t_cas,
            });
        }
        if self.t_rc < self.t_ras + self.t_rp {
            errs.push(ConfigError::CycleTimeTooShort {
                t_rc: self.t_rc,
                t_ras: self.t_ras,
                t_rp: self.t_rp,
            });
        }
        if self.bank_groups == 0
            || !self.bank_groups.is_power_of_two()
            || self.bank_groups > MAX_BANK_GROUPS
            || self.bank_groups > self.internal_banks
        {
            // Group selection is a `bank_groups - 1` bit mask and the
            // per-group channel timers live in a MAX_BANK_GROUPS array.
            errs.push(ConfigError::BankGroupsInvalid {
                bank_groups: self.bank_groups,
                internal_banks: self.internal_banks,
            });
        }
        if self.burst_words == 0 || self.data_rate == 0 {
            errs.push(ConfigError::ZeroBurstGeometry {
                burst_words: self.burst_words,
                data_rate: self.data_rate,
            });
        }
        if self.t_ccd_l < self.t_ccd_s {
            // tCCD_S is the *relaxed* (cross-group) spacing; a stricter
            // cross-group than same-group constraint is not a device.
            errs.push(ConfigError::CcdInversion {
                t_ccd_l: self.t_ccd_l,
                t_ccd_s: self.t_ccd_s,
            });
        }
        if self.burst_words > 0 && self.data_rate > 0 {
            let burst = self.burst_cycles();
            if burst > 1 && self.t_ccd_s < burst {
                // Burst bus occupancy is enforced solely through tCCD;
                // a tCCD_S shorter than the burst would let two bursts
                // overlap on the data bus.
                errs.push(ConfigError::BurstNeedsCcd {
                    burst_cycles: burst,
                    t_ccd_s: self.t_ccd_s,
                });
            }
        }
        if self.refresh_interval > 0 && self.t_rfc == 0 {
            errs.push(ConfigError::RefreshWithoutRfc);
        }
        if self.refresh_interval > 0 && self.refresh_interval <= u64::from(self.t_rfc) {
            errs.push(ConfigError::RefreshIntervalTooShort {
                interval: self.refresh_interval,
                t_rfc: self.t_rfc,
            });
        }
        let ib_bits = if self.internal_banks.is_power_of_two() {
            self.internal_banks.trailing_zeros()
        } else {
            0
        };
        let bits = self.log2_cols + ib_bits + self.log2_rows;
        if bits > 63 {
            errs.push(ConfigError::GeometryOverflow { bits });
        }
        if u64::from(self.fault.transient_ppm) > PPM {
            errs.push(ConfigError::FaultRateOutOfRange {
                rate: "transient_ppm",
                ppm: self.fault.transient_ppm,
            });
        }
        if u64::from(self.fault.stuck_ppm) > PPM {
            errs.push(ConfigError::FaultRateOutOfRange {
                rate: "stuck_ppm",
                ppm: self.fault.stuck_ppm,
            });
        }
        if let Some(bank) = self.fault.hard_failed_bank {
            if bank >= self.total_row_buffers() {
                errs.push(ConfigError::HardFailedBankOutOfRange {
                    bank,
                    banks: self.total_row_buffers(),
                });
            }
        }
        if self.fault.retention_cycles > 0
            && self.refresh_interval > 0
            && self.fault.retention_cycles <= self.refresh_interval
        {
            // A retention window shorter than the refresh period decays
            // every row between refreshes; the device could never hold
            // data and the decay model degenerates to "always corrupt".
            errs.push(ConfigError::RetentionWithinRefreshInterval {
                retention: self.fault.retention_cycles,
                interval: self.refresh_interval,
            });
        }
        errs
    }

    /// Validates the configuration, returning the first violation.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] from [`SdramConfig::check`].
    ///
    /// # Examples
    ///
    /// ```
    /// use sdram::SdramConfig;
    /// assert!(SdramConfig::default().validate().is_ok());
    /// let bad = SdramConfig { internal_banks: 3, ..SdramConfig::default() };
    /// assert!(bad.validate().is_err());
    /// ```
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self.check().into_iter().next() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Maps a *device-local* word address to its internal coordinates.
    ///
    /// Low bits select the column, the middle bits the internal bank
    /// (so that consecutive pages rotate across internal banks, giving
    /// the scheduler overlap opportunities), and the high bits the row.
    /// The returned `bank` is the *effective* row-buffer index
    /// `rank * internal_banks + internal_bank`: the rank (chip select)
    /// comes from the highest local-address bits.
    pub fn map(&self, local_addr: u64) -> InternalAddr {
        let col = local_addr & ((1 << self.log2_cols) - 1);
        let bank = (local_addr >> self.log2_cols) & (self.internal_banks as u64 - 1);
        let ib_bits = self.internal_banks.trailing_zeros();
        let row_field = local_addr >> (self.log2_cols + ib_bits);
        let row = row_field & ((1 << self.log2_rows) - 1);
        let rank = row_field >> self.log2_rows;
        InternalAddr {
            bank: (rank as u32) * self.internal_banks + bank as u32,
            row,
            col,
        }
    }
}

impl fmt::Display for SdramConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SDRAM tRCD={} tCL={} tRP={} tRAS={} tRC={} ib={} cols=2^{}",
            self.t_rcd,
            self.t_cas,
            self.t_rp,
            self.t_ras,
            self.t_rc,
            self.internal_banks,
            self.log2_cols
        )
    }
}

/// A violation of the [`SdramConfig`] consistency rules, as reported by
/// [`SdramConfig::check`] / [`SdramConfig::validate`].
///
/// Each variant names the invariant it protects; the payloads carry the
/// offending values so the analysis binary can print actionable
/// diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `internal_banks` must be a nonzero power of two: the address
    /// mapper selects the internal bank with an `internal_banks - 1`
    /// bit mask (the hardware uses the same wiring).
    InternalBanksNotPowerOfTwo(u32),
    /// `ranks` must be at least 1 — a bank controller with no chips
    /// behind it addresses nothing.
    NoRanks,
    /// `t_cas` must be at least 1: data cannot return on the same edge
    /// the column command is registered.
    ZeroCasLatency,
    /// `t_ras == 0` selects the uniform-latency (SRAM-like) mode and
    /// requires `t_rcd == 0` too; otherwise a precharge could arrive
    /// while the activate is still in flight, a state the bank FSM has
    /// no legal transition for.
    SramModeNeedsZeroRcd {
        /// The nonzero `t_rcd` that conflicts with `t_ras == 0`.
        t_rcd: u32,
    },
    /// `t_ras` must cover `t_rcd + t_cas`: a row must stay open long
    /// enough for at least one access to complete inside the
    /// activate-to-precharge window.
    RowOpenTooShort {
        /// Configured `t_ras`.
        t_ras: u32,
        /// Configured `t_rcd`.
        t_rcd: u32,
        /// Configured `t_cas`.
        t_cas: u32,
    },
    /// `t_rc` must cover `t_ras + t_rp`: the activate-to-activate cycle
    /// time cannot be shorter than holding the row open and then
    /// precharging it.
    CycleTimeTooShort {
        /// Configured `t_rc`.
        t_rc: u32,
        /// Configured `t_ras`.
        t_ras: u32,
        /// Configured `t_rp`.
        t_rp: u32,
    },
    /// Refresh is enabled (`refresh_interval > 0`) but `t_rfc == 0`: a
    /// zero-cycle refresh would never be observable and the controller
    /// would re-issue it forever.
    RefreshWithoutRfc,
    /// `refresh_interval` must exceed `t_rfc`, or the device spends
    /// every cycle refreshing and no access can ever issue.
    RefreshIntervalTooShort {
        /// Configured `refresh_interval`.
        interval: u64,
        /// Configured `t_rfc`.
        t_rfc: u32,
    },
    /// The address fields (`log2_cols + log2(internal_banks) +
    /// log2_rows`) exceed 63 bits and would overflow the 64-bit word
    /// address space.
    GeometryOverflow {
        /// Total field width in bits.
        bits: u32,
    },
    /// A parts-per-million fault rate exceeds one million — it is not
    /// a probability.
    FaultRateOutOfRange {
        /// Which rate field is out of range.
        rate: &'static str,
        /// The offending value.
        ppm: u32,
    },
    /// `fault.hard_failed_bank` names an internal bank the device does
    /// not have.
    HardFailedBankOutOfRange {
        /// The configured failed bank.
        bank: u32,
        /// Number of row buffers (`ranks * internal_banks`).
        banks: u32,
    },
    /// `bank_groups` must be a nonzero power of two no larger than
    /// [`MAX_BANK_GROUPS`] or `internal_banks`: group selection is a
    /// bit mask and the channel timers are a fixed-size array.
    BankGroupsInvalid {
        /// Configured `bank_groups`.
        bank_groups: u32,
        /// Configured `internal_banks`.
        internal_banks: u32,
    },
    /// `burst_words` and `data_rate` must both be at least 1 — a zero
    /// burst transfers nothing and a zero data rate never transfers it.
    ZeroBurstGeometry {
        /// Configured `burst_words`.
        burst_words: u32,
        /// Configured `data_rate`.
        data_rate: u32,
    },
    /// `t_ccd_l` must be at least `t_ccd_s`: same-group CAS spacing is
    /// the strict one; the cross-group constraint is the relaxation.
    CcdInversion {
        /// Configured `t_ccd_l`.
        t_ccd_l: u32,
        /// Configured `t_ccd_s`.
        t_ccd_s: u32,
    },
    /// Bursts longer than one cycle require `t_ccd_s` to cover the
    /// burst's bus occupancy ([`SdramConfig::burst_cycles`]), since the
    /// model enforces data-bus occupancy solely through tCCD.
    BurstNeedsCcd {
        /// Bus occupancy of one burst in cycles.
        burst_cycles: u32,
        /// Configured `t_ccd_s`.
        t_ccd_s: u32,
    },
    /// `fault.retention_cycles` does not exceed `refresh_interval`:
    /// every row would decay between consecutive refreshes, so the
    /// device could never retain data even when refreshed on schedule.
    RetentionWithinRefreshInterval {
        /// Configured retention window.
        retention: u64,
        /// Configured refresh interval.
        interval: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::InternalBanksNotPowerOfTwo(v) => {
                write!(f, "internal_banks = {v} is not a nonzero power of two")
            }
            ConfigError::NoRanks => write!(f, "ranks must be at least 1"),
            ConfigError::ZeroCasLatency => write!(f, "t_cas must be at least 1"),
            ConfigError::SramModeNeedsZeroRcd { t_rcd } => {
                write!(
                    f,
                    "t_ras = 0 (uniform-latency mode) requires t_rcd = 0, got {t_rcd}"
                )
            }
            ConfigError::RowOpenTooShort {
                t_ras,
                t_rcd,
                t_cas,
            } => {
                write!(
                    f,
                    "t_ras = {t_ras} is shorter than t_rcd + t_cas = {}",
                    t_rcd + t_cas
                )
            }
            ConfigError::CycleTimeTooShort { t_rc, t_ras, t_rp } => {
                write!(
                    f,
                    "t_rc = {t_rc} is shorter than t_ras + t_rp = {}",
                    t_ras + t_rp
                )
            }
            ConfigError::RefreshWithoutRfc => {
                write!(f, "refresh_interval > 0 requires t_rfc >= 1")
            }
            ConfigError::RefreshIntervalTooShort { interval, t_rfc } => {
                write!(
                    f,
                    "refresh_interval = {interval} must exceed t_rfc = {t_rfc}"
                )
            }
            ConfigError::GeometryOverflow { bits } => {
                write!(f, "address fields span {bits} bits, overflowing u64")
            }
            ConfigError::FaultRateOutOfRange { rate, ppm } => {
                write!(f, "fault rate {rate} = {ppm} exceeds 1_000_000 ppm")
            }
            ConfigError::HardFailedBankOutOfRange { bank, banks } => {
                write!(
                    f,
                    "hard_failed_bank = {bank} but the device has only {banks} row buffers"
                )
            }
            ConfigError::BankGroupsInvalid {
                bank_groups,
                internal_banks,
            } => {
                write!(
                    f,
                    "bank_groups = {bank_groups} must be a nonzero power of two, \
                     at most {MAX_BANK_GROUPS} and at most internal_banks = {internal_banks}"
                )
            }
            ConfigError::ZeroBurstGeometry {
                burst_words,
                data_rate,
            } => {
                write!(
                    f,
                    "burst_words = {burst_words} and data_rate = {data_rate} must both be >= 1"
                )
            }
            ConfigError::CcdInversion { t_ccd_l, t_ccd_s } => {
                write!(
                    f,
                    "t_ccd_l = {t_ccd_l} must be at least t_ccd_s = {t_ccd_s}"
                )
            }
            ConfigError::BurstNeedsCcd {
                burst_cycles,
                t_ccd_s,
            } => {
                write!(
                    f,
                    "t_ccd_s = {t_ccd_s} does not cover the {burst_cycles}-cycle burst bus occupancy"
                )
            }
            ConfigError::RetentionWithinRefreshInterval {
                retention,
                interval,
            } => {
                write!(
                    f,
                    "retention_cycles = {retention} must exceed refresh_interval = {interval}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Internal coordinates of a device word: which internal bank, row
/// (page) and column it lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InternalAddr {
    /// Internal bank index, `0..config.internal_banks`.
    pub bank: u32,
    /// Row (page) index within the internal bank.
    pub row: u64,
    /// Column within the row.
    pub col: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_prototype() {
        let c = SdramConfig::default();
        assert_eq!((c.t_rcd, c.t_cas), (2, 2));
        assert_eq!(c.internal_banks, 4);
    }

    #[test]
    fn map_splits_fields() {
        let c = SdramConfig {
            log2_cols: 4,
            internal_banks: 4,
            ..SdramConfig::default()
        };
        // addr = row 3, bank 2, col 5  => ((3*4)+2)*16 + 5
        let addr = ((3 * 4 + 2) << 4) + 5;
        let ia = c.map(addr);
        assert_eq!(
            ia,
            InternalAddr {
                bank: 2,
                row: 3,
                col: 5
            }
        );
    }

    #[test]
    fn consecutive_pages_rotate_internal_banks() {
        let c = SdramConfig::default();
        let page = 1u64 << c.log2_cols;
        let banks: Vec<u32> = (0..4).map(|i| c.map(i * page).bank).collect();
        assert_eq!(banks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn capacity() {
        let c = SdramConfig {
            internal_banks: 4,
            log2_cols: 9,
            log2_rows: 13,
            ..SdramConfig::default()
        };
        assert_eq!(c.capacity_words(), 4 << 22);
    }

    #[test]
    fn all_presets_validate_clean() {
        for preset in DevicePreset::ALL {
            let cfg = SdramConfig::for_device(preset);
            assert_eq!(cfg.check(), vec![], "preset {preset} must be consistent");
        }
    }

    #[test]
    fn preset_names_round_trip_and_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for preset in DevicePreset::ALL {
            assert!(
                seen.insert(preset.name()),
                "duplicate slug {}",
                preset.name()
            );
            assert_eq!(DevicePreset::from_name(preset.name()), Some(preset));
            assert!(!preset.title().is_empty());
        }
        assert_eq!(DevicePreset::from_name("no-such-device"), None);
    }

    #[test]
    fn sdr_preset_is_bit_identical_to_default() {
        assert_eq!(
            SdramConfig::for_device(DevicePreset::Sdr100),
            SdramConfig::default()
        );
    }

    #[test]
    fn burst_cycles_rounds_up() {
        let ddr3 = SdramConfig::for_device(DevicePreset::Ddr3_1600);
        assert_eq!(ddr3.burst_cycles(), 4); // BL8 at DDR
        let odd = SdramConfig {
            burst_words: 5,
            data_rate: 2,
            t_ccd_s: 3,
            t_ccd_l: 3,
            ..SdramConfig::default()
        };
        assert_eq!(odd.burst_cycles(), 3);
        assert_eq!(SdramConfig::default().burst_cycles(), 1);
    }

    #[test]
    fn bank_group_mapping_alternates_groups() {
        let ddr3 = SdramConfig::for_device(DevicePreset::Ddr3_1600);
        let groups: Vec<u32> = (0..4).map(|b| ddr3.bank_group_of(b)).collect();
        assert_eq!(groups, vec![0, 1, 0, 1]);
        // Flat devices put every bank in group 0.
        assert_eq!(SdramConfig::default().bank_group_of(3), 0);
    }

    #[test]
    fn each_rule_fires_on_its_minimal_violation() {
        let base = SdramConfig::default;
        let cases: Vec<(SdramConfig, ConfigError)> = vec![
            (
                SdramConfig {
                    internal_banks: 3,
                    ..base()
                },
                ConfigError::InternalBanksNotPowerOfTwo(3),
            ),
            (SdramConfig { ranks: 0, ..base() }, ConfigError::NoRanks),
            (
                SdramConfig { t_cas: 0, ..base() },
                ConfigError::ZeroCasLatency,
            ),
            (
                SdramConfig {
                    t_ras: 0,
                    t_rc: 2, // keep tRC >= tRAS + tRP
                    ..base()
                },
                ConfigError::SramModeNeedsZeroRcd { t_rcd: 2 },
            ),
            (
                SdramConfig { t_ras: 3, ..base() },
                ConfigError::RowOpenTooShort {
                    t_ras: 3,
                    t_rcd: 2,
                    t_cas: 2,
                },
            ),
            (
                SdramConfig { t_rc: 6, ..base() },
                ConfigError::CycleTimeTooShort {
                    t_rc: 6,
                    t_ras: 5,
                    t_rp: 2,
                },
            ),
            (
                SdramConfig {
                    bank_groups: 3,
                    ..base()
                },
                ConfigError::BankGroupsInvalid {
                    bank_groups: 3,
                    internal_banks: 4,
                },
            ),
            (
                SdramConfig {
                    bank_groups: 8,
                    ..base()
                },
                ConfigError::BankGroupsInvalid {
                    bank_groups: 8,
                    internal_banks: 4,
                },
            ),
            (
                SdramConfig {
                    burst_words: 0,
                    ..base()
                },
                ConfigError::ZeroBurstGeometry {
                    burst_words: 0,
                    data_rate: 1,
                },
            ),
            (
                SdramConfig {
                    t_ccd_l: 2,
                    t_ccd_s: 3,
                    ..base()
                },
                ConfigError::CcdInversion {
                    t_ccd_l: 2,
                    t_ccd_s: 3,
                },
            ),
            (
                SdramConfig {
                    burst_words: 4,
                    data_rate: 1,
                    t_ccd_l: 4,
                    t_ccd_s: 3,
                    ..base()
                },
                ConfigError::BurstNeedsCcd {
                    burst_cycles: 4,
                    t_ccd_s: 3,
                },
            ),
            (
                SdramConfig {
                    refresh_interval: 100,
                    t_rfc: 0,
                    ..base()
                },
                ConfigError::RefreshWithoutRfc,
            ),
            (
                SdramConfig {
                    refresh_interval: 8,
                    t_rfc: 8,
                    ..base()
                },
                ConfigError::RefreshIntervalTooShort {
                    interval: 8,
                    t_rfc: 8,
                },
            ),
            (
                SdramConfig {
                    log2_cols: 40,
                    log2_rows: 30,
                    ..base()
                },
                ConfigError::GeometryOverflow { bits: 72 },
            ),
            (
                SdramConfig {
                    fault: crate::FaultConfig {
                        transient_ppm: 1_000_001,
                        ..crate::FaultConfig::none()
                    },
                    ..base()
                },
                ConfigError::FaultRateOutOfRange {
                    rate: "transient_ppm",
                    ppm: 1_000_001,
                },
            ),
            (
                SdramConfig {
                    fault: crate::FaultConfig {
                        hard_failed_bank: Some(4),
                        ..crate::FaultConfig::none()
                    },
                    ..base()
                },
                ConfigError::HardFailedBankOutOfRange { bank: 4, banks: 4 },
            ),
            (
                SdramConfig {
                    refresh_interval: 781,
                    fault: crate::FaultConfig {
                        retention_cycles: 500,
                        ..crate::FaultConfig::none()
                    },
                    ..base()
                },
                ConfigError::RetentionWithinRefreshInterval {
                    retention: 500,
                    interval: 781,
                },
            ),
        ];
        for (cfg, want) in cases {
            let errs = cfg.check();
            assert!(
                errs.contains(&want),
                "expected {want:?} among {errs:?} for {cfg:?}"
            );
            assert!(cfg.validate().is_err());
        }
    }

    #[test]
    fn check_reports_every_violation_at_once() {
        let cfg = SdramConfig {
            internal_banks: 5,
            ranks: 0,
            t_cas: 0,
            ..SdramConfig::default()
        };
        let errs = cfg.check();
        assert!(errs.len() >= 3, "all three violations reported: {errs:?}");
    }

    #[test]
    fn error_display_is_readable() {
        let e = SdramConfig {
            internal_banks: 3,
            ..SdramConfig::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(
            e.to_string(),
            "internal_banks = 3 is not a nonzero power of two"
        );
    }

    #[test]
    fn map_roundtrip_is_injective() {
        let c = SdramConfig {
            log2_cols: 3,
            log2_rows: 2,
            internal_banks: 2,
            ..SdramConfig::default()
        };
        let mut seen = std::collections::HashSet::new();
        for a in 0..c.capacity_words() {
            assert!(seen.insert(c.map(a)), "duplicate mapping for {a}");
        }
    }
}
