//! SDRAM device configuration and internal address mapping.

use core::fmt;

use crate::fault::{FaultConfig, PPM};

/// Timing and geometry parameters of one SDRAM device (one external bank
/// of the PVA memory system).
///
/// Defaults model the paper's prototype: Micron 256 Mbit SDRAM-like
/// parts at 100 MHz, RAS and CAS latencies of two cycles each, four
/// internal banks with independent row buffers (§5.1, §6.1). All times
/// are in memory-clock cycles.
///
/// # Examples
///
/// ```
/// use sdram::SdramConfig;
/// let cfg = SdramConfig::default();
/// assert_eq!(cfg.t_rcd, 2);
/// assert_eq!(cfg.internal_banks, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SdramConfig {
    /// ACTIVATE-to-READ/WRITE delay (RAS-to-CAS, `tRCD`).
    pub t_rcd: u32,
    /// READ-to-data delay (CAS latency, `tCL`).
    pub t_cas: u32,
    /// PRECHARGE-to-ACTIVATE delay (`tRP`).
    pub t_rp: u32,
    /// Minimum ACTIVATE-to-PRECHARGE time (`tRAS`).
    pub t_ras: u32,
    /// Minimum ACTIVATE-to-ACTIVATE time, same internal bank (`tRC`).
    pub t_rc: u32,
    /// WRITE-to-PRECHARGE recovery (`tWR`).
    pub t_wr: u32,
    /// Number of internal banks (row buffers) per device.
    pub internal_banks: u32,
    /// log2 of the row (page) size in device words.
    pub log2_cols: u32,
    /// log2 of the number of rows per internal bank.
    pub log2_rows: u32,
    /// Memory chips (ranks) behind one bank controller (§4.3.1
    /// capacity scaling: "use a single bank controller for multiple
    /// slots, but maintain different current row registers"). Each rank
    /// carries its own internal banks and row buffers; high local-
    /// address bits select the rank (chip select).
    pub ranks: u32,
    /// Cycles an AUTO REFRESH occupies the whole device (`tRFC`).
    pub t_rfc: u32,
    /// Average interval between required refresh commands in cycles
    /// (64 ms / 8192 rows at 100 MHz is ~781); `0` disables refresh.
    pub refresh_interval: u64,
    /// Store a SEC-DED Hamming(72,64) check byte with every word,
    /// correcting single-bit and detecting double-bit errors on read
    /// (see [`crate::ecc`]). Off by default — the paper's ideal device.
    pub ecc: bool,
    /// Fault-injection configuration; [`FaultConfig::none`] (the
    /// default) models the ideal, fault-free device.
    pub fault: FaultConfig,
}

impl Default for SdramConfig {
    fn default() -> Self {
        SdramConfig {
            t_rcd: 2,
            t_cas: 2,
            t_rp: 2,
            t_ras: 5,
            t_rc: 7,
            t_wr: 1,
            internal_banks: 4,
            log2_cols: 9, // 512-word pages
            log2_rows: 13,
            ranks: 1,
            t_rfc: 8,
            refresh_interval: 0,
            ecc: false,
            fault: FaultConfig::none(),
        }
    }
}

impl SdramConfig {
    /// An idealized uniform-latency configuration used to model SRAM in
    /// the comparator experiments: every access is a one-cycle read or
    /// write with no activate/precharge overhead.
    pub fn sram_like() -> Self {
        SdramConfig {
            t_rcd: 0,
            t_cas: 1,
            t_rp: 0,
            t_ras: 0,
            t_rc: 0,
            t_wr: 0,
            internal_banks: 1,
            log2_cols: 22,
            log2_rows: 0,
            ranks: 1,
            t_rfc: 0,
            refresh_interval: 0,
            ecc: false,
            fault: FaultConfig::none(),
        }
    }

    /// The default SDRAM with periodic refresh enabled: one AUTO REFRESH
    /// every 781 cycles (64 ms / 8192 rows at 100 MHz), 8-cycle tRFC.
    pub fn with_refresh() -> Self {
        SdramConfig {
            refresh_interval: 781,
            ..SdramConfig::default()
        }
    }

    /// An EDO-like conventional DRAM analogue (§2.3.2): a single row
    /// buffer (no internal banking to overlap) and slower core timings.
    /// Used by the technology-sweep bench to show how the PVA's
    /// scheduling benefit depends on internal-bank overlap.
    pub fn edo_like() -> Self {
        SdramConfig {
            t_rcd: 3,
            t_cas: 2,
            t_rp: 3,
            t_ras: 6,
            t_rc: 9,
            internal_banks: 1,
            ..SdramConfig::default()
        }
    }

    /// An SLDRAM-like analogue (§2.3.4): deeper internal banking (8
    /// banks) at SDRAM-class latencies.
    pub fn sldram_like() -> Self {
        SdramConfig {
            internal_banks: 8,
            ..SdramConfig::default()
        }
    }

    /// A Direct-Rambus-like analogue (§2.3.5): many internal banks (32)
    /// with slightly longer access latency; the core runs slower than
    /// the channel, which this single-rate model folds into tCAS.
    pub fn drdram_like() -> Self {
        SdramConfig {
            t_rcd: 3,
            t_cas: 4,
            t_rp: 3,
            t_ras: 7,
            t_rc: 10,
            internal_banks: 32,
            log2_rows: 11,
            ..SdramConfig::default()
        }
    }

    /// Total row buffers the controller must track:
    /// `ranks * internal_banks`.
    pub fn total_row_buffers(&self) -> u32 {
        self.ranks * self.internal_banks
    }

    /// Total capacity behind the controller in words (all ranks).
    pub fn capacity_words(&self) -> u64 {
        (self.total_row_buffers() as u64) << (self.log2_cols + self.log2_rows)
    }

    /// Checks every consistency rule and returns all violations.
    ///
    /// The rules are the invariants the device model and the address
    /// mapper rely on; a config that passes cannot drive the simulator
    /// into a state the bank FSM has no transition for. The same pass
    /// runs in three places: here (asserted by [`Sdram::new`]), in the
    /// `pva-analysis` binary over every preset, and in the randomized
    /// property tests.
    ///
    /// [`Sdram::new`]: crate::Sdram::new
    pub fn check(&self) -> Vec<ConfigError> {
        let mut errs = Vec::new();
        if self.internal_banks == 0 || !self.internal_banks.is_power_of_two() {
            // `map()` selects the internal bank with `internal_banks - 1`
            // as a bit mask and counts field width with trailing_zeros().
            errs.push(ConfigError::InternalBanksNotPowerOfTwo(self.internal_banks));
        }
        if self.ranks == 0 {
            errs.push(ConfigError::NoRanks);
        }
        if self.t_cas == 0 {
            errs.push(ConfigError::ZeroCasLatency);
        }
        if self.t_ras == 0 && self.t_rcd != 0 {
            // Uniform-latency (SRAM-like) mode: with tRAS = 0 a precharge
            // may legally land the cycle after ACTIVATE, which the bank
            // FSM only admits when the activate completes instantly.
            errs.push(ConfigError::SramModeNeedsZeroRcd { t_rcd: self.t_rcd });
        }
        if self.t_ras > 0 && self.t_ras < self.t_rcd + self.t_cas {
            errs.push(ConfigError::RowOpenTooShort {
                t_ras: self.t_ras,
                t_rcd: self.t_rcd,
                t_cas: self.t_cas,
            });
        }
        if self.t_rc < self.t_ras + self.t_rp {
            errs.push(ConfigError::CycleTimeTooShort {
                t_rc: self.t_rc,
                t_ras: self.t_ras,
                t_rp: self.t_rp,
            });
        }
        if self.refresh_interval > 0 && self.t_rfc == 0 {
            errs.push(ConfigError::RefreshWithoutRfc);
        }
        if self.refresh_interval > 0 && self.refresh_interval <= u64::from(self.t_rfc) {
            errs.push(ConfigError::RefreshIntervalTooShort {
                interval: self.refresh_interval,
                t_rfc: self.t_rfc,
            });
        }
        let ib_bits = if self.internal_banks.is_power_of_two() {
            self.internal_banks.trailing_zeros()
        } else {
            0
        };
        let bits = self.log2_cols + ib_bits + self.log2_rows;
        if bits > 63 {
            errs.push(ConfigError::GeometryOverflow { bits });
        }
        if u64::from(self.fault.transient_ppm) > PPM {
            errs.push(ConfigError::FaultRateOutOfRange {
                rate: "transient_ppm",
                ppm: self.fault.transient_ppm,
            });
        }
        if u64::from(self.fault.stuck_ppm) > PPM {
            errs.push(ConfigError::FaultRateOutOfRange {
                rate: "stuck_ppm",
                ppm: self.fault.stuck_ppm,
            });
        }
        if let Some(bank) = self.fault.hard_failed_bank {
            if bank >= self.total_row_buffers() {
                errs.push(ConfigError::HardFailedBankOutOfRange {
                    bank,
                    banks: self.total_row_buffers(),
                });
            }
        }
        if self.fault.retention_cycles > 0
            && self.refresh_interval > 0
            && self.fault.retention_cycles <= self.refresh_interval
        {
            // A retention window shorter than the refresh period decays
            // every row between refreshes; the device could never hold
            // data and the decay model degenerates to "always corrupt".
            errs.push(ConfigError::RetentionWithinRefreshInterval {
                retention: self.fault.retention_cycles,
                interval: self.refresh_interval,
            });
        }
        errs
    }

    /// Validates the configuration, returning the first violation.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] from [`SdramConfig::check`].
    ///
    /// # Examples
    ///
    /// ```
    /// use sdram::SdramConfig;
    /// assert!(SdramConfig::default().validate().is_ok());
    /// let bad = SdramConfig { internal_banks: 3, ..SdramConfig::default() };
    /// assert!(bad.validate().is_err());
    /// ```
    pub fn validate(&self) -> Result<(), ConfigError> {
        match self.check().into_iter().next() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Maps a *device-local* word address to its internal coordinates.
    ///
    /// Low bits select the column, the middle bits the internal bank
    /// (so that consecutive pages rotate across internal banks, giving
    /// the scheduler overlap opportunities), and the high bits the row.
    /// The returned `bank` is the *effective* row-buffer index
    /// `rank * internal_banks + internal_bank`: the rank (chip select)
    /// comes from the highest local-address bits.
    pub fn map(&self, local_addr: u64) -> InternalAddr {
        let col = local_addr & ((1 << self.log2_cols) - 1);
        let bank = (local_addr >> self.log2_cols) & (self.internal_banks as u64 - 1);
        let ib_bits = self.internal_banks.trailing_zeros();
        let row_field = local_addr >> (self.log2_cols + ib_bits);
        let row = row_field & ((1 << self.log2_rows) - 1);
        let rank = row_field >> self.log2_rows;
        InternalAddr {
            bank: (rank as u32) * self.internal_banks + bank as u32,
            row,
            col,
        }
    }
}

impl fmt::Display for SdramConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SDRAM tRCD={} tCL={} tRP={} tRAS={} tRC={} ib={} cols=2^{}",
            self.t_rcd,
            self.t_cas,
            self.t_rp,
            self.t_ras,
            self.t_rc,
            self.internal_banks,
            self.log2_cols
        )
    }
}

/// A violation of the [`SdramConfig`] consistency rules, as reported by
/// [`SdramConfig::check`] / [`SdramConfig::validate`].
///
/// Each variant names the invariant it protects; the payloads carry the
/// offending values so the analysis binary can print actionable
/// diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `internal_banks` must be a nonzero power of two: the address
    /// mapper selects the internal bank with an `internal_banks - 1`
    /// bit mask (the hardware uses the same wiring).
    InternalBanksNotPowerOfTwo(u32),
    /// `ranks` must be at least 1 — a bank controller with no chips
    /// behind it addresses nothing.
    NoRanks,
    /// `t_cas` must be at least 1: data cannot return on the same edge
    /// the column command is registered.
    ZeroCasLatency,
    /// `t_ras == 0` selects the uniform-latency (SRAM-like) mode and
    /// requires `t_rcd == 0` too; otherwise a precharge could arrive
    /// while the activate is still in flight, a state the bank FSM has
    /// no legal transition for.
    SramModeNeedsZeroRcd {
        /// The nonzero `t_rcd` that conflicts with `t_ras == 0`.
        t_rcd: u32,
    },
    /// `t_ras` must cover `t_rcd + t_cas`: a row must stay open long
    /// enough for at least one access to complete inside the
    /// activate-to-precharge window.
    RowOpenTooShort {
        /// Configured `t_ras`.
        t_ras: u32,
        /// Configured `t_rcd`.
        t_rcd: u32,
        /// Configured `t_cas`.
        t_cas: u32,
    },
    /// `t_rc` must cover `t_ras + t_rp`: the activate-to-activate cycle
    /// time cannot be shorter than holding the row open and then
    /// precharging it.
    CycleTimeTooShort {
        /// Configured `t_rc`.
        t_rc: u32,
        /// Configured `t_ras`.
        t_ras: u32,
        /// Configured `t_rp`.
        t_rp: u32,
    },
    /// Refresh is enabled (`refresh_interval > 0`) but `t_rfc == 0`: a
    /// zero-cycle refresh would never be observable and the controller
    /// would re-issue it forever.
    RefreshWithoutRfc,
    /// `refresh_interval` must exceed `t_rfc`, or the device spends
    /// every cycle refreshing and no access can ever issue.
    RefreshIntervalTooShort {
        /// Configured `refresh_interval`.
        interval: u64,
        /// Configured `t_rfc`.
        t_rfc: u32,
    },
    /// The address fields (`log2_cols + log2(internal_banks) +
    /// log2_rows`) exceed 63 bits and would overflow the 64-bit word
    /// address space.
    GeometryOverflow {
        /// Total field width in bits.
        bits: u32,
    },
    /// A parts-per-million fault rate exceeds one million — it is not
    /// a probability.
    FaultRateOutOfRange {
        /// Which rate field is out of range.
        rate: &'static str,
        /// The offending value.
        ppm: u32,
    },
    /// `fault.hard_failed_bank` names an internal bank the device does
    /// not have.
    HardFailedBankOutOfRange {
        /// The configured failed bank.
        bank: u32,
        /// Number of row buffers (`ranks * internal_banks`).
        banks: u32,
    },
    /// `fault.retention_cycles` does not exceed `refresh_interval`:
    /// every row would decay between consecutive refreshes, so the
    /// device could never retain data even when refreshed on schedule.
    RetentionWithinRefreshInterval {
        /// Configured retention window.
        retention: u64,
        /// Configured refresh interval.
        interval: u64,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::InternalBanksNotPowerOfTwo(v) => {
                write!(f, "internal_banks = {v} is not a nonzero power of two")
            }
            ConfigError::NoRanks => write!(f, "ranks must be at least 1"),
            ConfigError::ZeroCasLatency => write!(f, "t_cas must be at least 1"),
            ConfigError::SramModeNeedsZeroRcd { t_rcd } => {
                write!(
                    f,
                    "t_ras = 0 (uniform-latency mode) requires t_rcd = 0, got {t_rcd}"
                )
            }
            ConfigError::RowOpenTooShort {
                t_ras,
                t_rcd,
                t_cas,
            } => {
                write!(
                    f,
                    "t_ras = {t_ras} is shorter than t_rcd + t_cas = {}",
                    t_rcd + t_cas
                )
            }
            ConfigError::CycleTimeTooShort { t_rc, t_ras, t_rp } => {
                write!(
                    f,
                    "t_rc = {t_rc} is shorter than t_ras + t_rp = {}",
                    t_ras + t_rp
                )
            }
            ConfigError::RefreshWithoutRfc => {
                write!(f, "refresh_interval > 0 requires t_rfc >= 1")
            }
            ConfigError::RefreshIntervalTooShort { interval, t_rfc } => {
                write!(
                    f,
                    "refresh_interval = {interval} must exceed t_rfc = {t_rfc}"
                )
            }
            ConfigError::GeometryOverflow { bits } => {
                write!(f, "address fields span {bits} bits, overflowing u64")
            }
            ConfigError::FaultRateOutOfRange { rate, ppm } => {
                write!(f, "fault rate {rate} = {ppm} exceeds 1_000_000 ppm")
            }
            ConfigError::HardFailedBankOutOfRange { bank, banks } => {
                write!(
                    f,
                    "hard_failed_bank = {bank} but the device has only {banks} row buffers"
                )
            }
            ConfigError::RetentionWithinRefreshInterval {
                retention,
                interval,
            } => {
                write!(
                    f,
                    "retention_cycles = {retention} must exceed refresh_interval = {interval}"
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Internal coordinates of a device word: which internal bank, row
/// (page) and column it lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InternalAddr {
    /// Internal bank index, `0..config.internal_banks`.
    pub bank: u32,
    /// Row (page) index within the internal bank.
    pub row: u64,
    /// Column within the row.
    pub col: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_prototype() {
        let c = SdramConfig::default();
        assert_eq!((c.t_rcd, c.t_cas), (2, 2));
        assert_eq!(c.internal_banks, 4);
    }

    #[test]
    fn map_splits_fields() {
        let c = SdramConfig {
            log2_cols: 4,
            internal_banks: 4,
            ..SdramConfig::default()
        };
        // addr = row 3, bank 2, col 5  => ((3*4)+2)*16 + 5
        let addr = ((3 * 4 + 2) << 4) + 5;
        let ia = c.map(addr);
        assert_eq!(
            ia,
            InternalAddr {
                bank: 2,
                row: 3,
                col: 5
            }
        );
    }

    #[test]
    fn consecutive_pages_rotate_internal_banks() {
        let c = SdramConfig::default();
        let page = 1u64 << c.log2_cols;
        let banks: Vec<u32> = (0..4).map(|i| c.map(i * page).bank).collect();
        assert_eq!(banks, vec![0, 1, 2, 3]);
    }

    #[test]
    fn capacity() {
        let c = SdramConfig {
            internal_banks: 4,
            log2_cols: 9,
            log2_rows: 13,
            ..SdramConfig::default()
        };
        assert_eq!(c.capacity_words(), 4 << 22);
    }

    #[test]
    fn all_presets_validate_clean() {
        for (name, cfg) in [
            ("default", SdramConfig::default()),
            ("sram_like", SdramConfig::sram_like()),
            ("with_refresh", SdramConfig::with_refresh()),
            ("edo_like", SdramConfig::edo_like()),
            ("sldram_like", SdramConfig::sldram_like()),
            ("drdram_like", SdramConfig::drdram_like()),
        ] {
            assert_eq!(cfg.check(), vec![], "preset {name} must be consistent");
        }
    }

    #[test]
    fn each_rule_fires_on_its_minimal_violation() {
        let base = SdramConfig::default;
        let cases: Vec<(SdramConfig, ConfigError)> = vec![
            (
                SdramConfig {
                    internal_banks: 3,
                    ..base()
                },
                ConfigError::InternalBanksNotPowerOfTwo(3),
            ),
            (SdramConfig { ranks: 0, ..base() }, ConfigError::NoRanks),
            (
                SdramConfig { t_cas: 0, ..base() },
                ConfigError::ZeroCasLatency,
            ),
            (
                SdramConfig {
                    t_ras: 0,
                    t_rc: 2, // keep tRC >= tRAS + tRP
                    ..base()
                },
                ConfigError::SramModeNeedsZeroRcd { t_rcd: 2 },
            ),
            (
                SdramConfig { t_ras: 3, ..base() },
                ConfigError::RowOpenTooShort {
                    t_ras: 3,
                    t_rcd: 2,
                    t_cas: 2,
                },
            ),
            (
                SdramConfig { t_rc: 6, ..base() },
                ConfigError::CycleTimeTooShort {
                    t_rc: 6,
                    t_ras: 5,
                    t_rp: 2,
                },
            ),
            (
                SdramConfig {
                    refresh_interval: 100,
                    t_rfc: 0,
                    ..base()
                },
                ConfigError::RefreshWithoutRfc,
            ),
            (
                SdramConfig {
                    refresh_interval: 8,
                    t_rfc: 8,
                    ..base()
                },
                ConfigError::RefreshIntervalTooShort {
                    interval: 8,
                    t_rfc: 8,
                },
            ),
            (
                SdramConfig {
                    log2_cols: 40,
                    log2_rows: 30,
                    ..base()
                },
                ConfigError::GeometryOverflow { bits: 72 },
            ),
            (
                SdramConfig {
                    fault: crate::FaultConfig {
                        transient_ppm: 1_000_001,
                        ..crate::FaultConfig::none()
                    },
                    ..base()
                },
                ConfigError::FaultRateOutOfRange {
                    rate: "transient_ppm",
                    ppm: 1_000_001,
                },
            ),
            (
                SdramConfig {
                    fault: crate::FaultConfig {
                        hard_failed_bank: Some(4),
                        ..crate::FaultConfig::none()
                    },
                    ..base()
                },
                ConfigError::HardFailedBankOutOfRange { bank: 4, banks: 4 },
            ),
            (
                SdramConfig {
                    refresh_interval: 781,
                    fault: crate::FaultConfig {
                        retention_cycles: 500,
                        ..crate::FaultConfig::none()
                    },
                    ..base()
                },
                ConfigError::RetentionWithinRefreshInterval {
                    retention: 500,
                    interval: 781,
                },
            ),
        ];
        for (cfg, want) in cases {
            let errs = cfg.check();
            assert!(
                errs.contains(&want),
                "expected {want:?} among {errs:?} for {cfg:?}"
            );
            assert!(cfg.validate().is_err());
        }
    }

    #[test]
    fn check_reports_every_violation_at_once() {
        let cfg = SdramConfig {
            internal_banks: 5,
            ranks: 0,
            t_cas: 0,
            ..SdramConfig::default()
        };
        let errs = cfg.check();
        assert!(errs.len() >= 3, "all three violations reported: {errs:?}");
    }

    #[test]
    fn error_display_is_readable() {
        let e = SdramConfig {
            internal_banks: 3,
            ..SdramConfig::default()
        }
        .validate()
        .unwrap_err();
        assert_eq!(
            e.to_string(),
            "internal_banks = 3 is not a nonzero power of two"
        );
    }

    #[test]
    fn map_roundtrip_is_injective() {
        let c = SdramConfig {
            log2_cols: 3,
            log2_rows: 2,
            internal_banks: 2,
            ..SdramConfig::default()
        };
        let mut seen = std::collections::HashSet::new();
        for a in 0..c.capacity_words() {
            assert!(seen.insert(c.map(a)), "duplicate mapping for {a}");
        }
    }
}
