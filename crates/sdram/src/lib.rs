//! # sdram — cycle-level SDRAM device simulator
//!
//! The memory substrate underneath the Parallel Vector Access unit: a
//! synchronous DRAM device model with multiple internal banks,
//! per-internal-bank row buffers, and restimer-enforced timing
//! constraints, matching the Micron 256 Mbit parts the paper's prototype
//! drives (§5.1) — RAS and CAS latencies of two cycles, four internal
//! banks, auto-precharge support.
//!
//! * [`Sdram`] — the device state machine (one per external bank).
//! * [`SdramCmd`] — the clock-edge command set.
//! * [`SdramConfig`] / [`DevicePreset`] — timing/geometry parameters
//!   and the shipped device generations (SDR through DDR3-1600 and
//!   HBM-class profiles), all behind the [`DeviceTiming`] trait.
//! * [`Restimer`] / [`BankTimers`] / [`ChannelTimers`] — the §5.2.5
//!   timing counters, per bank and per channel.
//! * [`TimingAuditor`] — an independent checker used to cross-validate
//!   the device in tests.
//! * [`FaultConfig`] / [`ecc`] — deterministic fault injection and the
//!   SEC-DED Hamming(72,64) codec that corrects what it can and flags
//!   the rest (`ReadReturn::poisoned`).
//!
//! # Example: overlap across internal banks
//!
//! ```
//! use sdram::{Sdram, SdramCmd, SdramConfig};
//!
//! let mut dev = Sdram::new(SdramConfig::default());
//! // Open rows in two internal banks on consecutive cycles...
//! dev.issue(SdramCmd::Activate { bank: 0, row: 10 })?;
//! dev.tick();
//! dev.issue(SdramCmd::Activate { bank: 1, row: 20 })?;
//! dev.tick();
//! // ...bank 0 is already ready to read while bank 1 finishes opening.
//! dev.issue(SdramCmd::Read { bank: 0, col: 0, auto_precharge: false, tag: 7 })?;
//! # Ok::<(), sdram::IssueError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod config;
mod device;
pub mod ecc;
mod fault;
pub mod fsm;
pub mod protocol;
mod restimer;

pub use audit::{TimingAuditor, Violation};
pub use config::{ConfigError, DevicePreset, InternalAddr, SdramConfig, MAX_BANK_GROUPS};
pub use device::{background_pattern, IssueError, ReadReturn, Sdram, SdramCmd, SdramStats};
pub use fault::{FaultConfig, PPM};
pub use fsm::{BankEvent, BankState, CmdClass, Outcome, TRANSITIONS};
pub use protocol::{ChannelTimerId, DeadlineModel, DeviceTiming, TimerId};
pub use restimer::{BankTimers, ChannelTimers, Restimer};
