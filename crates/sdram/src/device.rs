//! Cycle-level SDRAM device state machine.
//!
//! One [`Sdram`] models one external bank of the memory system: a
//! 32-bit-wide SDRAM module with several internal banks, each with its
//! own row buffer (§5.1 drives Micron 256 Mbit parts with four internal
//! banks). The device accepts one command per cycle at clock edges —
//! ACTIVATE, READ, WRITE (optionally with auto-precharge), PRECHARGE or
//! NOP — and enforces every timing restriction with
//! [restimers](crate::Restimer) exactly as §5.2.5 prescribes.
//!
//! The device is *passive*: callers (bank controllers, baseline
//! memory models) query [`Sdram::can_issue`] and schedule around the
//! answer. Issuing an illegal command is an error, never silent
//! misbehaviour — the auditor in [`crate::audit`] cross-checks this in
//! tests.

use std::collections::VecDeque;

use pva_core::FastMap;

use crate::config::{ConfigError, SdramConfig};
use crate::ecc;
use crate::fault::FaultEngine;
use crate::fsm::{self, BankEvent, BankState, CmdClass};
use crate::protocol::TimerId;
use crate::restimer::{BankTimers, ChannelTimers};

/// A command presented to the SDRAM at a clock edge (§2.3.3: "it is more
/// appropriate to consider these as commands issued to an SDRAM chip at
/// the edge of the clock").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdramCmd {
    /// Open `row` in internal bank `bank` (RAS).
    Activate {
        /// Internal bank index.
        bank: u32,
        /// Row to open.
        row: u64,
    },
    /// Read the word at `col` of the open row of `bank` (CAS); data
    /// appears `t_cas` cycles later. `auto_precharge` closes the row
    /// after the access.
    Read {
        /// Internal bank index.
        bank: u32,
        /// Column within the open row.
        col: u64,
        /// Close the row automatically after the access.
        auto_precharge: bool,
        /// Opaque tag returned with the data (transaction bookkeeping).
        tag: u64,
    },
    /// Write `data` to `col` of the open row of `bank`.
    Write {
        /// Internal bank index.
        bank: u32,
        /// Column within the open row.
        col: u64,
        /// Word to store.
        data: u64,
        /// Close the row automatically after the access.
        auto_precharge: bool,
    },
    /// Close the open row of `bank`.
    Precharge {
        /// Internal bank index.
        bank: u32,
    },
    /// AUTO REFRESH: refresh the next row group in every internal bank.
    /// Requires all rows closed; occupies the device for `tRFC` cycles.
    Refresh,
    /// No operation this cycle.
    Nop,
}

/// Why a command could not be issued this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueError {
    /// A restimer for the named parameter has not expired.
    TimingViolation {
        /// Internal bank the violation is on.
        bank: u32,
        /// Name of the violated timing parameter.
        timer: &'static str,
    },
    /// READ/WRITE issued with no row open in the bank.
    RowNotOpen {
        /// Internal bank addressed.
        bank: u32,
    },
    /// ACTIVATE issued while a row is already open (must precharge
    /// first).
    RowAlreadyOpen {
        /// Internal bank addressed.
        bank: u32,
    },
    /// Internal bank index out of range.
    BankOutOfRange {
        /// Offending index.
        bank: u32,
    },
    /// A second non-NOP command was issued in the same cycle (the
    /// command bus carries one command per edge).
    CommandBusBusy,
    /// The device is busy executing an AUTO REFRESH (`tRFC` pending).
    RefreshInProgress,
    /// REFRESH issued while some internal bank still has an open row.
    RefreshNeedsIdleBanks,
}

impl core::fmt::Display for IssueError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            IssueError::TimingViolation { bank, timer } => {
                write!(
                    f,
                    "timing parameter {timer} not satisfied on internal bank {bank}"
                )
            }
            IssueError::RowNotOpen { bank } => {
                write!(f, "no open row in internal bank {bank}")
            }
            IssueError::RowAlreadyOpen { bank } => {
                write!(f, "internal bank {bank} already has an open row")
            }
            IssueError::BankOutOfRange { bank } => {
                write!(f, "internal bank index {bank} out of range")
            }
            IssueError::CommandBusBusy => write!(f, "command already issued this cycle"),
            IssueError::RefreshInProgress => write!(f, "refresh cycle in progress"),
            IssueError::RefreshNeedsIdleBanks => {
                write!(f, "refresh requires all rows to be precharged")
            }
        }
    }
}

impl std::error::Error for IssueError {}

/// Data word returned by a completed READ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadReturn {
    /// The tag supplied with the READ command.
    pub tag: u64,
    /// The word read.
    pub data: u64,
    /// Cycle at which the data appeared on the device pins.
    pub at_cycle: u64,
    /// The data is known bad: the read hit a hard-failed bank, or ECC
    /// detected an uncorrectable error. Consumers must not commit it.
    pub poisoned: bool,
}

/// Row-buffer state of one internal bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowState {
    Closed,
    Open { row: u64 },
}

/// Operation counters, used by the evaluation harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SdramStats {
    /// ACTIVATE commands accepted.
    pub activates: u64,
    /// READ commands accepted.
    pub reads: u64,
    /// WRITE commands accepted.
    pub writes: u64,
    /// Explicit PRECHARGE commands accepted.
    pub precharges: u64,
    /// Auto-precharges triggered by READ/WRITE.
    pub auto_precharges: u64,
    /// READ/WRITE commands that found their row already open from a
    /// *previous* access run (row-buffer hits saved an ACTIVATE).
    pub row_hits: u64,
    /// AUTO REFRESH commands accepted.
    pub refreshes: u64,
    /// Reads whose single-bit error the SEC-DED code corrected.
    pub corrected: u64,
    /// Reads whose error was detected but not correctable (poisoned
    /// data delivered with the `poisoned` flag set).
    pub detected_uncorrectable: u64,
    /// Reads that delivered wrong data *without* the `poisoned` flag —
    /// silent corruption (always possible with ECC off; with ECC on
    /// only ≥3 simultaneous bit errors can cause it).
    pub silent: u64,
    /// Transient bit flips injected by the fault engine.
    pub transient_faults: u64,
    /// Stored words that lost a bit to refresh decay.
    pub decayed_words: u64,
    /// Writes dropped because they addressed a hard-failed bank.
    pub dropped_writes: u64,
}

impl SdramStats {
    /// Adds `other`'s counters into `self` — aggregation across the
    /// devices of a multi-bank system.
    pub fn merge(&mut self, other: &SdramStats) {
        self.activates += other.activates;
        self.reads += other.reads;
        self.writes += other.writes;
        self.precharges += other.precharges;
        self.auto_precharges += other.auto_precharges;
        self.row_hits += other.row_hits;
        self.refreshes += other.refreshes;
        self.corrected += other.corrected;
        self.detected_uncorrectable += other.detected_uncorrectable;
        self.silent += other.silent;
        self.transient_faults += other.transient_faults;
        self.decayed_words += other.decayed_words;
        self.dropped_writes += other.dropped_writes;
    }
}

/// One SDRAM device: state machine, timers, and functional storage.
///
/// Storage is a sparse overlay: a word never written reads back as a
/// deterministic pattern of its local address, so functional tests can
/// verify gathered data without preloading gigabytes.
///
/// # Examples
///
/// ```
/// use sdram::{Sdram, SdramCmd, SdramConfig};
///
/// let mut dev = Sdram::new(SdramConfig::default());
/// dev.issue(SdramCmd::Activate { bank: 0, row: 3 })?;
/// // tRCD = 2: the READ becomes legal two cycles later.
/// dev.tick();
/// dev.tick();
/// dev.issue(SdramCmd::Read { bank: 0, col: 7, auto_precharge: false, tag: 42 })?;
/// dev.tick();
/// dev.tick(); // CAS latency 2
/// let data = dev.take_ready_data();
/// assert_eq!(data.len(), 1);
/// assert_eq!(data[0].tag, 42);
/// # Ok::<(), sdram::IssueError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Sdram {
    config: SdramConfig,
    rows: Vec<RowState>,
    timers: Vec<BankTimers>,
    /// Device-wide channel timers (tCCD/tRRD/tFAW); permanently open on
    /// generations that leave the parameters at 0.
    channel: ChannelTimers,
    /// Written words, keyed by device-local address.
    overlay: FastMap<u64, u64>,
    /// SEC-DED check bytes of written words (only kept when
    /// `config.ecc` is on); unwritten words implicitly carry the check
    /// byte of their background pattern.
    check_overlay: FastMap<u64, u8>,
    /// Words that lost a bit to refresh decay: local address → flipped
    /// data bit. A write (or poke) to the word recharges the cell and
    /// clears the entry.
    decayed: FastMap<u64, u32>,
    /// Cycle each (bank, row) was last charge-restored by an ACTIVATE.
    row_restore: FastMap<(u32, u64), u64>,
    /// Cycle of the last AUTO REFRESH (device-wide charge restore).
    last_refresh_at: u64,
    /// Deterministic fault injector.
    faults: FaultEngine,
    /// Reads in flight: (ready_at, tag, data), ordered by ready_at.
    in_flight: VecDeque<ReadReturn>,
    now: u64,
    issued_this_cycle: bool,
    /// Remaining cycles of an in-progress AUTO REFRESH.
    refresh_busy: u32,
    /// Cycles elapsed since the last AUTO REFRESH.
    since_refresh: u64,
    /// Upper bound on the latest restimer expiry cycle, maintained at
    /// each arm site: `now >= timer_deadline` proves all timers
    /// expired without scanning them.
    timer_deadline: u64,
    stats: SdramStats,
}

impl Sdram {
    /// Creates an idle device with all rows closed.
    ///
    /// # Panics
    ///
    /// Panics if `config` violates a [`SdramConfig::check`] consistency
    /// rule — an inconsistent device would produce silently wrong
    /// timing rather than an error, so construction is the last safe
    /// place to stop it.
    pub fn new(config: SdramConfig) -> Self {
        match Self::try_new(config) {
            Ok(dev) => dev,
            Err(e) => panic!("invalid SdramConfig: {e}"),
        }
    }

    /// Creates an idle device, or reports why the configuration is
    /// inconsistent — the non-panicking form of [`Sdram::new`] for
    /// embedders that take configs from users.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] from [`SdramConfig::check`].
    pub fn try_new(config: SdramConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let n = config.total_row_buffers() as usize;
        Ok(Sdram {
            config,
            rows: vec![RowState::Closed; n],
            timers: vec![BankTimers::new(); n],
            channel: ChannelTimers::new(),
            overlay: FastMap::default(),
            check_overlay: FastMap::default(),
            decayed: FastMap::default(),
            row_restore: FastMap::default(),
            last_refresh_at: 0,
            faults: FaultEngine::new(config.fault),
            in_flight: VecDeque::new(),
            now: 0,
            issued_this_cycle: false,
            refresh_busy: 0,
            since_refresh: 0,
            timer_deadline: 0,
            stats: SdramStats::default(),
        })
    }

    /// Re-derives the transient-fault stream from the config seed and
    /// `salt`, so each device in a multi-controller system sees an
    /// independent but reproducible upset sequence.
    pub fn reseed_faults(&mut self, salt: u64) {
        self.faults.reseed(salt);
    }

    /// The internal bank configured as hard-failed, if any.
    pub const fn hard_failed_bank(&self) -> Option<u32> {
        self.config.fault.hard_failed_bank
    }

    /// The device configuration.
    pub const fn config(&self) -> &SdramConfig {
        &self.config
    }

    /// Current cycle count.
    pub const fn now(&self) -> u64 {
        self.now
    }

    /// Operation counters.
    pub const fn stats(&self) -> &SdramStats {
        &self.stats
    }

    /// The open row of internal bank `bank`, if any.
    pub fn open_row(&self, bank: u32) -> Option<u64> {
        match self.rows.get(bank as usize) {
            Some(RowState::Open { row }) => Some(*row),
            _ => None,
        }
    }

    /// The observable FSM state of internal bank `bank` (see
    /// [`crate::fsm`]): derived from the row buffer, the tRCD/tRP
    /// restimers and the device-wide refresh counter, so it is always
    /// consistent with what `can_issue` will admit.
    pub fn bank_state(&self, bank: u32) -> BankState {
        if self.refresh_busy > 0 {
            return BankState::Refreshing;
        }
        let b = bank as usize;
        match self.rows[b] {
            RowState::Open { .. } => {
                if self.timers[b].rcd.available(self.now) {
                    BankState::Active
                } else {
                    BankState::Activating
                }
            }
            RowState::Closed => {
                if self.timers[b].rp.available(self.now) {
                    BankState::Idle
                } else {
                    BankState::Precharging
                }
            }
        }
    }

    /// Drives internal bank `bank` through the transition table for a
    /// validated command: the successor state decides whether the row
    /// buffer is open (holding `row`) or closed. `can_issue` has
    /// already admitted the command, so the table must agree it is
    /// legal — a mismatch is a bug in one of the two.
    fn apply_bank_event(&mut self, bank: u32, class: CmdClass, row: u64) {
        let prev = self.bank_state(bank);
        let next = fsm::next_state(prev, BankEvent::Command(class)).unwrap_or_else(|| {
            panic!(
                "can_issue admitted {} in state {} but the transition table forbids it",
                class.mnemonic(),
                prev.name()
            )
        });
        self.rows[bank as usize] = if next.row_open() {
            RowState::Open { row }
        } else {
            RowState::Closed
        };
    }

    /// Whether `cmd` could legally issue this cycle.
    ///
    /// # Errors
    ///
    /// Returns the same [`IssueError`] that [`Sdram::issue`] would.
    pub fn can_issue(&self, cmd: &SdramCmd) -> Result<(), IssueError> {
        if self.issued_this_cycle && !matches!(cmd, SdramCmd::Nop) {
            return Err(IssueError::CommandBusBusy);
        }
        if self.refresh_busy > 0 && !matches!(cmd, SdramCmd::Nop) {
            return Err(IssueError::RefreshInProgress);
        }
        match *cmd {
            SdramCmd::Nop => Ok(()),
            SdramCmd::Refresh => {
                if self.rows.iter().any(|r| matches!(r, RowState::Open { .. })) {
                    return Err(IssueError::RefreshNeedsIdleBanks);
                }
                for (i, t) in self.timers.iter().enumerate() {
                    if !t.rp.available(self.now) {
                        return Err(IssueError::TimingViolation {
                            bank: i as u32,
                            timer: "tRP",
                        });
                    }
                }
                Ok(())
            }
            SdramCmd::Activate { bank, row: _ } => {
                let (state, timers) = self.bank(bank)?;
                if matches!(state, RowState::Open { .. }) {
                    return Err(IssueError::RowAlreadyOpen { bank });
                }
                if !timers.rp.available(self.now) {
                    return Err(IssueError::TimingViolation { bank, timer: "tRP" });
                }
                if !timers.rc.available(self.now) {
                    return Err(IssueError::TimingViolation { bank, timer: "tRC" });
                }
                if !self.channel.rrd_available(self.now) {
                    return Err(IssueError::TimingViolation {
                        bank,
                        timer: "tRRD",
                    });
                }
                if !self.channel.faw_available(self.now) {
                    return Err(IssueError::TimingViolation {
                        bank,
                        timer: "tFAW",
                    });
                }
                Ok(())
            }
            SdramCmd::Read { bank, .. } | SdramCmd::Write { bank, .. } => {
                let (state, timers) = self.bank(bank)?;
                if !matches!(state, RowState::Open { .. }) {
                    return Err(IssueError::RowNotOpen { bank });
                }
                if !timers.rcd.available(self.now) {
                    return Err(IssueError::TimingViolation {
                        bank,
                        timer: "tRCD",
                    });
                }
                let group = self.config.bank_group_of(bank) as usize;
                if !self.channel.can_cas(self.now, group) {
                    return Err(IssueError::TimingViolation {
                        bank,
                        timer: "tCCD",
                    });
                }
                Ok(())
            }
            SdramCmd::Precharge { bank } => {
                let (_, timers) = self.bank(bank)?;
                if !timers.ras.available(self.now) {
                    return Err(IssueError::TimingViolation {
                        bank,
                        timer: "tRAS",
                    });
                }
                if !timers.wr.available(self.now) {
                    return Err(IssueError::TimingViolation { bank, timer: "tWR" });
                }
                Ok(())
            }
        }
    }

    /// Issues `cmd` at the current clock edge.
    ///
    /// # Errors
    ///
    /// Rejects illegal commands (timing violations, closed-row accesses,
    /// double-issue) without changing device state.
    pub fn issue(&mut self, cmd: SdramCmd) -> Result<(), IssueError> {
        self.can_issue(&cmd)?;
        match cmd {
            SdramCmd::Nop => return Ok(()),
            SdramCmd::Refresh => {
                // Every internal bank enters Refreshing (applied before
                // the busy counter starts so the table sees Idle).
                for b in 0..self.config.total_row_buffers() {
                    self.apply_bank_event(b, CmdClass::Refresh, 0);
                }
                // A refresh recharges whatever the cells hold *now*: a
                // row whose retention window already lapsed has decayed
                // and the refresh only perpetuates the corrupted value.
                self.decay_lapsed_rows();
                self.last_refresh_at = self.now;
                // The whole device is busy for tRFC; afterwards every
                // internal bank must wait tRP-equivalent before activate,
                // which tRFC subsumes in this model.
                self.refresh_busy = self.config.t_rfc.max(1);
                self.since_refresh = 0;
                self.stats.refreshes += 1;
            }
            SdramCmd::Activate { bank, row } => {
                // Opening the row restores its charge — but if the
                // retention window already lapsed, the damage is done.
                // Restore tracking only matters under the decay model;
                // without it the map would just grow per activate.
                if self.config.fault.retention_cycles > 0 {
                    self.decay_row_if_lapsed(bank, row);
                    self.row_restore.insert((bank, row), self.now);
                }
                let cfg = self.config;
                let b = bank as usize;
                self.apply_bank_event(bank, CmdClass::Activate, row);
                let now = self.now;
                let t = &mut self.timers[b];
                t.rcd.arm(now, cfg.t_rcd as u64);
                t.ras.arm(now, cfg.t_ras as u64);
                t.rc.arm(now, cfg.t_rc as u64);
                self.channel
                    .note_activate(now, cfg.t_rrd as u64, cfg.t_faw as u64);
                let longest = cfg
                    .t_rcd
                    .max(cfg.t_ras)
                    .max(cfg.t_rc)
                    .max(cfg.t_rrd)
                    .max(cfg.t_faw);
                self.note_armed(now.saturating_add(longest as u64));
                self.stats.activates += 1;
            }
            SdramCmd::Read {
                bank,
                col,
                auto_precharge,
                tag,
            } => {
                let row = match self.rows[bank as usize] {
                    RowState::Open { row } => row,
                    RowState::Closed => unreachable!("validated open"),
                };
                let local = self.local_addr(bank, row, col);
                let (data, poisoned) = self.read_word(bank, local);
                let ready = ReadReturn {
                    tag,
                    data,
                    at_cycle: self.now + self.config.t_cas as u64,
                    poisoned,
                };
                // Keep the queue ordered by completion time. With one
                // command per cycle and a constant CAS latency the new
                // return lands at the back; the scan only runs in the
                // (config-dependent) general case.
                if self
                    .in_flight
                    .back()
                    .is_none_or(|r| r.at_cycle <= ready.at_cycle)
                {
                    self.in_flight.push_back(ready);
                } else {
                    let pos = self
                        .in_flight
                        .iter()
                        .position(|r| r.at_cycle > ready.at_cycle)
                        .unwrap_or(self.in_flight.len());
                    self.in_flight.insert(pos, ready);
                }
                self.stats.reads += 1;
                self.note_cas(bank);
                let class = if auto_precharge {
                    CmdClass::ReadAuto
                } else {
                    CmdClass::Read
                };
                self.apply_bank_event(bank, class, row);
                if auto_precharge {
                    self.auto_precharge(bank);
                }
            }
            SdramCmd::Write {
                bank,
                col,
                data,
                auto_precharge,
            } => {
                let row = match self.rows[bank as usize] {
                    RowState::Open { row } => row,
                    RowState::Closed => unreachable!("validated open"),
                };
                let local = self.local_addr(bank, row, col);
                if self.config.fault.hard_failed_bank == Some(bank) {
                    // A dead subarray absorbs the write electrically but
                    // stores nothing.
                    self.stats.dropped_writes += 1;
                } else {
                    self.store_word(local, data);
                }
                self.stats.writes += 1;
                self.note_cas(bank);
                let class = if auto_precharge {
                    CmdClass::WriteAuto
                } else {
                    CmdClass::Write
                };
                self.apply_bank_event(bank, class, row);
                let now = self.now;
                self.timers[bank as usize]
                    .wr
                    .arm(now, self.config.t_wr as u64);
                self.note_armed(now.saturating_add(self.config.t_wr as u64));
                if auto_precharge {
                    self.auto_precharge(bank);
                }
            }
            SdramCmd::Precharge { bank } => {
                let b = bank as usize;
                self.apply_bank_event(bank, CmdClass::Precharge, 0);
                let now = self.now;
                self.timers[b].rp.arm(now, self.config.t_rp as u64);
                self.note_armed(now.saturating_add(self.config.t_rp as u64));
                self.stats.precharges += 1;
            }
        }
        self.issued_this_cycle = true;
        Ok(())
    }

    /// Issues one READ CAS that bursts over `items` consecutive columns
    /// of `bank`'s open row — the BL4/BL8 access of later SDRAM
    /// generations, where a single column command streams several words
    /// over successive data beats.
    ///
    /// Legality is exactly that of a single READ at `items[0]` (the
    /// burst occupies one command-bus slot and arms the channel's tCCD
    /// gates once); each word is read through the same fault and ECC
    /// layers as an individual READ and lands `j / data_rate` beats
    /// after the first word's CAS latency. Counts as one `reads`
    /// command in [`SdramStats`].
    ///
    /// # Errors
    ///
    /// Rejects exactly when a single READ on `bank` would be rejected;
    /// the device is unchanged on error.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `items` is empty or longer than the
    /// configured burst length.
    pub fn issue_read_burst(
        &mut self,
        bank: u32,
        auto_precharge: bool,
        items: &[(u64, u64)],
    ) -> Result<(), IssueError> {
        debug_assert!(!items.is_empty(), "a burst carries at least one word");
        debug_assert!(
            items.len() as u32 <= self.config.burst_words,
            "burst longer than the device burst length"
        );
        self.can_issue(&SdramCmd::Read {
            bank,
            col: items[0].0,
            auto_precharge,
            tag: items[0].1,
        })?;
        let row = match self.rows[bank as usize] {
            RowState::Open { row } => row,
            RowState::Closed => unreachable!("validated open"),
        };
        let beat_rate = self.config.data_rate.max(1) as u64;
        for (j, &(col, tag)) in items.iter().enumerate() {
            debug_assert_eq!(col, items[0].0 + j as u64, "burst columns are consecutive");
            let local = self.local_addr(bank, row, col);
            let (data, poisoned) = self.read_word(bank, local);
            let ready = ReadReturn {
                tag,
                data,
                // pva-lint: allow(nonconst-div): data_rate is a small config constant; words share beats on DDR parts
                at_cycle: self.now + self.config.t_cas as u64 + j as u64 / beat_rate,
                poisoned,
            };
            if self
                .in_flight
                .back()
                .is_none_or(|r| r.at_cycle <= ready.at_cycle)
            {
                self.in_flight.push_back(ready);
            } else {
                let pos = self
                    .in_flight
                    .iter()
                    .position(|r| r.at_cycle > ready.at_cycle)
                    .unwrap_or(self.in_flight.len());
                self.in_flight.insert(pos, ready);
            }
        }
        self.stats.reads += 1;
        self.note_cas(bank);
        let class = if auto_precharge {
            CmdClass::ReadAuto
        } else {
            CmdClass::Read
        };
        self.apply_bank_event(bank, class, row);
        if auto_precharge {
            self.auto_precharge(bank);
        }
        self.issued_this_cycle = true;
        Ok(())
    }

    /// Issues one WRITE CAS that bursts `items` (column, data) pairs
    /// into consecutive columns of `bank`'s open row — the write half
    /// of [`issue_read_burst`](Sdram::issue_read_burst). Counts as one
    /// `writes` command; tWR is armed from the burst's last data beat.
    ///
    /// # Errors
    ///
    /// Rejects exactly when a single WRITE on `bank` would be rejected;
    /// the device is unchanged on error.
    ///
    /// # Panics
    ///
    /// Panics (debug builds) if `items` is empty or longer than the
    /// configured burst length.
    pub fn issue_write_burst(
        &mut self,
        bank: u32,
        auto_precharge: bool,
        items: &[(u64, u64)],
    ) -> Result<(), IssueError> {
        debug_assert!(!items.is_empty(), "a burst carries at least one word");
        debug_assert!(
            items.len() as u32 <= self.config.burst_words,
            "burst longer than the device burst length"
        );
        self.can_issue(&SdramCmd::Write {
            bank,
            col: items[0].0,
            data: items[0].1,
            auto_precharge,
        })?;
        let row = match self.rows[bank as usize] {
            RowState::Open { row } => row,
            RowState::Closed => unreachable!("validated open"),
        };
        for (j, &(col, data)) in items.iter().enumerate() {
            debug_assert_eq!(col, items[0].0 + j as u64, "burst columns are consecutive");
            let local = self.local_addr(bank, row, col);
            if self.config.fault.hard_failed_bank == Some(bank) {
                self.stats.dropped_writes += 1;
            } else {
                self.store_word(local, data);
            }
        }
        self.stats.writes += 1;
        self.note_cas(bank);
        let class = if auto_precharge {
            CmdClass::WriteAuto
        } else {
            CmdClass::Write
        };
        self.apply_bank_event(bank, class, row);
        let now = self.now;
        // tWR runs from the last data beat of the burst, not the CAS.
        let beat_rate = self.config.data_rate.max(1) as u64;
        // pva-lint: allow(nonconst-div): data_rate is a small config constant; words share beats on DDR parts
        let last_beat = (items.len() as u64 - 1) / beat_rate;
        let wait = last_beat + self.config.t_wr as u64;
        self.timers[bank as usize].wr.arm(now, wait);
        self.note_armed(now.saturating_add(wait));
        if auto_precharge {
            self.auto_precharge(bank);
        }
        self.issued_this_cycle = true;
        Ok(())
    }

    /// Advances the device one clock cycle.
    pub fn tick(&mut self) {
        self.now += 1;
        self.issued_this_cycle = false;
        self.refresh_busy = self.refresh_busy.saturating_sub(1);
        self.since_refresh += 1;
    }

    /// Advances the device `cycles` cycles at once — exactly equivalent
    /// to `cycles` calls to [`tick`](Sdram::tick). Used by the next-event
    /// fast path of the simulator to jump over quiescent windows.
    pub fn advance(&mut self, cycles: u64) {
        self.now = self.now.saturating_add(cycles);
        if cycles > 0 {
            self.issued_this_cycle = false;
        }
        let n32 = u32::try_from(cycles).unwrap_or(u32::MAX);
        self.refresh_busy = self.refresh_busy.saturating_sub(n32);
        self.since_refresh = self.since_refresh.saturating_add(cycles);
    }

    /// Raises the cached timer expiry bound after arming a restimer.
    fn note_armed(&mut self, until: u64) {
        self.timer_deadline = self.timer_deadline.max(until);
    }

    /// Records an accepted CAS on the channel: `bank`'s group is armed
    /// for `tCCD_L`, every other group for `tCCD_S`. No-op on
    /// generations with tCCD disabled (both parameters 0).
    fn note_cas(&mut self, bank: u32) {
        let cfg = self.config;
        if cfg.t_ccd_l == 0 && cfg.t_ccd_s == 0 {
            return;
        }
        let group = cfg.bank_group_of(bank) as usize;
        let now = self.now;
        self.channel
            .note_cas(now, group, cfg.t_ccd_l as u64, cfg.t_ccd_s as u64);
        self.note_armed(now.saturating_add(cfg.t_ccd_l as u64));
    }

    /// Whether a command was accepted at the current clock edge.
    pub const fn command_issued_this_cycle(&self) -> bool {
        self.issued_this_cycle
    }

    /// The cycle the earliest in-flight read reaches the pins, if any.
    pub fn next_data_at(&self) -> Option<u64> {
        self.in_flight.front().map(|r| r.at_cycle)
    }

    /// The earliest future cycle at which any device-side resource
    /// changes state on its own: a restimer expiring, an in-progress
    /// AUTO REFRESH finishing, or the periodic refresh interval lapsing.
    /// `None` when nothing is pending (the device would sit unchanged
    /// forever without new commands). In-flight read data is reported
    /// separately by [`Sdram::next_data_at`].
    pub fn next_resource_wake(&self) -> Option<u64> {
        let mut wake: Option<u64> = None;
        let mut consider = |at: u64| {
            wake = Some(wake.map_or(at, |w: u64| w.min(at)));
        };
        // Conservative: wake at the *earliest* future expiry among all
        // timers — early wakes are harmless, late ones are not. The
        // cached bound proves every timer already expired.
        if self.now < self.timer_deadline {
            for t in &self.timers {
                for at in [
                    t.rcd.expires_at(),
                    t.ras.expires_at(),
                    t.rp.expires_at(),
                    t.rc.expires_at(),
                    t.wr.expires_at(),
                ] {
                    if at > self.now {
                        consider(at);
                    }
                }
            }
            if let Some(at) = self.channel.next_expiry_after(self.now) {
                consider(at);
            }
        }
        if self.refresh_busy > 0 {
            consider(self.now + self.refresh_busy as u64);
        }
        if self.config.refresh_interval > 0 {
            let until_due = self
                .config
                .refresh_interval
                .saturating_sub(self.since_refresh)
                .max(1);
            consider(self.now + until_due);
        }
        wake
    }

    /// First cycle an ACTIVATE on internal bank `bank` is timing-legal
    /// (bank's tRP and tRC plus the channel's tRRD and tFAW all
    /// expired; may be in the past).
    pub fn activate_ready_at(&self, bank: u32) -> u64 {
        self.timers[bank as usize]
            .activate_ready_at()
            .max(self.channel.activate_ready_at())
    }

    /// First cycle a READ/WRITE on internal bank `bank` is timing-legal
    /// (tRCD plus the bank group's tCCD gate expired; may be in the
    /// past). The row must also be open — a state change, not a timer,
    /// so not reported here.
    pub fn access_ready_at(&self, bank: u32) -> u64 {
        let group = self.config.bank_group_of(bank) as usize;
        self.timers[bank as usize]
            .access_ready_at()
            .max(self.channel.cas_ready_at(group))
    }

    /// First cycle a PRECHARGE on internal bank `bank` is timing-legal
    /// (tRAS and tWR both expired; may be in the past).
    pub fn precharge_ready_at(&self, bank: u32) -> u64 {
        self.timers[bank as usize].precharge_ready_at()
    }

    /// Residual cycles of the named restimer on internal bank `bank`
    /// (0 when expired) — per-timer introspection for the protocol
    /// checker in `pva-analysis`, which cross-validates its abstract
    /// timer state against the live device after every step.
    pub fn timer_remaining(&self, bank: u32, timer: TimerId) -> u64 {
        let t = &self.timers[bank as usize];
        match timer {
            TimerId::Rcd => t.rcd.remaining(self.now),
            TimerId::Ras => t.ras.remaining(self.now),
            TimerId::Rp => t.rp.remaining(self.now),
            TimerId::Rc => t.rc.remaining(self.now),
            TimerId::Wr => t.wr.remaining(self.now),
        }
    }

    /// Remaining cycles of an in-progress AUTO REFRESH (0 when none),
    /// the device-wide counterpart of [`Sdram::timer_remaining`].
    pub const fn refresh_busy_remaining(&self) -> u64 {
        self.refresh_busy as u64
    }

    /// Residual cycles of bank group `group`'s tCCD gate (0 when
    /// expired) — channel introspection for the protocol checker.
    pub fn channel_cas_remaining(&self, group: u32) -> u64 {
        self.channel
            .cas_ready_at(group as usize)
            .saturating_sub(self.now)
    }

    /// The earliest future expiry among the channel gates (tCCD per
    /// bank group, tRRD, the tFAW window slots), or `None` when every
    /// gate is already open. Generation-aware schedulers use this as a
    /// wake source: a command deferred on a channel constraint becomes
    /// issuable no earlier than this cycle. Permanently `None` on
    /// generations that leave the channel parameters at 0 (the timers
    /// never arm).
    pub fn channel_next_expiry(&self) -> Option<u64> {
        if self.now >= self.timer_deadline {
            return None;
        }
        self.channel.next_expiry_after(self.now)
    }

    /// Residual cycles of the channel's tRRD gate (0 when expired).
    pub fn channel_rrd_remaining(&self) -> u64 {
        self.channel.rrd_ready_at().saturating_sub(self.now)
    }

    /// Residual cycles of the four tFAW window slots, sorted ascending
    /// (all 0 when the window admits four immediate ACTIVATEs) —
    /// order-independent channel introspection for the protocol
    /// checker's state alignment.
    pub fn channel_faw_remaining(&self) -> [u64; 4] {
        let mut rem = self.channel.faw_slots();
        for slot in &mut rem {
            *slot = slot.saturating_sub(self.now);
        }
        rem.sort_unstable();
        rem
    }

    /// The earliest future cycle at which the refresh machinery changes
    /// state on its own: an in-progress AUTO REFRESH finishing, or the
    /// periodic refresh interval lapsing. While a refresh is *due*,
    /// reports the next cycle — the scheduler re-evaluates every cycle
    /// until the refresh completes (rare and bounded by `tRFC` plus the
    /// close-out of open rows).
    pub fn next_refresh_wake(&self) -> Option<u64> {
        let mut wake: Option<u64> = None;
        if self.refresh_busy > 0 {
            wake = Some(self.now + self.refresh_busy as u64);
        }
        if self.config.refresh_interval > 0 {
            let until_due = self
                .config
                .refresh_interval
                .saturating_sub(self.since_refresh)
                .max(1);
            let at = self.now + until_due;
            wake = Some(wake.map_or(at, |w: u64| w.min(at)));
        }
        wake
    }

    /// Removes and returns the earliest read whose data is on the pins
    /// at or before the current cycle — the allocation-free form of
    /// [`Sdram::take_ready_data`] for per-cycle hot paths.
    pub fn pop_ready(&mut self) -> Option<ReadReturn> {
        match self.in_flight.front() {
            Some(front) if front.at_cycle <= self.now => self.in_flight.pop_front(),
            _ => None,
        }
    }

    /// Whether the device is fully at rest: no in-flight data, no
    /// running or due refresh, and every restimer expired. A quiet
    /// device cannot change state on its own except for the periodic
    /// refresh deadline, which [`Sdram::next_resource_wake`] reports.
    pub fn quiet(&self) -> bool {
        self.now >= self.timer_deadline
            && self.in_flight.is_empty()
            && self.refresh_busy == 0
            && !self.refresh_due()
    }

    /// Whether a periodic refresh is due (`refresh_interval` elapsed
    /// since the last AUTO REFRESH; always `false` when refresh is
    /// disabled).
    pub fn refresh_due(&self) -> bool {
        self.config.refresh_interval > 0 && self.since_refresh >= self.config.refresh_interval
    }

    /// Whether an AUTO REFRESH is currently occupying the device.
    pub const fn refresh_in_progress(&self) -> bool {
        self.refresh_busy > 0
    }

    /// Removes and returns all reads whose data is on the pins at or
    /// before the current cycle.
    pub fn take_ready_data(&mut self) -> Vec<ReadReturn> {
        let mut out = Vec::new();
        while let Some(front) = self.in_flight.front() {
            if front.at_cycle <= self.now {
                out.push(self.in_flight.pop_front().expect("front exists"));
            } else {
                break;
            }
        }
        out
    }

    /// Whether any read data is still in flight.
    pub fn has_in_flight(&self) -> bool {
        !self.in_flight.is_empty()
    }

    /// Functional read of a device-local word (no timing): the overlay
    /// value if written, else the deterministic background pattern.
    pub fn peek(&self, local_addr: u64) -> u64 {
        self.overlay
            .get(&local_addr)
            .copied()
            .unwrap_or_else(|| background_pattern(local_addr))
    }

    /// Functional write of a device-local word (no timing), for test
    /// setup. Recharges the cell (clears any decay) and refreshes the
    /// stored check byte, exactly like a timed WRITE.
    pub fn poke(&mut self, local_addr: u64, data: u64) {
        self.store_word(local_addr, data);
    }

    /// Stores a word: overlay value, fresh check byte, cell recharged.
    fn store_word(&mut self, local_addr: u64, data: u64) {
        self.overlay.insert(local_addr, data);
        if !self.decayed.is_empty() {
            self.decayed.remove(&local_addr);
        }
        if self.config.ecc {
            self.check_overlay.insert(local_addr, ecc::encode(data));
        }
    }

    /// The stored check byte of a word: the overlay entry if the word
    /// was written with ECC on, else the check byte its content encodes
    /// to (unwritten background words are implicitly well-encoded).
    fn stored_check(&self, local_addr: u64) -> u8 {
        self.check_overlay
            .get(&local_addr)
            .copied()
            .unwrap_or_else(|| ecc::encode(self.peek(local_addr)))
    }

    /// Reads one word through the fault and ECC layers, returning the
    /// delivered data and whether it is flagged bad (`poisoned`).
    fn read_word(&mut self, bank: u32, local_addr: u64) -> (u64, bool) {
        let truth = self.peek(local_addr);
        if self.config.fault.hard_failed_bank == Some(bank) {
            // A dead subarray drives garbage; the controller-side ECC
            // (or the bank-failure detection itself) flags the loss.
            self.stats.detected_uncorrectable += 1;
            let garbage = background_pattern(local_addr ^ u64::from(bank).rotate_left(32));
            return (garbage, true);
        }
        let mut data = truth;
        let mut check = if self.config.ecc {
            self.stored_check(local_addr)
        } else {
            0
        };
        if !self.decayed.is_empty() {
            if let Some(&bit) = self.decayed.get(&local_addr) {
                data ^= 1u64 << bit;
            }
        }
        if let Some((bit, value)) = self.faults.stuck_bit(local_addr) {
            let (d0, c0) = apply_stuck(data, check, bit, value);
            data = d0;
            check = c0;
        }
        if let Some(bit) = self.faults.transient_flip() {
            let (d0, c0) = ecc::flip_codeword_bit(data, check, bit);
            data = d0;
            check = c0;
            self.stats.transient_faults += 1;
        }
        let (delivered, poisoned) = if self.config.ecc {
            match ecc::decode(data, check) {
                ecc::Decoded::Clean => (data, false),
                ecc::Decoded::Corrected { data: fixed } => {
                    self.stats.corrected += 1;
                    (fixed, false)
                }
                ecc::Decoded::Uncorrectable => {
                    self.stats.detected_uncorrectable += 1;
                    (data, true)
                }
            }
        } else {
            (data, false)
        };
        if !poisoned && delivered != truth {
            self.stats.silent += 1;
        }
        (delivered, poisoned)
    }

    /// Cycle the charge of `(bank, row)` was last restored: the later
    /// of its last ACTIVATE and the last device-wide AUTO REFRESH.
    fn last_restore(&self, bank: u32, row: u64) -> u64 {
        self.row_restore
            .get(&(bank, row))
            .copied()
            .unwrap_or(0)
            .max(self.last_refresh_at)
    }

    /// Applies refresh decay to `(bank, row)` if its retention window
    /// has lapsed: each stored word of the row loses its (per-word
    /// deterministic) weakest bit.
    fn decay_row_if_lapsed(&mut self, bank: u32, row: u64) {
        let retention = self.config.fault.retention_cycles;
        if retention == 0 {
            return;
        }
        if self.now.saturating_sub(self.last_restore(bank, row)) <= retention {
            return;
        }
        for col in 0..(1u64 << self.config.log2_cols) {
            let local = self.local_addr(bank, row, col);
            if self.overlay.contains_key(&local) && !self.decayed.contains_key(&local) {
                self.decayed.insert(local, self.faults.decay_bit(local));
                self.stats.decayed_words += 1;
            }
        }
    }

    /// Decays every tracked row whose retention window lapsed. Called
    /// on AUTO REFRESH; cheap in the healthy case — when the previous
    /// refresh was itself within the retention window, no row can have
    /// lapsed and the scan is skipped.
    fn decay_lapsed_rows(&mut self) {
        let retention = self.config.fault.retention_cycles;
        if retention == 0 || self.now.saturating_sub(self.last_refresh_at) <= retention {
            return;
        }
        let lapsed: Vec<(u32, u64)> = self.row_restore.keys().copied().collect();
        for (bank, row) in lapsed {
            self.decay_row_if_lapsed(bank, row);
        }
    }

    /// Composes internal coordinates back into a device-local address
    /// (inverse of [`SdramConfig::map`]).
    pub fn local_addr(&self, bank: u32, row: u64, col: u64) -> u64 {
        let ib_bits = self.config.internal_banks.trailing_zeros();
        let rank = (bank / self.config.internal_banks) as u64;
        let ib = (bank % self.config.internal_banks) as u64;
        let row_field = (rank << self.config.log2_rows) | row;
        (((row_field << ib_bits) | ib) << self.config.log2_cols) | col
    }

    /// Records a row-hit observation (called by controllers when they
    /// find their target row already open and skip an ACTIVATE).
    pub fn note_row_hit(&mut self) {
        self.stats.row_hits += 1;
    }

    fn bank(&self, bank: u32) -> Result<(RowState, &BankTimers), IssueError> {
        if bank >= self.config.total_row_buffers() {
            return Err(IssueError::BankOutOfRange { bank });
        }
        Ok((self.rows[bank as usize], &self.timers[bank as usize]))
    }

    /// Arms the precharge timer for an auto-precharging access (the
    /// row buffer itself was already closed by the transition table in
    /// [`Sdram::apply_bank_event`]).
    fn auto_precharge(&mut self, bank: u32) {
        let b = bank as usize;
        debug_assert!(matches!(self.rows[b], RowState::Closed));
        // The internal precharge starts once tRAS/tWR allow and takes
        // tRP; until then the bank cannot re-activate. Model this as
        // arming tRP for the residual tRAS/tWR plus tRP.
        let now = self.now;
        let residual = self.timers[b]
            .ras
            .remaining(now)
            .max(self.timers[b].wr.remaining(now));
        let wait = residual.saturating_add(self.config.t_rp as u64);
        self.timers[b].rp.arm(now, wait);
        self.note_armed(now.saturating_add(wait));
        self.stats.auto_precharges += 1;
    }
}

/// Deterministic background content of unwritten memory: a mix of the
/// address bits so neighbouring words differ.
pub fn background_pattern(local_addr: u64) -> u64 {
    local_addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA5A5_5A5A_0F0F_F0F0
}

/// Forces codeword bit `bit` (`0..64` data, `64..72` check) to `value`
/// — the read-side effect of a stuck-at cell.
fn apply_stuck(data: u64, check: u8, bit: u32, value: bool) -> (u64, u8) {
    if bit < 64 {
        let mask = 1u64 << bit;
        let d = if value { data | mask } else { data & !mask };
        (d, check)
    } else {
        let mask = 1u8 << (bit & 7);
        let c = if value { check | mask } else { check & !mask };
        (data, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> Sdram {
        Sdram::new(SdramConfig::default())
    }

    #[test]
    fn read_requires_open_row() {
        let mut d = dev();
        let err = d
            .issue(SdramCmd::Read {
                bank: 0,
                col: 0,
                auto_precharge: false,
                tag: 0,
            })
            .unwrap_err();
        assert_eq!(err, IssueError::RowNotOpen { bank: 0 });
    }

    #[test]
    fn read_respects_trcd() {
        let mut d = dev();
        d.issue(SdramCmd::Activate { bank: 1, row: 5 }).unwrap();
        d.tick();
        let err = d
            .issue(SdramCmd::Read {
                bank: 1,
                col: 0,
                auto_precharge: false,
                tag: 0,
            })
            .unwrap_err();
        assert_eq!(
            err,
            IssueError::TimingViolation {
                bank: 1,
                timer: "tRCD"
            }
        );
        d.tick();
        assert!(d
            .issue(SdramCmd::Read {
                bank: 1,
                col: 0,
                auto_precharge: false,
                tag: 0
            })
            .is_ok());
    }

    #[test]
    fn one_command_per_cycle() {
        let mut d = dev();
        d.issue(SdramCmd::Activate { bank: 0, row: 0 }).unwrap();
        let err = d.issue(SdramCmd::Activate { bank: 1, row: 0 }).unwrap_err();
        assert_eq!(err, IssueError::CommandBusBusy);
        // NOP is always fine.
        assert!(d.issue(SdramCmd::Nop).is_ok());
        d.tick();
        assert!(d.issue(SdramCmd::Activate { bank: 1, row: 0 }).is_ok());
    }

    #[test]
    fn activate_respects_trc_and_trp() {
        let mut d = dev();
        d.issue(SdramCmd::Activate { bank: 0, row: 0 }).unwrap();
        // Wait out tRAS (5), precharge, then activate must wait tRP and tRC.
        for _ in 0..5 {
            d.tick();
        }
        d.issue(SdramCmd::Precharge { bank: 0 }).unwrap();
        d.tick();
        let err = d.issue(SdramCmd::Activate { bank: 0, row: 1 }).unwrap_err();
        // tRP = 2 not yet satisfied (and tRC = 7 also pending).
        assert!(matches!(err, IssueError::TimingViolation { bank: 0, .. }));
        d.tick();
        // tRP satisfied at +2, tRC (7 from activate at cycle 0) satisfied
        // at cycle 7; we are at cycle 7 now.
        assert!(d.issue(SdramCmd::Activate { bank: 0, row: 1 }).is_ok());
    }

    #[test]
    fn precharge_respects_tras() {
        let mut d = dev();
        d.issue(SdramCmd::Activate { bank: 2, row: 9 }).unwrap();
        d.tick();
        let err = d.issue(SdramCmd::Precharge { bank: 2 }).unwrap_err();
        assert_eq!(
            err,
            IssueError::TimingViolation {
                bank: 2,
                timer: "tRAS"
            }
        );
    }

    #[test]
    fn data_returns_after_cas_latency() {
        let mut d = dev();
        d.issue(SdramCmd::Activate { bank: 0, row: 1 }).unwrap();
        d.tick();
        d.tick();
        d.issue(SdramCmd::Read {
            bank: 0,
            col: 3,
            auto_precharge: false,
            tag: 99,
        })
        .unwrap();
        assert!(d.take_ready_data().is_empty());
        d.tick();
        assert!(d.take_ready_data().is_empty());
        d.tick();
        let ready = d.take_ready_data();
        assert_eq!(ready.len(), 1);
        assert_eq!(ready[0].tag, 99);
        assert_eq!(ready[0].data, d.peek(d.local_addr(0, 1, 3)));
        assert!(!d.has_in_flight());
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut d = dev();
        d.issue(SdramCmd::Activate { bank: 3, row: 7 }).unwrap();
        d.tick();
        d.tick();
        d.issue(SdramCmd::Write {
            bank: 3,
            col: 11,
            data: 0xDEAD,
            auto_precharge: false,
        })
        .unwrap();
        d.tick();
        d.issue(SdramCmd::Read {
            bank: 3,
            col: 11,
            auto_precharge: false,
            tag: 1,
        })
        .unwrap();
        d.tick();
        d.tick();
        assert_eq!(d.take_ready_data()[0].data, 0xDEAD);
    }

    #[test]
    fn auto_precharge_closes_row_and_delays_reactivation() {
        let mut d = dev();
        d.issue(SdramCmd::Activate { bank: 0, row: 1 }).unwrap();
        d.tick();
        d.tick();
        d.issue(SdramCmd::Read {
            bank: 0,
            col: 0,
            auto_precharge: true,
            tag: 0,
        })
        .unwrap();
        assert_eq!(d.open_row(0), None);
        d.tick();
        // Residual tRAS (5 - 2 = 3) + tRP (2) = 5 cycles from the read.
        for _ in 0..4 {
            assert!(d.issue(SdramCmd::Activate { bank: 0, row: 2 }).is_err());
            d.tick();
        }
        // tRC (7 from cycle 0) also expired by now (cycle 7).
        assert!(d.issue(SdramCmd::Activate { bank: 0, row: 2 }).is_ok());
        assert_eq!(d.stats().auto_precharges, 1);
    }

    #[test]
    fn independent_internal_banks_overlap() {
        // An activate on bank 0 does not block bank 1 (the overlap the
        // whole PVA scheduling story depends on).
        let mut d = dev();
        d.issue(SdramCmd::Activate { bank: 0, row: 0 }).unwrap();
        d.tick();
        assert!(d.issue(SdramCmd::Activate { bank: 1, row: 0 }).is_ok());
        d.tick();
        // Bank 0's tRCD (armed at cycle 0) has expired.
        assert!(d
            .issue(SdramCmd::Read {
                bank: 0,
                col: 0,
                auto_precharge: false,
                tag: 0
            })
            .is_ok());
    }

    #[test]
    fn out_of_range_bank_rejected() {
        let mut d = dev();
        assert_eq!(
            d.issue(SdramCmd::Activate { bank: 4, row: 0 }).unwrap_err(),
            IssueError::BankOutOfRange { bank: 4 }
        );
    }

    #[test]
    fn reads_return_in_issue_order() {
        let mut d = dev();
        d.issue(SdramCmd::Activate { bank: 0, row: 0 }).unwrap();
        d.tick();
        d.tick();
        for i in 0..4u64 {
            d.issue(SdramCmd::Read {
                bank: 0,
                col: i,
                auto_precharge: false,
                tag: i,
            })
            .unwrap();
            d.tick();
        }
        d.tick();
        d.tick();
        let tags: Vec<u64> = d.take_ready_data().iter().map(|r| r.tag).collect();
        assert_eq!(tags, vec![0, 1, 2, 3]);
    }

    #[test]
    fn local_addr_inverts_map() {
        let d = dev();
        for a in [0u64, 1, 511, 512, 4096, 123_456] {
            let ia = d.config().map(a);
            assert_eq!(d.local_addr(ia.bank, ia.row, ia.col), a);
        }
    }

    #[test]
    fn advance_matches_repeated_tick() {
        // Same command history, one device bulk-advanced, one ticked.
        let mut a = dev();
        let mut b = dev();
        for d in [&mut a, &mut b] {
            d.issue(SdramCmd::Activate { bank: 0, row: 1 }).unwrap();
        }
        a.advance(6);
        for _ in 0..6 {
            b.tick();
        }
        assert_eq!(a.now(), b.now());
        assert_eq!(a.bank_state(0), b.bank_state(0));
        for d in [&mut a, &mut b] {
            d.issue(SdramCmd::Read {
                bank: 0,
                col: 0,
                auto_precharge: false,
                tag: 7,
            })
            .unwrap();
        }
        a.advance(2);
        for _ in 0..2 {
            b.tick();
        }
        assert_eq!(a.take_ready_data(), b.take_ready_data());
    }

    #[test]
    fn pop_ready_matches_take_ready_data() {
        let mut d = dev();
        d.issue(SdramCmd::Activate { bank: 0, row: 0 }).unwrap();
        d.tick();
        d.tick();
        for i in 0..3u64 {
            d.issue(SdramCmd::Read {
                bank: 0,
                col: i,
                auto_precharge: false,
                tag: i,
            })
            .unwrap();
            d.tick();
        }
        assert_eq!(d.next_data_at(), Some(2 + 2));
        d.tick();
        d.tick();
        let mut tags = Vec::new();
        while let Some(r) = d.pop_ready() {
            tags.push(r.tag);
        }
        assert_eq!(tags, vec![0, 1, 2]);
        assert!(!d.has_in_flight());
        assert_eq!(d.next_data_at(), None);
    }

    #[test]
    fn next_resource_wake_reports_earliest_expiry() {
        let mut d = dev();
        assert_eq!(d.next_resource_wake(), None);
        d.issue(SdramCmd::Activate { bank: 0, row: 0 }).unwrap();
        // tRCD=2 is the earliest armed timer (tRAS=5, tRC=7 later).
        assert_eq!(d.next_resource_wake(), Some(2));
        d.tick();
        assert_eq!(d.next_resource_wake(), Some(2));
        d.tick();
        // tRCD expired; tRAS=5 is next.
        assert_eq!(d.next_resource_wake(), Some(5));
    }

    #[test]
    fn stats_count_operations() {
        let mut d = dev();
        d.issue(SdramCmd::Activate { bank: 0, row: 0 }).unwrap();
        d.tick();
        d.tick();
        d.issue(SdramCmd::Read {
            bank: 0,
            col: 0,
            auto_precharge: false,
            tag: 0,
        })
        .unwrap();
        d.tick();
        d.issue(SdramCmd::Write {
            bank: 0,
            col: 1,
            data: 5,
            auto_precharge: false,
        })
        .unwrap();
        let s = d.stats();
        assert_eq!((s.activates, s.reads, s.writes), (1, 1, 1));
    }
}
