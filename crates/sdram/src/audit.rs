//! Independent timing auditor.
//!
//! [`TimingAuditor`] re-checks an SDRAM command stream against the
//! configuration's timing parameters using absolute timestamps — a
//! deliberately different mechanism from the device's restimer counters
//! — so the two implementations cross-validate each other in property
//! tests ("the SDRAM model never violates a timing constraint").

use crate::config::{SdramConfig, MAX_BANK_GROUPS};
use crate::device::SdramCmd;

/// A recorded timing violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Cycle the offending command was issued.
    pub cycle: u64,
    /// Internal bank involved.
    pub bank: u32,
    /// Human-readable rule that was broken.
    pub rule: String,
}

#[derive(Debug, Clone, Copy, Default)]
struct BankHistory {
    last_activate: Option<u64>,
    last_precharge_done: Option<u64>,
    last_write: Option<u64>,
    row_open: Option<u64>,
}

/// Device-wide refresh history.
#[derive(Debug, Clone, Copy, Default)]
struct RefreshHistory {
    busy_until: Option<u64>,
}

/// Channel-level history for the modern-generation constraints
/// (tCCD/tRRD/tFAW) — absolute timestamps, like [`BankHistory`], so the
/// check mechanism stays independent of the device's restimers.
#[derive(Debug, Clone, Copy, Default)]
struct ChannelHistory {
    /// First cycle each bank group may accept its next CAS.
    next_cas_ok: [u64; MAX_BANK_GROUPS as usize],
    /// Cycle of the most recent ACTIVATE on any bank.
    last_activate: Option<u64>,
    /// Cycles of the four most recent ACTIVATEs (for the tFAW window).
    recent_activates: [Option<u64>; 4],
}

/// Observes `(cycle, command)` pairs and accumulates violations.
///
/// # Examples
///
/// ```
/// use sdram::{SdramCmd, SdramConfig, TimingAuditor};
///
/// let mut audit = TimingAuditor::new(SdramConfig::default());
/// audit.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
/// // READ one cycle later violates tRCD = 2.
/// audit.observe(1, &SdramCmd::Read { bank: 0, col: 0, auto_precharge: false, tag: 0 });
/// assert_eq!(audit.violations().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TimingAuditor {
    config: SdramConfig,
    banks: Vec<BankHistory>,
    refresh: RefreshHistory,
    channel: ChannelHistory,
    last_cmd_cycle: Option<u64>,
    violations: Vec<Violation>,
}

impl TimingAuditor {
    /// Creates an auditor for the given timing parameters.
    pub fn new(config: SdramConfig) -> Self {
        TimingAuditor {
            config,
            banks: vec![BankHistory::default(); config.internal_banks as usize],
            refresh: RefreshHistory::default(),
            channel: ChannelHistory::default(),
            last_cmd_cycle: None,
            violations: Vec::new(),
        }
    }

    /// Records a command issued at `cycle` and checks it.
    pub fn observe(&mut self, cycle: u64, cmd: &SdramCmd) {
        if matches!(cmd, SdramCmd::Nop) {
            return;
        }
        if let Some(last) = self.last_cmd_cycle {
            if last == cycle {
                self.violations.push(Violation {
                    cycle,
                    bank: 0,
                    rule: "one command per cycle".into(),
                });
            }
        }
        self.last_cmd_cycle = Some(cycle);
        let cfg = self.config;
        let mut broken: Vec<&'static str> = Vec::new();
        if let Some(until) = self.refresh.busy_until {
            if cycle < until {
                self.push_all(cycle, 0, &["command during tRFC"]);
            }
        }
        match *cmd {
            SdramCmd::Activate { bank, row } => {
                let h = self.banks[bank as usize];
                if h.row_open.is_some() {
                    broken.push("ACTIVATE with row already open");
                } else {
                    if let Some(t) = h.last_activate {
                        if cycle < t + cfg.t_rc as u64 {
                            broken.push("tRC");
                        }
                    }
                    if let Some(t) = h.last_precharge_done {
                        if cycle < t {
                            broken.push("tRP");
                        }
                    }
                }
                if cfg.t_rrd > 0 {
                    if let Some(t) = self.channel.last_activate {
                        if cycle < t + cfg.t_rrd as u64 {
                            broken.push("tRRD");
                        }
                    }
                }
                if cfg.t_faw > 0 {
                    let window_start = cycle.saturating_sub(cfg.t_faw as u64 - 1);
                    let in_window = self
                        .channel
                        .recent_activates
                        .iter()
                        .flatten()
                        .filter(|&&t| t >= window_start)
                        .count();
                    if in_window >= 4 {
                        broken.push("tFAW");
                    }
                }
                self.channel.last_activate = Some(cycle);
                // Shift the new ACTIVATE into the four-entry window.
                self.channel.recent_activates.rotate_right(1);
                self.channel.recent_activates[0] = Some(cycle);
                let h = &mut self.banks[bank as usize];
                h.last_activate = Some(cycle);
                h.row_open = Some(row);
                self.push_all(cycle, bank, &broken);
            }
            SdramCmd::Read {
                bank,
                auto_precharge,
                ..
            }
            | SdramCmd::Write {
                bank,
                auto_precharge,
                ..
            } => {
                let is_write = matches!(cmd, SdramCmd::Write { .. });
                let h = self.banks[bank as usize];
                if h.row_open.is_none() {
                    broken.push("access with row closed");
                } else if let Some(t) = h.last_activate {
                    if cycle < t + cfg.t_rcd as u64 {
                        broken.push("tRCD");
                    }
                }
                if cfg.t_ccd_l > 0 || cfg.t_ccd_s > 0 {
                    let group = cfg.bank_group_of(bank) as usize;
                    if cycle < self.channel.next_cas_ok[group] {
                        broken.push("tCCD");
                    }
                    for (g, ok_at) in self.channel.next_cas_ok.iter_mut().enumerate() {
                        let spacing = if g == group { cfg.t_ccd_l } else { cfg.t_ccd_s };
                        *ok_at = (*ok_at).max(cycle + spacing as u64);
                    }
                }
                let h = &mut self.banks[bank as usize];
                if is_write {
                    h.last_write = Some(cycle);
                }
                if auto_precharge {
                    h.row_open = None;
                    // Precharge completes after residual tRAS/tWR + tRP.
                    let ras_done = h
                        .last_activate
                        .map(|t| t + cfg.t_ras as u64)
                        .unwrap_or(cycle);
                    let wr_done = h.last_write.map(|t| t + cfg.t_wr as u64).unwrap_or(cycle);
                    h.last_precharge_done =
                        Some(ras_done.max(wr_done).max(cycle) + cfg.t_rp as u64);
                }
                self.push_all(cycle, bank, &broken);
            }
            SdramCmd::Precharge { bank } => {
                let h = self.banks[bank as usize];
                if let Some(t) = h.last_activate {
                    if cycle < t + cfg.t_ras as u64 {
                        broken.push("tRAS");
                    }
                }
                if let Some(t) = h.last_write {
                    if cycle < t + cfg.t_wr as u64 {
                        broken.push("tWR");
                    }
                }
                let h = &mut self.banks[bank as usize];
                h.row_open = None;
                h.last_precharge_done = Some(cycle + cfg.t_rp as u64);
                self.push_all(cycle, bank, &broken);
            }
            SdramCmd::Refresh => {
                if self.banks.iter().any(|h| h.row_open.is_some()) {
                    broken.push("REFRESH with open rows");
                }
                self.refresh.busy_until = Some(cycle + cfg.t_rfc.max(1) as u64);
                self.push_all(cycle, 0, &broken);
            }
            SdramCmd::Nop => {}
        }
    }

    /// All violations observed so far.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Reports whether the observed command stream was clean, returning
    /// the recorded violations otherwise — the form embedders should
    /// use, since a violation in a user-driven simulation is a
    /// diagnosable condition, not a programming error.
    ///
    /// # Errors
    ///
    /// Returns the violations recorded so far, if any.
    pub fn check_clean(&self) -> Result<(), &[Violation]> {
        if self.violations.is_empty() {
            Ok(())
        } else {
            Err(&self.violations)
        }
    }

    /// Panics with a report if any violation was observed — the
    /// assertion form used by tests, a thin wrapper over
    /// [`TimingAuditor::check_clean`].
    ///
    /// # Panics
    ///
    /// Panics when at least one violation was recorded.
    pub fn assert_clean(&self) {
        if let Err(violations) = self.check_clean() {
            panic!("timing violations: {violations:?}");
        }
    }

    fn push_all(&mut self, cycle: u64, bank: u32, rules: &[&'static str]) {
        for rule in rules {
            self.violations.push(Violation {
                cycle,
                bank,
                rule: (*rule).into(),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sequence_passes() {
        let mut a = TimingAuditor::new(SdramConfig::default());
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(
            2,
            &SdramCmd::Read {
                bank: 0,
                col: 0,
                auto_precharge: false,
                tag: 0,
            },
        );
        a.observe(5, &SdramCmd::Precharge { bank: 0 });
        a.observe(7, &SdramCmd::Activate { bank: 0, row: 2 });
        a.assert_clean();
    }

    #[test]
    fn detects_trcd() {
        let mut a = TimingAuditor::new(SdramConfig::default());
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(
            1,
            &SdramCmd::Read {
                bank: 0,
                col: 0,
                auto_precharge: false,
                tag: 0,
            },
        );
        assert_eq!(a.violations()[0].rule, "tRCD");
    }

    #[test]
    fn detects_early_precharge() {
        let mut a = TimingAuditor::new(SdramConfig::default());
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(3, &SdramCmd::Precharge { bank: 0 });
        assert_eq!(a.violations()[0].rule, "tRAS");
    }

    #[test]
    fn detects_double_issue() {
        let mut a = TimingAuditor::new(SdramConfig::default());
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(0, &SdramCmd::Activate { bank: 1, row: 1 });
        assert_eq!(a.violations()[0].rule, "one command per cycle");
    }

    #[test]
    fn detects_closed_row_access() {
        let mut a = TimingAuditor::new(SdramConfig::default());
        a.observe(
            0,
            &SdramCmd::Read {
                bank: 2,
                col: 0,
                auto_precharge: false,
                tag: 0,
            },
        );
        assert_eq!(a.violations()[0].rule, "access with row closed");
    }

    #[test]
    #[should_panic(expected = "timing violations")]
    fn assert_clean_panics_on_violation() {
        let mut a = TimingAuditor::new(SdramConfig::default());
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(0, &SdramCmd::Activate { bank: 1, row: 1 });
        a.assert_clean();
    }

    fn rules(a: &TimingAuditor) -> Vec<&str> {
        a.violations().iter().map(|v| v.rule.as_str()).collect()
    }

    #[test]
    fn detects_command_during_trfc() {
        // tRFC = 8: the device is busy through cycle 7, free at cycle 8.
        let mut a = TimingAuditor::new(SdramConfig::default());
        a.observe(0, &SdramCmd::Refresh);
        a.observe(7, &SdramCmd::Activate { bank: 0, row: 1 });
        assert_eq!(rules(&a), ["command during tRFC"]);

        let mut a = TimingAuditor::new(SdramConfig::default());
        a.observe(0, &SdramCmd::Refresh);
        a.observe(8, &SdramCmd::Activate { bank: 0, row: 1 });
        a.assert_clean();
    }

    #[test]
    fn detects_activate_with_row_open() {
        let mut a = TimingAuditor::new(SdramConfig::default());
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(20, &SdramCmd::Activate { bank: 0, row: 2 });
        assert_eq!(rules(&a), ["ACTIVATE with row already open"]);

        // A different bank is an independent row buffer — no violation.
        let mut a = TimingAuditor::new(SdramConfig::default());
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(20, &SdramCmd::Activate { bank: 1, row: 2 });
        a.assert_clean();
    }

    #[test]
    fn detects_trc() {
        // t_rc = 10 > t_ras + t_rp = 7, so an activate after precharge
        // completes (cycle 7) but before tRC elapses trips tRC alone.
        let cfg = SdramConfig {
            t_rc: 10,
            ..SdramConfig::default()
        };
        let mut a = TimingAuditor::new(cfg);
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(5, &SdramCmd::Precharge { bank: 0 });
        a.observe(8, &SdramCmd::Activate { bank: 0, row: 2 });
        assert_eq!(rules(&a), ["tRC"]);

        let mut a = TimingAuditor::new(cfg);
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(5, &SdramCmd::Precharge { bank: 0 });
        a.observe(10, &SdramCmd::Activate { bank: 0, row: 2 });
        a.assert_clean();
    }

    #[test]
    fn detects_trp() {
        // Precharge late (cycle 10) so tRC (7) has already elapsed when
        // the re-activate lands inside the tRP window (done at 12).
        let mut a = TimingAuditor::new(SdramConfig::default());
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(10, &SdramCmd::Precharge { bank: 0 });
        a.observe(11, &SdramCmd::Activate { bank: 0, row: 2 });
        assert_eq!(rules(&a), ["tRP"]);

        let mut a = TimingAuditor::new(SdramConfig::default());
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(10, &SdramCmd::Precharge { bank: 0 });
        a.observe(12, &SdramCmd::Activate { bank: 0, row: 2 });
        a.assert_clean();
    }

    #[test]
    fn detects_twr() {
        // t_wr = 3: a write at cycle 3 holds off precharge until cycle 6,
        // while tRAS (5) is already satisfied at cycle 5.
        let cfg = SdramConfig {
            t_wr: 3,
            ..SdramConfig::default()
        };
        let mut a = TimingAuditor::new(cfg);
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(
            3,
            &SdramCmd::Write {
                bank: 0,
                col: 0,
                data: 0,
                auto_precharge: false,
            },
        );
        a.observe(5, &SdramCmd::Precharge { bank: 0 });
        assert_eq!(rules(&a), ["tWR"]);

        let mut a = TimingAuditor::new(cfg);
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(
            3,
            &SdramCmd::Write {
                bank: 0,
                col: 0,
                data: 0,
                auto_precharge: false,
            },
        );
        a.observe(6, &SdramCmd::Precharge { bank: 0 });
        a.assert_clean();
    }

    #[test]
    fn detects_refresh_with_open_rows() {
        let mut a = TimingAuditor::new(SdramConfig::default());
        a.observe(0, &SdramCmd::Activate { bank: 2, row: 1 });
        a.observe(20, &SdramCmd::Refresh);
        assert_eq!(rules(&a), ["REFRESH with open rows"]);

        let mut a = TimingAuditor::new(SdramConfig::default());
        a.observe(0, &SdramCmd::Activate { bank: 2, row: 1 });
        a.observe(5, &SdramCmd::Precharge { bank: 2 });
        a.observe(20, &SdramCmd::Refresh);
        a.assert_clean();
    }

    fn ddr3() -> SdramConfig {
        SdramConfig::for_device(crate::config::DevicePreset::Ddr3_1600)
    }

    fn read(bank: u32) -> SdramCmd {
        SdramCmd::Read {
            bank,
            col: 0,
            auto_precharge: false,
            tag: 0,
        }
    }

    #[test]
    fn detects_tccd_same_and_cross_group() {
        // DDR3 profile: tCCD_L = 5 (same group), tCCD_S = 4 (cross).
        // Banks 0 and 2 share group 0; bank 1 is group 1.
        let cfg = ddr3();
        let mut a = TimingAuditor::new(cfg);
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(6, &SdramCmd::Activate { bank: 2, row: 1 });
        a.observe(17, &read(0));
        a.observe(21, &read(2)); // same group 4 < tCCD_L = 5
        assert_eq!(rules(&a), ["tCCD"]);

        let mut a = TimingAuditor::new(cfg);
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(6, &SdramCmd::Activate { bank: 1, row: 1 });
        a.observe(17, &read(0));
        a.observe(20, &read(1)); // cross group 3 < tCCD_S = 4
        assert_eq!(rules(&a), ["tCCD"]);

        let mut a = TimingAuditor::new(cfg);
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(6, &SdramCmd::Activate { bank: 1, row: 1 });
        a.observe(17, &read(0));
        a.observe(21, &read(1)); // cross group at exactly tCCD_S
        a.assert_clean();
    }

    #[test]
    fn detects_trrd() {
        let cfg = ddr3(); // tRRD = 6
        let mut a = TimingAuditor::new(cfg);
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(5, &SdramCmd::Activate { bank: 1, row: 1 });
        assert_eq!(rules(&a), ["tRRD"]);

        let mut a = TimingAuditor::new(cfg);
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(6, &SdramCmd::Activate { bank: 1, row: 1 });
        a.assert_clean();
    }

    #[test]
    fn detects_tfaw() {
        let cfg = ddr3(); // tRRD = 6, tFAW = 26
                          // Four ACTIVATEs at the tRRD floor (0, 6, 12, 18); a fifth at
                          // cycle 24 lands inside the 26-cycle window of the first.
        let mut a = TimingAuditor::new(cfg);
        for (i, c) in [0u64, 6, 12, 18].iter().enumerate() {
            a.observe(
                *c,
                &SdramCmd::Activate {
                    bank: i as u32,
                    row: 1,
                },
            );
        }
        a.observe(24, &SdramCmd::Activate { bank: 4, row: 1 });
        assert_eq!(rules(&a), ["tFAW"]);

        // At cycle 26 the first ACTIVATE has left the window.
        let mut a = TimingAuditor::new(cfg);
        for (i, c) in [0u64, 6, 12, 18].iter().enumerate() {
            a.observe(
                *c,
                &SdramCmd::Activate {
                    bank: i as u32,
                    row: 1,
                },
            );
        }
        a.observe(26, &SdramCmd::Activate { bank: 4, row: 1 });
        a.assert_clean();
    }

    #[test]
    fn sdr_profile_never_trips_channel_rules() {
        // The SDR part leaves every channel parameter at 0: back-to-back
        // CAS and ACTIVATE streams stay clean.
        let mut a = TimingAuditor::new(SdramConfig::default());
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(1, &SdramCmd::Activate { bank: 1, row: 1 });
        a.observe(2, &SdramCmd::Activate { bank: 2, row: 1 });
        a.observe(3, &SdramCmd::Activate { bank: 3, row: 1 });
        a.observe(4, &read(0));
        a.observe(5, &read(1));
        a.assert_clean();
    }

    #[test]
    fn nop_is_not_a_command() {
        // NOPs neither occupy the command bus nor advance any window.
        let mut a = TimingAuditor::new(SdramConfig::default());
        a.observe(0, &SdramCmd::Activate { bank: 0, row: 1 });
        a.observe(0, &SdramCmd::Nop);
        a.observe(1, &SdramCmd::Nop);
        a.assert_clean();
    }
}
