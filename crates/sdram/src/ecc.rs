//! SEC-DED Hamming(72,64) codec for the SDRAM data path.
//!
//! Every 64-bit device word is stored alongside an 8-bit check byte:
//! seven positional Hamming parity bits plus one overall parity bit.
//! The code corrects any single-bit error in the 72-bit codeword and
//! detects (without mis-correcting) any double-bit error — the standard
//! SEC-DED arrangement used by ECC DIMMs.
//!
//! The codeword is laid out positionally, positions `1..=71`: positions
//! that are powers of two (1, 2, 4, 8, 16, 32, 64) hold the seven check
//! bits, and the remaining 64 positions hold the data bits in ascending
//! order (data bit 0 at position 3, bit 1 at position 5, ...). The
//! stored check value is simply the XOR of the positions of all set
//! data bits, so the read-side syndrome — stored check XOR recomputed
//! check — is the position of a single flipped bit, or zero when the
//! codeword is consistent. The eighth bit extends minimum distance to
//! four: an odd overall parity with a zero (or out-of-range) syndrome
//! distinguishes a correctable single flip from a detected double flip.
//!
//! This module models combinational datapath hardware — an encoder in
//! the write path and a decoder in the read path — and is therefore
//! held to the `pva-analysis` synthesizability lint (Datapath profile):
//! no allocation, no panics, no data-dependent division.

/// Number of bit positions in the codeword (data + check), positions
/// `1..=71` plus the overall parity bit.
pub const CODEWORD_BITS: u32 = 72;

/// Mask selecting the seven positional check bits of the check byte.
const SYNDROME_MASK: u8 = 0x7f;

/// Bit of the check byte holding the overall (whole-codeword) parity.
const OVERALL_BIT: u8 = 0x80;

/// Outcome of decoding one stored `(data, check)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// The codeword is consistent; the data is returned as stored.
    Clean,
    /// A single bit was flipped (in the data, a check bit, or the
    /// overall parity bit) and has been corrected; `data` is the
    /// repaired word.
    Corrected {
        /// The corrected data word.
        data: u64,
    },
    /// Two bits (or an odd number of flips landing on an impossible
    /// position) were flipped: the error is detected but cannot be
    /// corrected, and the data must not be trusted.
    Uncorrectable,
}

/// Codeword position of each data bit: `DATA_POS[k]` is the `k`-th
/// non-power-of-two position in `1..CODEWORD_BITS` (bit 0 → 3,
/// bit 1 → 5, ...).
const DATA_POS: [u8; 64] = build_data_positions();

const fn build_data_positions() -> [u8; 64] {
    let mut table = [0u8; 64];
    let mut k = 0usize;
    let mut pos: u32 = 1;
    while pos < CODEWORD_BITS {
        if !pos.is_power_of_two() {
            table[k] = pos as u8; // pva-lint: allow(trunc-cast): positions < 72 fit u8 by construction
            k += 1;
        }
        pos += 1;
    }
    table
}

/// Byte-sliced positional parity: `BYTE_CHECK[i][b]` is the XOR of
/// `DATA_POS` entries for the set bits of byte `i` holding value `b`.
/// Each slice is one level of the encoder's XOR tree, folded into a
/// lookup so the simulator evaluates the tree in eight loads instead of
/// walking all 71 codeword positions per word.
const BYTE_CHECK: [[u8; 256]; 8] = build_byte_checks();

const fn build_byte_checks() -> [[u8; 256]; 8] {
    let mut table = [[0u8; 256]; 8];
    let mut byte = 0usize;
    while byte < 8 {
        let mut value = 0usize;
        while value < 256 {
            let mut acc = 0u8;
            let mut j = 0usize;
            while j < 8 {
                if (value >> j) & 1 != 0 {
                    acc ^= DATA_POS[byte * 8 + j] & SYNDROME_MASK;
                }
                j += 1;
            }
            table[byte][value] = acc;
            value += 1;
        }
        byte += 1;
    }
    table
}

/// Index of the data bit stored at each codeword position (0 at the
/// power-of-two positions, which hold check bits and are never looked
/// up).
const DATA_INDEX: [u8; CODEWORD_BITS as usize] = build_data_indices();

const fn build_data_indices() -> [u8; CODEWORD_BITS as usize] {
    let mut table = [0u8; CODEWORD_BITS as usize];
    let mut k = 0usize;
    while k < 64 {
        table[DATA_POS[k] as usize] = k as u8; // pva-lint: allow(trunc-cast): data-bit indices < 64 fit u8
        k += 1;
    }
    table
}

/// XOR of the codeword positions of all set data bits — the seven
/// positional check bits, which double as the syndrome generator.
fn positional_check(data: u64) -> u8 {
    let b = data.to_le_bytes();
    BYTE_CHECK[0][b[0] as usize]
        ^ BYTE_CHECK[1][b[1] as usize]
        ^ BYTE_CHECK[2][b[2] as usize]
        ^ BYTE_CHECK[3][b[3] as usize]
        ^ BYTE_CHECK[4][b[4] as usize]
        ^ BYTE_CHECK[5][b[5] as usize]
        ^ BYTE_CHECK[6][b[6] as usize]
        ^ BYTE_CHECK[7][b[7] as usize]
}

/// Encodes a data word into its 8-bit check byte (seven positional
/// parities plus the overall parity over all 72 codeword bits).
///
/// # Examples
///
/// ```
/// use sdram::ecc;
/// let c = ecc::encode(0xdead_beef_0123_4567);
/// assert_eq!(ecc::decode(0xdead_beef_0123_4567, c), ecc::Decoded::Clean);
/// ```
pub fn encode(data: u64) -> u8 {
    let check = positional_check(data);
    let ones = data.count_ones() + u32::from(check).count_ones();
    let overall = if ones & 1 != 0 { OVERALL_BIT } else { 0 };
    check | overall
}

/// Maps a codeword position (`1..=71`, not a power of two) back to the
/// index of the data bit stored there.
fn data_index_of(position: u32) -> u32 {
    u32::from(DATA_INDEX[position as usize])
}

/// Decodes a stored `(data, check)` pair, correcting a single-bit
/// error and detecting a double-bit error.
///
/// # Examples
///
/// ```
/// use sdram::ecc::{self, Decoded};
/// let word = 0x0123_4567_89ab_cdef;
/// let check = ecc::encode(word);
/// // Single data-bit flip: corrected.
/// assert_eq!(ecc::decode(word ^ 4, check), Decoded::Corrected { data: word });
/// // Double flip: detected, not mis-corrected.
/// assert_eq!(ecc::decode(word ^ 3, check), Decoded::Uncorrectable);
/// ```
pub fn decode(data: u64, check: u8) -> Decoded {
    let recomputed = positional_check(data);
    let syndrome = u32::from((check & SYNDROME_MASK) ^ recomputed);
    let ones = data.count_ones() + u32::from(check & SYNDROME_MASK).count_ones();
    let stored_overall = u32::from(check & OVERALL_BIT != 0);
    let parity_error = (ones + stored_overall) & 1 != 0;
    match (syndrome, parity_error) {
        (0, false) => Decoded::Clean,
        // Odd number of flips at a consistent syndrome: the overall
        // parity bit itself flipped; the data is intact.
        (0, true) => Decoded::Corrected { data },
        // Even number of flips with a nonzero syndrome: double error.
        (_, false) => Decoded::Uncorrectable,
        (s, true) => {
            if s >= CODEWORD_BITS {
                // A syndrome pointing past the codeword cannot come
                // from one flip: report it rather than mis-correct.
                Decoded::Uncorrectable
            } else if s.is_power_of_two() {
                // A check bit flipped; the data is intact.
                Decoded::Corrected { data }
            } else {
                Decoded::Corrected {
                    data: data ^ (1u64 << data_index_of(s)),
                }
            }
        }
    }
}

/// Flips bit `bit` (`0..72`) of a stored codeword: bits `0..64` are
/// data bits, bits `64..72` are check-byte bits. Used by the fault
/// engine so injected errors can land anywhere in the codeword.
pub fn flip_codeword_bit(data: u64, check: u8, bit: u32) -> (u64, u8) {
    if bit < 64 {
        (data ^ (1u64 << bit), check)
    } else {
        (data, check ^ (1u8 << (bit & 7)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_roundtrip() {
        for word in [0u64, u64::MAX, 0xdead_beef, 0x8000_0000_0000_0001] {
            assert_eq!(decode(word, encode(word)), Decoded::Clean);
        }
    }

    #[test]
    fn every_single_bit_flip_is_corrected() {
        let word = 0x0123_4567_89ab_cdefu64;
        let check = encode(word);
        for bit in 0..CODEWORD_BITS {
            let (d, c) = flip_codeword_bit(word, check, bit);
            assert_eq!(
                decode(d, c),
                Decoded::Corrected { data: word },
                "flip of codeword bit {bit} must correct back"
            );
        }
    }

    #[test]
    fn every_double_bit_flip_is_detected() {
        let word = 0xfeed_face_cafe_f00du64;
        let check = encode(word);
        for a in 0..CODEWORD_BITS {
            for b in (a + 1)..CODEWORD_BITS {
                let (d1, c1) = flip_codeword_bit(word, check, a);
                let (d2, c2) = flip_codeword_bit(d1, c1, b);
                assert_eq!(
                    decode(d2, c2),
                    Decoded::Uncorrectable,
                    "flips of bits {a} and {b} must be detected"
                );
            }
        }
    }

    #[test]
    fn randomized_single_flips_over_many_words() {
        let mut rng = pva_core::SplitMix64::new(0x5ec_ded);
        for _ in 0..500 {
            let word = rng.next_u64();
            let check = encode(word);
            let bit = rng.below(u64::from(CODEWORD_BITS)) as u32;
            let (d, c) = flip_codeword_bit(word, check, bit);
            assert_eq!(decode(d, c), Decoded::Corrected { data: word });
        }
    }

    /// The positional definition the tables must reproduce: walk every
    /// codeword position, XOR the non-power-of-two ones holding set
    /// data bits.
    fn reference_positional_check(data: u64) -> u8 {
        let mut check: u8 = 0;
        let mut k: u32 = 0;
        for pos in 1..CODEWORD_BITS {
            if !pos.is_power_of_two() {
                if (data >> k) & 1 != 0 {
                    check ^= (pos as u8) & SYNDROME_MASK;
                }
                k += 1;
            }
        }
        check
    }

    #[test]
    fn byte_sliced_tables_match_the_positional_definition() {
        let mut rng = pva_core::SplitMix64::new(0xecc_7ab1e);
        for word in [0u64, u64::MAX, 1, 1 << 63] {
            assert_eq!(positional_check(word), reference_positional_check(word));
        }
        for _ in 0..2000 {
            let word = rng.next_u64();
            assert_eq!(
                positional_check(word),
                reference_positional_check(word),
                "table/loop mismatch on {word:#x}"
            );
        }
        // Single-bit words exercise each table entry's base position.
        for k in 0..64 {
            assert_eq!(positional_check(1u64 << k), DATA_POS[k as usize]);
        }
    }

    #[test]
    fn data_index_table_inverts_the_position_table() {
        for (k, &pos) in DATA_POS.iter().enumerate() {
            assert!(!u32::from(pos).is_power_of_two());
            assert_eq!(data_index_of(u32::from(pos)), k as u32);
        }
    }

    #[test]
    fn data_positions_cover_all_64_bits() {
        // Positions 1..=71 minus the seven powers of two hold exactly
        // the 64 data bits, in order.
        let mut count = 0;
        let mut last = None;
        for pos in 1..CODEWORD_BITS {
            if !pos.is_power_of_two() {
                let k = data_index_of(pos);
                assert_eq!(Some(k), Some(count));
                last = Some(k);
                count += 1;
            }
        }
        assert_eq!(count, 64);
        assert_eq!(last, Some(63));
    }
}
