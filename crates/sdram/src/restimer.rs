//! Resource timers ("restimers", §5.2.5).
//!
//! The paper enforces SDRAM timing restrictions with "a set of small
//! counters called restimers, each of which enforces one timing
//! parameter by asserting a 'resource available' line when the
//! corresponding operation may be performed". [`Restimer`] models
//! exactly that line — but holds the *absolute expiry cycle* instead
//! of a down-counter. The two are observably identical (the hardware
//! counter decrements once per clock; the model compares against the
//! clock), and the deadline form needs no per-cycle maintenance: a
//! simulator may advance the clock by any number of cycles and every
//! timer is already correct. It also reports *when* the resource
//! becomes available, which the event-driven scheduler uses to wake a
//! controller at precisely the blocking timer's expiry.
//!
//! # Examples
//!
//! ```
//! use sdram::Restimer;
//!
//! let mut t = Restimer::new("tRCD");
//! assert!(t.available(0));
//! t.arm(0, 2);                 // ACTIVATE at cycle 0: READ legal at 2
//! assert!(!t.available(0));
//! assert!(!t.available(1));
//! assert!(t.available(2));
//! assert_eq!(t.expires_at(), 2);
//! ```

/// A single timing-parameter deadline.
#[derive(Debug, Clone, Copy)]
pub struct Restimer {
    name: &'static str,
    /// First cycle the resource is available again.
    until: u64,
}

impl Restimer {
    /// Creates an expired (available) restimer for the named parameter.
    pub const fn new(name: &'static str) -> Self {
        Restimer { name, until: 0 }
    }

    /// The timing parameter this counter enforces (for diagnostics).
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Arms the counter at cycle `now`: the resource becomes available
    /// `cycles` cycles later. Arming with `0` leaves it available.
    /// Re-arming extends only if the new deadline is later (the
    /// hardware counter loads `max(current, new)`). Deadlines saturate
    /// at `u64::MAX` rather than wrapping.
    pub fn arm(&mut self, now: u64, cycles: u64) {
        self.until = self.until.max(now.saturating_add(cycles));
    }

    /// The "resource available" line at cycle `now`.
    pub const fn available(&self, now: u64) -> bool {
        now >= self.until
    }

    /// Cycles until available as seen from cycle `now` (0 when
    /// available).
    pub const fn remaining(&self, now: u64) -> u64 {
        self.until.saturating_sub(now)
    }

    /// The first cycle the resource is available — in the past (or
    /// present) when already available.
    pub const fn expires_at(&self) -> u64 {
        self.until
    }
}

impl core::fmt::Display for Restimer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}(until {})", self.name, self.until)
    }
}

/// The full set of per-internal-bank restimers an SDRAM scheduler must
/// consult before issuing each operation class.
#[derive(Debug, Clone)]
pub struct BankTimers {
    /// Gates READ/WRITE after ACTIVATE (`tRCD`).
    pub rcd: Restimer,
    /// Gates PRECHARGE after ACTIVATE (`tRAS`).
    pub ras: Restimer,
    /// Gates ACTIVATE after PRECHARGE (`tRP`).
    pub rp: Restimer,
    /// Gates ACTIVATE after ACTIVATE (`tRC`).
    pub rc: Restimer,
    /// Gates PRECHARGE after WRITE (`tWR`).
    pub wr: Restimer,
}

impl BankTimers {
    /// Creates a fully-available timer set.
    pub const fn new() -> Self {
        BankTimers {
            rcd: Restimer::new("tRCD"),
            ras: Restimer::new("tRAS"),
            rp: Restimer::new("tRP"),
            rc: Restimer::new("tRC"),
            wr: Restimer::new("tWR"),
        }
    }

    /// The latest expiry across the five timers — the first cycle at
    /// which every timer is guaranteed available.
    pub fn all_expired_at(&self) -> u64 {
        self.rcd
            .expires_at()
            .max(self.ras.expires_at())
            .max(self.rp.expires_at())
            .max(self.rc.expires_at())
            .max(self.wr.expires_at())
    }

    /// Whether an ACTIVATE may be issued at cycle `now`.
    pub const fn can_activate(&self, now: u64) -> bool {
        self.rp.available(now) && self.rc.available(now)
    }

    /// First cycle an ACTIVATE is timing-legal (both tRP and tRC
    /// expired).
    pub fn activate_ready_at(&self) -> u64 {
        self.rp.expires_at().max(self.rc.expires_at())
    }

    /// Whether a READ/WRITE may be issued at cycle `now` (row must also
    /// be open — checked by the device state machine, not the timers).
    pub const fn can_access(&self, now: u64) -> bool {
        self.rcd.available(now)
    }

    /// First cycle a READ/WRITE is timing-legal (tRCD expired).
    pub const fn access_ready_at(&self) -> u64 {
        self.rcd.expires_at()
    }

    /// Whether a PRECHARGE may be issued at cycle `now`.
    pub const fn can_precharge(&self, now: u64) -> bool {
        self.ras.available(now) && self.wr.available(now)
    }

    /// First cycle a PRECHARGE is timing-legal (both tRAS and tWR
    /// expired).
    pub fn precharge_ready_at(&self) -> u64 {
        self.ras.expires_at().max(self.wr.expires_at())
    }
}

impl Default for BankTimers {
    fn default() -> Self {
        BankTimers::new()
    }
}

/// Channel-level (device-wide) restimers for modern-generation
/// constraints: per-bank-group CAS-to-CAS spacing (`tCCD_L`/`tCCD_S`),
/// ACTIVATE-to-ACTIVATE spacing across banks (`tRRD`), and the
/// four-activate window (`tFAW`).
///
/// These live beside the per-bank [`BankTimers`]: a command must pass
/// both its bank's gates and the channel's. The SDR part disables them
/// all (every parameter 0), so the channel set stays permanently
/// available and the device behaves exactly as before.
///
/// `tFAW` is held as a ring of four expiry slots, mirroring the
/// hardware's four window counters: an ACTIVATE is legal when at least
/// one slot has expired, and issuing one re-arms the *earliest* slot
/// for a full window. Slots start expired, so the first four ACTIVATEs
/// are never throttled.
#[derive(Debug, Clone)]
pub struct ChannelTimers {
    /// One merged CAS gate per bank group, all named `tCCD`: a CAS to
    /// group `g` arms group `g` for `tCCD_L` and every other group for
    /// `tCCD_S`, so each timer holds the deadline its group must wait
    /// for regardless of which constraint produced it.
    cas_group: [Restimer; crate::config::MAX_BANK_GROUPS as usize],
    /// Gates ACTIVATE after any bank's ACTIVATE (`tRRD`).
    rrd: Restimer,
    /// Four-activate-window expiry slots (`tFAW`).
    faw: [u64; 4],
}

impl ChannelTimers {
    /// Creates a fully-available channel timer set.
    pub const fn new() -> Self {
        ChannelTimers {
            cas_group: [Restimer::new("tCCD"); crate::config::MAX_BANK_GROUPS as usize],
            rrd: Restimer::new("tRRD"),
            faw: [0; 4],
        }
    }

    /// Whether a READ/WRITE to bank group `group` may issue at `now`.
    pub const fn can_cas(&self, now: u64, group: usize) -> bool {
        self.cas_group[group].available(now)
    }

    /// First cycle a READ/WRITE to bank group `group` is channel-legal.
    pub const fn cas_ready_at(&self, group: usize) -> u64 {
        self.cas_group[group].expires_at()
    }

    /// Records a CAS to bank group `group` at cycle `now`: the group
    /// itself waits `t_ccd_l`, every other group `t_ccd_s`.
    pub fn note_cas(&mut self, now: u64, group: usize, t_ccd_l: u64, t_ccd_s: u64) {
        for (g, timer) in self.cas_group.iter_mut().enumerate() {
            timer.arm(now, if g == group { t_ccd_l } else { t_ccd_s });
        }
    }

    /// Whether the tRRD gate alone admits an ACTIVATE at `now`.
    pub const fn rrd_available(&self, now: u64) -> bool {
        self.rrd.available(now)
    }

    /// Whether the tFAW window alone admits an ACTIVATE at `now`
    /// (at least one of the four slots has expired).
    pub fn faw_available(&self, now: u64) -> bool {
        self.faw_ready_at() <= now
    }

    /// Whether an ACTIVATE may issue at `now` (both tRRD and tFAW).
    pub fn can_activate(&self, now: u64) -> bool {
        self.rrd_available(now) && self.faw_available(now)
    }

    /// First cycle the tFAW window admits another ACTIVATE: the
    /// earliest slot's expiry.
    pub fn faw_ready_at(&self) -> u64 {
        let mut earliest = self.faw[0];
        for &slot in &self.faw[1..] {
            earliest = earliest.min(slot);
        }
        earliest
    }

    /// First cycle an ACTIVATE is channel-legal (tRRD and tFAW both
    /// expired).
    pub fn activate_ready_at(&self) -> u64 {
        self.rrd.expires_at().max(self.faw_ready_at())
    }

    /// Records an ACTIVATE at cycle `now`: arms tRRD and consumes the
    /// earliest tFAW slot for a full window. Zero parameters leave the
    /// respective gate permanently open.
    pub fn note_activate(&mut self, now: u64, t_rrd: u64, t_faw: u64) {
        self.rrd.arm(now, t_rrd);
        if t_faw > 0 {
            let mut idx = 0;
            for (i, &slot) in self.faw.iter().enumerate() {
                if slot < self.faw[idx] {
                    idx = i;
                }
            }
            self.faw[idx] = now.saturating_add(t_faw);
        }
    }

    /// First cycle the tRRD gate opens (may be in the past).
    pub const fn rrd_ready_at(&self) -> u64 {
        self.rrd.expires_at()
    }

    /// The raw tFAW window expiry slots (unordered) — introspection for
    /// the protocol checker's state alignment.
    pub const fn faw_slots(&self) -> [u64; 4] {
        self.faw
    }

    /// The earliest channel-timer expiry strictly after `now`, if any —
    /// the channel's contribution to the device's resource wake hint.
    pub fn next_expiry_after(&self, now: u64) -> Option<u64> {
        let mut wake: Option<u64> = None;
        let mut consider = |at: u64| {
            if at > now {
                wake = Some(wake.map_or(at, |w: u64| w.min(at)));
            }
        };
        consider(self.rrd.expires_at());
        for timer in &self.cas_group {
            consider(timer.expires_at());
        }
        for &slot in &self.faw {
            consider(slot);
        }
        wake
    }

    /// The latest expiry across every channel timer — the first cycle
    /// at which the whole channel is guaranteed unconstrained.
    pub fn all_expired_at(&self) -> u64 {
        let mut latest = self.rrd.expires_at();
        for timer in &self.cas_group {
            latest = latest.max(timer.expires_at());
        }
        for &slot in &self.faw {
            latest = latest.max(slot);
        }
        latest
    }
}

impl Default for ChannelTimers {
    fn default() -> Self {
        ChannelTimers::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_and_expire() {
        let mut t = Restimer::new("x");
        t.arm(10, 3);
        assert!(!t.available(10));
        assert!(!t.available(12));
        assert!(t.available(13));
        assert!(t.available(14)); // staying past expiry is harmless
        assert_eq!(t.remaining(10), 3);
        assert_eq!(t.remaining(13), 0);
    }

    #[test]
    fn rearm_takes_max() {
        let mut t = Restimer::new("x");
        t.arm(0, 5);
        t.arm(1, 2); // earlier deadline must not shorten the wait
        assert_eq!(t.expires_at(), 5);
        t.arm(1, 10);
        assert_eq!(t.expires_at(), 11);
    }

    #[test]
    fn arm_saturates_instead_of_wrapping() {
        let mut t = Restimer::new("x");
        t.arm(u64::MAX - 1, 17);
        assert_eq!(t.expires_at(), u64::MAX);
        assert!(!t.available(u64::MAX - 1));
        // remaining() from any cycle stays finite and non-wrapping.
        assert_eq!(t.remaining(0), u64::MAX);
    }

    #[test]
    fn bank_timers_gate_operations() {
        let mut bt = BankTimers::new();
        assert!(bt.can_activate(0) && bt.can_access(0) && bt.can_precharge(0));
        // Model an ACTIVATE at cycle 0 with tRCD=2, tRAS=5, tRC=7.
        bt.rcd.arm(0, 2);
        bt.ras.arm(0, 5);
        bt.rc.arm(0, 7);
        assert!(!bt.can_access(0) && !bt.can_precharge(0) && !bt.can_activate(0));
        assert!(bt.can_access(2));
        assert!(!bt.can_precharge(2));
        assert!(bt.can_precharge(5));
        assert!(!bt.can_activate(5));
        assert!(bt.can_activate(7));
    }

    #[test]
    fn ready_at_matches_the_gates() {
        let mut bt = BankTimers::new();
        bt.rcd.arm(0, 2);
        bt.ras.arm(0, 5);
        bt.rc.arm(0, 7);
        bt.wr.arm(0, 9);
        assert_eq!(bt.access_ready_at(), 2);
        assert_eq!(bt.activate_ready_at(), 7);
        assert_eq!(bt.precharge_ready_at(), 9);
        assert_eq!(bt.all_expired_at(), 9);
        // Each ready_at is the first cycle its gate opens.
        assert!(!bt.can_access(1) && bt.can_access(2));
        assert!(!bt.can_activate(6) && bt.can_activate(7));
        assert!(!bt.can_precharge(8) && bt.can_precharge(9));
    }

    #[test]
    fn display_shows_name_and_deadline() {
        let mut t = Restimer::new("tRP");
        t.arm(0, 2);
        assert_eq!(t.to_string(), "tRP(until 2)");
    }

    #[test]
    fn channel_ccd_distinguishes_same_and_cross_group() {
        let mut ch = ChannelTimers::new();
        ch.note_cas(0, 0, 5, 4); // tCCD_L=5, tCCD_S=4
        assert!(!ch.can_cas(4, 0) && ch.can_cas(5, 0)); // same group: tCCD_L
        assert!(!ch.can_cas(3, 1) && ch.can_cas(4, 1)); // other group: tCCD_S
        assert_eq!(ch.cas_ready_at(0), 5);
        assert_eq!(ch.cas_ready_at(1), 4);
    }

    #[test]
    fn channel_rrd_spaces_activates() {
        let mut ch = ChannelTimers::new();
        assert!(ch.can_activate(0));
        ch.note_activate(0, 6, 0);
        assert!(!ch.can_activate(5) && ch.can_activate(6));
        assert_eq!(ch.activate_ready_at(), 6);
    }

    #[test]
    fn channel_faw_admits_four_then_throttles() {
        let mut ch = ChannelTimers::new();
        // Four back-to-back ACTIVATEs pass (slots start expired)...
        for i in 0..4u64 {
            assert!(ch.faw_available(i), "activate {i} must pass");
            ch.note_activate(i, 0, 26);
        }
        // ...the fifth must wait for the first slot's window to expire.
        assert!(!ch.faw_available(4));
        assert!(!ch.faw_available(25));
        assert!(ch.faw_available(26)); // 0 + tFAW
        assert_eq!(ch.faw_ready_at(), 26);
        ch.note_activate(26, 0, 26);
        // The next earliest slot is the ACTIVATE from cycle 1.
        assert_eq!(ch.faw_ready_at(), 27);
    }

    #[test]
    fn zero_parameters_leave_channel_open() {
        let mut ch = ChannelTimers::new();
        ch.note_cas(0, 0, 0, 0);
        ch.note_activate(0, 0, 0);
        assert!(ch.can_cas(0, 0) && ch.can_activate(0));
        assert_eq!(ch.all_expired_at(), 0);
    }

    #[test]
    fn all_expired_at_covers_every_gate() {
        let mut ch = ChannelTimers::new();
        ch.note_cas(0, 1, 5, 4);
        ch.note_activate(0, 6, 26);
        assert_eq!(ch.all_expired_at(), 26);
    }
}
