//! Resource timers ("restimers", §5.2.5).
//!
//! The paper enforces SDRAM timing restrictions with "a set of small
//! counters called restimers, each of which enforces one timing
//! parameter by asserting a 'resource available' line when the
//! corresponding operation may be performed". [`Restimer`] is exactly
//! that: a down-counter armed when an operation starts, whose
//! `available` line gates dependent operations.

/// A single timing-parameter counter.
///
/// # Examples
///
/// ```
/// use sdram::Restimer;
///
/// let mut t = Restimer::new("tRCD");
/// assert!(t.available());
/// t.arm(2);                // ACTIVATE issued: READ legal in 2 cycles
/// assert!(!t.available());
/// t.tick();
/// assert!(!t.available());
/// t.tick();
/// assert!(t.available());
/// ```
#[derive(Debug, Clone)]
pub struct Restimer {
    name: &'static str,
    remaining: u32,
}

impl Restimer {
    /// Creates an expired (available) restimer for the named parameter.
    pub const fn new(name: &'static str) -> Self {
        Restimer { name, remaining: 0 }
    }

    /// The timing parameter this counter enforces (for diagnostics).
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Arms the counter: the resource becomes available after `cycles`
    /// calls to [`tick`](Restimer::tick). Arming with `0` leaves it
    /// available. Re-arming extends only if the new deadline is later.
    pub fn arm(&mut self, cycles: u32) {
        self.remaining = self.remaining.max(cycles);
    }

    /// Advances one clock cycle.
    pub fn tick(&mut self) {
        self.remaining = self.remaining.saturating_sub(1);
    }

    /// Advances `cycles` clock cycles at once — exactly equivalent to
    /// `cycles` calls to [`tick`](Restimer::tick).
    pub fn advance(&mut self, cycles: u64) {
        let n = u32::try_from(cycles).unwrap_or(u32::MAX);
        self.remaining = self.remaining.saturating_sub(n);
    }

    /// The "resource available" line.
    pub const fn available(&self) -> bool {
        self.remaining == 0
    }

    /// Cycles until available (0 when available).
    pub const fn remaining(&self) -> u32 {
        self.remaining
    }
}

impl core::fmt::Display for Restimer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}({} left)", self.name, self.remaining)
    }
}

/// The full set of per-internal-bank restimers an SDRAM scheduler must
/// consult before issuing each operation class.
#[derive(Debug, Clone)]
pub struct BankTimers {
    /// Gates READ/WRITE after ACTIVATE (`tRCD`).
    pub rcd: Restimer,
    /// Gates PRECHARGE after ACTIVATE (`tRAS`).
    pub ras: Restimer,
    /// Gates ACTIVATE after PRECHARGE (`tRP`).
    pub rp: Restimer,
    /// Gates ACTIVATE after ACTIVATE (`tRC`).
    pub rc: Restimer,
    /// Gates PRECHARGE after WRITE (`tWR`).
    pub wr: Restimer,
}

impl BankTimers {
    /// Creates a fully-available timer set.
    pub const fn new() -> Self {
        BankTimers {
            rcd: Restimer::new("tRCD"),
            ras: Restimer::new("tRAS"),
            rp: Restimer::new("tRP"),
            rc: Restimer::new("tRC"),
            wr: Restimer::new("tWR"),
        }
    }

    /// Advances all counters one cycle.
    pub fn tick(&mut self) {
        self.rcd.tick();
        self.ras.tick();
        self.rp.tick();
        self.rc.tick();
        self.wr.tick();
    }

    /// Advances all counters `cycles` cycles at once (equivalent to
    /// `cycles` calls to [`tick`](BankTimers::tick)).
    pub fn advance(&mut self, cycles: u64) {
        self.rcd.advance(cycles);
        self.ras.advance(cycles);
        self.rp.advance(cycles);
        self.rc.advance(cycles);
        self.wr.advance(cycles);
    }

    /// The largest remaining count across the five counters — the
    /// number of ticks after which every timer is guaranteed available.
    pub fn max_remaining(&self) -> u32 {
        self.rcd
            .remaining()
            .max(self.ras.remaining())
            .max(self.rp.remaining())
            .max(self.rc.remaining())
            .max(self.wr.remaining())
    }

    /// Whether an ACTIVATE may be issued now.
    pub fn can_activate(&self) -> bool {
        self.rp.available() && self.rc.available()
    }

    /// Whether a READ/WRITE may be issued now (row must also be open —
    /// checked by the device state machine, not the timers).
    pub fn can_access(&self) -> bool {
        self.rcd.available()
    }

    /// Whether a PRECHARGE may be issued now.
    pub fn can_precharge(&self) -> bool {
        self.ras.available() && self.wr.available()
    }
}

impl Default for BankTimers {
    fn default() -> Self {
        BankTimers::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_and_expire() {
        let mut t = Restimer::new("x");
        t.arm(3);
        for _ in 0..2 {
            assert!(!t.available());
            t.tick();
        }
        assert!(!t.available());
        t.tick();
        assert!(t.available());
        t.tick(); // ticking past zero is harmless
        assert!(t.available());
    }

    #[test]
    fn rearm_takes_max() {
        let mut t = Restimer::new("x");
        t.arm(5);
        t.tick();
        t.arm(2); // earlier deadline must not shorten the wait
        assert_eq!(t.remaining(), 4);
        t.arm(10);
        assert_eq!(t.remaining(), 10);
    }

    #[test]
    fn bank_timers_gate_operations() {
        let mut bt = BankTimers::new();
        assert!(bt.can_activate() && bt.can_access() && bt.can_precharge());
        // Model an ACTIVATE with tRCD=2, tRAS=5, tRC=7.
        bt.rcd.arm(2);
        bt.ras.arm(5);
        bt.rc.arm(7);
        assert!(!bt.can_access() && !bt.can_precharge() && !bt.can_activate());
        for _ in 0..2 {
            bt.tick();
        }
        assert!(bt.can_access());
        assert!(!bt.can_precharge());
        for _ in 0..3 {
            bt.tick();
        }
        assert!(bt.can_precharge());
        assert!(!bt.can_activate());
        for _ in 0..2 {
            bt.tick();
        }
        assert!(bt.can_activate());
    }

    #[test]
    fn advance_matches_repeated_tick() {
        for n in [0u64, 1, 2, 3, 7, 100] {
            let mut a = BankTimers::new();
            let mut b = BankTimers::new();
            for t in [&mut a, &mut b] {
                t.rcd.arm(2);
                t.ras.arm(5);
                t.rc.arm(7);
                t.wr.arm(3);
            }
            a.advance(n);
            for _ in 0..n {
                b.tick();
            }
            assert_eq!(a.rcd.remaining(), b.rcd.remaining(), "n={n}");
            assert_eq!(a.ras.remaining(), b.ras.remaining(), "n={n}");
            assert_eq!(a.rp.remaining(), b.rp.remaining(), "n={n}");
            assert_eq!(a.rc.remaining(), b.rc.remaining(), "n={n}");
            assert_eq!(a.wr.remaining(), b.wr.remaining(), "n={n}");
        }
    }

    #[test]
    fn max_remaining_covers_all_timers() {
        let mut t = BankTimers::new();
        assert_eq!(t.max_remaining(), 0);
        t.rc.arm(7);
        t.rcd.arm(2);
        assert_eq!(t.max_remaining(), 7);
    }

    #[test]
    fn display_shows_name() {
        let mut t = Restimer::new("tRP");
        t.arm(2);
        assert_eq!(t.to_string(), "tRP(2 left)");
    }
}
