//! Resource timers ("restimers", §5.2.5).
//!
//! The paper enforces SDRAM timing restrictions with "a set of small
//! counters called restimers, each of which enforces one timing
//! parameter by asserting a 'resource available' line when the
//! corresponding operation may be performed". [`Restimer`] models
//! exactly that line — but holds the *absolute expiry cycle* instead
//! of a down-counter. The two are observably identical (the hardware
//! counter decrements once per clock; the model compares against the
//! clock), and the deadline form needs no per-cycle maintenance: a
//! simulator may advance the clock by any number of cycles and every
//! timer is already correct. It also reports *when* the resource
//! becomes available, which the event-driven scheduler uses to wake a
//! controller at precisely the blocking timer's expiry.
//!
//! # Examples
//!
//! ```
//! use sdram::Restimer;
//!
//! let mut t = Restimer::new("tRCD");
//! assert!(t.available(0));
//! t.arm(0, 2);                 // ACTIVATE at cycle 0: READ legal at 2
//! assert!(!t.available(0));
//! assert!(!t.available(1));
//! assert!(t.available(2));
//! assert_eq!(t.expires_at(), 2);
//! ```

/// A single timing-parameter deadline.
#[derive(Debug, Clone)]
pub struct Restimer {
    name: &'static str,
    /// First cycle the resource is available again.
    until: u64,
}

impl Restimer {
    /// Creates an expired (available) restimer for the named parameter.
    pub const fn new(name: &'static str) -> Self {
        Restimer { name, until: 0 }
    }

    /// The timing parameter this counter enforces (for diagnostics).
    pub const fn name(&self) -> &'static str {
        self.name
    }

    /// Arms the counter at cycle `now`: the resource becomes available
    /// `cycles` cycles later. Arming with `0` leaves it available.
    /// Re-arming extends only if the new deadline is later (the
    /// hardware counter loads `max(current, new)`). Deadlines saturate
    /// at `u64::MAX` rather than wrapping.
    pub fn arm(&mut self, now: u64, cycles: u64) {
        self.until = self.until.max(now.saturating_add(cycles));
    }

    /// The "resource available" line at cycle `now`.
    pub const fn available(&self, now: u64) -> bool {
        now >= self.until
    }

    /// Cycles until available as seen from cycle `now` (0 when
    /// available).
    pub const fn remaining(&self, now: u64) -> u64 {
        self.until.saturating_sub(now)
    }

    /// The first cycle the resource is available — in the past (or
    /// present) when already available.
    pub const fn expires_at(&self) -> u64 {
        self.until
    }
}

impl core::fmt::Display for Restimer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}(until {})", self.name, self.until)
    }
}

/// The full set of per-internal-bank restimers an SDRAM scheduler must
/// consult before issuing each operation class.
#[derive(Debug, Clone)]
pub struct BankTimers {
    /// Gates READ/WRITE after ACTIVATE (`tRCD`).
    pub rcd: Restimer,
    /// Gates PRECHARGE after ACTIVATE (`tRAS`).
    pub ras: Restimer,
    /// Gates ACTIVATE after PRECHARGE (`tRP`).
    pub rp: Restimer,
    /// Gates ACTIVATE after ACTIVATE (`tRC`).
    pub rc: Restimer,
    /// Gates PRECHARGE after WRITE (`tWR`).
    pub wr: Restimer,
}

impl BankTimers {
    /// Creates a fully-available timer set.
    pub const fn new() -> Self {
        BankTimers {
            rcd: Restimer::new("tRCD"),
            ras: Restimer::new("tRAS"),
            rp: Restimer::new("tRP"),
            rc: Restimer::new("tRC"),
            wr: Restimer::new("tWR"),
        }
    }

    /// The latest expiry across the five timers — the first cycle at
    /// which every timer is guaranteed available.
    pub fn all_expired_at(&self) -> u64 {
        self.rcd
            .expires_at()
            .max(self.ras.expires_at())
            .max(self.rp.expires_at())
            .max(self.rc.expires_at())
            .max(self.wr.expires_at())
    }

    /// Whether an ACTIVATE may be issued at cycle `now`.
    pub const fn can_activate(&self, now: u64) -> bool {
        self.rp.available(now) && self.rc.available(now)
    }

    /// First cycle an ACTIVATE is timing-legal (both tRP and tRC
    /// expired).
    pub fn activate_ready_at(&self) -> u64 {
        self.rp.expires_at().max(self.rc.expires_at())
    }

    /// Whether a READ/WRITE may be issued at cycle `now` (row must also
    /// be open — checked by the device state machine, not the timers).
    pub const fn can_access(&self, now: u64) -> bool {
        self.rcd.available(now)
    }

    /// First cycle a READ/WRITE is timing-legal (tRCD expired).
    pub const fn access_ready_at(&self) -> u64 {
        self.rcd.expires_at()
    }

    /// Whether a PRECHARGE may be issued at cycle `now`.
    pub const fn can_precharge(&self, now: u64) -> bool {
        self.ras.available(now) && self.wr.available(now)
    }

    /// First cycle a PRECHARGE is timing-legal (both tRAS and tWR
    /// expired).
    pub fn precharge_ready_at(&self) -> u64 {
        self.ras.expires_at().max(self.wr.expires_at())
    }
}

impl Default for BankTimers {
    fn default() -> Self {
        BankTimers::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_and_expire() {
        let mut t = Restimer::new("x");
        t.arm(10, 3);
        assert!(!t.available(10));
        assert!(!t.available(12));
        assert!(t.available(13));
        assert!(t.available(14)); // staying past expiry is harmless
        assert_eq!(t.remaining(10), 3);
        assert_eq!(t.remaining(13), 0);
    }

    #[test]
    fn rearm_takes_max() {
        let mut t = Restimer::new("x");
        t.arm(0, 5);
        t.arm(1, 2); // earlier deadline must not shorten the wait
        assert_eq!(t.expires_at(), 5);
        t.arm(1, 10);
        assert_eq!(t.expires_at(), 11);
    }

    #[test]
    fn arm_saturates_instead_of_wrapping() {
        let mut t = Restimer::new("x");
        t.arm(u64::MAX - 1, 17);
        assert_eq!(t.expires_at(), u64::MAX);
        assert!(!t.available(u64::MAX - 1));
        // remaining() from any cycle stays finite and non-wrapping.
        assert_eq!(t.remaining(0), u64::MAX);
    }

    #[test]
    fn bank_timers_gate_operations() {
        let mut bt = BankTimers::new();
        assert!(bt.can_activate(0) && bt.can_access(0) && bt.can_precharge(0));
        // Model an ACTIVATE at cycle 0 with tRCD=2, tRAS=5, tRC=7.
        bt.rcd.arm(0, 2);
        bt.ras.arm(0, 5);
        bt.rc.arm(0, 7);
        assert!(!bt.can_access(0) && !bt.can_precharge(0) && !bt.can_activate(0));
        assert!(bt.can_access(2));
        assert!(!bt.can_precharge(2));
        assert!(bt.can_precharge(5));
        assert!(!bt.can_activate(5));
        assert!(bt.can_activate(7));
    }

    #[test]
    fn ready_at_matches_the_gates() {
        let mut bt = BankTimers::new();
        bt.rcd.arm(0, 2);
        bt.ras.arm(0, 5);
        bt.rc.arm(0, 7);
        bt.wr.arm(0, 9);
        assert_eq!(bt.access_ready_at(), 2);
        assert_eq!(bt.activate_ready_at(), 7);
        assert_eq!(bt.precharge_ready_at(), 9);
        assert_eq!(bt.all_expired_at(), 9);
        // Each ready_at is the first cycle its gate opens.
        assert!(!bt.can_access(1) && bt.can_access(2));
        assert!(!bt.can_activate(6) && bt.can_activate(7));
        assert!(!bt.can_precharge(8) && bt.can_precharge(9));
    }

    #[test]
    fn display_shows_name_and_deadline() {
        let mut t = Restimer::new("tRP");
        t.arm(0, 2);
        assert_eq!(t.to_string(), "tRP(until 2)");
    }
}
