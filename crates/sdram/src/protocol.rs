//! Declarative timing-protocol metadata (§5.2.5, machine-checkable).
//!
//! The device in [`crate::device`] enforces SDRAM timing operationally:
//! each accepted command arms [restimers](crate::Restimer) and
//! [`Sdram::can_issue`](crate::Sdram::can_issue) consults them. This
//! module states the *same* protocol declaratively — which timers gate
//! each command class ([`gates`]) and how long each accepted command
//! arms them ([`DeadlineModel`]) — so an external checker can explore
//! the product automaton of bank state × timer residuals and prove the
//! two descriptions agree (see `pva-analysis`'s protocol pass).
//!
//! Keeping the declarative form next to the operational one is the
//! point: a future timing parameter added to the device but not here
//! (or vice versa) turns into a checker finding, not a silent
//! divergence.

use crate::config::{DevicePreset, SdramConfig};
use crate::fsm::CmdClass;

/// One of the five per-internal-bank restimers of [`crate::BankTimers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerId {
    /// READ/WRITE after ACTIVATE (`tRCD`).
    Rcd,
    /// PRECHARGE after ACTIVATE (`tRAS`).
    Ras,
    /// ACTIVATE after PRECHARGE (`tRP`).
    Rp,
    /// ACTIVATE after ACTIVATE (`tRC`).
    Rc,
    /// PRECHARGE after WRITE (`tWR`).
    Wr,
}

impl TimerId {
    /// Every timer, in the declaration order of [`crate::BankTimers`].
    pub const ALL: [TimerId; 5] = [
        TimerId::Rcd,
        TimerId::Ras,
        TimerId::Rp,
        TimerId::Rc,
        TimerId::Wr,
    ];

    /// The timing-parameter name, matching
    /// [`Restimer::name`](crate::Restimer::name) and the
    /// [`IssueError::TimingViolation`](crate::IssueError::TimingViolation)
    /// payload.
    pub const fn name(self) -> &'static str {
        match self {
            TimerId::Rcd => "tRCD",
            TimerId::Ras => "tRAS",
            TimerId::Rp => "tRP",
            TimerId::Rc => "tRC",
            TimerId::Wr => "tWR",
        }
    }
}

/// The timers that must all be expired before a command of `class` may
/// issue on its internal bank. For [`CmdClass::Refresh`] the listed
/// timers gate on *every* internal bank (the refresh occupies the whole
/// device).
pub const fn gates(class: CmdClass) -> &'static [TimerId] {
    match class {
        CmdClass::Activate => &[TimerId::Rp, TimerId::Rc],
        CmdClass::Read | CmdClass::ReadAuto | CmdClass::Write | CmdClass::WriteAuto => {
            &[TimerId::Rcd]
        }
        CmdClass::Precharge => &[TimerId::Ras, TimerId::Wr],
        CmdClass::Refresh => &[TimerId::Rp],
    }
}

/// One of the channel-level (device-wide) restimers of
/// [`crate::ChannelTimers`] — the modern-generation constraints that
/// the SDR part leaves disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ChannelTimerId {
    /// CAS after CAS, same or cross bank group (`tCCD_L`/`tCCD_S`,
    /// merged per group into one gate named `tCCD`).
    Ccd,
    /// ACTIVATE after any bank's ACTIVATE (`tRRD`).
    Rrd,
    /// Four-activate window (`tFAW`).
    Faw,
}

impl ChannelTimerId {
    /// Every channel timer.
    pub const ALL: [ChannelTimerId; 3] = [
        ChannelTimerId::Ccd,
        ChannelTimerId::Rrd,
        ChannelTimerId::Faw,
    ];

    /// The timing-parameter name, matching the
    /// [`IssueError::TimingViolation`](crate::IssueError::TimingViolation)
    /// payload.
    pub const fn name(self) -> &'static str {
        match self {
            ChannelTimerId::Ccd => "tCCD",
            ChannelTimerId::Rrd => "tRRD",
            ChannelTimerId::Faw => "tFAW",
        }
    }
}

/// The channel-level timers that must admit a command of `class` before
/// it may issue, in the order the device checks (and reports) them.
/// The CAS gate is evaluated against the issuing bank's group.
pub const fn channel_gates(class: CmdClass) -> &'static [ChannelTimerId] {
    match class {
        CmdClass::Activate => &[ChannelTimerId::Rrd, ChannelTimerId::Faw],
        CmdClass::Read | CmdClass::ReadAuto | CmdClass::Write | CmdClass::WriteAuto => {
            &[ChannelTimerId::Ccd]
        }
        CmdClass::Precharge | CmdClass::Refresh => &[],
    }
}

/// The channel timers an accepted command of `class` arms: an ACTIVATE
/// arms `tRRD` and consumes a `tFAW` slot; a CAS arms the per-group
/// `tCCD` gates (own group for `tCCD_L`, the rest for `tCCD_S`).
pub const fn channel_arms(class: CmdClass) -> &'static [ChannelTimerId] {
    match class {
        CmdClass::Activate => &[ChannelTimerId::Rrd, ChannelTimerId::Faw],
        CmdClass::Read | CmdClass::ReadAuto | CmdClass::Write | CmdClass::WriteAuto => {
            &[ChannelTimerId::Ccd]
        }
        CmdClass::Precharge | CmdClass::Refresh => &[],
    }
}

/// The deadline semantics of one configuration: how many cycles each
/// accepted command arms each restimer for. Extracted from
/// [`SdramConfig`] so a checker can be handed a deliberately corrupted
/// copy and prove it notices the disagreement with the live device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineModel {
    /// ACTIVATE → READ/WRITE delay.
    pub t_rcd: u64,
    /// ACTIVATE → PRECHARGE delay.
    pub t_ras: u64,
    /// PRECHARGE → ACTIVATE delay.
    pub t_rp: u64,
    /// ACTIVATE → ACTIVATE delay.
    pub t_rc: u64,
    /// WRITE → PRECHARGE delay.
    pub t_wr: u64,
    /// Cycles an AUTO REFRESH occupies the whole device.
    pub t_rfc: u64,
    /// CAS → CAS delay within one bank group (`tCCD_L`, 0 = disabled).
    pub t_ccd_l: u64,
    /// CAS → CAS delay across bank groups (`tCCD_S`, 0 = disabled).
    pub t_ccd_s: u64,
    /// ACTIVATE → ACTIVATE delay across banks (`tRRD`, 0 = disabled).
    pub t_rrd: u64,
    /// Four-activate window (`tFAW`, 0 = disabled).
    pub t_faw: u64,
    /// Number of bank groups the CAS gates are split into.
    pub bank_groups: u32,
}

impl DeadlineModel {
    /// The deadline semantics of `config`.
    pub const fn of(config: &SdramConfig) -> Self {
        DeadlineModel {
            t_rcd: config.t_rcd as u64,
            t_ras: config.t_ras as u64,
            t_rp: config.t_rp as u64,
            t_rc: config.t_rc as u64,
            t_wr: config.t_wr as u64,
            t_rfc: config.t_rfc as u64,
            t_ccd_l: config.t_ccd_l as u64,
            t_ccd_s: config.t_ccd_s as u64,
            t_rrd: config.t_rrd as u64,
            t_faw: config.t_faw as u64,
            bank_groups: config.bank_groups,
        }
    }

    /// The nominal duration of one timing parameter.
    pub const fn duration(&self, timer: TimerId) -> u64 {
        match timer {
            TimerId::Rcd => self.t_rcd,
            TimerId::Ras => self.t_ras,
            TimerId::Rp => self.t_rp,
            TimerId::Rc => self.t_rc,
            TimerId::Wr => self.t_wr,
        }
    }

    /// The timers an accepted command of `class` arms on its internal
    /// bank, each for its nominal [`DeadlineModel::duration`],
    /// mirroring the device's arm sites. Auto-precharging accesses
    /// additionally arm `tRP` through the composite rule of
    /// [`DeadlineModel::auto_precharge_arm`]; REFRESH arms no restimer
    /// (it occupies the device for [`DeadlineModel::refresh_busy`]
    /// cycles instead).
    pub const fn arms(class: CmdClass) -> &'static [TimerId] {
        match class {
            CmdClass::Activate => &[TimerId::Rcd, TimerId::Ras, TimerId::Rc],
            CmdClass::Write | CmdClass::WriteAuto => &[TimerId::Wr],
            CmdClass::Precharge => &[TimerId::Rp],
            CmdClass::Read | CmdClass::ReadAuto | CmdClass::Refresh => &[],
        }
    }

    /// The `tRP` arming of an auto-precharging access: the internal
    /// precharge starts once the residual `tRAS`/`tWR` allow and then
    /// takes `tRP`. For WRITE-with-auto-precharge the `tWR` residual is
    /// the freshly armed `t_wr` (the device arms `tWR` before the auto
    /// precharge).
    pub fn auto_precharge_arm(&self, ras_residual: u64, wr_residual: u64) -> u64 {
        ras_residual.max(wr_residual).saturating_add(self.t_rp)
    }

    /// Cycles an accepted AUTO REFRESH occupies the device
    /// (`tRFC`, minimum one).
    pub const fn refresh_busy(&self) -> u64 {
        if self.t_rfc == 0 {
            1
        } else {
            self.t_rfc
        }
    }

    /// The nominal arming duration of one channel timer. The CAS gate
    /// depends on whether the next CAS targets the *same* bank group
    /// (`tCCD_L`) or a different one (`tCCD_S`); `same_group` selects
    /// which spacing is being asked about.
    pub const fn channel_duration(&self, timer: ChannelTimerId, same_group: bool) -> u64 {
        match timer {
            ChannelTimerId::Ccd => {
                if same_group {
                    self.t_ccd_l
                } else {
                    self.t_ccd_s
                }
            }
            ChannelTimerId::Rrd => self.t_rrd,
            ChannelTimerId::Faw => self.t_faw,
        }
    }
}

/// The composable device-timing interface: everything a scheduler, a
/// wake-hint computation, or a model checker needs to know about one
/// DRAM generation, expressed as data rather than code.
///
/// The per-command *gate* and *arm* tables plus the [`DeadlineModel`]
/// durations are the single source of truth: `device.rs` consults the
/// same tables operationally (through its restimers), and the
/// `pva-analysis` protocol pass explores the product automaton per
/// [`DevicePreset`] to prove the two never disagree. A timing parameter
/// added to the device but not the tables (or vice versa) becomes a
/// checker finding, not a silent divergence.
///
/// [`SdramConfig`] implements the trait directly, so every shipped
/// [`DevicePreset`] — from the paper's SDR part to the DDR3-1600 and
/// HBM-class profiles — is a `DeviceTiming` with no adapter layer.
pub trait DeviceTiming {
    /// The deadline semantics (arming durations) of this device.
    fn deadlines(&self) -> DeadlineModel;

    /// The per-bank timers that must be expired before a command of
    /// `class` may issue on its internal bank.
    fn bank_gates(&self, class: CmdClass) -> &'static [TimerId] {
        gates(class)
    }

    /// The per-bank timers an accepted command of `class` arms.
    fn bank_arms(&self, class: CmdClass) -> &'static [TimerId] {
        DeadlineModel::arms(class)
    }

    /// The channel-level timers that must admit a command of `class`.
    fn channel_gates(&self, class: CmdClass) -> &'static [ChannelTimerId] {
        channel_gates(class)
    }

    /// The channel-level timers an accepted command of `class` arms.
    fn channel_arms(&self, class: CmdClass) -> &'static [ChannelTimerId] {
        channel_arms(class)
    }

    /// Words transferred per column command (burst length).
    fn burst_words(&self) -> u32;

    /// Data transfers per memory-clock cycle (1 = SDR, 2 = DDR).
    fn data_rate(&self) -> u32;

    /// Memory-clock cycles one burst occupies the data bus.
    fn burst_cycles(&self) -> u32 {
        self.burst_words().div_ceil(self.data_rate().max(1))
    }

    /// Number of bank groups the internal banks are divided into.
    fn bank_groups(&self) -> u32;

    /// The bank group an effective row-buffer index belongs to.
    fn bank_group_of(&self, bank: u32) -> u32 {
        bank & (self.bank_groups() - 1)
    }

    /// Average interval between required refresh commands (0 = refresh
    /// disabled).
    fn refresh_interval(&self) -> u64;

    /// Cycles an accepted AUTO REFRESH occupies the device.
    fn refresh_busy(&self) -> u64 {
        self.deadlines().refresh_busy()
    }
}

impl DeviceTiming for SdramConfig {
    fn deadlines(&self) -> DeadlineModel {
        DeadlineModel::of(self)
    }

    fn burst_words(&self) -> u32 {
        self.burst_words
    }

    fn data_rate(&self) -> u32 {
        self.data_rate
    }

    fn bank_groups(&self) -> u32 {
        self.bank_groups
    }

    fn refresh_interval(&self) -> u64 {
        self.refresh_interval
    }
}

impl DeviceTiming for DevicePreset {
    fn deadlines(&self) -> DeadlineModel {
        DeadlineModel::of(&self.config())
    }

    fn burst_words(&self) -> u32 {
        self.config().burst_words
    }

    fn data_rate(&self) -> u32 {
        self.config().data_rate
    }

    fn bank_groups(&self) -> u32 {
        self.config().bank_groups
    }

    fn refresh_interval(&self) -> u64 {
        self.config().refresh_interval
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_match_the_device_checks() {
        // The operational `can_issue` checks these exact timers; the
        // protocol checker in pva-analysis proves the full agreement,
        // this test just pins the declarative table's shape.
        assert_eq!(gates(CmdClass::Activate), &[TimerId::Rp, TimerId::Rc]);
        assert_eq!(gates(CmdClass::Read), &[TimerId::Rcd]);
        assert_eq!(gates(CmdClass::WriteAuto), &[TimerId::Rcd]);
        assert_eq!(gates(CmdClass::Precharge), &[TimerId::Ras, TimerId::Wr]);
        assert_eq!(gates(CmdClass::Refresh), &[TimerId::Rp]);
    }

    #[test]
    fn deadline_model_mirrors_the_config() {
        let cfg = SdramConfig::default();
        let m = DeadlineModel::of(&cfg);
        assert_eq!(m.duration(TimerId::Rcd), cfg.t_rcd as u64);
        assert_eq!(m.duration(TimerId::Rc), cfg.t_rc as u64);
        assert_eq!(m.refresh_busy(), cfg.t_rfc as u64);
    }

    #[test]
    fn refresh_busy_is_at_least_one() {
        let mut cfg = SdramConfig::for_device(DevicePreset::SramLike);
        cfg.t_rfc = 0;
        assert_eq!(DeadlineModel::of(&cfg).refresh_busy(), 1);
    }

    #[test]
    fn channel_tables_cover_every_class() {
        // ACTIVATEs face tRRD/tFAW, column commands face tCCD; the
        // classes that arm a gate are exactly the ones gated by it.
        assert_eq!(
            channel_gates(CmdClass::Activate),
            &[ChannelTimerId::Rrd, ChannelTimerId::Faw]
        );
        assert_eq!(channel_gates(CmdClass::Read), &[ChannelTimerId::Ccd]);
        assert_eq!(channel_gates(CmdClass::WriteAuto), &[ChannelTimerId::Ccd]);
        assert!(channel_gates(CmdClass::Precharge).is_empty());
        assert!(channel_gates(CmdClass::Refresh).is_empty());
        for class in [
            CmdClass::Activate,
            CmdClass::Read,
            CmdClass::ReadAuto,
            CmdClass::Write,
            CmdClass::WriteAuto,
            CmdClass::Precharge,
            CmdClass::Refresh,
        ] {
            assert_eq!(channel_arms(class), channel_gates(class));
        }
    }

    #[test]
    fn device_timing_trait_mirrors_the_config() {
        let ddr3 = SdramConfig::for_device(DevicePreset::Ddr3_1600);
        let timing: &dyn DeviceTiming = &ddr3;
        assert_eq!(timing.deadlines(), DeadlineModel::of(&ddr3));
        assert_eq!(timing.burst_cycles(), ddr3.burst_cycles());
        assert_eq!(timing.bank_groups(), 2);
        assert_eq!(timing.bank_group_of(3), ddr3.bank_group_of(3));
        assert_eq!(timing.refresh_interval(), ddr3.refresh_interval);
        assert_eq!(timing.bank_gates(CmdClass::Read), gates(CmdClass::Read));
        assert_eq!(
            timing.bank_arms(CmdClass::Activate),
            DeadlineModel::arms(CmdClass::Activate)
        );
        // The preset itself is also a DeviceTiming.
        let preset: &dyn DeviceTiming = &DevicePreset::Ddr3_1600;
        assert_eq!(preset.deadlines(), DeadlineModel::of(&ddr3));
        assert_eq!(preset.burst_cycles(), 4);
    }

    #[test]
    fn channel_durations_select_the_group_spacing() {
        let m = DeadlineModel::of(&SdramConfig::for_device(DevicePreset::Ddr3_1600));
        assert_eq!(m.channel_duration(ChannelTimerId::Ccd, true), m.t_ccd_l);
        assert_eq!(m.channel_duration(ChannelTimerId::Ccd, false), m.t_ccd_s);
        assert_eq!(m.channel_duration(ChannelTimerId::Rrd, true), m.t_rrd);
        assert_eq!(m.channel_duration(ChannelTimerId::Faw, false), m.t_faw);
    }

    #[test]
    fn auto_precharge_composite_rule() {
        let m = DeadlineModel::of(&SdramConfig::default());
        // Residual tRAS 3, no tWR pending, tRP 2: bank busy 5 more.
        assert_eq!(m.auto_precharge_arm(3, 0), 3 + m.t_rp);
        // The later of the two residuals wins.
        assert_eq!(m.auto_precharge_arm(1, 4), 4 + m.t_rp);
    }
}
