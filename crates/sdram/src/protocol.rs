//! Declarative timing-protocol metadata (§5.2.5, machine-checkable).
//!
//! The device in [`crate::device`] enforces SDRAM timing operationally:
//! each accepted command arms [restimers](crate::Restimer) and
//! [`Sdram::can_issue`](crate::Sdram::can_issue) consults them. This
//! module states the *same* protocol declaratively — which timers gate
//! each command class ([`gates`]) and how long each accepted command
//! arms them ([`DeadlineModel`]) — so an external checker can explore
//! the product automaton of bank state × timer residuals and prove the
//! two descriptions agree (see `pva-analysis`'s protocol pass).
//!
//! Keeping the declarative form next to the operational one is the
//! point: a future timing parameter added to the device but not here
//! (or vice versa) turns into a checker finding, not a silent
//! divergence.

use crate::config::SdramConfig;
use crate::fsm::CmdClass;

/// One of the five per-internal-bank restimers of [`crate::BankTimers`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerId {
    /// READ/WRITE after ACTIVATE (`tRCD`).
    Rcd,
    /// PRECHARGE after ACTIVATE (`tRAS`).
    Ras,
    /// ACTIVATE after PRECHARGE (`tRP`).
    Rp,
    /// ACTIVATE after ACTIVATE (`tRC`).
    Rc,
    /// PRECHARGE after WRITE (`tWR`).
    Wr,
}

impl TimerId {
    /// Every timer, in the declaration order of [`crate::BankTimers`].
    pub const ALL: [TimerId; 5] = [
        TimerId::Rcd,
        TimerId::Ras,
        TimerId::Rp,
        TimerId::Rc,
        TimerId::Wr,
    ];

    /// The timing-parameter name, matching
    /// [`Restimer::name`](crate::Restimer::name) and the
    /// [`IssueError::TimingViolation`](crate::IssueError::TimingViolation)
    /// payload.
    pub const fn name(self) -> &'static str {
        match self {
            TimerId::Rcd => "tRCD",
            TimerId::Ras => "tRAS",
            TimerId::Rp => "tRP",
            TimerId::Rc => "tRC",
            TimerId::Wr => "tWR",
        }
    }
}

/// The timers that must all be expired before a command of `class` may
/// issue on its internal bank. For [`CmdClass::Refresh`] the listed
/// timers gate on *every* internal bank (the refresh occupies the whole
/// device).
pub const fn gates(class: CmdClass) -> &'static [TimerId] {
    match class {
        CmdClass::Activate => &[TimerId::Rp, TimerId::Rc],
        CmdClass::Read | CmdClass::ReadAuto | CmdClass::Write | CmdClass::WriteAuto => {
            &[TimerId::Rcd]
        }
        CmdClass::Precharge => &[TimerId::Ras, TimerId::Wr],
        CmdClass::Refresh => &[TimerId::Rp],
    }
}

/// The deadline semantics of one configuration: how many cycles each
/// accepted command arms each restimer for. Extracted from
/// [`SdramConfig`] so a checker can be handed a deliberately corrupted
/// copy and prove it notices the disagreement with the live device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadlineModel {
    /// ACTIVATE → READ/WRITE delay.
    pub t_rcd: u64,
    /// ACTIVATE → PRECHARGE delay.
    pub t_ras: u64,
    /// PRECHARGE → ACTIVATE delay.
    pub t_rp: u64,
    /// ACTIVATE → ACTIVATE delay.
    pub t_rc: u64,
    /// WRITE → PRECHARGE delay.
    pub t_wr: u64,
    /// Cycles an AUTO REFRESH occupies the whole device.
    pub t_rfc: u64,
}

impl DeadlineModel {
    /// The deadline semantics of `config`.
    pub const fn of(config: &SdramConfig) -> Self {
        DeadlineModel {
            t_rcd: config.t_rcd as u64,
            t_ras: config.t_ras as u64,
            t_rp: config.t_rp as u64,
            t_rc: config.t_rc as u64,
            t_wr: config.t_wr as u64,
            t_rfc: config.t_rfc as u64,
        }
    }

    /// The nominal duration of one timing parameter.
    pub const fn duration(&self, timer: TimerId) -> u64 {
        match timer {
            TimerId::Rcd => self.t_rcd,
            TimerId::Ras => self.t_ras,
            TimerId::Rp => self.t_rp,
            TimerId::Rc => self.t_rc,
            TimerId::Wr => self.t_wr,
        }
    }

    /// The timers an accepted command of `class` arms on its internal
    /// bank, each for its nominal [`DeadlineModel::duration`],
    /// mirroring the device's arm sites. Auto-precharging accesses
    /// additionally arm `tRP` through the composite rule of
    /// [`DeadlineModel::auto_precharge_arm`]; REFRESH arms no restimer
    /// (it occupies the device for [`DeadlineModel::refresh_busy`]
    /// cycles instead).
    pub const fn arms(class: CmdClass) -> &'static [TimerId] {
        match class {
            CmdClass::Activate => &[TimerId::Rcd, TimerId::Ras, TimerId::Rc],
            CmdClass::Write | CmdClass::WriteAuto => &[TimerId::Wr],
            CmdClass::Precharge => &[TimerId::Rp],
            CmdClass::Read | CmdClass::ReadAuto | CmdClass::Refresh => &[],
        }
    }

    /// The `tRP` arming of an auto-precharging access: the internal
    /// precharge starts once the residual `tRAS`/`tWR` allow and then
    /// takes `tRP`. For WRITE-with-auto-precharge the `tWR` residual is
    /// the freshly armed `t_wr` (the device arms `tWR` before the auto
    /// precharge).
    pub fn auto_precharge_arm(&self, ras_residual: u64, wr_residual: u64) -> u64 {
        ras_residual.max(wr_residual).saturating_add(self.t_rp)
    }

    /// Cycles an accepted AUTO REFRESH occupies the device
    /// (`tRFC`, minimum one).
    pub const fn refresh_busy(&self) -> u64 {
        if self.t_rfc == 0 {
            1
        } else {
            self.t_rfc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gates_match_the_device_checks() {
        // The operational `can_issue` checks these exact timers; the
        // protocol checker in pva-analysis proves the full agreement,
        // this test just pins the declarative table's shape.
        assert_eq!(gates(CmdClass::Activate), &[TimerId::Rp, TimerId::Rc]);
        assert_eq!(gates(CmdClass::Read), &[TimerId::Rcd]);
        assert_eq!(gates(CmdClass::WriteAuto), &[TimerId::Rcd]);
        assert_eq!(gates(CmdClass::Precharge), &[TimerId::Ras, TimerId::Wr]);
        assert_eq!(gates(CmdClass::Refresh), &[TimerId::Rp]);
    }

    #[test]
    fn deadline_model_mirrors_the_config() {
        let cfg = SdramConfig::default();
        let m = DeadlineModel::of(&cfg);
        assert_eq!(m.duration(TimerId::Rcd), cfg.t_rcd as u64);
        assert_eq!(m.duration(TimerId::Rc), cfg.t_rc as u64);
        assert_eq!(m.refresh_busy(), cfg.t_rfc as u64);
    }

    #[test]
    fn refresh_busy_is_at_least_one() {
        let mut cfg = SdramConfig::sram_like();
        cfg.t_rfc = 0;
        assert_eq!(DeadlineModel::of(&cfg).refresh_busy(), 1);
    }

    #[test]
    fn auto_precharge_composite_rule() {
        let m = DeadlineModel::of(&SdramConfig::default());
        // Residual tRAS 3, no tWR pending, tRP 2: bank busy 5 more.
        assert_eq!(m.auto_precharge_arm(3, 0), 3 + m.t_rp);
        // The later of the two residuals wins.
        assert_eq!(m.auto_precharge_arm(1, 4), 4 + m.t_rp);
    }
}
